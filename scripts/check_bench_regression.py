#!/usr/bin/env python3
"""Bench-regression gate: diff fresh bench JSON against committed baselines.

CI runs every bench with a fresh build and drops ``BENCH_*.json`` into an
artifact directory; this script compares each fresh file against the
baseline of the same name committed at the repo root and fails the build
when performance regressed beyond noise:

  * **Throughput** (``gflops``): raw GFLOP/s differ across runner
    generations, so absolute thresholds are useless.  Instead every shared
    entry gets a fresh/baseline ratio and each ratio is normalized by the
    *median* ratio across the file — a uniformly slower machine moves the
    median and passes, a single kernel that fell off a cliff does not.
    An entry fails when its normalized ratio drops below
    ``1 - --max-gflops-drop`` (default 0.15: >15% below the fleet median).
  * **Tail latency** (``p50_ms``/``p99_ms``): gate on the *shape* of the
    distribution, not the absolute milliseconds — the fresh ``p99/p50``
    tail ratio must stay within ``--max-tail-growth`` (default 2.0) times
    the baseline's tail ratio.  This is what protects the streaming-wire
    p99 win (see BENCH_batch_latency.json) from quietly rotting.
  * **Fleet-cache hit rate** (metrics-snapshot flavor only): the daemons'
    ``--metrics-json`` dumps carry the result-cache counters on both sides
    of the wire (``net.fleet_cache_hits_total``/``..._misses_total`` from
    the master, ``fleet.cache_hits_total``/``..._misses_total`` from the
    workers).  When baseline and fresh snapshots both saw cache traffic,
    the fresh hit rate must stay above the baseline rate minus
    ``--max-hit-rate-drop`` (default 0.20) — a warm-restart or dedup
    regression that silently turns hits into misses fails the build.

Entries are matched by ``name``; entries present on only one side are
reported but not fatal (``--quick`` CI runs legitimately produce a subset).
A fresh file with no committed baseline is skipped with a notice.

Usage:
    scripts/check_bench_regression.py --baseline-dir . --fresh-dir bench-json
    scripts/check_bench_regression.py --self-test

``--self-test`` fabricates baseline/fresh pairs — a clean pass on a
uniformly slower machine, an injected 0.5x single-kernel GFLOP/s collapse,
an injected 30x p99 blowup, and an injected fleet-cache hit-rate collapse
on both counter families — and asserts the gate passes/fails each
accordingly, so CI proves the gate can still say no.
"""

import argparse
import json
import pathlib
import statistics
import sys
import tempfile


# Hit/miss counter pairs exported into metrics-snapshot dumps: the master's
# wire-level view and the workers' cache-tier view of the same traffic.
CACHE_COUNTER_PAIRS = (
    ("net.fleet_cache_hits_total", "net.fleet_cache_misses_total"),
    ("fleet.cache_hits_total", "fleet.cache_misses_total"),
)


def load_entries(path):
    """-> ({entry name: metrics dict}, is_metrics_snapshot) from one BENCH file.

    Metrics-snapshot reports (``"flavor": "metrics-snapshot"`` metadata,
    written by the daemons' ``--metrics-json`` dumps) carry histogram
    quantiles in seconds (``p50_s``/``p99_s``); normalize them onto the
    ``p50_ms``/``p99_ms`` keys the tail gate reads, so a committed daemon
    snapshot gets the same tail-shape protection as the latency benches.
    """
    data = json.loads(path.read_text())
    entries = {entry["name"]: dict(entry.get("metrics", {}))
               for entry in data.get("entries", [])}
    is_snapshot = data.get("metadata", {}).get("flavor") == "metrics-snapshot"
    if is_snapshot:
        for metrics in entries.values():
            for sec_key, ms_key in (("p50_s", "p50_ms"), ("p99_s", "p99_ms")):
                if metrics.get(sec_key) and ms_key not in metrics:
                    metrics[ms_key] = metrics[sec_key] * 1000.0
    return entries, is_snapshot


def cache_hit_rate(entries, hits_key, misses_key):
    """-> hits/(hits+misses) from counter entries, or None without traffic."""
    hits = entries.get(hits_key, {}).get("value")
    misses = entries.get(misses_key, {}).get("value")
    if hits is None or misses is None:
        return None
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def check_file(baseline_path, fresh_path, max_gflops_drop, max_tail_growth,
               max_hit_rate_drop):
    """-> (violations, notices) comparing one fresh bench file to its baseline."""
    violations = []
    notices = []
    baseline, baseline_is_snapshot = load_entries(baseline_path)
    fresh, fresh_is_snapshot = load_entries(fresh_path)
    shared = sorted(set(baseline) & set(fresh))
    for name in sorted(set(baseline) ^ set(fresh)):
        side = "baseline" if name in baseline else "fresh"
        notices.append(f"{fresh_path.name}: entry '{name}' only in {side} run (skipped)")
    if not shared:
        notices.append(f"{fresh_path.name}: no shared entries with baseline (nothing gated)")
        return violations, notices

    # --- throughput: median-normalized per-entry GFLOP/s ratios ------------
    ratios = {}
    for name in shared:
        base_gflops = baseline[name].get("gflops")
        fresh_gflops = fresh[name].get("gflops")
        if base_gflops and fresh_gflops:
            ratios[name] = fresh_gflops / base_gflops
    if ratios:
        median_ratio = statistics.median(ratios.values())
        floor = (1.0 - max_gflops_drop) * median_ratio
        for name, ratio in sorted(ratios.items()):
            if ratio < floor:
                violations.append(
                    f"{fresh_path.name}: '{name}' gflops ratio {ratio:.3f} is "
                    f">{max_gflops_drop:.0%} below the median machine-speed "
                    f"ratio {median_ratio:.3f} (floor {floor:.3f})")

    # --- tail latency: p99/p50 shape vs baseline shape ---------------------
    for name in shared:
        base_p50 = baseline[name].get("p50_ms")
        base_p99 = baseline[name].get("p99_ms")
        fresh_p50 = fresh[name].get("p50_ms")
        fresh_p99 = fresh[name].get("p99_ms")
        if not (base_p50 and base_p99 and fresh_p50 and fresh_p99):
            continue
        base_tail = base_p99 / base_p50
        fresh_tail = fresh_p99 / fresh_p50
        if fresh_tail > max_tail_growth * base_tail:
            violations.append(
                f"{fresh_path.name}: '{name}' p99/p50 tail ratio {fresh_tail:.2f} "
                f"exceeds {max_tail_growth:.1f}x the baseline tail ratio {base_tail:.2f}")

    # --- fleet-cache hit rate: warm-cache effectiveness vs baseline --------
    # Gated only when both sides recorded traffic for the same counter pair:
    # a cold baseline (or a bench that never touches the cache) is skipped
    # rather than failed, so non-cache snapshots stay unaffected.
    if baseline_is_snapshot and fresh_is_snapshot:
        for hits_key, misses_key in CACHE_COUNTER_PAIRS:
            base_rate = cache_hit_rate(baseline, hits_key, misses_key)
            fresh_rate = cache_hit_rate(fresh, hits_key, misses_key)
            if base_rate is None or fresh_rate is None:
                continue
            floor = base_rate - max_hit_rate_drop
            if fresh_rate < floor:
                violations.append(
                    f"{fresh_path.name}: '{hits_key}' fleet-cache hit rate "
                    f"{fresh_rate:.3f} fell below the floor {floor:.3f} "
                    f"(baseline {base_rate:.3f} minus allowed drop "
                    f"{max_hit_rate_drop:.2f})")
    return violations, notices


def check_dirs(baseline_dir, fresh_dir, max_gflops_drop, max_tail_growth,
               max_hit_rate_drop):
    violations = []
    notices = []
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        violations.append(f"{fresh_dir}: no BENCH_*.json produced (bench run broken?)")
    for fresh_path in fresh_files:
        baseline_path = baseline_dir / fresh_path.name
        if not baseline_path.exists():
            notices.append(f"{fresh_path.name}: no committed baseline (skipped)")
            continue
        file_violations, file_notices = check_file(
            baseline_path, fresh_path, max_gflops_drop, max_tail_growth,
            max_hit_rate_drop)
        violations.extend(file_violations)
        notices.extend(file_notices)
    return violations, notices


# ---------------------------------------------------------------------------
# Self-test: fabricate regressions, demand the gate notices.
# ---------------------------------------------------------------------------

def _bench_json(name, entries, metadata=None):
    return json.dumps({
        "bench": name,
        "schema_version": 1,
        "metadata": metadata or {},
        "entries": [{"name": n, "metrics": m} for n, m in entries.items()],
    })


def self_test():
    failures = []
    baseline_gemm = {
        "a/64": {"gflops": 10.0},
        "b/64": {"gflops": 20.0},
        "c/64": {"gflops": 40.0},
    }
    baseline_latency = {
        "v2_batch": {"p50_ms": 2.0, "p99_ms": 60.0},
        "v3_streaming": {"p50_ms": 2.0, "p99_ms": 2.4},
    }

    def run_case(label, fresh_gemm, fresh_latency, expect_fail, needle=""):
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp) / "base"
            fresh = pathlib.Path(tmp) / "fresh"
            base.mkdir()
            fresh.mkdir()
            (base / "BENCH_micro_gemm.json").write_text(_bench_json("micro_gemm", baseline_gemm))
            (base / "BENCH_batch_latency.json").write_text(
                _bench_json("batch_latency", baseline_latency))
            (fresh / "BENCH_micro_gemm.json").write_text(_bench_json("micro_gemm", fresh_gemm))
            (fresh / "BENCH_batch_latency.json").write_text(
                _bench_json("batch_latency", fresh_latency))
            violations, _ = check_dirs(base, fresh, 0.15, 2.0, 0.20)
        if expect_fail and not any(needle in v for v in violations):
            failures.append(f"self-test '{label}': expected a violation containing "
                            f"'{needle}', got {violations or '[clean pass]'}")
        if not expect_fail and violations:
            failures.append(f"self-test '{label}': expected a clean pass, got {violations}")

    # A uniformly 0.8x-slower machine: every ratio equals the median, clean.
    run_case("uniformly slower machine passes",
             {n: {"gflops": m["gflops"] * 0.8} for n, m in baseline_gemm.items()},
             baseline_latency, expect_fail=False)
    # One kernel collapses to 0.5x while the rest hold: must fail.
    run_case("single-kernel gflops collapse fails",
             {"a/64": {"gflops": 10.0}, "b/64": {"gflops": 20.0}, "c/64": {"gflops": 20.0}},
             baseline_latency, expect_fail=True, needle="'c/64' gflops ratio")
    # Streaming p99 blows up 30x (p50 steady): the tail-shape gate must fail.
    run_case("p99 tail blowup fails",
             baseline_gemm,
             {"v2_batch": {"p50_ms": 2.0, "p99_ms": 60.0},
              "v3_streaming": {"p50_ms": 2.0, "p99_ms": 72.0}},
             expect_fail=True, needle="'v3_streaming' p99/p50 tail ratio")
    # Subset fresh run (quick mode): missing entries are notices, not failures.
    run_case("quick-mode subset passes",
             {"a/64": {"gflops": 10.0}}, baseline_latency, expect_fail=False)

    # Metrics-snapshot flavor: daemon --metrics-json dumps quote quantiles in
    # seconds; the gate must normalize them and apply the same tail check.
    baseline_snapshot = {
        "core.eval_seconds": {"count": 100.0, "sum": 0.8, "p50_s": 0.008, "p99_s": 0.016},
        "core.evals_completed_total": {"value": 100.0},
        "net.fleet_cache_hits_total": {"value": 90.0},
        "net.fleet_cache_misses_total": {"value": 10.0},
        "fleet.cache_hits_total": {"value": 90.0},
        "fleet.cache_misses_total": {"value": 10.0},
    }

    def run_snapshot_case(label, fresh_snapshot, expect_fail, needle=""):
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp) / "base"
            fresh = pathlib.Path(tmp) / "fresh"
            base.mkdir()
            fresh.mkdir()
            flavor = {"flavor": "metrics-snapshot"}
            (base / "BENCH_searchd.json").write_text(
                _bench_json("searchd", baseline_snapshot, flavor))
            (fresh / "BENCH_searchd.json").write_text(
                _bench_json("searchd", fresh_snapshot, flavor))
            violations, _ = check_dirs(base, fresh, 0.15, 2.0, 0.20)
        if expect_fail and not any(needle in v for v in violations):
            failures.append(f"self-test '{label}': expected a violation containing "
                            f"'{needle}', got {violations or '[clean pass]'}")
        if not expect_fail and violations:
            failures.append(f"self-test '{label}': expected a clean pass, got {violations}")

    run_snapshot_case("steady metrics snapshot passes",
                      baseline_snapshot, expect_fail=False)
    run_snapshot_case("metrics-snapshot p99 blowup fails",
                      dict(baseline_snapshot,
                           **{"core.eval_seconds": {"count": 100.0, "sum": 0.9,
                                                    "p50_s": 0.008, "p99_s": 0.2}}),
                      expect_fail=True, needle="'core.eval_seconds' p99/p50 tail ratio")
    # The warm master cache turns to misses (0.9 -> 0.5 hit rate): the
    # hit-rate floor (0.9 - 0.20 = 0.7) must catch it.
    run_snapshot_case("fleet-cache hit-rate collapse fails",
                      dict(baseline_snapshot,
                           **{"net.fleet_cache_hits_total": {"value": 50.0},
                              "net.fleet_cache_misses_total": {"value": 50.0}}),
                      expect_fail=True,
                      needle="'net.fleet_cache_hits_total' fleet-cache hit rate")
    # Same collapse on the workers' cache-tier counters: gated independently.
    run_snapshot_case("worker cache-tier hit-rate collapse fails",
                      dict(baseline_snapshot,
                           **{"fleet.cache_hits_total": {"value": 10.0},
                              "fleet.cache_misses_total": {"value": 90.0}}),
                      expect_fail=True,
                      needle="'fleet.cache_hits_total' fleet-cache hit rate")
    # A drop within tolerance (0.9 -> 0.75 >= floor 0.7) stays clean.
    run_snapshot_case("tolerated hit-rate dip passes",
                      dict(baseline_snapshot,
                           **{"net.fleet_cache_hits_total": {"value": 75.0},
                              "net.fleet_cache_misses_total": {"value": 25.0}}),
                      expect_fail=False)
    # Cold-cache snapshots (no traffic on either side) are skipped, not failed.
    cold = {k: v for k, v in baseline_snapshot.items() if "cache" not in k}
    run_cold_case_entries = dict(cold,
                                 **{"net.fleet_cache_hits_total": {"value": 0.0},
                                    "net.fleet_cache_misses_total": {"value": 0.0}})
    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp) / "base"
        fresh = pathlib.Path(tmp) / "fresh"
        base.mkdir()
        fresh.mkdir()
        flavor = {"flavor": "metrics-snapshot"}
        (base / "BENCH_searchd.json").write_text(
            _bench_json("searchd", run_cold_case_entries, flavor))
        (fresh / "BENCH_searchd.json").write_text(
            _bench_json("searchd", run_cold_case_entries, flavor))
        violations, _ = check_dirs(base, fresh, 0.15, 2.0, 0.20)
    if violations:
        failures.append(f"self-test 'cold cache skipped': expected a clean pass, "
                        f"got {violations}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=pathlib.Path, default=pathlib.Path("."),
                        help="directory holding the committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", type=pathlib.Path, default=pathlib.Path("bench-json"),
                        help="directory holding freshly generated BENCH_*.json files")
    parser.add_argument("--max-gflops-drop", type=float, default=0.15,
                        help="max fractional GFLOP/s drop below the median ratio (default 0.15)")
    parser.add_argument("--max-tail-growth", type=float, default=2.0,
                        help="max p99/p50 tail-ratio growth vs baseline (default 2.0)")
    parser.add_argument("--max-hit-rate-drop", type=float, default=0.20,
                        help="max fleet-cache hit-rate drop below the baseline "
                             "rate in metrics snapshots (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="prove the gate fails on injected regressions")
    options = parser.parse_args()

    if options.self_test:
        failures = self_test()
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("check_bench_regression self-test: all injected regressions detected")
        return 1 if failures else 0

    violations, notices = check_dirs(options.baseline_dir, options.fresh_dir,
                                     options.max_gflops_drop, options.max_tail_growth,
                                     options.max_hit_rate_drop)
    for notice in notices:
        print(f"bench-gate note: {notice}")
    for violation in violations:
        print(f"bench-gate: {violation}", file=sys.stderr)
    if not violations:
        print("bench-gate: no performance regressions beyond thresholds")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
