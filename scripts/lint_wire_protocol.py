#!/usr/bin/env python3
"""Wire-protocol invariant linter.

Cross-checks the invariants that keep the distributed evaluation service's
wire protocol honest but that no single compiler ever sees end to end:

  1. Every ``MsgType`` in ``src/net/wire.h`` has a golden fixture under
     ``tests/net/golden/`` captured at that message's *minimum* protocol
     version (from ``frame_version_for`` in ``src/net/wire.cpp``) — so a new
     message can't ship without pinning its bytes, and a version bump can't
     silently orphan an old fixture.
  2. Every ``write_X`` payload codec declared in ``wire.h`` has a matching
     ``read_X`` (and vice versa), and some test under ``tests/`` references
     both — a round-trip without a test is a round-trip on faith.
  3. ``kProtocolVersion`` agrees across ``src/net/wire.h``, ``README.md``,
     and ``scripts/loopback_smoke.sh`` — the three places a human reads the
     current protocol generation.
  4. ``kSnapshotFormatVersion`` (the persisted engine-snapshot format in
     ``src/util/snapshot_io.h``) agrees with ``README.md`` and
     ``scripts/chaos_smoke.sh``, and the committed golden snapshot fixture
     ``tests/evo/golden/engine_snapshot_v{N}.bin`` exists at exactly that
     version — a checkpoint a crashed daemon wrote must stay loadable, so
     the format can't change without bumping the version and re-pinning the
     bytes.

Run from anywhere:

    python3 scripts/lint_wire_protocol.py [--repo-root DIR]

Exit status 0 when every invariant holds, 1 with one line per violation
otherwise.  ``--self-test`` sabotages copies of the real inputs and asserts
the linter catches each class of breakage (run by CI and ctest so the linter
itself can't rot into a yes-machine).
"""

import argparse
import pathlib
import re
import shutil
import sys
import tempfile

WIRE_H = "src/net/wire.h"
WIRE_CPP = "src/net/wire.cpp"
GOLDEN_DIR = "tests/net/golden"
TESTS_DIR = "tests"
README = "README.md"
SMOKE_SCRIPT = "scripts/loopback_smoke.sh"
SNAPSHOT_IO_H = "src/util/snapshot_io.h"
CHAOS_SCRIPT = "scripts/chaos_smoke.sh"
EVO_GOLDEN_DIR = "tests/evo/golden"


def snake_case(name):
    """CamelCase MsgType name -> golden-fixture tag (EvalBatchDone -> eval_batch_done)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def parse_msg_types(wire_h_text):
    """-> ordered {name: numeric value} from the MsgType enum."""
    match = re.search(r"enum\s+class\s+MsgType\s*:\s*std::uint16_t\s*\{(.*?)\};",
                      wire_h_text, re.DOTALL)
    if not match:
        raise ValueError(f"{WIRE_H}: could not find the MsgType enum")
    types = {}
    for entry in re.finditer(r"^\s*(\w+)\s*=\s*(\d+)\s*,", match.group(1), re.MULTILINE):
        types[entry.group(1)] = int(entry.group(2))
    if not types:
        raise ValueError(f"{WIRE_H}: MsgType enum parsed empty")
    return types


def parse_frame_versions(wire_cpp_text, type_names):
    """-> {type name: minimum protocol version} from frame_version_for()."""
    match = re.search(
        r"frame_version_for\(MsgType\s+\w+\)\s*\{\s*switch\s*\([^)]*\)\s*\{(.*?)\n\}",
        wire_cpp_text, re.DOTALL)
    if not match:
        raise ValueError(f"{WIRE_CPP}: could not find frame_version_for()")
    body = match.group(1)
    default = re.search(r"default:\s*return\s+(\d+)\s*;", body)
    if not default:
        raise ValueError(f"{WIRE_CPP}: frame_version_for() has no default case")
    versions = {name: int(default.group(1)) for name in type_names}
    # Walk the fall-through case groups: labels accumulate until a return.
    pending = []
    for line in body.splitlines():
        case = re.search(r"case\s+MsgType::(\w+)\s*:", line)
        if case:
            pending.append(case.group(1))
            continue
        returned = re.search(r"return\s+(\d+)\s*;", line)
        if returned and pending:
            for name in pending:
                if name not in versions:
                    raise ValueError(
                        f"{WIRE_CPP}: frame_version_for() names MsgType::{name} "
                        f"which is not in the {WIRE_H} enum")
                versions[name] = int(returned.group(1))
            pending = []
    return versions


def parse_protocol_version(wire_h_text):
    match = re.search(r"kProtocolVersion\s*=\s*(\d+)\s*;", wire_h_text)
    if not match:
        raise ValueError(f"{WIRE_H}: could not find kProtocolVersion")
    return int(match.group(1))


def parse_snapshot_version(snapshot_io_h_text):
    match = re.search(r"kSnapshotFormatVersion\s*=\s*(\d+)\s*;", snapshot_io_h_text)
    if not match:
        raise ValueError(f"{SNAPSHOT_IO_H}: could not find kSnapshotFormatVersion")
    return int(match.group(1))


def parse_codec_pairs(wire_h_text):
    """-> (writers, readers): the X suffixes of write_X / read_X declarations."""
    writers = set(re.findall(r"\bvoid\s+write_(\w+)\s*\(", wire_h_text))
    readers = set(re.findall(r"\b\w[\w:<>]*\s+read_(\w+)\s*\(", wire_h_text))
    return writers, readers


def fixture_tags(golden):
    """-> {tag: set of versions} from ``{tag}[_variant]_v{N}.bin`` fixtures.

    A file belongs to the *longest* known-looking tag prefix, so
    ``hello_ack_v1.bin`` never satisfies the ``hello`` tag by accident:
    callers pass the known tags and we match greedily against them.
    """
    files = sorted(p.name for p in golden.glob("*.bin"))
    return files


def assign_fixtures(files, tags):
    """-> {tag: set of versions covered}, matching longest tag prefix first."""
    covered = {tag: set() for tag in tags}
    by_length = sorted(tags, key=len, reverse=True)
    for name in files:
        stem = name[:-len(".bin")]
        version_match = re.search(r"_v(\d+)$", stem)
        if not version_match:
            continue
        body = stem[: version_match.start()]
        for tag in by_length:
            if body == tag or body.startswith(tag + "_"):
                covered[tag].add(int(version_match.group(1)))
                break
    return covered


def lint(root):
    """-> list of violation strings (empty when the protocol is consistent)."""
    errors = []
    wire_h_text = (root / WIRE_H).read_text()
    wire_cpp_text = (root / WIRE_CPP).read_text()

    types = parse_msg_types(wire_h_text)
    versions = parse_frame_versions(wire_cpp_text, types)
    declared = parse_protocol_version(wire_h_text)

    for name, version in versions.items():
        if not 1 <= version <= declared:
            errors.append(
                f"{WIRE_CPP}: MsgType::{name} claims minimum version {version}, "
                f"outside 1..kProtocolVersion ({declared})")

    # --- invariant 1: golden fixture at each message's minimum version ----
    golden = root / GOLDEN_DIR
    tags = {snake_case(name): name for name in types}
    covered = assign_fixtures(fixture_tags(golden), set(tags))
    for tag, name in sorted(tags.items()):
        if versions[name] not in covered[tag]:
            errors.append(
                f"{GOLDEN_DIR}: MsgType::{name} has no golden fixture "
                f"'{tag}*_v{versions[name]}.bin' for its minimum protocol "
                f"version {versions[name]}")

    # --- invariant 2: write/read pairing + a round-trip test --------------
    writers, readers = parse_codec_pairs(wire_h_text)
    for suffix in sorted(writers - readers):
        errors.append(f"{WIRE_H}: write_{suffix} has no matching read_{suffix}")
    for suffix in sorted(readers - writers):
        errors.append(f"{WIRE_H}: read_{suffix} has no matching write_{suffix}")
    test_texts = [p.read_text() for p in sorted((root / TESTS_DIR).rglob("*_test.cpp"))]
    for suffix in sorted(writers & readers):
        write_ref = re.compile(rf"\bwrite_{suffix}\b")
        read_ref = re.compile(rf"\bread_{suffix}\b")
        if not any(write_ref.search(t) and read_ref.search(t) for t in test_texts):
            errors.append(
                f"{TESTS_DIR}: no test references both write_{suffix} and "
                f"read_{suffix} (round-trip untested)")

    # --- invariant 3: kProtocolVersion anchors agree ----------------------
    readme_match = re.search(r"`kProtocolVersion\s*=\s*(\d+)`", (root / README).read_text())
    if not readme_match:
        errors.append(f"{README}: missing the `kProtocolVersion = N` anchor line")
    elif int(readme_match.group(1)) != declared:
        errors.append(
            f"{README}: documents kProtocolVersion = {readme_match.group(1)} "
            f"but {WIRE_H} says {declared}")
    smoke_match = re.search(r"^PROTOCOL_VERSION=(\d+)\s*$",
                            (root / SMOKE_SCRIPT).read_text(), re.MULTILINE)
    if not smoke_match:
        errors.append(f"{SMOKE_SCRIPT}: missing the PROTOCOL_VERSION=N anchor line")
    elif int(smoke_match.group(1)) != declared:
        errors.append(
            f"{SMOKE_SCRIPT}: PROTOCOL_VERSION={smoke_match.group(1)} "
            f"but {WIRE_H} says kProtocolVersion = {declared}")

    # --- invariant 4: kSnapshotFormatVersion anchors + pinned fixture -----
    snapshot_declared = parse_snapshot_version((root / SNAPSHOT_IO_H).read_text())
    snap_readme = re.search(r"`kSnapshotFormatVersion\s*=\s*(\d+)`",
                            (root / README).read_text())
    if not snap_readme:
        errors.append(f"{README}: missing the `kSnapshotFormatVersion = N` anchor line")
    elif int(snap_readme.group(1)) != snapshot_declared:
        errors.append(
            f"{README}: documents kSnapshotFormatVersion = {snap_readme.group(1)} "
            f"but {SNAPSHOT_IO_H} says {snapshot_declared}")
    chaos_match = re.search(r"^SNAPSHOT_VERSION=(\d+)\s*$",
                            (root / CHAOS_SCRIPT).read_text(), re.MULTILINE)
    if not chaos_match:
        errors.append(f"{CHAOS_SCRIPT}: missing the SNAPSHOT_VERSION=N anchor line")
    elif int(chaos_match.group(1)) != snapshot_declared:
        errors.append(
            f"{CHAOS_SCRIPT}: SNAPSHOT_VERSION={chaos_match.group(1)} "
            f"but {SNAPSHOT_IO_H} says kSnapshotFormatVersion = {snapshot_declared}")
    snapshot_fixture = root / EVO_GOLDEN_DIR / f"engine_snapshot_v{snapshot_declared}.bin"
    if not snapshot_fixture.is_file():
        errors.append(
            f"{EVO_GOLDEN_DIR}: no pinned fixture engine_snapshot_v{snapshot_declared}.bin "
            f"for kSnapshotFormatVersion = {snapshot_declared}")

    return errors


# --------------------------------------------------------------------------
# Self-test: sabotage copies of the real inputs, demand the lint notices.
# --------------------------------------------------------------------------

def _copy_repo_subset(root, dest):
    for rel in (WIRE_H, WIRE_CPP, README, SMOKE_SCRIPT, SNAPSHOT_IO_H, CHAOS_SCRIPT):
        target = dest / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(root / rel, target)
    shutil.copytree(root / GOLDEN_DIR, dest / GOLDEN_DIR)
    shutil.copytree(root / EVO_GOLDEN_DIR, dest / EVO_GOLDEN_DIR)
    (dest / TESTS_DIR / "net").mkdir(parents=True, exist_ok=True)
    for test in (root / TESTS_DIR).rglob("*_test.cpp"):
        shutil.copyfile(test, dest / TESTS_DIR / "net" / test.name)


def _expect(failures, label, errors, needle):
    matching = [e for e in errors if needle in e]
    if not matching:
        failures.append(
            f"self-test '{label}': expected a violation containing '{needle}', "
            f"got: {errors or '[no errors at all]'}")


def self_test(root):
    failures = []

    # Parser unit checks against the real wire.h/wire.cpp: these pin facts the
    # golden fixtures also pin, so a parser regression can't hide behind a
    # conveniently-wrong parse.
    wire_h_text = (root / WIRE_H).read_text()
    types = parse_msg_types(wire_h_text)
    if types.get("Hello") != 1:
        failures.append(f"parser: expected MsgType::Hello == 1, got {types.get('Hello')}")
    if len(types) < 7:
        failures.append(f"parser: expected >= 7 message types, got {len(types)}")
    if len(set(types.values())) != len(types):
        failures.append("parser: duplicate MsgType values")
    versions = parse_frame_versions((root / WIRE_CPP).read_text(), types)
    if versions.get("Ping") != 1:
        failures.append(f"parser: Ping should be a v1 frame, got {versions.get('Ping')}")
    if "EvalBatchRequest" in types and versions.get("EvalBatchRequest") != 2:
        failures.append("parser: EvalBatchRequest should be a v2 frame "
                        f"(got {versions.get('EvalBatchRequest')})")
    for search_frame in ("SubmitSearch", "SearchAccepted", "SearchProgress",
                         "SearchDone", "CancelSearch"):
        if search_frame in types and versions.get(search_frame) != 4:
            failures.append(f"parser: {search_frame} should be a v4 frame "
                            f"(got {versions.get(search_frame)})")
    for stats_frame in ("GetStats", "StatsReport"):
        if stats_frame in types and versions.get(stats_frame) != 5:
            failures.append(f"parser: {stats_frame} should be a v5 frame "
                            f"(got {versions.get(stats_frame)})")
    if types.get("CacheLookup") != 19:
        failures.append(f"parser: expected MsgType::CacheLookup == 19, "
                        f"got {types.get('CacheLookup')}")
    if types.get("CacheStore") != 20:
        failures.append(f"parser: expected MsgType::CacheStore == 20, "
                        f"got {types.get('CacheStore')}")
    for cache_frame in ("CacheLookup", "CacheStore"):
        if cache_frame in types and versions.get(cache_frame) != 6:
            failures.append(f"parser: {cache_frame} should be a v6 frame "
                            f"(got {versions.get(cache_frame)})")
    writers, readers = parse_codec_pairs(wire_h_text)
    if "genome" not in writers or "genome" not in readers:
        failures.append("parser: write_genome/read_genome not found in wire.h")
    if "stats_report" not in writers or "stats_report" not in readers:
        failures.append("parser: write_stats_report/read_stats_report not found in wire.h")
    for cache_codec in ("cache_lookup", "cache_store"):
        if cache_codec not in writers or cache_codec not in readers:
            failures.append(f"parser: write_{cache_codec}/read_{cache_codec} "
                            "not found in wire.h")
    if snake_case("EvalBatchDone") != "eval_batch_done":
        failures.append("parser: snake_case(EvalBatchDone) broken")
    snapshot_version = parse_snapshot_version((root / SNAPSHOT_IO_H).read_text())
    if snapshot_version != 1:
        failures.append(
            f"parser: expected kSnapshotFormatVersion == 1, got {snapshot_version}")
    # Longest-prefix fixture assignment: hello_ack_v1.bin must not feed 'hello'.
    covered = assign_fixtures(["hello_ack_v1.bin"], {"hello", "hello_ack"})
    if covered["hello"] or covered["hello_ack"] != {1}:
        failures.append(f"parser: fixture prefix matching broken: {covered}")

    if lint(root):
        failures.append("self-test baseline: the real repo should lint clean "
                        f"(got {lint(root)})")

    with tempfile.TemporaryDirectory() as tmp:
        base = pathlib.Path(tmp)

        def sabotaged(label, mutate, needle):
            copy = base / re.sub(r"\W", "_", label)
            _copy_repo_subset(root, copy)
            mutate(copy)
            _expect(failures, label, lint(copy), needle)

        sabotaged("missing fixture",
                  lambda copy: (copy / GOLDEN_DIR / "ping_v1.bin").unlink(),
                  "MsgType::Ping has no golden fixture")
        sabotaged("missing search fixture",
                  lambda copy: (copy / GOLDEN_DIR / "submit_search_v4.bin").unlink(),
                  "MsgType::SubmitSearch has no golden fixture")
        sabotaged("search done variants do not cover the base tag",
                  lambda copy: [(copy / GOLDEN_DIR / "search_done_v4.bin").unlink(),
                                (copy / GOLDEN_DIR / "search_done_err_v4.bin").unlink()],
                  "MsgType::SearchDone has no golden fixture")
        sabotaged("missing stats fixture",
                  lambda copy: (copy / GOLDEN_DIR / "stats_report_v5.bin").unlink(),
                  "MsgType::StatsReport has no golden fixture")
        sabotaged("missing cache lookup fixture",
                  lambda copy: (copy / GOLDEN_DIR / "cache_lookup_v6.bin").unlink(),
                  "MsgType::CacheLookup has no golden fixture")
        sabotaged("missing cache store fixture",
                  lambda copy: (copy / GOLDEN_DIR / "cache_store_v6.bin").unlink(),
                  "MsgType::CacheStore has no golden fixture")
        sabotaged("fixture at wrong version",
                  lambda copy: (copy / GOLDEN_DIR / "eval_batch_request_v2.bin")
                  .rename(copy / GOLDEN_DIR / "eval_batch_request_v1.bin"),
                  "MsgType::EvalBatchRequest has no golden fixture")
        sabotaged("README version drift",
                  lambda copy: (copy / README).write_text(
                      re.sub(r"`kProtocolVersion\s*=\s*\d+`", "`kProtocolVersion = 99`",
                             (copy / README).read_text())),
                  "documents kProtocolVersion = 99")
        sabotaged("smoke script version drift",
                  lambda copy: (copy / SMOKE_SCRIPT).write_text(
                      (copy / SMOKE_SCRIPT).read_text()
                      .replace("\nPROTOCOL_VERSION=", "\nPROTOCOL_VERSION=9")),
                  "PROTOCOL_VERSION=9")
        sabotaged("unpaired codec",
                  lambda copy: (copy / WIRE_H).write_text(
                      re.sub(r"^.*\bread_eval_batch_done\s*\(.*$", "",
                             (copy / WIRE_H).read_text(), flags=re.MULTILINE)),
                  "write_eval_batch_done has no matching read_eval_batch_done")
        sabotaged("unpaired search codec",
                  lambda copy: (copy / WIRE_H).write_text(
                      re.sub(r"^.*\bread_search_done\s*\(.*$", "",
                             (copy / WIRE_H).read_text(), flags=re.MULTILINE)),
                  "write_search_done has no matching read_search_done")
        sabotaged("unpaired stats codec",
                  lambda copy: (copy / WIRE_H).write_text(
                      re.sub(r"^.*\bread_stats_report\s*\(.*$", "",
                             (copy / WIRE_H).read_text(), flags=re.MULTILINE)),
                  "write_stats_report has no matching read_stats_report")
        sabotaged("unpaired cache codec",
                  lambda copy: (copy / WIRE_H).write_text(
                      re.sub(r"^.*\bread_cache_store\s*\(.*$", "",
                             (copy / WIRE_H).read_text(), flags=re.MULTILINE)),
                  "write_cache_store has no matching read_cache_store")
        sabotaged("wire.h version drift orphans both prose anchors",
                  # Bumping kProtocolVersion without touching README or the
                  # smoke script must trip *both* anchor checks at once.
                  lambda copy: (copy / WIRE_H).write_text(
                      re.sub(r"kProtocolVersion\s*=\s*\d+\s*;", "kProtocolVersion = 7;",
                             (copy / WIRE_H).read_text())),
                  f"but {WIRE_H} says 7")
        sabotaged("untested search round-trip",
                  lambda copy: [p.write_text(
                      p.read_text().replace("read_cancel_search", "read_cancel_search0"))
                      for p in (copy / TESTS_DIR).rglob("*_test.cpp")],
                  "no test references both write_cancel_search and read_cancel_search")
        sabotaged("untested cache round-trip",
                  lambda copy: [p.write_text(
                      p.read_text().replace("read_cache_lookup", "read_cache_lookup0"))
                      for p in (copy / TESTS_DIR).rglob("*_test.cpp")],
                  "no test references both write_cache_lookup and read_cache_lookup")
        sabotaged("untested round-trip",
                  lambda copy: [p.write_text(p.read_text().replace("read_genome", "read_gen0me"))
                                for p in (copy / TESTS_DIR).rglob("*_test.cpp")],
                  "no test references both write_genome and read_genome")
        sabotaged("snapshot version bump orphans both prose anchors",
                  # Changing the persisted checkpoint format without touching
                  # README or the chaos matrix must trip both anchor checks
                  # (and the missing-fixture check for the new version).
                  lambda copy: (copy / SNAPSHOT_IO_H).write_text(
                      re.sub(r"kSnapshotFormatVersion\s*=\s*\d+\s*;",
                             "kSnapshotFormatVersion = 8;",
                             (copy / SNAPSHOT_IO_H).read_text())),
                  f"but {SNAPSHOT_IO_H} says 8")
        sabotaged("chaos script snapshot version drift",
                  lambda copy: (copy / CHAOS_SCRIPT).write_text(
                      (copy / CHAOS_SCRIPT).read_text()
                      .replace("\nSNAPSHOT_VERSION=", "\nSNAPSHOT_VERSION=9")),
                  "SNAPSHOT_VERSION=9")
        sabotaged("missing engine snapshot fixture",
                  lambda copy: (copy / EVO_GOLDEN_DIR / "engine_snapshot_v1.bin").unlink(),
                  "no pinned fixture engine_snapshot_v1.bin")

    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the parent of scripts/)")
    parser.add_argument("--self-test", action="store_true",
                        help="prove the linter fails on sabotaged inputs")
    options = parser.parse_args()

    if options.self_test:
        failures = self_test(options.repo_root)
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("lint_wire_protocol self-test: all sabotage detected")
        return 1 if failures else 0

    errors = lint(options.repo_root)
    for error in errors:
        print(f"wire-lint: {error}", file=sys.stderr)
    if not errors:
        print("wire-lint: protocol invariants hold")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
