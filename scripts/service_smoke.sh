#!/usr/bin/env bash
# Search-service smoke matrix (ISSUE 7 acceptance): run ecad_searchd as a
# resident multi-tenant daemon (wire protocol v4) and prove the service
# contract end to end:
#
#   leg 1  three concurrent submitted searches (distinct seeds) against one
#          daemon backed by a two-worker fleet, each byte-identical to the
#          standalone CLI run of the same request
#   leg 2  mid-stream cancellation: --cancel-after-progress stops a long
#          search early, the client exits 3, and no partial record leaks to
#          stdout
#   leg 3  graceful SIGTERM drain: a search in flight when the daemon gets
#          SIGTERM folds its in-flight generation, comes back as
#          SearchDone(Canceled "daemon draining"), and the daemon's service
#          summary accounts for every search before exiting
#   leg 4  --stop-server: a client-issued Shutdown frame stops the daemon
#   leg 5  stats over the wire (protocol v5): after the three tenants finish,
#          `ecad_searchd --stats` queries the resident daemon and both
#          workers with GetStats frames; the daemon's dispatch counters, the
#          workers' evaluation counters, and the `stats models=` lines the
#          tenants printed must agree exactly.  The daemon also runs with
#          --trace-file and --metrics-json, validated after shutdown.
#   leg 6  fleet result cache (protocol v6): against cache-enabled workers
#          (--cache-bytes), two tenants submitting the *same* request,
#          staggered, share evaluations through the fleet tier — the workers
#          report cache hits, and both tenants stay byte-identical to the
#          standalone run
#
# Usage: scripts/service_smoke.sh <build-dir>
# Set SMOKE_LOG_DIR to keep daemon/client logs (CI uploads them on failure).
set -euo pipefail

BUILD_DIR="${1:-build}"
WORKERD="$BUILD_DIR/tools/ecad_workerd"
SEARCHD="$BUILD_DIR/tools/ecad_searchd"
if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
  WORK="$SMOKE_LOG_DIR"
  mkdir -p "$WORK"
  KEEP_WORK=1
else
  WORK="$(mktemp -d)"
  KEEP_WORK=0
fi
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  [[ "$KEEP_WORK" == 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

# Identical worker spec on every process — the determinism contract.
WORKER_FLAGS=(--worker accuracy --data-seed 7 --data-samples 400 --train-epochs 3 --eval-seed 42)
REQUEST_FLAGS=(--population 6 --evaluations 24 --batch 3 --threads 4)

wait_for_listening() {
  local out="$1" what="$2"
  for _ in $(seq 1 100); do
    if grep -q LISTENING "$out" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: $what did not come up"; cat "$out.err" 2>/dev/null || true; exit 1
}

start_worker() {
  local out="$1"; shift
  "$WORKERD" --port 0 "$@" >"$out" 2>"$out.err" &
  PIDS+=($!)
  wait_for_listening "$out" "worker daemon"
}

start_searchd() {
  local out="$1"; shift
  "$SEARCHD" --serve --port 0 "$@" >"$out" 2>"$out.err" &
  PIDS+=($!)
  wait_for_listening "$out" "search daemon"
}

diff_or_die() {
  local reference="$1" candidate="$2" what="$3"
  if ! diff -u "$reference" "$candidate"; then
    echo "FAIL: $what diverged from the standalone run"
    exit 1
  fi
}

echo "== search service smoke (wire protocol v6)"
echo "== starting a two-worker fleet and a resident search daemon"
start_worker "$WORK/w1.out" "${WORKER_FLAGS[@]}"
start_worker "$WORK/w2.out" "${WORKER_FLAGS[@]}"
PORT1=$(awk '{print $2}' "$WORK/w1.out")
PORT2=$(awk '{print $2}' "$WORK/w2.out")
start_searchd "$WORK/daemon.out" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  --max-searches 3 --dispatch-slots 2 \
  --metrics-json "$WORK/daemon_metrics.json" --trace-file "$WORK/daemon_trace.json"
DAEMON_PID=${PIDS[-1]}
DAEMON_PORT=$(awk '{print $2}' "$WORK/daemon.out")
echo "   workers on :$PORT1 :$PORT2, daemon on :$DAEMON_PORT"

echo "== leg 1: three concurrent tenants, each byte-identical to standalone"
SEEDS=(21 22 23)
for seed in "${SEEDS[@]}"; do
  "$SEARCHD" --seed "$seed" "${REQUEST_FLAGS[@]}" "${WORKER_FLAGS[@]}" \
    >"$WORK/ref_$seed.out" 2>"$WORK/ref_$seed.err"
done
SUBMIT_PIDS=()
for seed in "${SEEDS[@]}"; do
  "$SEARCHD" --submit "127.0.0.1:$DAEMON_PORT" --seed "$seed" "${REQUEST_FLAGS[@]}" \
    >"$WORK/sub_$seed.out" 2>"$WORK/sub_$seed.err" &
  SUBMIT_PIDS+=($!)
done
for i in "${!SEEDS[@]}"; do
  if ! wait "${SUBMIT_PIDS[$i]}"; then
    echo "FAIL: submitted search (seed ${SEEDS[$i]}) exited nonzero"
    cat "$WORK/sub_${SEEDS[$i]}.err"
    exit 1
  fi
done
for seed in "${SEEDS[@]}"; do
  diff_or_die "$WORK/ref_$seed.out" "$WORK/sub_$seed.out" "submitted search (seed $seed)"
  grep -Eq "generation [0-9]+: [0-9]+/24 evaluated" "$WORK/sub_$seed.err" || {
    echo "FAIL: seed $seed client saw no streamed progress frames"; exit 1; }
done
echo "   OK: 3 concurrent submitted searches == standalone, byte for byte"

echo "== leg 5: stats over the wire — daemon and fleet counters vs tenant records"
"$SEARCHD" --stats "127.0.0.1:$DAEMON_PORT" >"$WORK/daemon_stats.out" 2>"$WORK/daemon_stats.err"
"$SEARCHD" --stats "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  >"$WORK/worker_stats.out" 2>"$WORK/worker_stats.err"
grep -q "^STATS 127.0.0.1:$DAEMON_PORT metrics=" "$WORK/daemon_stats.out" || {
  echo "FAIL: --stats printed no report header for the resident daemon"
  cat "$WORK/daemon_stats.out"; exit 1; }
# The standalone reference runs above were in-process, so the only traffic
# these workers ever saw is the three submitted searches — exact accounting:
# every item the daemon dispatched was either evaluated (completed/failed)
# or collapsed onto a within-batch twin on a worker, and the dispatch total
# equals the sum of the `stats models=` lines the three tenants printed.
python3 - "$WORK/daemon_stats.out" "$WORK/worker_stats.out" \
  "$WORK"/sub_21.out "$WORK"/sub_22.out "$WORK"/sub_23.out <<'PY'
import re, sys

def counters(path):
    out = {}
    for line in open(path):
        parts = line.split()
        if len(parts) == 2 and not parts[0].startswith("STATS"):
            try:
                out[parts[0]] = out.get(parts[0], 0) + int(float(parts[1]))
            except ValueError:
                pass
    return out

daemon = counters(sys.argv[1])
fleet = counters(sys.argv[2])
models = sum(int(re.search(r"^stats models=(\d+) ", open(p).read(), re.M).group(1))
             for p in sys.argv[3:6])

dispatched = sum(v for k, v in daemon.items()
                 if k.startswith("net.items_dispatched_total{"))
requeued = daemon.get("net.requeued_items_total", 0)
lookups = daemon.get("evo.cache_lookups_total", 0)
hits = daemon.get("evo.cache_hits_total", 0)
misses = daemon.get("evo.cache_misses_total", 0)
evals = sum(fleet.get(k, 0) for k in ("core.evals_completed_total",
                                      "core.evals_failed_total",
                                      "core.dedup_collapsed_total"))

assert hits + misses == lookups, f"cache: {hits}+{misses} != {lookups}"
assert requeued == 0, f"unexpected requeues in a healthy fleet: {requeued}"
assert dispatched == models, f"daemon dispatched {dispatched} != tenants' models {models}"
assert evals == dispatched, f"fleet-side evals {evals} != daemon dispatched {dispatched}"
print(f"   OK: tenants' models={models} == daemon dispatched == fleet-side evals;"
      f" cache {hits}+{misses}=={lookups}")
PY

echo "== leg 4 (part 1): --stop-server shuts the fleet daemon down"
"$SEARCHD" --submit "127.0.0.1:$DAEMON_PORT" --stop-server
for _ in $(seq 1 100); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  echo "FAIL: daemon still alive after --stop-server"; exit 1
fi
grep -q "service summary: accepted=3 completed=3 canceled=0 failed=0" "$WORK/daemon.out.err" || {
  echo "FAIL: fleet daemon summary does not account for 3 completed searches"
  grep "service summary" "$WORK/daemon.out.err" || true
  exit 1
}
echo "   OK: daemon exited on Shutdown frame, summary accounts for all 3 tenants"

# Shutdown also flushes the daemon's observability artifacts: the metrics
# snapshot must match what leg 5 read over the wire, and the trace must be
# complete Chrome trace-event JSON.
python3 - "$WORK/daemon_metrics.json" "$WORK/daemon_stats.out" "$WORK/daemon_trace.json" <<'PY'
import json, sys
master = {e["name"]: e["metrics"] for e in json.load(open(sys.argv[1]))["entries"]}
dispatched = sum(int(m["value"]) for name, m in master.items()
                 if name.startswith("net.items_dispatched_total{"))
wire = 0
for line in open(sys.argv[2]):
    parts = line.split()
    if len(parts) == 2 and parts[0].startswith("net.items_dispatched_total{"):
        wire += int(float(parts[1]))
assert dispatched == wire, f"metrics JSON dispatched {dispatched} != wire-read {wire}"
events = json.load(open(sys.argv[3]))
assert any(e.get("ph") == "X" for e in events), "daemon trace has no complete events"
assert any(e.get("cat") == "net" for e in events), "daemon trace has no net spans"
print(f"   OK: daemon metrics JSON matches wire stats (dispatched={dispatched});"
      f" trace holds {len(events)} events")
PY

echo "== leg 2: mid-stream cancel on a slow-evaluation daemon"
# A local analytic worker with injected per-genome delay keeps the search in
# flight long enough to land a CancelSearch frame mid-stream.
start_searchd "$WORK/slow_daemon.out" --worker analytic --eval-delay-ms 20
SLOW_PID=${PIDS[-1]}
SLOW_PORT=$(awk '{print $2}' "$WORK/slow_daemon.out")
CANCEL_RC=0
"$SEARCHD" --submit "127.0.0.1:$SLOW_PORT" --seed 5 --population 6 --evaluations 600 \
  --batch 3 --threads 1 --cancel-after-progress 2 \
  >"$WORK/cancel.out" 2>"$WORK/cancel.err" || CANCEL_RC=$?
if [[ "$CANCEL_RC" != 3 ]]; then
  echo "FAIL: canceled submission exited $CANCEL_RC (want 3)"; cat "$WORK/cancel.err"; exit 1
fi
if [[ -s "$WORK/cancel.out" ]]; then
  echo "FAIL: canceled search leaked a partial record to stdout"; cat "$WORK/cancel.out"; exit 1
fi
grep -q "search canceled: canceled by client" "$WORK/cancel.err" || {
  echo "FAIL: cancel leg missing the canceled-by-client notice"; cat "$WORK/cancel.err"; exit 1; }
echo "   OK: cancel stopped the search early, exit 3, no partial record"

echo "== leg 3: SIGTERM drain with a search in flight"
"$SEARCHD" --submit "127.0.0.1:$SLOW_PORT" --seed 9 --population 6 --evaluations 600 \
  --batch 3 --threads 1 >"$WORK/drain.out" 2>"$WORK/drain.err" &
DRAIN_CLIENT=$!
PIDS+=($DRAIN_CLIENT)
# Let the search get a generation or two in before the signal lands.
for _ in $(seq 1 100); do
  if grep -q "generation" "$WORK/drain.err" 2>/dev/null; then break; fi
  sleep 0.1
done
kill -TERM "$SLOW_PID"
DRAIN_RC=0
wait "$DRAIN_CLIENT" || DRAIN_RC=$?
if [[ "$DRAIN_RC" != 3 ]]; then
  echo "FAIL: drained submission exited $DRAIN_RC (want 3)"; cat "$WORK/drain.err"; exit 1
fi
grep -q "search canceled: daemon draining" "$WORK/drain.err" || {
  echo "FAIL: drain leg missing the daemon-draining notice"; cat "$WORK/drain.err"; exit 1; }
for _ in $(seq 1 100); do
  if ! kill -0 "$SLOW_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$SLOW_PID" 2>/dev/null; then
  echo "FAIL: slow daemon still alive after SIGTERM"; exit 1
fi
grep -q "service summary: accepted=2 completed=0 canceled=2 failed=0" "$WORK/slow_daemon.out.err" || {
  echo "FAIL: slow daemon summary does not account for both canceled searches"
  grep "service summary" "$WORK/slow_daemon.out.err" || true
  exit 1
}
echo "   OK: SIGTERM drained gracefully, every search accounted for"

echo "== leg 6: fleet cache shared across tenants (protocol v6)"
# Fresh cache-enabled workers and a fresh resident daemon.  Two tenants
# submit the *same* request, staggered: tenant A evaluates and publishes to
# the fleet tier; tenant B — its own search with its own empty dedup cache —
# settles the shared genomes from the workers' caches instead of
# re-evaluating them.  Whichever tenant reaches a genome second gets the
# hit, so the workers' summed hit counter must be positive either way.
start_worker "$WORK/cw1.out" --cache-bytes 1048576 "${WORKER_FLAGS[@]}"
CW_PORT1=$(awk '{print $2}' "$WORK/cw1.out")
start_worker "$WORK/cw2.out" --cache-bytes 1048576 "${WORKER_FLAGS[@]}"
CW_PORT2=$(awk '{print $2}' "$WORK/cw2.out")
start_searchd "$WORK/cache_daemon.out" \
  --workers "127.0.0.1:$CW_PORT1,127.0.0.1:$CW_PORT2" --max-searches 2 --dispatch-slots 2
CACHE_DAEMON_PORT=$(awk '{print $2}' "$WORK/cache_daemon.out")

"$SEARCHD" --seed 27 "${REQUEST_FLAGS[@]}" "${WORKER_FLAGS[@]}" \
  >"$WORK/ref_27.out" 2>"$WORK/ref_27.err"

"$SEARCHD" --submit "127.0.0.1:$CACHE_DAEMON_PORT" --seed 27 "${REQUEST_FLAGS[@]}" \
  >"$WORK/tenant_a.out" 2>"$WORK/tenant_a.err" &
TENANT_A=$!
PIDS+=($TENANT_A)
# Let tenant A finish (and publish) at least one generation before the
# identical tenant B arrives, so B's early lookups land on warm entries.
for _ in $(seq 1 100); do
  if grep -q "generation" "$WORK/tenant_a.err" 2>/dev/null; then break; fi
  sleep 0.1
done
"$SEARCHD" --submit "127.0.0.1:$CACHE_DAEMON_PORT" --seed 27 "${REQUEST_FLAGS[@]}" \
  >"$WORK/tenant_b.out" 2>"$WORK/tenant_b.err"
if ! wait "$TENANT_A"; then
  echo "FAIL: tenant A exited nonzero"; cat "$WORK/tenant_a.err"; exit 1
fi
diff_or_die "$WORK/ref_27.out" "$WORK/tenant_a.out" "tenant A (cache leg)"
diff_or_die "$WORK/ref_27.out" "$WORK/tenant_b.out" "tenant B (cache leg)"
"$SEARCHD" --stats "127.0.0.1:$CW_PORT1,127.0.0.1:$CW_PORT2" \
  >"$WORK/cw_stats.out" 2>"$WORK/cw_stats.err"
python3 - "$WORK/cw_stats.out" <<'PY'
import sys
counters = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) == 2 and not parts[0].startswith("STATS"):
        counters[parts[0]] = counters.get(parts[0], 0) + int(float(parts[1]))
hits = counters.get("fleet.cache_hits_total", 0)
entries = counters.get("fleet.cache_entries", 0)
assert entries > 0, "workers cached nothing despite --cache-bytes"
assert hits > 0, "identical tenants shared no evaluations through the fleet cache"
print(f"   OK: tenants shared {hits} cache hits across {entries} cached entries")
PY
echo "   OK: identical tenants byte-identical and served from the shared fleet cache"

echo "PASS: search service smoke matrix"
