#!/usr/bin/env bash
# Loopback integration matrix for the distributed evaluation service
# (ISSUE 4 + ISSUE 5 acceptance): start ecad_workerd daemons on 127.0.0.1
# and prove, for one seeded search, that every wire configuration produces
# stdout byte-identical to the in-process reference:
#
#   leg 1  streaming (protocol v3+, the default)  == local
#   leg 2  v2 batch mode (master pinned --max-protocol 2, single-response
#          batch frames, no item streaming)       == local
#   leg 3  unbatched (master pinned --max-protocol 1, per-genome frames)
#   leg 4  v3 master against v1-pinned workers    (version negotiation)
#   leg 5  degradation: one worker killed mid-fleet, search still matches
#   leg 6  heartbeat rejoin: kill a worker mid-search, restart it, and
#          require the master's log to show it rejoining via heartbeat ping
#          (not via a failed evaluation), with output still matching local
#   leg 7  streaming under slow-genome injection: a configurable-delay
#          analytic worker stalls ~1/3 of the genomes; the master's log must
#          show it consumed out-of-order item frames, output still matching
#   leg 8  overlapped evolution (--overlap): distributed overlapped search
#          matches the local overlapped reference byte for byte
#   leg 9  observability (protocol v5): a distributed run with --metrics-json
#          and --trace-file still matches local byte for byte; the master's
#          metrics JSON, the `stats models=` line on stdout, and the fleet's
#          GetStats answers (queried with `ecad_searchd --stats`) all agree
#          on exactly how many evaluations happened; the trace file is valid
#          Chrome trace-event JSON
#   leg 10 fleet result cache (protocol v6): against daemons started with
#          --cache-bytes, a second identical search (fresh master, empty
#          local cache) is served >= 90% from the fleet's content-addressed
#          cache with byte-identical stdout; a cache-only daemon fronting
#          the warm fleet answers lookups without ever evaluating; and a
#          --max-protocol 5 master interoperates with the cache-enabled
#          fleet without ever speaking the cache frames
#
# Usage: scripts/loopback_smoke.sh <build-dir>
# Set SMOKE_LOG_DIR to keep daemon/search logs (CI uploads them on failure).
set -euo pipefail

BUILD_DIR="${1:-build}"
WORKERD="$BUILD_DIR/tools/ecad_workerd"
SEARCHD="$BUILD_DIR/tools/ecad_searchd"
# Current wire generation; scripts/lint_wire_protocol.py checks this against
# kProtocolVersion in src/net/wire.h so the leg matrix can't silently rot.
# (v4 adds the search-service frames, exercised by scripts/service_smoke.sh;
# v5 adds the GetStats/StatsReport frames, exercised by leg 9 here.)
PROTOCOL_VERSION=6
if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
  WORK="$SMOKE_LOG_DIR"
  mkdir -p "$WORK"
  KEEP_WORK=1
else
  WORK="$(mktemp -d)"
  KEEP_WORK=0
fi
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  [[ "$KEEP_WORK" == 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

# Identical worker spec on every process — the determinism contract.
WORKER_FLAGS=(--worker accuracy --data-seed 7 --data-samples 400 --train-epochs 3 --eval-seed 42)
SEARCH_FLAGS=(--seed 11 --population 6 --evaluations 24 --batch 3 --threads 4 "${WORKER_FLAGS[@]}")

start_worker() {
  local out="$1"; shift
  "$WORKERD" --port 0 "$@" >"$out" 2>"$out.err" &
  PIDS+=($!)
  for _ in $(seq 1 100); do
    if grep -q LISTENING "$out" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: worker daemon did not come up"; cat "$out.err"; exit 1
}

wait_for_port_free() {
  # The restarted daemon needs the exact port back; SO_REUSEADDR makes this
  # near-instant, the loop just absorbs scheduler noise.
  local port="$1"
  for _ in $(seq 1 50); do
    if ! { exec 3<>"/dev/tcp/127.0.0.1/$port"; } 2>/dev/null; then return 0; fi
    exec 3>&- || true
    sleep 0.1
  done
  return 0
}

diff_or_die() {
  local reference="$1" candidate="$2" what="$3"
  if ! diff -u "$reference" "$candidate"; then
    echo "FAIL: $what diverged from local evaluation"
    exit 1
  fi
}

echo "== wire protocol v$PROTOCOL_VERSION loopback matrix"
echo "== starting two worker daemons on loopback"
start_worker "$WORK/w1.out" "${WORKER_FLAGS[@]}"
start_worker "$WORK/w2.out" "${WORKER_FLAGS[@]}"
PORT1=$(awk '{print $2}' "$WORK/w1.out")
PORT2=$(awk '{print $2}' "$WORK/w2.out")
echo "   workers on :$PORT1 and :$PORT2"

echo "== local (in-process) reference search"
"$SEARCHD" "${SEARCH_FLAGS[@]}" >"$WORK/local.out" 2>"$WORK/local.err"

echo "== leg 1: streaming distributed search (protocol v3+, the default)"
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" "${SEARCH_FLAGS[@]}" \
  >"$WORK/streaming.out" 2>"$WORK/streaming.err"
diff_or_die "$WORK/local.out" "$WORK/streaming.out" "streaming search"
# Nonzero frame counts, so the leg fails if streaming silently never engages.
grep -Eq "in [1-9][0-9]* batch frames" "$WORK/streaming.err" || {
  echo "FAIL: streaming leg did not report a nonzero batch-frame count"; exit 1; }
grep -Eq "[1-9][0-9]* streamed item frames" "$WORK/streaming.err" || {
  echo "FAIL: streaming leg did not report a nonzero streamed-item count"; exit 1; }
echo "   OK: streaming distributed == local, byte for byte ($(wc -l <"$WORK/local.out") lines)"

echo "== leg 2: v2 batch mode (master pinned --max-protocol 2)"
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" --max-protocol 2 "${SEARCH_FLAGS[@]}" \
  >"$WORK/batched.out" 2>"$WORK/batched.err"
diff_or_die "$WORK/local.out" "$WORK/batched.out" "v2-pinned batched search"
grep -Eq "in [1-9][0-9]* batch frames" "$WORK/batched.err" || {
  echo "FAIL: v2-pinned leg did not report a nonzero batch-frame count"; exit 1; }
grep -q "0 streamed item frames" "$WORK/batched.err" || {
  echo "FAIL: v2-pinned master still consumed streamed item frames"; exit 1; }
echo "   OK: v2 batch mode == streaming == local"

echo "== leg 3: unbatched search (master pinned to wire protocol v1)"
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" --max-protocol 1 "${SEARCH_FLAGS[@]}" \
  >"$WORK/unbatched.out" 2>"$WORK/unbatched.err"
diff_or_die "$WORK/local.out" "$WORK/unbatched.out" "unbatched (v1-pinned) search"
grep -q "0 batch frames" "$WORK/unbatched.err" || {
  echo "FAIL: v1-pinned master still sent batch frames"; exit 1; }
echo "   OK: unbatched (v1 wire) == batched == local"

echo "== leg 4: v3 master against v1- and v2-pinned workers (version negotiation)"
start_worker "$WORK/w3.out" --max-protocol 1 "${WORKER_FLAGS[@]}"
PORT3=$(awk '{print $2}' "$WORK/w3.out")
"$SEARCHD" --workers "127.0.0.1:$PORT3" "${SEARCH_FLAGS[@]}" \
  >"$WORK/v1worker.out" 2>"$WORK/v1worker.err"
diff_or_die "$WORK/local.out" "$WORK/v1worker.out" "v3-master/v1-worker search"
grep -q "0 batch frames" "$WORK/v1worker.err" || {
  echo "FAIL: master sent batch frames to a v1-pinned worker"; exit 1; }
start_worker "$WORK/w4.out" --max-protocol 2 "${WORKER_FLAGS[@]}"
PORT4=$(awk '{print $2}' "$WORK/w4.out")
"$SEARCHD" --workers "127.0.0.1:$PORT4" "${SEARCH_FLAGS[@]}" \
  >"$WORK/v2worker.out" 2>"$WORK/v2worker.err"
diff_or_die "$WORK/local.out" "$WORK/v2worker.out" "v3-master/v2-worker search"
grep -Eq "in [1-9][0-9]* batch frames" "$WORK/v2worker.err" || {
  echo "FAIL: v2-pinned worker leg did not use batch frames"; exit 1; }
grep -q "0 streamed item frames" "$WORK/v2worker.err" || {
  echo "FAIL: a v2-pinned worker somehow streamed item frames"; exit 1; }
echo "   OK: negotiation degraded per daemon (v1 -> per-genome, v2 -> batch), results match"

echo "== leg 5: degradation — kill worker 2, re-run distributed"
kill "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" "${SEARCH_FLAGS[@]}" \
  >"$WORK/degraded.out" 2>"$WORK/degraded.err"
diff_or_die "$WORK/local.out" "$WORK/degraded.out" "degraded search"
echo "   OK: search degraded to the surviving worker and still matches"

echo "== leg 6: heartbeat rejoin — kill and restart a worker mid-search"
# Slow (analytic) evaluations keep the search in flight long enough to
# bounce a daemon under it.  --eval-delay-ms never changes results, so the
# delay-free local reference below is still the byte-exact oracle.
HB_WORKER_SPEC=(--worker analytic)
HB_WORKER_FLAGS=(--eval-delay-ms 40 --threads 1 "${HB_WORKER_SPEC[@]}")
HB_SEARCH_FLAGS=(--seed 19 --population 6 --evaluations 120 --batch 4 --threads 4
                 --heartbeat-ms 100 "${HB_WORKER_SPEC[@]}")
start_worker "$WORK/hb1.out" "${HB_WORKER_FLAGS[@]}"
HB_PORT1=$(awk '{print $2}' "$WORK/hb1.out")
start_worker "$WORK/hb2.out" "${HB_WORKER_FLAGS[@]}"
HB_PORT2=$(awk '{print $2}' "$WORK/hb2.out")
HB2_PID=${PIDS[-1]}

"$SEARCHD" "${HB_SEARCH_FLAGS[@]}" >"$WORK/hb_local.out" 2>"$WORK/hb_local.err"

"$SEARCHD" --workers "127.0.0.1:$HB_PORT1,127.0.0.1:$HB_PORT2" "${HB_SEARCH_FLAGS[@]}" \
  >"$WORK/hb_dist.out" 2>"$WORK/hb_dist.err" &
SEARCH_PID=$!
PIDS+=($SEARCH_PID)

sleep 0.8  # let the search spin up and shard a few batches
echo "   killing worker on :$HB_PORT2 mid-search"
kill "$HB2_PID" 2>/dev/null || true
wait "$HB2_PID" 2>/dev/null || true
sleep 0.8  # long enough for the master to sideline the endpoint
echo "   restarting worker on :$HB_PORT2"
wait_for_port_free "$HB_PORT2"
"$WORKERD" --port "$HB_PORT2" "${HB_WORKER_FLAGS[@]}" >"$WORK/hb2b.out" 2>"$WORK/hb2b.err" &
PIDS+=($!)

if ! wait "$SEARCH_PID"; then
  echo "FAIL: heartbeat-leg search exited nonzero"; cat "$WORK/hb_dist.err"; exit 1
fi
diff_or_die "$WORK/hb_local.out" "$WORK/hb_dist.out" "heartbeat-leg search"
# The acceptance bar: the master's log must show the endpoint coming back
# through the background ping, not through a failed evaluation probing it.
if ! grep -q "rejoined the pool via heartbeat ping" "$WORK/hb_dist.err"; then
  echo "FAIL: master log shows no heartbeat rejoin; searchd stderr follows"
  cat "$WORK/hb_dist.err"
  exit 1
fi
if ! grep -Eq "[1-9][0-9]* heartbeat rejoins" "$WORK/hb_dist.err"; then
  echo "FAIL: searchd summary reports zero heartbeat rejoins"
  cat "$WORK/hb_dist.err"
  exit 1
fi
echo "   OK: worker rejoined via heartbeat ping and results still match"

echo "== leg 7: streaming under slow-genome injection (out-of-order item frames)"
# ~1/3 of the genomes stall 12x longer than the rest, so fast shard-mates
# stream back ahead of them: the master must consume item frames out of
# order.  Delays never change results, so the delay-free local reference is
# still the byte-exact oracle.
SG_WORKER_SPEC=(--worker analytic)
SG_WORKER_FLAGS=(--eval-delay-ms 5 --eval-slow-modulo 3 --eval-slow-delay-ms 60 --threads 4
                 "${SG_WORKER_SPEC[@]}")
SG_SEARCH_FLAGS=(--seed 29 --population 6 --evaluations 96 --batch 8 --threads 4
                 "${SG_WORKER_SPEC[@]}")
start_worker "$WORK/sg1.out" "${SG_WORKER_FLAGS[@]}"
SG_PORT1=$(awk '{print $2}' "$WORK/sg1.out")

"$SEARCHD" "${SG_SEARCH_FLAGS[@]}" >"$WORK/sg_local.out" 2>"$WORK/sg_local.err"
"$SEARCHD" --workers "127.0.0.1:$SG_PORT1" "${SG_SEARCH_FLAGS[@]}" \
  >"$WORK/sg_dist.out" 2>"$WORK/sg_dist.err"
diff_or_die "$WORK/sg_local.out" "$WORK/sg_dist.out" "slow-genome streaming search"
# The acceptance bar: slow genomes were overtaken on the wire, i.e. the
# master really consumed completion-ordered (not request-ordered) frames.
grep -Eq "\([1-9][0-9]* out-of-order\)" "$WORK/sg_dist.err" || {
  echo "FAIL: master log reports zero out-of-order item frames"
  cat "$WORK/sg_dist.err"
  exit 1
}
echo "   OK: out-of-order item frames consumed, results still match"

echo "== leg 8: overlapped evolution (--overlap) distributed == local"
OV_BASE_FLAGS=(--seed 31 --population 6 --evaluations 60 --batch 4 --threads 4
               "${SG_WORKER_SPEC[@]}")
"$SEARCHD" "${OV_BASE_FLAGS[@]}" --overlap >"$WORK/ov_local.out" 2>"$WORK/ov_local.err"
"$SEARCHD" --workers "127.0.0.1:$SG_PORT1" "${OV_BASE_FLAGS[@]}" --overlap \
  >"$WORK/ov_dist.out" 2>"$WORK/ov_dist.err"
diff_or_die "$WORK/ov_local.out" "$WORK/ov_dist.out" "overlapped search"
# Overlap must be a different (but internally consistent) trajectory, not a
# silent no-op: the same flags without --overlap may not produce the same
# byte stream.
"$SEARCHD" "${OV_BASE_FLAGS[@]}" >"$WORK/ov_seq.out" 2>"$WORK/ov_seq.err"
if diff -q "$WORK/ov_local.out" "$WORK/ov_seq.out" >/dev/null 2>&1; then
  echo "FAIL: overlapped trajectory is identical to the sequential one (overlap never engaged?)"
  exit 1
fi
echo "   OK: overlapped distributed == overlapped local, byte for byte"

echo "== leg 9: observability — metrics JSON, trace file, stats over the wire"
# Fresh workers so the fleet's counters start from zero and the cross-process
# accounting below can demand exact equality.
start_worker "$WORK/st1.out" "${WORKER_FLAGS[@]}"
ST_PORT1=$(awk '{print $2}' "$WORK/st1.out")
start_worker "$WORK/st2.out" "${WORKER_FLAGS[@]}"
ST_PORT2=$(awk '{print $2}' "$WORK/st2.out")
"$SEARCHD" --workers "127.0.0.1:$ST_PORT1,127.0.0.1:$ST_PORT2" "${SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/master_metrics.json" --trace-file "$WORK/master_trace.json" \
  >"$WORK/stats.out" 2>"$WORK/stats.err"
diff_or_die "$WORK/local.out" "$WORK/stats.out" "metrics+trace instrumented search"
echo "   OK: observability-instrumented run == local, byte for byte"

"$SEARCHD" --stats "127.0.0.1:$ST_PORT1,127.0.0.1:$ST_PORT2" \
  >"$WORK/fleet_stats.out" 2>"$WORK/fleet_stats.err"
grep -q "^STATS 127.0.0.1:$ST_PORT1 metrics=" "$WORK/fleet_stats.out" || {
  echo "FAIL: --stats printed no report header for :$ST_PORT1"; cat "$WORK/fleet_stats.out"; exit 1; }
grep -q "^STATS 127.0.0.1:$ST_PORT2 metrics=" "$WORK/fleet_stats.out" || {
  echo "FAIL: --stats printed no report header for :$ST_PORT2"; cat "$WORK/fleet_stats.out"; exit 1; }

# Exact three-way accounting: the `stats models=` line on stdout, the
# master's metrics JSON, and the fleet's wire-served counters must all name
# the same number of evaluations.  Worker-side, a dispatched item is either
# evaluated (completed/failed) or collapsed onto a twin by batch dedup.
python3 - "$WORK/stats.out" "$WORK/master_metrics.json" "$WORK/fleet_stats.out" <<'PY'
import json, re, sys

models = int(re.search(r"^stats models=(\d+) ", open(sys.argv[1]).read(), re.M).group(1))

master = {e["name"]: e["metrics"] for e in json.load(open(sys.argv[2]))["entries"]}
dispatched = sum(int(m["value"]) for name, m in master.items()
                 if name.startswith("net.items_dispatched_total{"))
requeued = int(master.get("net.requeued_items_total", {"value": 0})["value"])
lookups = int(master["evo.cache_lookups_total"]["value"])
hits = int(master["evo.cache_hits_total"]["value"])
misses = int(master["evo.cache_misses_total"]["value"])

fleet = 0
for line in open(sys.argv[3]):
    parts = line.split()
    if parts and parts[0] in ("core.evals_completed_total", "core.evals_failed_total",
                              "core.dedup_collapsed_total"):
        fleet += int(float(parts[1]))

assert hits + misses == lookups, f"cache: {hits}+{misses} != {lookups}"
assert requeued == 0, f"unexpected requeues in a healthy fleet: {requeued}"
assert dispatched == models, f"master dispatched {dispatched} != stdout models {models}"
assert fleet == dispatched, f"fleet-side evals {fleet} != master dispatched {dispatched}"
assert "core.eval_seconds" not in master, "one-shot master ran local evaluations?"
print(f"   OK: models={models} == dispatched == fleet-side evals;"
      f" cache {hits}+{misses}=={lookups}")
PY

# The trace is complete JSON after a clean exit, and carries both the
# master's shard spans and the engine's generation spans.
python3 - "$WORK/master_trace.json" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
cats = {e.get("cat") for e in events}
assert any(e.get("ph") == "X" for e in events), "no complete (ph=X) events"
assert "net" in cats and "evo" in cats, f"missing trace categories, saw {sorted(cats)}"
print(f"   OK: trace file holds {len(events)} events across {sorted(cats)}")
PY

echo "== leg 10: fleet result cache (protocol v6) — warm rerun served from cache"
# Fresh daemons with the cache tier enabled.  The cold run publishes every
# fresh outcome to every daemon (stores broadcast); the warm rerun is a
# brand-new master process with an empty local dedup cache, so every unique
# genome it looks up must settle from the fleet tier instead of dispatching.
# Daemon counters accumulate across runs, so all daemon-side assertions are
# on deltas between --stats snapshots.
start_worker "$WORK/fc1.out" --cache-bytes 1048576 "${WORKER_FLAGS[@]}"
FC_PORT1=$(awk '{print $2}' "$WORK/fc1.out")
start_worker "$WORK/fc2.out" --cache-bytes 1048576 "${WORKER_FLAGS[@]}"
FC_PORT2=$(awk '{print $2}' "$WORK/fc2.out")
FC_WORKERS="127.0.0.1:$FC_PORT1,127.0.0.1:$FC_PORT2"

"$SEARCHD" --workers "$FC_WORKERS" "${SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/fc_cold.json" >"$WORK/fc_cold.out" 2>"$WORK/fc_cold.err"
diff_or_die "$WORK/local.out" "$WORK/fc_cold.out" "cold fleet-cache search"
"$SEARCHD" --stats "$FC_WORKERS" >"$WORK/fc_stats_cold.out" 2>"$WORK/fc_stats_cold.err"

"$SEARCHD" --workers "$FC_WORKERS" "${SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/fc_warm.json" >"$WORK/fc_warm.out" 2>"$WORK/fc_warm.err"
diff_or_die "$WORK/local.out" "$WORK/fc_warm.out" "warm fleet-cache search"
"$SEARCHD" --stats "$FC_WORKERS" >"$WORK/fc_stats_warm.out" 2>"$WORK/fc_stats_warm.err"

python3 - "$WORK/fc_cold.json" "$WORK/fc_warm.json" \
  "$WORK/fc_stats_cold.out" "$WORK/fc_stats_warm.out" <<'PY'
import json, sys

def master_counter(path, name):
    entries = {e["name"]: e["metrics"] for e in json.load(open(path))["entries"]}
    return int(entries.get(name, {"value": 0})["value"])

def fleet_counter(path, name):
    return sum(int(float(line.split()[1])) for line in open(path)
               if line.split() and line.split()[0] == name)

cold_json, warm_json, cold_stats, warm_stats = sys.argv[1:5]
assert master_counter(cold_json, "net.fleet_cache_hits_total") == 0, \
    "cold run hit a freshly started cache?"
assert master_counter(cold_json, "net.fleet_cache_publishes_total") > 0, \
    "cold run published nothing to the fleet cache"
hits = master_counter(warm_json, "net.fleet_cache_hits_total")
misses = master_counter(warm_json, "net.fleet_cache_misses_total")
assert hits + misses > 0, "warm run never consulted the fleet cache"
rate = hits / (hits + misses)
assert rate >= 0.9, f"warm run hit rate {rate:.2%} < 90% ({hits}/{hits + misses})"
served = (fleet_counter(warm_stats, "fleet.cache_hits_total")
          - fleet_counter(cold_stats, "fleet.cache_hits_total"))
assert served > 0, "daemons report zero cache hits for the warm run"
# The warm master dispatched (almost) nothing: the daemons' fresh-evaluation
# counters may not grow by more than the warm run's miss count.
def evals(path):
    return (fleet_counter(path, "core.evals_completed_total")
            + fleet_counter(path, "core.evals_failed_total")
            + fleet_counter(path, "core.dedup_collapsed_total"))
fresh = evals(warm_stats) - evals(cold_stats)
assert fresh <= misses, \
    f"warm run cost {fresh} fresh evaluations but reported only {misses} misses"
print(f"   OK: warm rerun {rate:.0%} cache-served ({hits}/{hits + misses}), "
      f"{fresh} fresh evaluations, daemons answered {served} hits")
PY
echo "   OK: warm rerun == local, byte for byte, served from the fleet cache"

echo "== leg 10b: cache-only daemon fronts the warm fleet"
# A --cache-only daemon rejects evaluation frames, so it can satisfy the
# search only through CacheLookup answers (its own, all misses — it was not
# up for the cold run's publishes) and by not being dispatched to: a fully
# cache-served search never sends it an EvalRequest at all.
start_worker "$WORK/fco.out" --cache-only --cache-bytes 1048576 "${WORKER_FLAGS[@]}"
FCO_PORT=$(awk '{print $2}' "$WORK/fco.out")
"$SEARCHD" --workers "127.0.0.1:$FCO_PORT,$FC_WORKERS" "${SEARCH_FLAGS[@]}" \
  >"$WORK/fco.out2" 2>"$WORK/fco.err2"
diff_or_die "$WORK/local.out" "$WORK/fco.out2" "cache-only-fronted search"
"$SEARCHD" --stats "127.0.0.1:$FCO_PORT" >"$WORK/fco_stats.out" 2>"$WORK/fco_stats.err"
python3 - "$WORK/fco_stats.out" <<'PY'
import sys
counters = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) == 2 and not parts[0].startswith("STATS"):
        counters[parts[0]] = counters.get(parts[0], 0) + int(float(parts[1]))
answered = counters.get("fleet.cache_hits_total", 0) + counters.get("fleet.cache_misses_total", 0)
evaluated = sum(v for k, v in counters.items() if k.startswith("core.evals_"))
assert answered > 0, "cache-only daemon answered no lookups"
assert evaluated == 0, f"cache-only daemon evaluated {evaluated} genomes"
print(f"   OK: cache-only daemon answered {answered} lookup keys, evaluated 0 genomes")
PY

echo "== leg 10c: v5-pinned master against the cache-enabled fleet (interop)"
"$SEARCHD" --workers "$FC_WORKERS" --max-protocol 5 "${SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/fc_v5.json" >"$WORK/fc_v5.out" 2>"$WORK/fc_v5.err"
diff_or_die "$WORK/local.out" "$WORK/fc_v5.out" "v5-pinned search against cache-enabled fleet"
python3 - "$WORK/fc_v5.json" <<'PY'
import json, sys
entries = {e["name"] for e in json.load(open(sys.argv[1]))["entries"]}
spoken = sorted(e for e in entries if e.startswith("net.fleet_cache_"))
assert not spoken, f"v5-pinned master spoke cache frames: {spoken}"
print("   OK: v5-pinned master negotiated the cache tier away, results still match")
PY

echo "PASS: loopback smoke matrix"
