#!/usr/bin/env bash
# Loopback integration smoke for the distributed evaluation service
# (ISSUE 3 acceptance): start two ecad_workerd daemons on 127.0.0.1,
# run the same seeded search twice — once sharded across the daemons, once
# with the in-process worker — and require byte-identical stdout.
# Also verifies degradation: kill one daemon and re-run distributed; the
# search must still complete and still match.
#
# Usage: scripts/loopback_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR="${1:-build}"
WORKERD="$BUILD_DIR/tools/ecad_workerd"
SEARCHD="$BUILD_DIR/tools/ecad_searchd"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Identical worker spec on every process — the determinism contract.
WORKER_FLAGS=(--worker accuracy --data-seed 7 --data-samples 400 --train-epochs 3 --eval-seed 42)
SEARCH_FLAGS=(--seed 11 --population 6 --evaluations 24 --batch 3 --threads 4 "${WORKER_FLAGS[@]}")

start_worker() {
  local out="$1"
  "$WORKERD" --port 0 "${WORKER_FLAGS[@]}" >"$out" 2>"$out.err" &
  PIDS+=($!)
  for _ in $(seq 1 100); do
    if grep -q LISTENING "$out" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: worker daemon did not come up"; cat "$out.err"; exit 1
}

echo "== starting two worker daemons on loopback"
start_worker "$WORK/w1.out"
start_worker "$WORK/w2.out"
PORT1=$(awk '{print $2}' "$WORK/w1.out")
PORT2=$(awk '{print $2}' "$WORK/w2.out")
echo "   workers on :$PORT1 and :$PORT2"

echo "== local (in-process) reference search"
"$SEARCHD" "${SEARCH_FLAGS[@]}" >"$WORK/local.out"

echo "== distributed search across both daemons"
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" "${SEARCH_FLAGS[@]}" >"$WORK/dist.out"

if ! diff -u "$WORK/local.out" "$WORK/dist.out"; then
  echo "FAIL: distributed search diverged from local evaluation"
  exit 1
fi
echo "   OK: distributed == local, byte for byte ($(wc -l <"$WORK/local.out") lines)"

echo "== degradation: kill worker 2, re-run distributed (worker 1 only survives)"
kill "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true
"$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" "${SEARCH_FLAGS[@]}" \
  >"$WORK/degraded.out"
if ! diff -u "$WORK/local.out" "$WORK/degraded.out"; then
  echo "FAIL: degraded search diverged from local evaluation"
  exit 1
fi
echo "   OK: search degraded to the surviving worker and still matches"

echo "PASS: loopback smoke"
