#!/usr/bin/env bash
# Crash-safety smoke matrix (crash-safe search acceptance): kill searches at
# the worst possible moments and prove the checkpoint/resume machinery brings
# every one of them back bit-identical to an uninterrupted run:
#
#   leg 1  deterministic crash injection: ECAD_CRASH_AFTER=checkpoint:3
#          aborts the one-shot search right after its 3rd durable snapshot
#          (exit 87); --resume completes it byte-identical to the clean run
#   leg 2  kill -9 mid-search: a slow one-shot search with --checkpoint-dir
#          is SIGKILLed mid-flight; --resume (with a delay-free worker, so
#          timing differs) still reproduces the clean record byte for byte
#   leg 3  torn snapshot: ECAD_CRASH_AFTER=checkpoint_tmp:2 dies after the
#          tmp file is durable but before the rename — the classic torn
#          write.  The leftover .tmp must never be loaded: --resume continues
#          from the previous intact snapshot and still matches byte for byte
#   leg 4  fault-injected wire: ECAD_FAULT drops/truncates a seeded fraction
#          of the master's socket traffic against a live two-daemon fleet;
#          the retry/cooldown/requeue paths must absorb every fault with the
#          search completing byte-identical to the in-process reference
#   leg 5  serve-mode kill -9 + journal replay: a resident daemon with one
#          search mid-flight (checkpointed) and one accepted-but-queued
#          (journal only) is SIGKILLed; a restart with --resume re-admits
#          both through the FairShareGate and writes each final record —
#          byte-identical to standalone runs of the same requests
#   leg 6  persistent fleet cache: ecad_workerd --cache-file snapshots its
#          LRU on SIGTERM and reloads it at startup, so a restarted daemon
#          serves a repeat search from cache instead of re-evaluating
#
# Usage: scripts/chaos_smoke.sh <build-dir>
# Set SMOKE_LOG_DIR to keep daemon/search logs and checkpoint dirs (CI
# uploads them on failure).
set -euo pipefail

BUILD_DIR="${1:-build}"
WORKERD="$BUILD_DIR/tools/ecad_workerd"
SEARCHD="$BUILD_DIR/tools/ecad_searchd"
# Engine snapshot format generation; scripts/lint_wire_protocol.py checks
# this against kSnapshotFormatVersion in src/util/snapshot_io.h so the
# matrix can't silently drift from the code.
SNAPSHOT_VERSION=1
CRASH_EXIT=87  # util::crash_point's _Exit code
if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
  WORK="$SMOKE_LOG_DIR"
  mkdir -p "$WORK"
  KEEP_WORK=1
else
  WORK="$(mktemp -d)"
  KEEP_WORK=0
fi
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  [[ "$KEEP_WORK" == 1 ]] || rm -rf "$WORK"
}
trap cleanup EXIT

diff_or_die() {
  local reference="$1" candidate="$2" what="$3"
  if ! diff -u "$reference" "$candidate"; then
    echo "FAIL: $what diverged from the uninterrupted run"
    exit 1
  fi
}

wait_for_file() {
  local path="$1" what="$2"
  for _ in $(seq 1 200); do
    if [[ -s "$path" ]]; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: $what ($path) never appeared"; exit 1
}

wait_for_listening() {
  local out="$1" what="$2"
  for _ in $(seq 1 100); do
    if grep -q LISTENING "$out" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: $what did not come up"; cat "$out.err" 2>/dev/null || true; exit 1
}

echo "== chaos smoke (engine snapshot format v$SNAPSHOT_VERSION)"

# A medium search against the delay-free analytic worker: long enough for
# several generation boundaries, fast enough to replay many times.
CHAOS_FLAGS=(--seed 33 --population 6 --evaluations 120 --batch 4 --threads 2
             --worker analytic)

echo "== clean reference run (uninterrupted, no checkpointing)"
"$SEARCHD" "${CHAOS_FLAGS[@]}" >"$WORK/clean.out" 2>"$WORK/clean.err"

echo "== leg 1: deterministic crash after the 3rd durable checkpoint"
CKPT1="$WORK/ckpt_leg1"
RC=0
ECAD_CRASH_AFTER=checkpoint:3 "$SEARCHD" "${CHAOS_FLAGS[@]}" --checkpoint-dir "$CKPT1" \
  >"$WORK/leg1_crash.out" 2>"$WORK/leg1_crash.err" || RC=$?
if [[ "$RC" != "$CRASH_EXIT" ]]; then
  echo "FAIL: crash injection exited $RC (want $CRASH_EXIT)"; cat "$WORK/leg1_crash.err"; exit 1
fi
grep -q "injected crash at 'checkpoint'" "$WORK/leg1_crash.err" || {
  echo "FAIL: crash leg missing the crash_point notice"; cat "$WORK/leg1_crash.err"; exit 1; }
[[ -s "$CKPT1/search_1.ckpt" ]] || { echo "FAIL: no checkpoint survived the crash"; exit 1; }
"$SEARCHD" --resume --checkpoint-dir "$CKPT1" --worker analytic \
  >"$WORK/leg1_resumed.out" 2>"$WORK/leg1_resumed.err"
diff_or_die "$WORK/clean.out" "$WORK/leg1_resumed.out" "crash-injected + resumed search"
[[ -e "$CKPT1/search_1.done" ]] || { echo "FAIL: resumed search left no .done marker"; exit 1; }
echo "   OK: crashed after checkpoint 3, resumed byte-identical, sealed with .done"

echo "== leg 2: kill -9 mid-search, resume with a different worker tempo"
CKPT2="$WORK/ckpt_leg2"
"$SEARCHD" "${CHAOS_FLAGS[@]}" --eval-delay-ms 30 --checkpoint-dir "$CKPT2" \
  >"$WORK/leg2_killed.out" 2>"$WORK/leg2_killed.err" &
VICTIM=$!
PIDS+=($VICTIM)
wait_for_file "$CKPT2/search_1.ckpt" "first checkpoint of the doomed search"
sleep 0.5  # let a couple more generations land
kill -9 "$VICTIM"
wait "$VICTIM" 2>/dev/null || true
# Resume delay-free: wall-clock timing must be irrelevant to the record.
"$SEARCHD" --resume --checkpoint-dir "$CKPT2" --worker analytic \
  >"$WORK/leg2_resumed.out" 2>"$WORK/leg2_resumed.err"
diff_or_die "$WORK/clean.out" "$WORK/leg2_resumed.out" "SIGKILLed + resumed search"
echo "   OK: kill -9 mid-search, resumed byte-identical"

echo "== leg 3: torn snapshot — crash between tmp fsync and rename"
CKPT3="$WORK/ckpt_leg3"
RC=0
ECAD_CRASH_AFTER=checkpoint_tmp:2 "$SEARCHD" "${CHAOS_FLAGS[@]}" --checkpoint-dir "$CKPT3" \
  >"$WORK/leg3_crash.out" 2>"$WORK/leg3_crash.err" || RC=$?
if [[ "$RC" != "$CRASH_EXIT" ]]; then
  echo "FAIL: torn-write injection exited $RC (want $CRASH_EXIT)"; cat "$WORK/leg3_crash.err"; exit 1
fi
[[ -s "$CKPT3/search_1.ckpt.tmp" ]] || {
  echo "FAIL: torn-write leg left no orphaned .tmp file"; ls -la "$CKPT3"; exit 1; }
[[ -s "$CKPT3/search_1.ckpt" ]] || {
  echo "FAIL: the previous intact checkpoint is gone"; ls -la "$CKPT3"; exit 1; }
"$SEARCHD" --resume --checkpoint-dir "$CKPT3" --worker analytic \
  >"$WORK/leg3_resumed.out" 2>"$WORK/leg3_resumed.err"
diff_or_die "$WORK/clean.out" "$WORK/leg3_resumed.out" "torn-snapshot + resumed search"
echo "   OK: orphaned .tmp ignored, resumed from the intact snapshot, byte-identical"

echo "== leg 4: seeded socket faults against a live fleet"
# Identical worker spec on every process — the determinism contract.
NET_WORKER_FLAGS=(--worker accuracy --data-seed 7 --data-samples 400 --train-epochs 3
                  --eval-seed 42)
NET_SEARCH_FLAGS=(--seed 11 --population 6 --evaluations 24 --batch 3 --threads 4
                  "${NET_WORKER_FLAGS[@]}")
start_worker() {
  local out="$1"; shift
  "$WORKERD" --port 0 "$@" >"$out" 2>"$out.err" &
  PIDS+=($!)
  wait_for_listening "$out" "worker daemon"
}
start_worker "$WORK/w1.out" "${NET_WORKER_FLAGS[@]}"
start_worker "$WORK/w2.out" "${NET_WORKER_FLAGS[@]}"
PORT1=$(awk '{print $2}' "$WORK/w1.out")
PORT2=$(awk '{print $2}' "$WORK/w2.out")
"$SEARCHD" "${NET_SEARCH_FLAGS[@]}" >"$WORK/net_local.out" 2>"$WORK/net_local.err"
# Modest probabilities: every fault must be absorbed by retry/cooldown/
# requeue, never surfaced.  The seed makes a CI failure replayable verbatim.
ECAD_FAULT="seed:33,drop:0.02,short_write:0.02,delay_ms:1" \
  "$SEARCHD" --workers "127.0.0.1:$PORT1,127.0.0.1:$PORT2" "${NET_SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/faulty.json" >"$WORK/faulty.out" 2>"$WORK/faulty.err"
diff_or_die "$WORK/net_local.out" "$WORK/faulty.out" "fault-injected search"
python3 - "$WORK/faulty.json" <<'PY'
import json, sys
entries = {e["name"]: e["metrics"] for e in json.load(open(sys.argv[1]))["entries"]}
injected = sum(int(m["value"]) for name, m in entries.items()
               if name.startswith("net.faults_injected_total"))
assert injected > 0, "ECAD_FAULT was set but zero faults were injected"
print(f"   OK: {injected} socket faults injected and absorbed, results identical")
PY
echo "   OK: fault-injected distributed search == local, byte for byte"

echo "== leg 5: serve-mode kill -9 — snapshot + journal both replayed"
CKPT5="$WORK/ckpt_leg5"
"$SEARCHD" --serve --port 0 --worker analytic --eval-delay-ms 20 --max-searches 1 \
  --checkpoint-dir "$CKPT5" >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
DAEMON=$!
PIDS+=($DAEMON)
wait_for_listening "$WORK/daemon.out" "search daemon"
DPORT=$(awk '{print $2}' "$WORK/daemon.out")
# Search 1 runs (slowly, checkpointing); search 2 is accepted but queued
# behind --max-searches 1, so it exists only in the submission journal.
"$SEARCHD" --submit "127.0.0.1:$DPORT" --seed 41 --population 6 --evaluations 600 \
  --batch 3 --threads 1 >"$WORK/sub1.out" 2>"$WORK/sub1.err" &
SUB1=$!
PIDS+=($SUB1)
wait_for_file "$CKPT5/search_1.ckpt" "checkpoint of the in-flight tenant"
"$SEARCHD" --submit "127.0.0.1:$DPORT" --seed 43 --population 6 --evaluations 18 \
  --batch 3 --threads 1 >"$WORK/sub2.out" 2>"$WORK/sub2.err" &
SUB2=$!
PIDS+=($SUB2)
for _ in $(seq 1 100); do
  if grep -q "accepted by" "$WORK/sub2.err" 2>/dev/null; then break; fi
  sleep 0.1
done
grep -q "accepted by" "$WORK/sub2.err" || { echo "FAIL: tenant 2 was never accepted"; exit 1; }
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
# Both clients die with the daemon; that's the point.
wait "$SUB1" 2>/dev/null || true
wait "$SUB2" 2>/dev/null || true

# Standalone references for both requests (delay-free: tempo-independent).
"$SEARCHD" --seed 41 --population 6 --evaluations 600 --batch 3 --threads 1 --worker analytic \
  >"$WORK/ref_41.out" 2>"$WORK/ref_41.err"
"$SEARCHD" --seed 43 --population 6 --evaluations 18 --batch 3 --threads 1 --worker analytic \
  >"$WORK/ref_43.out" 2>"$WORK/ref_43.err"

"$SEARCHD" --serve --port 0 --worker analytic --resume --checkpoint-dir "$CKPT5" \
  >"$WORK/daemon2.out" 2>"$WORK/daemon2.err" &
DAEMON2=$!
PIDS+=($DAEMON2)
wait_for_listening "$WORK/daemon2.out" "restarted search daemon"
grep -q "re-admitted 2 unfinished search(es)" "$WORK/daemon2.err" || {
  echo "FAIL: restarted daemon did not re-admit both searches"
  cat "$WORK/daemon2.err"; exit 1; }
wait_for_file "$CKPT5/search_1.record" "resumed record of the in-flight tenant"
wait_for_file "$CKPT5/search_2.record" "resumed record of the journal-only tenant"
diff_or_die "$WORK/ref_41.out" "$CKPT5/search_1.record" "snapshot-resumed tenant (seed 41)"
diff_or_die "$WORK/ref_43.out" "$CKPT5/search_2.record" "journal-replayed tenant (seed 43)"
kill "$DAEMON2" 2>/dev/null || true
wait "$DAEMON2" 2>/dev/null || true
echo "   OK: snapshot tenant resumed mid-flight, journal tenant replayed from scratch"

echo "== leg 6: persistent fleet cache survives a worker restart"
CACHE_FILE="$WORK/fleet_cache.bin"
start_worker "$WORK/cw1.out" --cache-bytes 1048576 --cache-file "$CACHE_FILE" \
  "${NET_WORKER_FLAGS[@]}"
CW_PID=${PIDS[-1]}
CW_PORT=$(awk '{print $2}' "$WORK/cw1.out")
"$SEARCHD" --workers "127.0.0.1:$CW_PORT" "${NET_SEARCH_FLAGS[@]}" \
  >"$WORK/cache_cold.out" 2>"$WORK/cache_cold.err"
diff_or_die "$WORK/net_local.out" "$WORK/cache_cold.out" "cold cache-file search"
kill -TERM "$CW_PID"
wait "$CW_PID" 2>/dev/null || true
[[ -s "$CACHE_FILE" ]] || { echo "FAIL: SIGTERM left no cache snapshot on disk"; exit 1; }
start_worker "$WORK/cw2.out" --cache-bytes 1048576 --cache-file "$CACHE_FILE" \
  "${NET_WORKER_FLAGS[@]}"
CW_PORT2=$(awk '{print $2}' "$WORK/cw2.out")
grep -Eq "reloaded [1-9][0-9]* fleet-cache entries" "$WORK/cw2.out.err" || {
  echo "FAIL: restarted worker reloaded nothing from the cache file"
  cat "$WORK/cw2.out.err"; exit 1; }
"$SEARCHD" --workers "127.0.0.1:$CW_PORT2" "${NET_SEARCH_FLAGS[@]}" \
  --metrics-json "$WORK/cache_warm.json" >"$WORK/cache_warm.out" 2>"$WORK/cache_warm.err"
diff_or_die "$WORK/net_local.out" "$WORK/cache_warm.out" "warm cache-file search"
python3 - "$WORK/cache_warm.json" <<'PY'
import json, sys
entries = {e["name"]: e["metrics"] for e in json.load(open(sys.argv[1]))["entries"]}
hits = int(entries.get("net.fleet_cache_hits_total", {"value": 0})["value"])
misses = int(entries.get("net.fleet_cache_misses_total", {"value": 0})["value"])
assert hits + misses > 0, "warm run never consulted the fleet cache"
rate = hits / (hits + misses)
assert rate >= 0.9, f"warm-restart hit rate {rate:.2%} < 90% ({hits}/{hits + misses})"
print(f"   OK: restarted worker served {rate:.0%} from the reloaded cache "
      f"({hits}/{hits + misses})")
PY
echo "   OK: cache file reloaded across restart, repeat search served warm"

echo "PASS: chaos smoke matrix"
