// ecad_searchd — search driver for the distributed evaluation service
// (paper §III-A: the Master distributing the co-design population).
//
//   ecad_searchd --seed 3 --evaluations 48                  # local, in-process
//   ecad_searchd --workers 127.0.0.1:7001,127.0.0.1:7002
//                --seed 3 --evaluations 48                  # sharded across daemons
//
// Stdout is a deterministic record of the search (candidate keys + all
// non-timing result fields at full double precision), so two runs with the
// same seed — one local, one distributed — must produce byte-identical
// output.  The CI loopback smoke job diffs exactly that.  Timing and
// progress go to stderr via the logger.
#include <cstdio>
#include <iostream>

#include "core/master.h"
#include "daemon_common.h"
#include "net/remote_worker.h"
#include "util/logging.h"

namespace {

void print_usage() {
  std::cout <<
      "usage: ecad_searchd [options]\n"
      "  --workers LIST    comma-separated host:port endpoints; empty = evaluate locally\n"
      "  --fallback-local  degrade to in-process evaluation if no daemon is reachable\n"
      "  --ping            just probe --workers and print the live count\n"
      "  --shutdown-workers  after the search (or alone), ask daemons to exit\n"
      "  --seed N          search seed (default 1)\n"
      "  --population N    population size (default 8)\n"
      "  --evaluations N   unique-candidate budget (default 32)\n"
      "  --batch N         offspring per steady-state step (default 4)\n"
      "  --fitness NAME    fitness registry entry (default accuracy)\n"
      "  --threads N       Master dispatch threads (default 2)\n"
      "  --no-hw-search    freeze the hardware half of the genome\n"
      "  --overlap         overlapped evolution: breed the next batch while the\n"
      "                    previous one is still in flight (deterministic, but a\n"
      "                    different trajectory than the default sequential mode)\n"
      "  --inflight N      in-flight batches the overlapped mode pipelines (default 2)\n"
      "  --request-timeout-ms N   per-evaluation network deadline (default 120000)\n"
      "  --max-protocol V  highest wire protocol version to offer (default 3);\n"
      "                    3 streams per-item result frames, 2 pins v2 batch\n"
      "                    responses, 1 forces per-genome EvalRequest exchanges\n"
      "  --heartbeat-ms N  background ping period for sidelined endpoints\n"
      "                    (default 250; 0 disables heartbeats)\n"
      "  --worker/--data-*/--train-epochs/--eval-seed   local worker spec\n"
      "                    (must match the daemons' flags for bit-exact results)\n"
      "  --log-level L     trace|debug|info|warn|error|off\n";
}

void print_result_fields(const ecad::evo::EvalResult& result) {
  // Everything except eval_seconds, which measures wall clock and is the one
  // legitimately nondeterministic field.
  std::printf(
      " accuracy=%.17g outputs_per_second=%.17g latency_seconds=%.17g"
      " potential_gflops=%.17g effective_gflops=%.17g hw_efficiency=%.17g"
      " power_watts=%.17g fmax_mhz=%.17g parameters=%.17g flops_per_sample=%.17g feasible=%d",
      result.accuracy, result.outputs_per_second, result.latency_seconds,
      result.potential_gflops, result.effective_gflops, result.hw_efficiency, result.power_watts,
      result.fmax_mhz, result.parameters, result.flops_per_sample, result.feasible ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  try {
    const tools::ArgParser args(argc, argv);
    if (args.get_flag("help")) {
      print_usage();
      return 0;
    }
    if (args.has("log-level")) {
      util::set_log_level(util::parse_log_level(args.get("log-level", "info")));
    }
    util::set_log_identity("searchd");

    const std::vector<net::Endpoint> endpoints =
        net::parse_endpoint_list(args.get("workers", ""));

    if (args.get_flag("ping")) {
      net::RemoteWorkerOptions options;
      options.endpoints = endpoints;
      const net::RemoteWorker remote(options);
      std::printf("ALIVE %zu/%zu\n", remote.ping_all(), endpoints.size());
      return 0;
    }

    const tools::WorkerConfig worker_config = tools::worker_config_from_args(args);
    const tools::WorkerBundle bundle = tools::make_worker(worker_config);

    core::SearchRequest request;
    request.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    request.evolution.population_size = static_cast<std::size_t>(args.get_int("population", 8));
    request.evolution.max_evaluations = static_cast<std::size_t>(args.get_int("evaluations", 32));
    // Fixed batch size: with the default (0 = pool width) the search
    // trajectory would depend on the local core count, breaking cross-run
    // comparability.
    request.evolution.batch_size = static_cast<std::size_t>(args.get_int("batch", 4));
    request.fitness = args.get("fitness", "accuracy");
    request.threads = static_cast<std::size_t>(args.get_int("threads", 2));
    request.space.search_hardware = !args.get_flag("no-hw-search");
    request.evolution.overlap_generations = args.get_flag("overlap");
    request.evolution.max_inflight_batches =
        static_cast<std::size_t>(args.get_int("inflight", 2));

    std::unique_ptr<net::RemoteWorker> remote;
    const core::Worker* worker = bundle.worker.get();
    if (!endpoints.empty()) {
      net::RemoteWorkerOptions options;
      options.endpoints = endpoints;
      options.request_timeout_ms =
          static_cast<int>(args.get_int("request-timeout-ms", 120000));
      const long long max_protocol = args.get_int("max-protocol", net::kProtocolVersion);
      if (max_protocol < net::kMinProtocolVersion || max_protocol > net::kProtocolVersion) {
        throw std::invalid_argument("--max-protocol " + std::to_string(max_protocol) +
                                    " out of range (" +
                                    std::to_string(net::kMinProtocolVersion) + "-" +
                                    std::to_string(net::kProtocolVersion) + ")");
      }
      options.max_protocol = static_cast<std::uint16_t>(max_protocol);
      options.heartbeat_interval_ms = static_cast<int>(args.get_int("heartbeat-ms", 250));
      if (args.get_flag("fallback-local")) options.fallback = bundle.worker.get();
      remote = std::make_unique<net::RemoteWorker>(std::move(options));
      worker = remote.get();
    }

    core::Master master;
    const evo::EvolutionResult result = master.search(*worker, request);

    // Deterministic record: one line per unique evaluated candidate, in
    // evaluation order, then the winner.
    for (std::size_t i = 0; i < result.history.size(); ++i) {
      const evo::Candidate& candidate = result.history[i];
      std::printf("cand %zu %s fitness=%.17g", i, candidate.genome.key().c_str(),
                  candidate.fitness);
      print_result_fields(candidate.result);
      std::printf("\n");
    }
    std::printf("best %s fitness=%.17g\n", result.best.genome.key().c_str(),
                result.best.fitness);
    std::printf("stats models=%zu duplicates=%zu\n", result.stats.models_evaluated,
                result.stats.duplicates_skipped);

    util::Log(util::LogLevel::Info, "searchd")
        << "search finished in " << result.stats.wall_seconds << "s ("
        << (remote ? "remote: " + std::to_string(remote->remote_evaluations()) + " remote in " +
                         std::to_string(remote->batches_dispatched()) + " batch frames, " +
                         std::to_string(remote->streamed_items()) + " streamed item frames (" +
                         std::to_string(remote->out_of_order_items()) + " out-of-order), " +
                         std::to_string(remote->fallback_evaluations()) + " fallback, " +
                         std::to_string(remote->heartbeat_rejoins()) + " heartbeat rejoins"
                   : std::string("local evaluation"))
        << ")";

    if (remote && args.get_flag("shutdown-workers")) remote->shutdown_all();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ecad_searchd: " << e.what() << '\n';
    return 1;
  }
}
