// ecad_searchd — search driver for the distributed evaluation service
// (paper §III-A: the Master distributing the co-design population).
//
// Three modes:
//
//   ecad_searchd --seed 3 --evaluations 48                  # one-shot, in-process
//   ecad_searchd --workers 127.0.0.1:7001,127.0.0.1:7002
//                --seed 3 --evaluations 48                  # one-shot, sharded
//
//   ecad_searchd --serve --port 7100 --workers ...          # resident daemon:
//     accepts SubmitSearch frames (protocol v4), runs several searches
//     concurrently over the shared worker fleet with fair-share batch
//     interleaving, streams per-generation progress, drains on SIGTERM.
//
//   ecad_searchd --submit 127.0.0.1:7100 --seed 3 ...       # thin client:
//     ships the search to a resident daemon, logs streamed progress to
//     stderr, prints the final record to stdout.
//
// Stdout is a deterministic record of the search (candidate keys + all
// non-timing result fields at full double precision), so runs with the same
// seed — local, distributed, or submitted to a daemon — must produce
// byte-identical output.  The CI loopback and service smoke jobs diff
// exactly that.  Timing and progress go to stderr via the logger.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "core/checkpoint.h"
#include "core/master.h"
#include "core/search_scheduler.h"
#include "daemon_common.h"
#include "net/fleet_cache.h"
#include "net/remote_worker.h"
#include "net/search_client.h"
#include "net/search_server.h"
#include "util/logging.h"
#include "util/snapshot_io.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
void handle_signal(int) { g_stop_requested = 1; }

void print_usage() {
  std::cout <<
      "usage: ecad_searchd [options]\n"
      "modes (default: run one search in this process)\n"
      "  --serve           resident search daemon: accept SubmitSearch frames\n"
      "  --submit HOST:PORT  ship this search to a resident daemon\n"
      "  --stop-server     with --submit: just ask the daemon to drain and exit\n"
      "  --stats LIST      query each daemon's metrics registry over the wire\n"
      "                    (protocol v5 GetStats; works against workerd and\n"
      "                    searchd daemons alike)\n"
      "search options\n"
      "  --workers LIST    comma-separated host:port endpoints; empty = evaluate locally\n"
      "  --fallback-local  degrade to in-process evaluation if no daemon is reachable\n"
      "  --ping            just probe --workers and print the live count\n"
      "  --shutdown-workers  after the search (or alone), ask daemons to exit\n"
      "  --seed N          search seed (default 1)\n"
      "  --population N    population size (default 8)\n"
      "  --evaluations N   unique-candidate budget (default 32)\n"
      "  --batch N         offspring per steady-state step (default 4)\n"
      "  --fitness NAME    fitness registry entry (default accuracy)\n"
      "  --threads N       Master dispatch threads (default 2)\n"
      "  --no-hw-search    freeze the hardware half of the genome\n"
      "  --overlap         overlapped evolution: breed the next batch while the\n"
      "                    previous one is still in flight (deterministic, but a\n"
      "                    different trajectory than the default sequential mode)\n"
      "  --inflight N      in-flight batches the overlapped mode pipelines (default 2)\n"
      "  --request-timeout-ms N   per-evaluation network deadline (default 120000)\n"
      "  --max-protocol V  highest wire protocol version to offer (default 6);\n"
      "                    5 disables the fleet cache frames, 4 disables\n"
      "                    stats-over-the-wire, 3 streams per-item result\n"
      "                    frames, 2 pins v2 batch responses, 1 forces\n"
      "                    per-genome EvalRequest exchanges\n"
      "  --no-fleet-cache  never consult or publish to the workers' fleet\n"
      "                    result cache tier (v6 CacheLookup/CacheStore)\n"
      "  --heartbeat-ms N  background ping period for sidelined endpoints\n"
      "                    (default 250; 0 disables heartbeats)\n"
      "  --worker/--data-*/--train-epochs/--eval-seed   local worker spec\n"
      "                    (must match the daemons' flags for bit-exact results)\n"
      "serve options\n"
      "  --host H          bind address (default 127.0.0.1)\n"
      "  --port P          TCP port; 0 = ephemeral, printed as LISTENING <port>\n"
      "  --max-searches N  searches running concurrently (default 2)\n"
      "  --dispatch-slots N  evaluation batches in flight across all searches\n"
      "                    (default 2; fair-share interleaving decides whose)\n"
      "submit options\n"
      "  --cancel-after-progress N  send CancelSearch after N progress frames\n"
      "  --frame-timeout-ms N  per-frame receive budget while streaming\n"
      "                    (default 120000)\n"
      "crash-safety options\n"
      "  --checkpoint-dir D  persist per-search engine snapshots (and, with\n"
      "                    --serve, a submission journal) under D; a killed\n"
      "                    process restarted with --resume continues each\n"
      "                    unfinished search bit-identically\n"
      "  --checkpoint-every N  persist every Nth generation boundary\n"
      "                    (default 1; boundary 0 always persists)\n"
      "  --resume          continue from --checkpoint-dir: one-shot mode loads\n"
      "                    the persisted search and prints its record; --serve\n"
      "                    re-admits every unfinished search (journal order,\n"
      "                    sorted by id) and writes each finished record to\n"
      "                    D/search_<id>.record\n"
      "observability options\n"
      "  --stats-prefix P  with --stats: only metrics whose name starts with P\n"
      "  --metrics-json PATH  on exit, dump this process's metrics registry as\n"
      "                    BENCH-style JSON (flavor metrics-snapshot)\n"
      "  --trace-file PATH write a Chrome trace-event JSON of the batch\n"
      "                    lifecycle (load in Perfetto); ECAD_TRACE=PATH is the\n"
      "                    flagless equivalent\n"
      "  --log-level L     trace|debug|info|warn|error|off\n";
}

ecad::core::SearchRequest search_request_from_args(const ecad::tools::ArgParser& args) {
  ecad::core::SearchRequest request;
  request.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  request.evolution.population_size = static_cast<std::size_t>(args.get_int("population", 8));
  request.evolution.max_evaluations = static_cast<std::size_t>(args.get_int("evaluations", 32));
  // Fixed batch size: with the default (0 = pool width) the search
  // trajectory would depend on the local core count, breaking cross-run
  // comparability.
  request.evolution.batch_size = static_cast<std::size_t>(args.get_int("batch", 4));
  request.fitness = args.get("fitness", "accuracy");
  request.threads = static_cast<std::size_t>(args.get_int("threads", 2));
  request.space.search_hardware = !args.get_flag("no-hw-search");
  request.evolution.overlap_generations = args.get_flag("overlap");
  request.evolution.max_inflight_batches = static_cast<std::size_t>(args.get_int("inflight", 2));
  return request;
}

ecad::core::CheckpointOptions checkpoint_options_from_args(const ecad::tools::ArgParser& args) {
  ecad::core::CheckpointOptions checkpoint;
  checkpoint.dir = args.get("checkpoint-dir", "");
  const long long every = args.get_int("checkpoint-every", 1);
  if (every < 1) {
    throw std::invalid_argument("--checkpoint-every " + std::to_string(every) +
                                " must be >= 1");
  }
  checkpoint.every = static_cast<std::size_t>(every);
  if (args.get_flag("resume") && !checkpoint.enabled()) {
    throw std::invalid_argument("--resume needs --checkpoint-dir");
  }
  return checkpoint;
}

std::uint16_t max_protocol_from_args(const ecad::tools::ArgParser& args) {
  const long long max_protocol = args.get_int("max-protocol", ecad::net::kProtocolVersion);
  if (max_protocol < ecad::net::kMinProtocolVersion ||
      max_protocol > ecad::net::kProtocolVersion) {
    throw std::invalid_argument("--max-protocol " + std::to_string(max_protocol) +
                                " out of range (" +
                                std::to_string(ecad::net::kMinProtocolVersion) + "-" +
                                std::to_string(ecad::net::kProtocolVersion) + ")");
  }
  return static_cast<std::uint16_t>(max_protocol);
}

/// The fleet-cache identity of this process's worker spec: the
/// determinism-contract fields, never the delay-injection knobs (those
/// change timings, not results).  Every master sharing a fleet derives the
/// same string from the same spec flags, so their cache keys agree.
std::string cache_config_from(const ecad::tools::WorkerConfig& config) {
  ecad::net::EvalConfigId id;
  id.worker_kind = config.kind;
  id.data_seed = config.data_seed;
  id.data_samples = config.data_samples;
  id.data_features = config.data_features;
  id.data_classes = config.data_classes;
  id.train_epochs = config.train_epochs;
  id.eval_seed = config.eval_seed;
  return id.to_string();
}

/// Evaluation backend from flags: a RemoteWorker fleet when --workers is
/// given, the local bundle worker otherwise.  The returned pointer borrows
/// from `bundle`/`remote`.
const ecad::core::Worker* make_backend(const ecad::tools::ArgParser& args,
                                       const ecad::tools::WorkerConfig& worker_config,
                                       const ecad::tools::WorkerBundle& bundle,
                                       const std::vector<ecad::net::Endpoint>& endpoints,
                                       std::unique_ptr<ecad::net::RemoteWorker>& remote) {
  using namespace ecad;
  if (endpoints.empty()) return bundle.worker.get();
  net::RemoteWorkerOptions options;
  options.endpoints = endpoints;
  options.request_timeout_ms = static_cast<int>(args.get_int("request-timeout-ms", 120000));
  options.max_protocol = max_protocol_from_args(args);
  options.heartbeat_interval_ms = static_cast<int>(args.get_int("heartbeat-ms", 250));
  options.cache_config = cache_config_from(worker_config);
  options.fleet_cache = !args.get_flag("no-fleet-cache");
  if (args.get_flag("fallback-local")) options.fallback = bundle.worker.get();
  remote = std::make_unique<net::RemoteWorker>(std::move(options));
  return remote.get();
}

int run_serve(const ecad::tools::ArgParser& args) {
  using namespace ecad;
  const tools::WorkerConfig worker_config = tools::worker_config_from_args(args);
  const tools::WorkerBundle bundle = tools::make_worker(worker_config);
  const std::vector<net::Endpoint> endpoints = net::parse_endpoint_list(args.get("workers", ""));
  std::unique_ptr<net::RemoteWorker> remote;
  const core::Worker* worker = make_backend(args, worker_config, bundle, endpoints, remote);

  core::SearchSchedulerOptions scheduler_options;
  scheduler_options.max_concurrent_searches =
      static_cast<std::size_t>(args.get_int("max-searches", 2));
  scheduler_options.dispatch_slots = static_cast<std::size_t>(args.get_int("dispatch-slots", 2));
  scheduler_options.checkpoint = checkpoint_options_from_args(args);
  core::SearchScheduler scheduler(*worker, scheduler_options);

  // Re-admit unfinished searches from a previous incarnation before the
  // listener opens, so resumed work precedes any new submissions.  Resumed
  // searches have no client connection left to stream to; their records land
  // in <checkpoint-dir>/search_<id>.record instead (atomically, so a poller
  // never reads a torn record).
  if (args.get_flag("resume")) {
    const std::string checkpoint_dir = scheduler_options.checkpoint.dir;
    const std::vector<core::ResumableSearch> resumables =
        core::scan_checkpoint_dir(checkpoint_dir);
    for (const core::ResumableSearch& resumable : resumables) {
      scheduler.resume_submit(
          resumable,
          [](const core::SearchProgressInfo& progress) {
            util::Log(util::LogLevel::Info, "searchd")
                << "resumed search " << progress.search_id << " generation "
                << progress.generation << ": " << progress.models_evaluated << "/"
                << progress.max_evaluations << " evaluated";
          },
          [checkpoint_dir](const core::SearchOutcome& outcome) {
            if (outcome.state != core::SearchState::Completed) {
              util::Log(util::LogLevel::Warn, "searchd")
                  << "resumed search " << outcome.search_id << " ended "
                  << core::to_string(outcome.state) << ": " << outcome.message;
              return;
            }
            const std::string record = tools::format_search_record(
                outcome.result.history, outcome.result.best,
                outcome.result.stats.models_evaluated, outcome.result.stats.duplicates_skipped);
            const std::string path =
                checkpoint_dir + "/search_" + std::to_string(outcome.search_id) + ".record";
            util::write_file_atomic(
                path, std::vector<std::uint8_t>(record.begin(), record.end()));
            util::Log(util::LogLevel::Info, "searchd")
                << "resumed search " << outcome.search_id << " record written to " << path;
          });
    }
    util::Log(util::LogLevel::Info, "searchd")
        << "re-admitted " << resumables.size() << " unfinished search(es) from "
        << checkpoint_dir;
  }

  net::SearchServerOptions server_options;
  server_options.host = args.get("host", "127.0.0.1");
  const long long port = args.get_int("port", 0);
  if (port < 0 || port > 65535) {
    throw std::invalid_argument("--port " + std::to_string(port) + " out of range (0-65535)");
  }
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.max_protocol = max_protocol_from_args(args);

  net::SearchServer server(scheduler, server_options);
  server.start();
  util::set_log_identity("searchd:" + std::to_string(server.port()));

  // Stdout handshake for scripts (ephemeral-port discovery).
  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (server.running() && g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful drain: running searches finish their in-flight generations and
  // send SearchDone before the sockets close.
  server.stop();
  util::Log(util::LogLevel::Info, "searchd")
      << "service summary: accepted=" << server.searches_accepted()
      << " completed=" << server.searches_completed()
      << " canceled=" << server.searches_canceled() << " failed=" << server.searches_failed();
  if (remote && args.get_flag("shutdown-workers")) remote->shutdown_all();
  tools::maybe_write_metrics_json(args, "searchd");
  util::trace_close();
  return 0;
}

int run_stats(const ecad::tools::ArgParser& args) {
  using namespace ecad;
  const std::vector<net::Endpoint> endpoints = net::parse_endpoint_list(args.get("stats", ""));
  if (endpoints.empty()) {
    throw std::invalid_argument("--stats needs HOST:PORT[,HOST:PORT...]");
  }
  const std::string prefix = args.get("stats-prefix", "");
  const int timeout_ms = static_cast<int>(args.get_int("request-timeout-ms", 5000));
  for (const net::Endpoint& endpoint : endpoints) {
    tools::print_stats_report(endpoint.to_string(),
                              net::fetch_stats(endpoint.host, endpoint.port, prefix, timeout_ms));
  }
  return 0;
}

int run_submit(const ecad::tools::ArgParser& args) {
  using namespace ecad;
  const net::Endpoint endpoint = net::parse_endpoint(args.get("submit", ""));
  net::SearchClientOptions options;
  options.host = endpoint.host;
  options.port = endpoint.port;
  options.frame_timeout_ms = static_cast<int>(args.get_int("frame-timeout-ms", 120000));
  options.max_protocol = max_protocol_from_args(args);
  net::SearchClient client(options);
  client.connect();

  if (args.get_flag("stop-server")) {
    client.shutdown_server();
    util::Log(util::LogLevel::Info, "searchd") << "shutdown sent to " << endpoint.to_string();
    return 0;
  }

  const core::SearchRequest request = search_request_from_args(args);
  const std::uint64_t search_id = client.submit(request);
  util::Log(util::LogLevel::Info, "searchd")
      << "search " << search_id << " accepted by " << endpoint.to_string();

  const long long cancel_after = args.get_int("cancel-after-progress", -1);
  std::size_t progress_frames = 0;
  bool cancel_sent = false;
  const net::SearchDone done =
      client.stream(search_id, [&](const net::SearchProgress& progress) {
        ++progress_frames;
        util::Log(util::LogLevel::Info, "searchd")
            << "search " << progress.search_id << " generation " << progress.generation << ": "
            << progress.models_evaluated << "/" << progress.max_evaluations
            << " evaluated, pareto front " << progress.pareto_front_size << ", best fitness "
            << progress.best_fitness;
        if (cancel_after >= 0 && !cancel_sent &&
            progress_frames >= static_cast<std::size_t>(cancel_after)) {
          client.cancel(progress.search_id);
          cancel_sent = true;
          util::Log(util::LogLevel::Info, "searchd")
              << "cancel sent after " << progress_frames << " progress frames";
        }
      });

  switch (done.status) {
    case net::SearchDone::Status::Completed:
      tools::print_search_record(done.record.history, done.record.best,
                                 static_cast<std::size_t>(done.record.models_evaluated),
                                 static_cast<std::size_t>(done.record.duplicates_skipped));
      util::Log(util::LogLevel::Info, "searchd")
          << "submitted search finished after " << progress_frames << " progress frames";
      tools::maybe_write_metrics_json(args, "searchd");
      return 0;
    case net::SearchDone::Status::Canceled:
      util::Log(util::LogLevel::Warn, "searchd") << "search canceled: " << done.message;
      return 3;
    case net::SearchDone::Status::Failed:
      break;
  }
  throw std::runtime_error("search failed: " + done.message);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  try {
    const tools::ArgParser args(argc, argv);
    if (args.get_flag("help")) {
      print_usage();
      return 0;
    }
    if (args.has("log-level")) {
      util::set_log_level(util::parse_log_level(args.get("log-level", "info")));
    }
    util::set_log_identity("searchd");
    tools::maybe_open_trace(args);

    if (args.get_flag("serve")) return run_serve(args);
    if (args.has("submit")) return run_submit(args);
    if (args.has("stats")) return run_stats(args);

    const std::vector<net::Endpoint> endpoints =
        net::parse_endpoint_list(args.get("workers", ""));

    if (args.get_flag("ping")) {
      net::RemoteWorkerOptions options;
      options.endpoints = endpoints;
      const net::RemoteWorker remote(options);
      std::printf("ALIVE %zu/%zu\n", remote.ping_all(), endpoints.size());
      return 0;
    }

    const tools::WorkerConfig worker_config = tools::worker_config_from_args(args);
    const tools::WorkerBundle bundle = tools::make_worker(worker_config);
    const core::SearchRequest request = search_request_from_args(args);
    const core::CheckpointOptions checkpoint = checkpoint_options_from_args(args);

    std::unique_ptr<net::RemoteWorker> remote;
    const core::Worker* worker = make_backend(args, worker_config, bundle, endpoints, remote);

    core::Master master;
    evo::EvolutionResult result;
    if (args.get_flag("resume")) {
      // The request (seed, budget, space) comes from the checkpoint itself;
      // only the worker spec flags must match the original invocation.
      result = master.resume_search(*worker, checkpoint);
    } else if (checkpoint.enabled()) {
      result = master.search(*worker, request, checkpoint);
    } else {
      result = master.search(*worker, request);
    }

    tools::print_search_record(result.history, result.best, result.stats.models_evaluated,
                               result.stats.duplicates_skipped);

    util::Log(util::LogLevel::Info, "searchd")
        << "search finished in " << result.stats.wall_seconds << "s ("
        << (remote ? "remote: " + std::to_string(remote->remote_evaluations()) + " remote in " +
                         std::to_string(remote->batches_dispatched()) + " batch frames, " +
                         std::to_string(remote->streamed_items()) + " streamed item frames (" +
                         std::to_string(remote->out_of_order_items()) + " out-of-order), " +
                         std::to_string(remote->fallback_evaluations()) + " fallback, " +
                         std::to_string(remote->heartbeat_rejoins()) + " heartbeat rejoins"
                   : std::string("local evaluation"))
        << ")";

    if (remote && args.get_flag("shutdown-workers")) remote->shutdown_all();
    tools::maybe_write_metrics_json(args, "searchd");
    util::trace_close();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ecad_searchd: " << e.what() << '\n';
    return 1;
  }
}
