// Shared plumbing for the ecad_workerd / ecad_searchd daemons: a tiny
// --flag parser and worker construction from flags.
//
// Determinism contract: two processes built from the same binary that pass
// the same worker flags construct bit-identical workers (same synthetic
// dataset, same training schedule, same per-genome seeds), so a distributed
// search reproduces the local one exactly — the property the CI loopback
// smoke test asserts.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/worker.h"
#include "evo/engine.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "hwmodel/device.h"
#include "net/stats.h"
#include "nn/trainer.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ecad::tools {

/// "--key value" and "--key=value" flags; "--flag" alone is "true".
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument '" + arg + "'");
      }
      arg.erase(0, 2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return std::stoll(it->second);
  }

  bool get_flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Deterministic closed-form worker — no dataset, evaluations cost
/// microseconds.  The CI smoke job uses it so the loopback test exercises
/// the *network* subsystem, not MLP training time.  `delay_ms` stretches
/// each evaluation without touching its result, so the smoke matrix can
/// keep a search in flight long enough to kill and revive daemons under it.
/// `slow_modulo`/`slow_delay_ms` inject heterogeneity: genomes whose DSP
/// usage is divisible by `slow_modulo` sleep `slow_delay_ms` instead — a
/// deterministic function of the genome, so every process slows the *same*
/// candidates and results never depend on the injection.  The streaming
/// smoke leg uses this to force out-of-order item frames.
class AnalyticWorker final : public core::Worker {
 public:
  explicit AnalyticWorker(int delay_ms = 0, std::size_t slow_modulo = 0, int slow_delay_ms = 0)
      : delay_ms_(delay_ms), slow_modulo_(slow_modulo), slow_delay_ms_(slow_delay_ms) {}

  std::string name() const override { return "analytic"; }

  bool is_slow(const evo::Genome& genome) const {
    return slow_modulo_ > 0 && genome.grid.dsp_usage() % slow_modulo_ == 0;
  }

  evo::EvalResult evaluate(const evo::Genome& genome) const override {
    const int delay = is_slow(genome) ? slow_delay_ms_ : delay_ms_;
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    evo::EvalResult result;
    double capacity = 0.0;
    for (std::size_t width : genome.nna.hidden) capacity += static_cast<double>(width);
    const double depth = static_cast<double>(genome.nna.hidden.size());
    result.accuracy = 0.55 + 0.08 * depth + capacity / 8192.0 -
                      (genome.nna.use_bias ? 0.0 : 0.01);
    result.parameters = capacity * 10.0 + (genome.nna.use_bias ? depth : 0.0);
    const double dsp = static_cast<double>(genome.grid.dsp_usage());
    result.outputs_per_second = 5e7 / (64.0 + result.parameters) * (dsp / 512.0);
    result.latency_seconds = 1.0 / result.outputs_per_second;
    result.power_watts = 5.0 + dsp / 100.0;
    result.fmax_mhz = 300.0 - dsp / 64.0;
    result.feasible = dsp <= 8192.0;
    return result;
  }

 private:
  int delay_ms_ = 0;
  std::size_t slow_modulo_ = 0;
  int slow_delay_ms_ = 0;
};

struct WorkerConfig {
  std::string kind = "analytic";  // analytic | accuracy | hwdb
  std::uint64_t data_seed = 7;
  std::size_t data_samples = 600;
  std::size_t data_features = 16;
  std::size_t data_classes = 3;
  std::size_t train_epochs = 5;
  std::uint64_t eval_seed = 42;
  /// Artificial per-evaluation delay (analytic worker only). Never affects
  /// results, so it does not participate in the determinism contract.
  int eval_delay_ms = 0;
  /// Slow-genome injection (analytic only): genomes whose DSP usage is
  /// divisible by this sleep eval_slow_delay_ms instead. 0 = off.
  std::size_t eval_slow_modulo = 0;
  int eval_slow_delay_ms = 0;
};

inline WorkerConfig worker_config_from_args(const ArgParser& args) {
  WorkerConfig config;
  config.kind = args.get("worker", config.kind);
  config.data_seed = static_cast<std::uint64_t>(args.get_int("data-seed", 7));
  config.data_samples = static_cast<std::size_t>(args.get_int("data-samples", 600));
  config.data_features = static_cast<std::size_t>(args.get_int("data-features", 16));
  config.data_classes = static_cast<std::size_t>(args.get_int("data-classes", 3));
  config.train_epochs = static_cast<std::size_t>(args.get_int("train-epochs", 5));
  config.eval_seed = static_cast<std::uint64_t>(args.get_int("eval-seed", 42));
  config.eval_delay_ms = static_cast<int>(args.get_int("eval-delay-ms", 0));
  config.eval_slow_modulo = static_cast<std::size_t>(args.get_int("eval-slow-modulo", 0));
  config.eval_slow_delay_ms = static_cast<int>(args.get_int("eval-slow-delay-ms", 0));
  return config;
}

/// A worker plus the storage (dataset split) it borrows.
struct WorkerBundle {
  std::unique_ptr<data::TrainTestSplit> split;
  std::unique_ptr<core::Worker> worker;
};

inline WorkerBundle make_worker(const WorkerConfig& config) {
  WorkerBundle bundle;
  if (config.kind == "analytic") {
    bundle.worker = std::make_unique<AnalyticWorker>(config.eval_delay_ms,
                                                     config.eval_slow_modulo,
                                                     config.eval_slow_delay_ms);
    return bundle;
  }
  if (config.kind != "accuracy" && config.kind != "hwdb") {
    throw std::invalid_argument("unknown --worker '" + config.kind +
                                "' (expected analytic|accuracy|hwdb)");
  }
  data::SyntheticSpec spec;
  spec.num_samples = config.data_samples;
  spec.num_features = config.data_features;
  spec.num_classes = config.data_classes;
  util::Rng rng(config.data_seed);
  const data::Dataset dataset = data::generate_synthetic(spec, rng);
  bundle.split = std::make_unique<data::TrainTestSplit>(
      data::stratified_split(dataset, /*test_fraction=*/0.25, rng));
  nn::TrainOptions options;
  options.epochs = config.train_epochs;
  if (config.kind == "accuracy") {
    bundle.worker =
        std::make_unique<core::AccuracyWorker>(*bundle.split, options, config.eval_seed);
  } else {
    bundle.worker = std::make_unique<core::FpgaHardwareDatabaseWorker>(
        *bundle.split, options, config.eval_seed, hw::arria10_gx1150());
  }
  return bundle;
}

/// One result's non-timing fields at full double precision.  Everything
/// except eval_seconds, which measures wall clock and is the one
/// legitimately nondeterministic field.
inline std::string format_result_fields(const evo::EvalResult& result) {
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      " accuracy=%.17g outputs_per_second=%.17g latency_seconds=%.17g"
      " potential_gflops=%.17g effective_gflops=%.17g hw_efficiency=%.17g"
      " power_watts=%.17g fmax_mhz=%.17g parameters=%.17g flops_per_sample=%.17g feasible=%d",
      result.accuracy, result.outputs_per_second, result.latency_seconds,
      result.potential_gflops, result.effective_gflops, result.hw_efficiency, result.power_watts,
      result.fmax_mhz, result.parameters, result.flops_per_sample, result.feasible ? 1 : 0);
  return std::string(buffer);
}

/// The deterministic record of one search: one line per unique evaluated
/// candidate in evaluation order, then the winner, then the counters.  The
/// standalone and --submit paths of ecad_searchd both render through this
/// (to stdout), and a `--serve --resume` daemon writes it to
/// search_<id>.record — which is what makes a submitted, resumed, or local
/// search's record byte-identical (the property the smoke matrices diff).
inline std::string format_search_record(const std::vector<evo::Candidate>& history,
                                        const evo::Candidate& best, std::size_t models_evaluated,
                                        std::size_t duplicates_skipped) {
  std::string out;
  char buffer[128];
  for (std::size_t i = 0; i < history.size(); ++i) {
    const evo::Candidate& candidate = history[i];
    std::snprintf(buffer, sizeof(buffer), "cand %zu ", i);
    out += buffer;
    out += candidate.genome.key();
    std::snprintf(buffer, sizeof(buffer), " fitness=%.17g", candidate.fitness);
    out += buffer;
    out += format_result_fields(candidate.result);
    out += '\n';
  }
  out += "best " + best.genome.key();
  std::snprintf(buffer, sizeof(buffer), " fitness=%.17g\n", best.fitness);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "stats models=%zu duplicates=%zu\n", models_evaluated,
                duplicates_skipped);
  out += buffer;
  return out;
}

inline void print_search_record(const std::vector<evo::Candidate>& history,
                                const evo::Candidate& best, std::size_t models_evaluated,
                                std::size_t duplicates_skipped) {
  const std::string record =
      format_search_record(history, best, models_evaluated, duplicates_skipped);
  std::fwrite(record.data(), 1, record.size(), stdout);
  std::fflush(stdout);
}

/// Render one daemon's StatsReport for --stats: a `STATS <endpoint>` header,
/// then one line per metric — counters and gauges as "<name> <value>",
/// histograms with count/sum and client-side derived quantiles.  The format
/// is what the CI smoke legs grep their consistency assertions out of.
inline void print_stats_report(const std::string& endpoint, const net::StatsReport& report) {
  std::printf("STATS %s metrics=%zu\n", endpoint.c_str(), report.entries.size());
  for (const net::StatsEntry& entry : report.entries) {
    if (entry.kind == static_cast<std::uint8_t>(util::MetricKind::Histogram)) {
      std::printf("%s count=%llu sum=%.17g p50=%.9g p90=%.9g p99=%.9g\n", entry.name.c_str(),
                  static_cast<unsigned long long>(entry.count), entry.sum,
                  util::quantile_from_buckets(entry.buckets, 0.50),
                  util::quantile_from_buckets(entry.buckets, 0.90),
                  util::quantile_from_buckets(entry.buckets, 0.99));
    } else {
      std::printf("%s %.17g\n", entry.name.c_str(), entry.value);
    }
  }
}

/// --trace-file PATH switches on the batch-lifecycle trace writer (the
/// ECAD_TRACE environment variable is the flagless equivalent, handled by
/// util/trace.cpp at startup).
inline void maybe_open_trace(const ArgParser& args) {
  if (args.has("trace-file")) util::trace_open(args.get("trace-file", ""));
}

/// --metrics-json PATH dumps the process metrics registry as a BENCH-style
/// JSON snapshot (flavor "metrics-snapshot") on the way out.
inline void maybe_write_metrics_json(const ArgParser& args, const std::string& bench_name) {
  if (!args.has("metrics-json")) return;
  const std::string path = args.get("metrics-json", "");
  const std::string json = util::metrics().to_bench_report(bench_name).to_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("cannot open metrics-json path '" + path + "'");
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

}  // namespace ecad::tools
