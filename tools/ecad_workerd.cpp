// ecad_workerd — distributed evaluation daemon (paper §III: a remote Worker
// serving the Master's co-design population).
//
//   ecad_workerd --port 7001                         # analytic worker
//   ecad_workerd --port 0 --worker accuracy
//                --data-seed 7 --train-epochs 5      # ephemeral port, MLP eval
//
// Prints "LISTENING <port>" on stdout once ready (scripts scrape this to
// learn ephemeral ports), then serves until SIGINT/SIGTERM or a Shutdown
// frame arrives.  ECAD_LOG_LEVEL (or --log-level) controls verbosity.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "daemon_common.h"
#include "net/fleet_cache.h"
#include "net/worker_server.h"
#include "util/logging.h"
#include "util/snapshot_io.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
void handle_signal(int) { g_stop_requested = 1; }

void print_usage() {
  std::cout <<
      "usage: ecad_workerd [options]\n"
      "  --host H          bind address (default 127.0.0.1)\n"
      "  --port P          TCP port; 0 = ephemeral (default 0)\n"
      "  --threads N       evaluation threads; 0 = hardware concurrency\n"
      "  --worker KIND     analytic | accuracy | hwdb (default analytic)\n"
      "  --max-protocol V  highest wire protocol version to offer (default 6);\n"
      "                    5 disables the fleet cache frames, 4 disables\n"
      "                    stats-over-the-wire, 2 pins single-response batch\n"
      "                    frames (no per-item streaming), 1 pins per-genome\n"
      "                    EvalRequest frames\n"
      "  --cache-bytes N   byte budget for the fleet result cache tier (v6\n"
      "                    CacheLookup/CacheStore frames); 0 disables the\n"
      "                    tier (default 0)\n"
      "  --cache-only      serve only the cache tier (plus handshake/ping/\n"
      "                    stats); evaluation frames drop the connection\n"
      "  --cache-file PATH persist the fleet cache tier across restarts:\n"
      "                    reload entries at startup (missing/corrupt file =\n"
      "                    start cold) and snapshot them atomically on exit\n"
      "                    (SIGTERM/SIGINT/Shutdown); needs --cache-bytes > 0\n"
      "  --eval-delay-ms N artificial per-evaluation delay (analytic only)\n"
      "  --eval-slow-modulo N   slow-genome injection: genomes whose DSP usage\n"
      "                    divides by N sleep --eval-slow-delay-ms instead\n"
      "                    (analytic only; deterministic per genome)\n"
      "  --eval-slow-delay-ms N delay for injected slow genomes\n"
      "  --data-seed S     synthetic dataset seed (accuracy/hwdb)\n"
      "  --data-samples N  synthetic dataset size (default 600)\n"
      "  --data-features N feature count (default 16)\n"
      "  --data-classes N  class count (default 3)\n"
      "  --train-epochs N  epochs per candidate (default 5)\n"
      "  --eval-seed S     per-genome training seed base (default 42)\n"
      "  --metrics-json PATH  on exit, dump this process's metrics registry as\n"
      "                    BENCH-style JSON (flavor metrics-snapshot); a live\n"
      "                    daemon answers v5 GetStats frames either way (see\n"
      "                    ecad_searchd --stats)\n"
      "  --trace-file PATH write a Chrome trace-event JSON of the batch\n"
      "                    lifecycle (load in Perfetto); ECAD_TRACE=PATH is the\n"
      "                    flagless equivalent\n"
      "  --log-level L     trace|debug|info|warn|error|off\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecad;
  try {
    const tools::ArgParser args(argc, argv);
    if (args.get_flag("help")) {
      print_usage();
      return 0;
    }
    if (args.has("log-level")) {
      util::set_log_level(util::parse_log_level(args.get("log-level", "info")));
    }

    tools::maybe_open_trace(args);

    const tools::WorkerConfig worker_config = tools::worker_config_from_args(args);
    const tools::WorkerBundle bundle = tools::make_worker(worker_config);

    net::WorkerServerOptions options;
    options.host = args.get("host", "127.0.0.1");
    const long long port = args.get_int("port", 0);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument("--port " + std::to_string(port) +
                                  " out of range (0-65535)");
    }
    options.port = static_cast<std::uint16_t>(port);
    options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    const long long max_protocol = args.get_int("max-protocol", net::kProtocolVersion);
    if (max_protocol < net::kMinProtocolVersion || max_protocol > net::kProtocolVersion) {
      throw std::invalid_argument("--max-protocol " + std::to_string(max_protocol) +
                                  " out of range (" + std::to_string(net::kMinProtocolVersion) +
                                  "-" + std::to_string(net::kProtocolVersion) + ")");
    }
    options.max_protocol = static_cast<std::uint16_t>(max_protocol);
    const long long cache_bytes = args.get_int("cache-bytes", 0);
    if (cache_bytes < 0) {
      throw std::invalid_argument("--cache-bytes " + std::to_string(cache_bytes) +
                                  " must be non-negative");
    }
    options.cache_bytes = static_cast<std::size_t>(cache_bytes);
    options.cache_only = args.get_flag("cache-only");

    const std::string cache_file = args.get("cache-file", "");
    if (!cache_file.empty() && options.cache_bytes == 0) {
      throw std::invalid_argument("--cache-file needs --cache-bytes > 0");
    }

    net::WorkerServer server(*bundle.worker, options);

    // Warm the cache tier before the listener opens so reloaded entries are
    // visible from the very first CacheLookup.  A missing or unusable file
    // means a cold start, never a failed one.
    if (!cache_file.empty()) {
      try {
        const std::size_t loaded = net::load_cache_file(cache_file, server.cache());
        util::Log(util::LogLevel::Info, "workerd")
            << "reloaded " << loaded << " fleet-cache entries from " << cache_file;
      } catch (const util::SnapshotError& e) {
        util::Log(util::LogLevel::Warn, "workerd")
            << "starting with a cold fleet cache: " << e.what();
      }
    }

    server.start();
    util::set_log_identity("workerd:" + std::to_string(server.port()));

    // Stdout handshake for scripts (ephemeral-port discovery).
    std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (server.running() && g_stop_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    if (!cache_file.empty()) {
      net::save_cache_file(cache_file, server.cache());
      util::Log(util::LogLevel::Info, "workerd")
          << "snapshotted " << server.cache().entries() << " fleet-cache entries to "
          << cache_file;
    }
    tools::maybe_write_metrics_json(args, "workerd");
    util::trace_close();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ecad_workerd: " << e.what() << '\n';
    return 1;
  }
}
