#include "data/arff.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ecad::data {

namespace {

struct Attribute {
  std::string name;
  bool nominal = false;
  std::map<std::string, int> values;  // nominal value -> id
};

// "@attribute class {good, bad}" or "@attribute a1 numeric"
Attribute parse_attribute(std::string_view line, int line_number) {
  Attribute attribute;
  std::string_view rest = util::trim(line.substr(std::string_view("@attribute").size()));
  if (rest.empty()) {
    throw std::invalid_argument("arff: empty @attribute at line " + std::to_string(line_number));
  }
  // Name may be quoted.
  std::size_t name_end;
  if (rest.front() == '\'' || rest.front() == '"') {
    const char quote = rest.front();
    name_end = rest.find(quote, 1);
    if (name_end == std::string_view::npos) {
      throw std::invalid_argument("arff: unterminated attribute name at line " +
                                  std::to_string(line_number));
    }
    attribute.name = std::string(rest.substr(1, name_end - 1));
    ++name_end;
  } else {
    name_end = rest.find_first_of(" \t");
    if (name_end == std::string_view::npos) {
      throw std::invalid_argument("arff: attribute without type at line " +
                                  std::to_string(line_number));
    }
    attribute.name = std::string(rest.substr(0, name_end));
  }
  std::string_view type = util::trim(rest.substr(name_end));
  if (type.empty()) {
    throw std::invalid_argument("arff: attribute without type at line " +
                                std::to_string(line_number));
  }
  if (type.front() == '{') {
    if (type.back() != '}') {
      throw std::invalid_argument("arff: unterminated nominal spec at line " +
                                  std::to_string(line_number));
    }
    attribute.nominal = true;
    int id = 0;
    for (const std::string& token : util::split(type.substr(1, type.size() - 2), ',')) {
      std::string_view value = util::trim(token);
      if (!value.empty() && (value.front() == '\'' || value.front() == '"') &&
          value.size() >= 2 && value.back() == value.front()) {
        value = value.substr(1, value.size() - 2);
      }
      attribute.values.emplace(std::string(value), id++);
    }
    if (attribute.values.empty()) {
      throw std::invalid_argument("arff: empty nominal spec at line " +
                                  std::to_string(line_number));
    }
    return attribute;
  }
  const std::string lower = util::to_lower(type);
  if (lower != "numeric" && lower != "real" && lower != "integer") {
    throw std::invalid_argument("arff: unsupported attribute type '" + std::string(type) +
                                "' at line " + std::to_string(line_number));
  }
  return attribute;
}

}  // namespace

Dataset parse_arff(const std::string& text, int label_column) {
  std::istringstream stream(text);
  std::string line;
  std::vector<Attribute> attributes;
  std::vector<std::vector<std::string>> rows;
  bool in_data = false;
  std::string relation = "arff";
  int line_number = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view view = util::trim(line);
    if (view.empty() || view.front() == '%') continue;
    if (!in_data) {
      const std::string lower = util::to_lower(view.substr(0, view.find_first_of(" \t")));
      if (lower == "@relation") {
        std::string_view rest = util::trim(view.substr(9));
        if (!rest.empty()) relation = std::string(rest);
      } else if (lower == "@attribute") {
        attributes.push_back(parse_attribute(view, line_number));
      } else if (lower == "@data") {
        in_data = true;
      } else {
        throw std::invalid_argument("arff: unexpected header line " +
                                    std::to_string(line_number));
      }
      continue;
    }
    std::vector<std::string> fields = util::split(view, ',');
    if (fields.size() != attributes.size()) {
      throw std::invalid_argument("arff: row width " + std::to_string(fields.size()) +
                                  " != attribute count " + std::to_string(attributes.size()) +
                                  " at line " + std::to_string(line_number));
    }
    rows.push_back(std::move(fields));
  }
  if (attributes.empty()) throw std::invalid_argument("arff: no attributes");

  const std::size_t width = attributes.size();
  const std::size_t label_idx =
      label_column < 0 ? width - 1 : static_cast<std::size_t>(label_column);
  if (label_idx >= width) throw std::invalid_argument("arff: label column out of range");

  Dataset dataset;
  dataset.name = relation;
  dataset.features.reshape_discard(rows.size(), width - 1);
  dataset.labels.reserve(rows.size());
  std::map<std::string, int> fallback_labels;  // for numeric-typed class columns

  auto cell_value = [](const Attribute& attribute, std::string_view token,
                       int line_no) -> float {
    std::string_view trimmed = util::trim(token);
    if (trimmed == "?") return 0.0f;  // missing: impute zero
    if (attribute.nominal) {
      auto it = attribute.values.find(std::string(trimmed));
      if (it == attribute.values.end()) {
        throw std::invalid_argument("arff: unknown nominal value '" + std::string(trimmed) +
                                    "' at data line " + std::to_string(line_no));
      }
      return static_cast<float>(it->second);
    }
    return static_cast<float>(util::parse_double(trimmed));
  };

  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::size_t out_col = 0;
    for (std::size_t c = 0; c < width; ++c) {
      if (c == label_idx) continue;
      dataset.features.at(r, out_col++) =
          cell_value(attributes[c], rows[r][c], static_cast<int>(r));
    }
    const Attribute& label_attr = attributes[label_idx];
    std::string_view token = util::trim(rows[r][label_idx]);
    int label;
    if (label_attr.nominal) {
      auto it = label_attr.values.find(std::string(token));
      if (it == label_attr.values.end()) {
        throw std::invalid_argument("arff: unknown class value '" + std::string(token) + "'");
      }
      label = it->second;
    } else {
      auto [it, _] = fallback_labels.try_emplace(std::string(token),
                                                 static_cast<int>(fallback_labels.size()));
      label = it->second;
    }
    dataset.labels.push_back(label);
  }

  if (attributes[label_idx].nominal) {
    dataset.num_classes = attributes[label_idx].values.size();
  } else {
    int max_label = -1;
    for (int label : dataset.labels) max_label = std::max(max_label, label);
    dataset.num_classes = static_cast<std::size_t>(max_label + 1);
  }
  dataset.validate();
  return dataset;
}

Dataset load_arff(const std::string& path, int label_column) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_arff: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_arff(buffer.str(), label_column);
}

}  // namespace ecad::data
