#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace ecad::data {

namespace {

// Cluster centers: random directions on a shell of radius `separation`.
// Rejection sampling enforces a minimum pairwise distance so that with few
// clusters two random directions cannot land nearly parallel and collapse
// the class structure; when the shell is too crowded (many clusters in a low
// dimension) the best candidate seen is kept instead.
std::vector<std::vector<double>> make_centers(std::size_t count, std::size_t dim,
                                              double separation, util::Rng& rng) {
  const double min_distance = separation;  // pairwise mean is separation*sqrt(2)
  std::vector<std::vector<double>> centers;
  centers.reserve(count);

  auto draw = [&rng, dim, separation] {
    std::vector<double> center(dim);
    double norm_sq = 0.0;
    for (double& v : center) {
      v = rng.next_gaussian();
      norm_sq += v * v;
    }
    const double norm = std::sqrt(std::max(norm_sq, 1e-12));
    for (double& v : center) v = v / norm * separation;
    return center;
  };
  auto min_dist_to = [&centers](const std::vector<double>& candidate) {
    double best = std::numeric_limits<double>::max();
    for (const auto& center : centers) {
      double d2 = 0.0;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        const double d = candidate[i] - center[i];
        d2 += d * d;
      }
      best = std::min(best, std::sqrt(d2));
    }
    return best;
  };

  for (std::size_t c = 0; c < count; ++c) {
    std::vector<double> best_candidate = draw();
    double best_distance = min_dist_to(best_candidate);
    for (int attempt = 0; attempt < 50 && best_distance < min_distance; ++attempt) {
      std::vector<double> candidate = draw();
      const double distance = min_dist_to(candidate);
      if (distance > best_distance) {
        best_distance = distance;
        best_candidate = std::move(candidate);
      }
    }
    centers.push_back(std::move(best_candidate));
  }
  return centers;
}

}  // namespace

Dataset generate_synthetic(const SyntheticSpec& spec, util::Rng& rng) {
  if (spec.num_classes < 2) throw std::invalid_argument("generate_synthetic: need >= 2 classes");
  if (spec.num_features == 0) throw std::invalid_argument("generate_synthetic: need features");
  if (spec.latent_dim == 0) throw std::invalid_argument("generate_synthetic: need latent dim");
  if (spec.clusters_per_class == 0) {
    throw std::invalid_argument("generate_synthetic: need clusters");
  }
  if (!spec.class_priors.empty() && spec.class_priors.size() != spec.num_classes) {
    throw std::invalid_argument("generate_synthetic: priors size mismatch");
  }
  if (spec.label_noise < 0.0 || spec.label_noise >= 1.0) {
    throw std::invalid_argument("generate_synthetic: label_noise must be in [0,1)");
  }

  // Normalized class priors -> cumulative distribution.
  std::vector<double> cdf(spec.num_classes);
  {
    double total = 0.0;
    for (std::size_t c = 0; c < spec.num_classes; ++c) {
      const double p = spec.class_priors.empty() ? 1.0 : spec.class_priors[c];
      if (p < 0.0) throw std::invalid_argument("generate_synthetic: negative prior");
      total += p;
      cdf[c] = total;
    }
    if (total <= 0.0) throw std::invalid_argument("generate_synthetic: zero prior mass");
    for (double& v : cdf) v /= total;
  }

  const std::size_t total_clusters = spec.num_classes * spec.clusters_per_class;
  const auto centers = make_centers(total_clusters, spec.latent_dim, spec.cluster_separation, rng);

  // Fixed random projection latent -> feature space, scaled so projected
  // feature variance is O(1) independent of latent_dim.
  const double projection_scale = 1.0 / std::sqrt(static_cast<double>(spec.latent_dim));
  std::vector<double> projection(spec.latent_dim * spec.num_features);
  for (double& v : projection) v = rng.next_gaussian() * projection_scale;

  // Observation noise normalized to the projected signal scale: total noise
  // variance across all features equals latent_dim * feature_noise^2, so the
  // difficulty knob means the same thing for 20-feature and 1776-feature
  // datasets.
  const double noise_per_feature =
      spec.feature_noise *
      std::sqrt(static_cast<double>(spec.latent_dim) / static_cast<double>(spec.num_features));

  Dataset dataset;
  dataset.name = spec.name;
  dataset.num_classes = spec.num_classes;
  dataset.features.reshape_discard(spec.num_samples, spec.num_features);
  dataset.labels.reserve(spec.num_samples);

  std::vector<double> latent(spec.latent_dim);
  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    // Draw the true class from the prior.
    const double u = rng.next_double();
    std::size_t true_class = 0;
    while (true_class + 1 < spec.num_classes && u > cdf[true_class]) ++true_class;

    const std::size_t cluster =
        true_class * spec.clusters_per_class + rng.next_index(spec.clusters_per_class);
    for (std::size_t d = 0; d < spec.latent_dim; ++d) {
      latent[d] = centers[cluster][d] + rng.next_gaussian() * spec.within_cluster_stddev;
    }

    float* row = dataset.features.raw() + i * spec.num_features;
    for (std::size_t f = 0; f < spec.num_features; ++f) {
      double acc = 0.0;
      for (std::size_t d = 0; d < spec.latent_dim; ++d) {
        acc += latent[d] * projection[d * spec.num_features + f];
      }
      acc += rng.next_gaussian() * noise_per_feature;
      row[f] = static_cast<float>(acc);
    }

    // Label noise: flip to a uniformly random *other* class.
    std::size_t label = true_class;
    if (spec.label_noise > 0.0 && rng.next_bool(spec.label_noise)) {
      label = (true_class + 1 + rng.next_index(spec.num_classes - 1)) % spec.num_classes;
    }
    dataset.labels.push_back(static_cast<int>(label));
  }
  dataset.validate();
  return dataset;
}

}  // namespace ecad::data
