#include "data/splits.h"

#include <algorithm>
#include <stdexcept>

namespace ecad::data {

namespace {

// Per-class shuffled index lists.
std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& dataset, util::Rng& rng) {
  std::vector<std::vector<std::size_t>> buckets(dataset.num_classes);
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    buckets[static_cast<std::size_t>(dataset.labels[i])].push_back(i);
  }
  for (auto& bucket : buckets) rng.shuffle(bucket);
  return buckets;
}

}  // namespace

TrainTestSplit stratified_split(const Dataset& dataset, double test_fraction, util::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: test_fraction must be in (0,1)");
  }
  std::vector<std::size_t> train_idx, test_idx;
  for (auto& bucket : indices_by_class(dataset, rng)) {
    const std::size_t test_count = static_cast<std::size_t>(
        std::round(static_cast<double>(bucket.size()) * test_fraction));
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      (i < test_count ? test_idx : train_idx).push_back(bucket[i]);
    }
  }
  rng.shuffle(train_idx);
  rng.shuffle(test_idx);
  TrainTestSplit split{dataset.subset(train_idx), dataset.subset(test_idx)};
  split.train.name = dataset.name + "/train";
  split.test.name = dataset.name + "/test";
  return split;
}

std::vector<FoldIndices> stratified_kfold(const Dataset& dataset, std::size_t k, util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  if (k > dataset.num_samples()) {
    throw std::invalid_argument("stratified_kfold: k exceeds sample count");
  }
  // Assign each sample a fold id, round-robin within its class bucket so every
  // fold gets a near-equal share of every class.
  std::vector<std::size_t> fold_of(dataset.num_samples(), 0);
  std::size_t cursor = 0;
  for (auto& bucket : indices_by_class(dataset, rng)) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      fold_of[bucket[i]] = cursor++ % k;
    }
  }
  std::vector<FoldIndices> folds(k);
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      (f == fold_of[i] ? folds[f].test : folds[f].train).push_back(i);
    }
  }
  for (auto& fold : folds) {
    rng.shuffle(fold.train);
    rng.shuffle(fold.test);
  }
  return folds;
}

TrainTestSplit materialize_fold(const Dataset& dataset, const FoldIndices& fold) {
  TrainTestSplit split{dataset.subset(fold.train), dataset.subset(fold.test)};
  split.train.name = dataset.name + "/fold-train";
  split.test.name = dataset.name + "/fold-test";
  return split;
}

}  // namespace ecad::data
