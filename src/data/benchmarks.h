// The six paper benchmarks (§IV): MNIST, Fashion-MNIST, Credit-g, HAR,
// Phishing, Bioresponse — as shape-faithful synthetic surrogates plus the
// paper's published reference numbers for side-by-side reporting.
//
// Surrogate sizing: feature and class dimensions match the real datasets
// exactly; sample counts for the two image sets are scaled to 1/10 so the
// full experiment suite runs on one machine (pass `sample_scale` > 1 to
// enlarge).  See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/splits.h"
#include "data/synthetic.h"

namespace ecad::data {

enum class Benchmark { CreditG, Har, Phishing, Bioresponse, Mnist, FashionMnist };

/// Published numbers the paper compares against (Tables I-III).
struct PaperRecord {
  double top_acc_any = 0.0;      // best published, any method
  std::string top_method;        // that method's name
  double top_acc_mlp = 0.0;      // best published MLP
  double ecad_mlp = 0.0;         // the paper's ECAD MLP result
  // Table III run-time statistics.
  std::size_t models_evaluated = 0;
  double avg_eval_seconds = 0.0;
  double total_eval_seconds = 0.0;
};

struct BenchmarkInfo {
  Benchmark id;
  std::string name;             // paper-style lowercase name
  std::size_t real_samples;     // cardinality of the real dataset
  std::size_t num_features;
  std::size_t num_classes;
  bool presplit;                // true: 1-fold train/test (MNIST family)
  PaperRecord paper;
};

const std::vector<Benchmark>& all_benchmarks();

const BenchmarkInfo& benchmark_info(Benchmark benchmark);

/// Lookup by paper-style name ("credit-g", "har", ...). Throws
/// std::invalid_argument for unknown names.
Benchmark benchmark_from_name(std::string_view name);

/// The synthetic spec used for a benchmark's surrogate; `sample_scale`
/// multiplies the surrogate's default sample count.
SyntheticSpec benchmark_spec(Benchmark benchmark, double sample_scale = 1.0);

/// Generate the surrogate pool (for k-fold protocols). Deterministic in `seed`.
Dataset load_benchmark(Benchmark benchmark, double sample_scale = 1.0, std::uint64_t seed = 1);

/// Generate a standardized, stratified train/test split (1-fold protocol).
TrainTestSplit load_benchmark_split(Benchmark benchmark, double sample_scale = 1.0,
                                    std::uint64_t seed = 1, double test_fraction = 0.2);

}  // namespace ecad::data
