// ARFF (Attribute-Relation File Format) reader.
//
// The paper's four tabular benchmarks come from OpenML, whose canonical
// distribution format is ARFF.  This loader covers the subset those files
// use: @relation, @attribute (numeric/real/integer + nominal), % comments,
// comma-separated @data rows, and '?' missing values (imputed as 0).  The
// class attribute (default: last) may be nominal or integer.
#pragma once

#include <string>

#include "data/dataset.h"

namespace ecad::data {

/// Parse ARFF text. Throws std::invalid_argument on malformed content.
Dataset parse_arff(const std::string& text, int label_column = -1);

/// Read an .arff file. Throws std::runtime_error on I/O failure.
Dataset load_arff(const std::string& path, int label_column = -1);

}  // namespace ecad::data
