// Train/test splitting and k-fold cross-validation index generation.
//
// Table I uses "a 10-fold evaluation method [that] splits the data set into
// 10-equal train/test folds and measures performance on each" — the OpenML
// estimation procedure.  `stratified_kfold` reproduces that protocol.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace ecad::data {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

struct FoldIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled stratified split; `test_fraction` in (0,1).
TrainTestSplit stratified_split(const Dataset& dataset, double test_fraction, util::Rng& rng);

/// k stratified folds over [0, num_samples). Every sample appears in exactly
/// one test fold. Throws std::invalid_argument for k < 2 or k > samples.
std::vector<FoldIndices> stratified_kfold(const Dataset& dataset, std::size_t k, util::Rng& rng);

/// Materialize a fold into datasets.
TrainTestSplit materialize_fold(const Dataset& dataset, const FoldIndices& fold);

}  // namespace ecad::data
