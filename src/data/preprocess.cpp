#include "data/preprocess.h"

#include <cmath>
#include <stdexcept>

namespace ecad::data {

void Standardizer::fit(const linalg::Matrix& features) {
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  mean_.assign(d, 0.0f);
  stddev_.assign(d, 1.0f);
  if (n == 0) return;
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = features.raw() + r * d;
    for (std::size_t c = 0; c < d; ++c) {
      sum[c] += row[c];
      sum_sq[c] += static_cast<double>(row[c]) * row[c];
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double mean = sum[c] / static_cast<double>(n);
    const double var = std::max(0.0, sum_sq[c] / static_cast<double>(n) - mean * mean);
    mean_[c] = static_cast<float>(mean);
    const double sd = std::sqrt(var);
    stddev_[c] = sd < 1e-12 ? 1.0f : static_cast<float>(sd);
  }
}

void Standardizer::transform(linalg::Matrix& features) const {
  if (!fitted()) throw std::invalid_argument("Standardizer: transform before fit");
  if (features.cols() != mean_.size()) {
    throw std::invalid_argument("Standardizer: feature width mismatch");
  }
  for (std::size_t r = 0; r < features.rows(); ++r) {
    float* row = features.raw() + r * features.cols();
    for (std::size_t c = 0; c < features.cols(); ++c) {
      row[c] = (row[c] - mean_[c]) / stddev_[c];
    }
  }
}

void MinMaxScaler::fit(const linalg::Matrix& features) {
  const std::size_t d = features.cols();
  min_.assign(d, 0.0f);
  range_.assign(d, 1.0f);
  if (features.rows() == 0) return;
  std::vector<float> lo(d, std::numeric_limits<float>::max());
  std::vector<float> hi(d, std::numeric_limits<float>::lowest());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const float* row = features.raw() + r * d;
    for (std::size_t c = 0; c < d; ++c) {
      lo[c] = std::min(lo[c], row[c]);
      hi[c] = std::max(hi[c], row[c]);
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    min_[c] = lo[c];
    const float range = hi[c] - lo[c];
    range_[c] = range < 1e-12f ? 1.0f : range;
  }
}

void MinMaxScaler::transform(linalg::Matrix& features) const {
  if (!fitted()) throw std::invalid_argument("MinMaxScaler: transform before fit");
  if (features.cols() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: feature width mismatch");
  }
  for (std::size_t r = 0; r < features.rows(); ++r) {
    float* row = features.raw() + r * features.cols();
    for (std::size_t c = 0; c < features.cols(); ++c) {
      row[c] = (row[c] - min_[c]) / range_[c];
    }
  }
}

void standardize_together(Dataset& train, std::vector<Dataset*> others) {
  Standardizer standardizer;
  standardizer.fit(train.features);
  standardizer.transform(train.features);
  for (Dataset* other : others) {
    if (other != nullptr) standardizer.transform(other->features);
  }
}

linalg::Matrix one_hot(const std::vector<int>& labels, std::size_t num_classes) {
  linalg::Matrix out(labels.size(), num_classes);
  for (std::size_t r = 0; r < labels.size(); ++r) {
    const int label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::invalid_argument("one_hot: label out of range");
    }
    out.at(r, static_cast<std::size_t>(label)) = 1.0f;
  }
  return out;
}

}  // namespace ecad::data
