// Synthetic classification dataset generator.
//
// Substitution (see DESIGN.md §1): the paper evaluates on MNIST,
// Fashion-MNIST, and four OpenML datasets; this offline reproduction
// generates shape-faithful surrogates.  Each class is a mixture of Gaussian
// clusters in a low-dimensional latent space, projected into the observed
// feature space by a fixed random linear map, with observation noise and a
// label-noise rate that caps the achievable (Bayes-ish) accuracy near the
// paper's reported ceiling for that dataset.  The result: accuracy responds
// to network capacity the way a real tabular/vision dataset does —
// underfitting hurts, capacity saturates, the ceiling is below 1.0.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace ecad::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_samples = 1000;
  std::size_t num_features = 20;
  std::size_t num_classes = 2;

  /// Intrinsic dimensionality of the class structure.
  std::size_t latent_dim = 8;

  /// Number of Gaussian clusters per class (multi-modal classes make the
  /// problem non-linearly-separable, so depth/width matter).
  std::size_t clusters_per_class = 2;

  /// Distance scale between cluster centers; larger = easier.
  double cluster_separation = 3.0;

  /// Within-cluster latent stddev.
  double within_cluster_stddev = 1.0;

  /// Additive observation noise in feature space.
  double feature_noise = 0.1;

  /// Probability a sample's label is flipped to a uniformly random *other*
  /// class; bounds top accuracy at roughly 1 - label_noise.
  double label_noise = 0.0;

  /// Relative class priors; empty = uniform.  Normalized internally.
  std::vector<double> class_priors;
};

/// Generate a dataset per `spec`. Deterministic given `rng` state.
/// Throws std::invalid_argument for degenerate specs (0 classes, 0 features,
/// priors size mismatch).
Dataset generate_synthetic(const SyntheticSpec& spec, util::Rng& rng);

}  // namespace ecad::data
