// Feature preprocessing: fit-on-train / apply-anywhere transforms plus
// one-hot label encoding for the cross-entropy trainer.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace ecad::data {

/// Per-feature standardization (zero mean, unit variance).  Constant features
/// get stddev clamped to 1 so they map to zero rather than NaN.
class Standardizer {
 public:
  /// Fit on the given feature matrix.
  void fit(const linalg::Matrix& features);

  /// Apply in place. Throws std::invalid_argument if not fitted or width differs.
  void transform(linalg::Matrix& features) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

/// Per-feature min-max scaling to [0, 1]. Constant features map to 0.
class MinMaxScaler {
 public:
  void fit(const linalg::Matrix& features);
  void transform(linalg::Matrix& features) const;
  bool fitted() const { return !min_.empty(); }

 private:
  std::vector<float> min_;
  std::vector<float> range_;
};

/// Standardize `train` and apply the same transform to each extra split.
void standardize_together(Dataset& train, std::vector<Dataset*> others);

/// One-hot encode labels into an n x num_classes matrix of {0,1}.
linalg::Matrix one_hot(const std::vector<int>& labels, std::size_t num_classes);

}  // namespace ecad::data
