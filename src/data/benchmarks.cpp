#include "data/benchmarks.h"

#include <stdexcept>

#include "data/preprocess.h"

namespace ecad::data {

namespace {

// Paper numbers transcribed from Tables I, II and III.
std::vector<BenchmarkInfo> build_infos() {
  std::vector<BenchmarkInfo> infos;
  infos.push_back({Benchmark::CreditG, "credit-g", 1000, 20, 2, false,
                   {0.7860, "mlr.classif.ranger", 0.7470, 0.7880, 10480, 2.24, 23495.2}});
  infos.push_back({Benchmark::Har, "har", 10299, 561, 6, false,
                   {0.9957, "DecisionTreeClassifier", 0.1888, 0.9909, 3229, 10.20, 33069.4}});
  infos.push_back({Benchmark::Phishing, "phishing", 11055, 30, 2, false,
                   {0.9753, "SVC", 0.9733, 0.9756, 3534, 9.24, 32661.3}});
  infos.push_back({Benchmark::Bioresponse, "bioresponse", 3751, 1776, 2, false,
                   {0.8160, "mlr.classif.ranger", 0.5423, 0.8038, 5309, 5.89, 31285.0}});
  infos.push_back({Benchmark::Mnist, "mnist", 70000, 784, 10, true,
                   {0.9979, "Manual CNN", 0.9840, 0.9852, 553, 71.23, 39388.6}});
  infos.push_back({Benchmark::FashionMnist, "fashion-mnist", 70000, 784, 10, true,
                   {0.8970, "SVC", 0.8770, 0.8923, 481, 82.55, 39708.7}});
  return infos;
}

const std::vector<BenchmarkInfo>& infos() {
  static const std::vector<BenchmarkInfo> table = build_infos();
  return table;
}

}  // namespace

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> order = {
      Benchmark::CreditG, Benchmark::Har,   Benchmark::Phishing,
      Benchmark::Bioresponse, Benchmark::Mnist, Benchmark::FashionMnist};
  return order;
}

const BenchmarkInfo& benchmark_info(Benchmark benchmark) {
  for (const auto& info : infos()) {
    if (info.id == benchmark) return info;
  }
  throw std::logic_error("benchmark_info: unknown benchmark");
}

Benchmark benchmark_from_name(std::string_view name) {
  for (const auto& info : infos()) {
    if (info.name == name) return info.id;
  }
  throw std::invalid_argument("benchmark_from_name: unknown benchmark '" + std::string(name) +
                              "'");
}

SyntheticSpec benchmark_spec(Benchmark benchmark, double sample_scale) {
  SyntheticSpec spec;
  const BenchmarkInfo& info = benchmark_info(benchmark);
  spec.name = info.name;
  spec.num_features = info.num_features;
  spec.num_classes = info.num_classes;

  // Per-dataset difficulty calibration.  `label_noise` pins the accuracy
  // ceiling near the paper's reported top result; separation/clusters set
  // how much capacity is needed to reach that ceiling.
  switch (benchmark) {
    case Benchmark::CreditG:
      spec.num_samples = 1000;                 // full size
      spec.latent_dim = 6;
      spec.clusters_per_class = 2;
      spec.cluster_separation = 3.0;
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.25;
      spec.label_noise = 0.17;                 // ceiling ~0.80 (paper 0.788)
      spec.class_priors = {0.7, 0.3};          // real credit-g is 700 good / 300 bad
      break;
    case Benchmark::Har:
      spec.num_samples = 2060;                 // 1/5 of 10299
      spec.latent_dim = 12;
      spec.clusters_per_class = 2;
      spec.cluster_separation = 5.2;
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.10;
      spec.label_noise = 0.004;                // ceiling ~0.996 (paper 0.991)
      break;
    case Benchmark::Phishing:
      spec.num_samples = 2211;                 // 1/5 of 11055
      spec.latent_dim = 10;
      spec.clusters_per_class = 3;
      spec.cluster_separation = 3.8;
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.15;
      spec.label_noise = 0.02;                 // ceiling ~0.98 (paper 0.9756)
      break;
    case Benchmark::Bioresponse:
      spec.num_samples = 1250;                 // 1/3 of 3751
      spec.latent_dim = 12;
      spec.clusters_per_class = 2;
      spec.cluster_separation = 3.6;
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.3;
      spec.label_noise = 0.17;                 // ceiling ~0.83 (paper 0.8038)
      break;
    case Benchmark::Mnist:
      spec.num_samples = 7000;                 // 1/10 of 70000
      spec.latent_dim = 24;
      spec.clusters_per_class = 2;
      spec.cluster_separation = 5.5;
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.2;
      spec.label_noise = 0.008;                // ceiling ~0.992 (paper 0.9852)
      break;
    case Benchmark::FashionMnist:
      spec.num_samples = 7000;                 // 1/10 of 70000
      spec.latent_dim = 20;
      spec.clusters_per_class = 2;
      spec.cluster_separation = 4.8;           // more class overlap than MNIST
      spec.within_cluster_stddev = 1.0;
      spec.feature_noise = 0.3;
      spec.label_noise = 0.09;                 // ceiling ~0.91 (paper 0.8923)
      break;
  }
  spec.num_samples = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(spec.num_samples) * sample_scale));
  return spec;
}

Dataset load_benchmark(Benchmark benchmark, double sample_scale, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xecad0000ull ^ static_cast<std::uint64_t>(benchmark));
  return generate_synthetic(benchmark_spec(benchmark, sample_scale), rng);
}

TrainTestSplit load_benchmark_split(Benchmark benchmark, double sample_scale, std::uint64_t seed,
                                    double test_fraction) {
  Dataset pool = load_benchmark(benchmark, sample_scale, seed);
  util::Rng rng(seed ^ 0x5911ull);
  TrainTestSplit split = stratified_split(pool, test_fraction, rng);
  standardize_together(split.train, {&split.test});
  return split;
}

}  // namespace ecad::data
