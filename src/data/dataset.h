// In-memory labeled dataset: the unit of work the ECAD flow consumes.
//
// Paper §III: "a dataset will be exported into a Comma Separated Value (CSV)
// tabular data format".  `load_csv`/`save_csv` round-trip that format;
// synthetic benchmark generators produce the same structure directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/csv.h"

namespace ecad::data {

struct Dataset {
  std::string name;
  linalg::Matrix features;  // num_samples x num_features
  std::vector<int> labels;  // num_samples, values in [0, num_classes)
  std::size_t num_classes = 0;

  std::size_t num_samples() const { return labels.size(); }
  std::size_t num_features() const { return features.cols(); }

  /// Subset by row indices (copies).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Per-class sample counts.
  std::vector<std::size_t> class_counts() const;

  /// Fraction of the most frequent class — accuracy of a majority classifier.
  double majority_fraction() const;

  /// Validate internal consistency; throws std::invalid_argument on violation
  /// (label out of range, row-count mismatch).
  void validate() const;
};

/// Load from CSV. The label column (default: last) must hold integral class
/// ids or arbitrary strings; strings are enumerated in first-seen order.
/// Throws std::runtime_error / std::invalid_argument.
Dataset load_csv(const std::string& path, bool has_header = true, int label_column = -1);

/// Parse from in-memory CSV text (same rules as load_csv).
Dataset parse_csv_dataset(const std::string& text, bool has_header = true, int label_column = -1);

/// Serialize to CSV (features then a final "label" column).
util::CsvTable to_csv_table(const Dataset& dataset);
void save_csv(const Dataset& dataset, const std::string& path);

/// Concatenate two datasets with identical schema. Throws on mismatch.
Dataset concatenate(const Dataset& a, const Dataset& b);

}  // namespace ecad::data
