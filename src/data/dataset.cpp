#include "data/dataset.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/string_util.h"

namespace ecad::data {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.features.reshape_discard(indices.size(), features.cols());
  out.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= num_samples()) throw std::out_of_range("Dataset::subset: index out of range");
    std::copy(features.row(src).begin(), features.row(src).end(), out.features.row(i).begin());
    out.labels.push_back(labels[src]);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes, 0);
  for (int label : labels) {
    if (label >= 0 && static_cast<std::size_t>(label) < num_classes) {
      ++counts[static_cast<std::size_t>(label)];
    }
  }
  return counts;
}

double Dataset::majority_fraction() const {
  if (labels.empty()) return 0.0;
  const auto counts = class_counts();
  const std::size_t top = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(top) / static_cast<double>(labels.size());
}

void Dataset::validate() const {
  if (features.rows() != labels.size()) {
    throw std::invalid_argument("Dataset: feature rows != label count");
  }
  for (int label : labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::invalid_argument("Dataset: label out of range: " + std::to_string(label));
    }
  }
}

namespace {

Dataset from_csv_table(const util::CsvTable& table, int label_column, const std::string& name) {
  Dataset dataset;
  dataset.name = name;
  if (table.rows.empty()) return dataset;
  const std::size_t width = table.rows[0].size();
  if (width == 0) throw std::invalid_argument("Dataset: empty CSV rows");
  const std::size_t label_idx =
      label_column < 0 ? width - 1 : static_cast<std::size_t>(label_column);
  if (label_idx >= width) throw std::invalid_argument("Dataset: label column out of range");

  dataset.features.reshape_discard(table.rows.size(), width - 1);
  dataset.labels.reserve(table.rows.size());

  std::map<std::string, int> label_ids;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() != width) {
      throw std::invalid_argument("Dataset: ragged CSV at row " + std::to_string(r));
    }
    std::size_t out_col = 0;
    for (std::size_t c = 0; c < width; ++c) {
      if (c == label_idx) continue;
      dataset.features.at(r, out_col++) = static_cast<float>(util::parse_double(row[c]));
    }
    const std::string& token = row[label_idx];
    int label;
    try {
      label = static_cast<int>(util::parse_int(token));
      if (label < 0) throw std::invalid_argument("negative");
    } catch (const std::invalid_argument&) {
      auto [it, _] = label_ids.try_emplace(token, static_cast<int>(label_ids.size()));
      label = it->second;
    }
    dataset.labels.push_back(label);
  }
  int max_label = 0;
  for (int label : dataset.labels) max_label = std::max(max_label, label);
  dataset.num_classes = static_cast<std::size_t>(max_label) + 1;
  dataset.validate();
  return dataset;
}

}  // namespace

Dataset load_csv(const std::string& path, bool has_header, int label_column) {
  return from_csv_table(util::read_csv_file(path, has_header), label_column, path);
}

Dataset parse_csv_dataset(const std::string& text, bool has_header, int label_column) {
  return from_csv_table(util::parse_csv(text, has_header), label_column, "csv");
}

util::CsvTable to_csv_table(const Dataset& dataset) {
  util::CsvTable table;
  table.header.reserve(dataset.num_features() + 1);
  for (std::size_t c = 0; c < dataset.num_features(); ++c) {
    table.header.push_back("f" + std::to_string(c));
  }
  table.header.push_back("label");
  table.rows.reserve(dataset.num_samples());
  for (std::size_t r = 0; r < dataset.num_samples(); ++r) {
    std::vector<std::string> row;
    row.reserve(dataset.num_features() + 1);
    for (std::size_t c = 0; c < dataset.num_features(); ++c) {
      row.push_back(std::to_string(dataset.features.at(r, c)));
    }
    row.push_back(std::to_string(dataset.labels[r]));
    table.rows.push_back(std::move(row));
  }
  return table;
}

void save_csv(const Dataset& dataset, const std::string& path) {
  util::write_csv_file(path, to_csv_table(dataset));
}

Dataset concatenate(const Dataset& a, const Dataset& b) {
  if (a.num_features() != b.num_features() || a.num_classes != b.num_classes) {
    throw std::invalid_argument("concatenate: schema mismatch");
  }
  Dataset out;
  out.name = a.name;
  out.num_classes = a.num_classes;
  out.features.reshape_discard(a.num_samples() + b.num_samples(), a.num_features());
  out.labels.reserve(a.num_samples() + b.num_samples());
  for (std::size_t r = 0; r < a.num_samples(); ++r) {
    std::copy(a.features.row(r).begin(), a.features.row(r).end(), out.features.row(r).begin());
    out.labels.push_back(a.labels[r]);
  }
  for (std::size_t r = 0; r < b.num_samples(); ++r) {
    std::copy(b.features.row(r).begin(), b.features.row(r).end(),
              out.features.row(a.num_samples() + r).begin());
    out.labels.push_back(b.labels[r]);
  }
  return out;
}

}  // namespace ecad::data
