// RemoteWorker: a core::Worker whose evaluate() runs on remote ecad_workerd
// daemons.  The Master stays oblivious — it dispatches genomes exactly as it
// would to a local worker, and this class fans the concurrent requests out
// across a pool of endpoints with per-request timeouts, retry-on-disconnect,
// and (optionally) fallback to a local worker when nothing is reachable.
//
// Concurrency model: the Master's thread pool calls evaluate() from many
// threads at once.  Each call checks a connection out of a shared idle pool
// (round-robin over healthy endpoints, connecting lazily), speaks one
// request/response exchange on it, and returns it for reuse.  A connection
// therefore never multiplexes requests, which keeps failure handling local
// to one evaluation.  Endpoints that fail enter a cooldown window so a dead
// daemon costs one failed connect per window, not per genome.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/worker.h"
#include "net/socket.h"

namespace ecad::net {

struct RemoteWorkerOptions {
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 2000;
  /// Deadline for one EvalResponse (covers remote training time).
  int request_timeout_ms = 120000;
  /// How long a failed endpoint sits out before being retried.
  int endpoint_cooldown_ms = 1000;
  /// Full passes over the endpoint list before giving up on the network.
  std::size_t max_rounds = 2;
  /// When no endpoint is reachable: evaluate locally on this worker instead
  /// of failing the search. nullptr = throw NetError.
  const core::Worker* fallback = nullptr;
};

class RemoteWorker final : public core::Worker {
 public:
  /// Throws std::invalid_argument when no endpoints are given.
  explicit RemoteWorker(RemoteWorkerOptions options);

  std::string name() const override;

  /// Thread-safe; called concurrently by the Master's pool.  Network faults
  /// rotate to the next endpoint; a *remote evaluation* error (the worker
  /// threw on its machine) is not retried — it is deterministic — and
  /// surfaces as std::runtime_error with the remote message.
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

  /// Round-trip a Ping to every endpoint; number of live daemons.
  std::size_t ping_all() const;

  /// Ask every reachable daemon to exit (used by ecad_searchd --shutdown-workers).
  void shutdown_all() const;

  std::size_t remote_evaluations() const {
    return remote_evaluations_.load(std::memory_order_relaxed);
  }
  std::size_t fallback_evaluations() const {
    return fallback_evaluations_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct EndpointState {
    Endpoint endpoint;
    Clock::time_point down_until{};       // cooldown gate
    std::vector<Socket> idle;             // handshaken connections ready for reuse
  };

  struct Checkout {
    std::size_t endpoint_index = 0;
    Socket socket;
  };

  /// Next healthy endpoint in round-robin order with a ready or freshly
  /// connected (and handshaken) socket; false when every endpoint is in
  /// cooldown or unreachable right now.
  bool checkout(Checkout& out) const;
  void check_in(Checkout&& checkout) const;
  void penalize(std::size_t endpoint_index) const;

  /// One request/response exchange on a checked-out connection.
  evo::EvalResult exchange(Socket& socket, const evo::Genome& genome) const;

  RemoteWorkerOptions options_;
  mutable std::mutex mutex_;             // guards endpoint states + idle pools
  mutable std::vector<EndpointState> states_;
  mutable std::atomic<std::uint64_t> next_request_id_{1};
  mutable std::atomic<std::size_t> round_robin_{0};
  mutable std::atomic<std::size_t> remote_evaluations_{0};
  mutable std::atomic<std::size_t> fallback_evaluations_{0};
};

}  // namespace ecad::net
