// RemoteWorker: a core::Worker whose evaluations run on remote ecad_workerd
// daemons.  The Master stays oblivious — it dispatches genomes exactly as it
// would to a local worker, and this class fans the work out across a pool of
// endpoints with per-request timeouts, retry-on-disconnect, and (optionally)
// fallback to a local worker when nothing is reachable.
//
// Batch scheduling (completion-driven, protocol v3): evaluate_batch() feeds
// a shared pending queue through a bounded number of concurrent shard
// streams per endpoint.  Each stream pops a small shard off the queue, ships
// it as one EvalBatchRequest frame, and — on a v3 connection — settles
// outcome slots incrementally as the worker streams EvalItemResult frames
// back in completion order, so one slow genome no longer delays its
// shard-mates' results.  A stream that drains its shard immediately pops the
// next one, which is work stealing by construction: fast endpoints simply
// consume more of the queue while a slow endpoint grinds through its shard.
// Shard sizes adapt per endpoint from the observed per-item latency EWMA and
// its variance (high-variance endpoints get smaller shards so a stuck item
// strands less work); at cold start every endpoint gets the same equal-prior
// shard so no single endpoint swallows the whole queue before the others
// have a measurement.  Endpoints negotiated to v2 degrade to the single
// collected EvalBatchResponse frame, v1 endpoints to per-item EvalRequest
// frames pipelined on one connection; both still pull shards from the same
// queue.  When an endpoint dies mid-shard its unsettled items return to the
// queue for the surviving streams; items the remote worker itself failed on
// are NOT retried (deterministic per genome) and surface through their
// per-item error slots.
//
// Connection model: each exchange checks a connection out of a shared idle
// pool (connecting + handshaking lazily), speaks on it exclusively, and
// returns it for reuse, so failure handling stays local to one exchange.
// Version negotiation happens per connection in the Hello exchange; a peer
// so old it drops the v2+ Hello (trailing-bytes error) gets one downgrade
// retry with the exact v1 handshake and is remembered as v1-only.
//
// Heartbeats: endpoints that fail are sidelined, and a background thread
// pings sidelined endpoints every heartbeat_interval_ms — a revived daemon
// rejoins the pool via Ping/Pong without waiting for an evaluation to probe
// it.  With heartbeats disabled (interval 0), sidelining falls back to the
// v1 fixed cooldown window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_pipeline.h"
#include "core/worker.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::net {

struct RemoteWorkerOptions {
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 2000;
  /// Deadline for one EvalResponse (covers remote training time).  Streamed
  /// batches get this budget per item: a shard of N genomes allows up to
  /// N * request_timeout_ms between successive frames.
  int request_timeout_ms = 120000;
  /// How long a failed endpoint sits out before being retried when
  /// heartbeats are disabled.  With heartbeats on, a sidelined endpoint
  /// rejoins only when a ping succeeds.
  int endpoint_cooldown_ms = 1000;
  /// Full passes over the endpoint list before giving up on the network.
  std::size_t max_rounds = 2;
  /// Background ping period for sidelined endpoints; 0 disables the
  /// heartbeat thread (v1 cooldown behavior).
  int heartbeat_interval_ms = 250;
  /// Concurrent shard streams per endpoint in evaluate_batch().  Two keeps
  /// the daemon's pool fed while the previous shard's tail is still
  /// streaming back; 1 restores strictly sequential shards per endpoint.
  std::size_t streams_per_endpoint = 2;
  /// Wall clock the adaptive sizer aims at per shard once an endpoint has a
  /// latency measurement.  Smaller targets mean finer-grained work stealing
  /// (less work strands behind a slow genome) at the cost of more frames.
  int shard_target_ms = 200;
  /// Hard cap on items per shard (also bounded by kMaxBatchItems).
  std::size_t max_shard_items = 256;
  /// Highest protocol version offered in the handshake.  Pin to 5 to
  /// disable the fleet cache frames, 2 for v2 single-response batch frames,
  /// 1 for per-genome EvalRequest exchanges.
  std::uint16_t max_protocol = kProtocolVersion;
  /// Canonical eval-config identity (net::EvalConfigId::to_string()) hashed
  /// into every fleet-cache key.  Empty — the default — disables the cache
  /// client: fleet_cache() returns nullptr and no v6 frames are sent.
  /// Every master sharing a fleet must derive this from the same worker
  /// spec, or their caches silently partition.
  std::string cache_config;
  /// Master-side kill switch for the fleet cache client (ecad_searchd
  /// --no-fleet-cache); cache_config must also be non-empty to enable.
  bool fleet_cache = true;
  /// When no endpoint is reachable: evaluate locally on this worker instead
  /// of failing the search. nullptr = throw NetError.
  const core::Worker* fallback = nullptr;
};

class RemoteWorker final : public core::Worker {
 public:
  /// Throws std::invalid_argument when no endpoints are given.
  explicit RemoteWorker(RemoteWorkerOptions options);
  ~RemoteWorker() override;

  std::string name() const override;

  /// Thread-safe; called concurrently by the Master's pool.  Network faults
  /// rotate to the next endpoint; a *remote evaluation* error (the worker
  /// threw on its machine) is not retried — it is deterministic — and
  /// surfaces as std::runtime_error with the remote message.
  evo::EvalResult evaluate(const evo::Genome& genome) const ECAD_EXCLUDES(mutex_) override;

  /// Completion-driven batch dispatch (see the header comment): shards pull
  /// from a shared queue across all healthy endpoints, slots settle as item
  /// frames stream back, unsettled items of a dying endpoint return to the
  /// queue.  Outcomes are in input order; network exhaustion falls back to
  /// the local worker or throws NetError, exactly like evaluate().
  std::vector<evo::EvalOutcome> evaluate_batch(const std::vector<evo::Genome>& genomes,
                                               util::ThreadPool& pool) const
      ECAD_EXCLUDES(mutex_) override;

  /// The wire-protocol v6 fleet cache tier as a core::FleetEvalCache, or
  /// nullptr when disabled (empty cache_config, fleet_cache=false, or a
  /// max_protocol pinned below 6).  EvalPipeline consults it between dedup
  /// and dispatch; the client speaks CacheLookup/CacheStore on short-lived
  /// per-call connections, so daemon restarts and mixed-version fleets cost
  /// at most a miss, never a failed search.
  const core::FleetEvalCache* fleet_cache() const override;

  /// Round-trip a Ping to every endpoint; number of live daemons.
  std::size_t ping_all() const;

  /// Ask every reachable daemon to exit (used by ecad_searchd --shutdown-workers).
  void shutdown_all() const;

  std::size_t remote_evaluations() const {
    return remote_evaluations_.load(std::memory_order_relaxed);
  }
  std::size_t fallback_evaluations() const {
    return fallback_evaluations_.load(std::memory_order_relaxed);
  }
  /// EvalBatchRequest frames dispatched (shards, not generations).
  std::size_t batches_dispatched() const {
    return batches_dispatched_.load(std::memory_order_relaxed);
  }
  /// EvalItemResult frames consumed from v3 streaming workers.
  std::size_t streamed_items() const {
    return streamed_items_.load(std::memory_order_relaxed);
  }
  /// Streamed item frames that arrived before a lower-index shard-mate —
  /// direct evidence the pipeline consumed results in completion order.
  std::size_t out_of_order_items() const {
    return out_of_order_items_.load(std::memory_order_relaxed);
  }
  /// Sidelined endpoints revived by the heartbeat thread's Ping.
  std::size_t heartbeat_rejoins() const {
    return heartbeat_rejoins_.load(std::memory_order_relaxed);
  }
  /// Endpoints currently eligible for checkout (not sidelined).
  std::size_t healthy_endpoints() const ECAD_EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  /// Speaks the v6 cache frames for the owning RemoteWorker.  Lookups walk
  /// the endpoint list until every key settles (the fleet is replicated by
  /// broadcast stores, so the first v6 daemon usually answers everything);
  /// stores broadcast to every endpoint so a later run hits regardless of
  /// shard placement.  All failures are swallowed — the cache is an
  /// optimization, never a dependency.
  class FleetCacheClient final : public core::FleetEvalCache {
   public:
    explicit FleetCacheClient(const RemoteWorker& owner) : owner_(owner) {}
    void fleet_lookup(const std::vector<evo::Genome>& genomes,
                      std::vector<evo::EvalOutcome>& outcomes) const override;
    void fleet_store(const std::vector<evo::Genome>& genomes,
                     const std::vector<evo::EvalOutcome>& outcomes) const override;

   private:
    const RemoteWorker& owner_;
  };

  struct PooledConnection {
    Socket socket;
    std::uint16_t version = 1;  // negotiated in the Hello exchange
  };

  struct EndpointState {
    Endpoint endpoint;
    bool down = false;                    // sidelined until ping / cooldown expiry
    Clock::time_point down_until{};       // cooldown gate (heartbeats disabled)
    std::uint16_t max_version = kProtocolVersion;  // lowered after a v1 downgrade
    /// A v1 downgrade is remembered only until this deadline, then the full
    /// protocol is re-offered: a genuine legacy peer re-pays one extra
    /// handshake round-trip per window, while a healthy v3 daemon that
    /// merely timed out one Hello under load is not stripped of batching
    /// and streaming for the rest of the process.
    Clock::time_point demoted_until{};
    /// EWMA of observed per-item latency (seconds); 0 = not yet observed.
    /// Every endpoint starts at the same unobserved prior, so cold-start
    /// shard sizing is equal-share by construction.
    double item_latency_ewma_s = 0.0;
    /// EWMA of squared deviation from the latency mean; feeds the sizer's
    /// variance penalty (jittery endpoints get smaller shards).
    double item_latency_var_s2 = 0.0;
    std::vector<PooledConnection> idle;   // handshaken connections ready for reuse
  };

  struct Checkout {
    std::size_t endpoint_index = 0;
    PooledConnection connection;
  };

  /// Shared work queue of one evaluate_batch() call: indices not yet handed
  /// to a stream.  Failed shards push their unsettled indices back.
  struct BatchQueue {
    util::Mutex mutex;
    std::deque<std::size_t> pending ECAD_GUARDED_BY(mutex);
    /// Streams pulling from this queue; bounds every shard to its fair
    /// share of the pending items (see shard_size()).
    std::size_t total_streams ECAD_GUARDED_BY(mutex) = 1;
  };

  /// `state` must be a reference into states_, which is only stable while
  /// mutex_ is held.
  bool endpoint_available(const EndpointState& state, Clock::time_point now) const
      ECAD_REQUIRES(mutex_);

  /// Next healthy endpoint in round-robin order with a ready or freshly
  /// connected (and handshaken) socket; false when every endpoint is
  /// sidelined or unreachable right now.
  bool checkout(Checkout& out) const ECAD_EXCLUDES(mutex_);
  /// Same, but pinned to one endpoint (used by the batch scheduler, which
  /// decides placement itself).  With `penalize_on_failure` (the default)
  /// a failed connect sidelines the endpoint; a secondary shard stream
  /// passes false — failing to open an *extra* connection (e.g. against a
  /// single-connection daemon) must not sideline an endpoint whose primary
  /// stream is healthy mid-shard.
  bool checkout_endpoint(std::size_t endpoint_index, Checkout& out,
                         bool penalize_on_failure = true) const ECAD_EXCLUDES(mutex_);
  void check_in(Checkout&& checkout) const ECAD_EXCLUDES(mutex_);
  void penalize(std::size_t endpoint_index) const ECAD_EXCLUDES(mutex_);
  /// Fold one per-item latency sample into the endpoint's EWMA/variance.
  void record_item_latency(std::size_t endpoint_index, double seconds) const
      ECAD_EXCLUDES(mutex_);
  /// Items the next shard for this endpoint should carry: the latency-EWMA
  /// adaptive size (equal prior when unobserved), hard-bounded by the fair
  /// share of the currently pending queue across every stream — one fast
  /// endpoint must never swallow the whole queue and starve the fleet.
  /// The REQUIRES contract replaces the old "caller holds queue.mutex (or
  /// has exclusive access pre-launch)" comment: every caller now holds the
  /// lock, including the pre-launch reservation pass.
  std::size_t shard_size(std::size_t endpoint_index, const BatchQueue& queue) const
      ECAD_REQUIRES(queue.mutex) ECAD_EXCLUDES(mutex_);

  /// Connect + Hello/HelloAck at the endpoint's remembered max version, with
  /// one v1 downgrade retry when a v2+ handshake bounces off an old peer.
  bool connect_endpoint(std::size_t endpoint_index, PooledConnection& out,
                        bool penalize_on_failure = true) const ECAD_EXCLUDES(mutex_);

  /// One request/response exchange on a checked-out connection.
  evo::EvalResult exchange(Socket& socket, const evo::Genome& genome) const;

  /// Ship one EvalBatchRequest frame for `items` (indices into `genomes`)
  /// and count it; returns the batch id.  Shared by the v2 and v3 exchange
  /// paths so shard framing cannot drift between them.
  std::uint64_t send_shard_request(Socket& socket, const std::vector<evo::Genome>& genomes,
                                   const std::vector<std::size_t>& items) const;

  /// One EvalBatchRequest/Response exchange for `items` (indices into
  /// `genomes`), writing outcome slots.  Throws NetError/WireError on
  /// connection-level failures (the caller requeues unsettled items).
  void exchange_batch(Socket& socket, const std::vector<evo::Genome>& genomes,
                      const std::vector<std::size_t>& items,
                      std::vector<evo::EvalOutcome>& outcomes) const;

  /// v3 equivalent: one EvalBatchRequest answered by streamed EvalItemResult
  /// frames (completion order) + a terminal EvalBatchDone.  Slots settle
  /// incrementally, so a mid-stream disconnect loses only the unanswered
  /// items; per-item latencies feed the adaptive sizer.
  void exchange_stream(std::size_t endpoint_index, Socket& socket,
                       const std::vector<evo::Genome>& genomes,
                       const std::vector<std::size_t>& items,
                       std::vector<evo::EvalOutcome>& outcomes) const;

  /// v1 equivalent: per-genome EvalRequest frames pipelined on one
  /// connection, responses matched by request id as the daemon finishes them
  /// (any order).  Slots settle incrementally here too.
  void exchange_pipelined(Socket& socket, const std::vector<evo::Genome>& genomes,
                          const std::vector<std::size_t>& items,
                          std::vector<evo::EvalOutcome>& outcomes) const;

  /// Run one shard on an already checked-out connection; indices it could
  /// not finish (network fault) land in `unfinished` for requeueing.
  /// Returns false — after sidelining the endpoint — when the connection
  /// died; the stream must stop using it.
  bool run_shard(Checkout& conn, const std::vector<evo::Genome>& genomes,
                 const std::vector<std::size_t>& items, std::vector<evo::EvalOutcome>& outcomes,
                 std::vector<std::size_t>& unfinished) const;

  /// One shard stream: establishes its connection FIRST (so no item is ever
  /// stranded behind a connect timeout), then pops shards off the queue and
  /// runs them until the queue drains or the connection dies.  `first_shard`
  /// (optional, may be empty) is the round's reserved equal-prior shard that
  /// guarantees every healthy endpoint participates before stealing starts;
  /// it is requeued untouched when the stream cannot connect.  `primary`
  /// marks the endpoint's first stream — the only one allowed to sideline
  /// the endpoint over a failed *connect* (see checkout_endpoint).
  void drive_endpoint(std::size_t endpoint_index, const std::vector<evo::Genome>& genomes,
                      std::vector<std::size_t> first_shard, BatchQueue& queue,
                      std::vector<evo::EvalOutcome>& outcomes, bool primary) const
      ECAD_EXCLUDES(queue.mutex, mutex_);

  void heartbeat_loop() ECAD_EXCLUDES(heartbeat_mutex_, mutex_);

  RemoteWorkerOptions options_;
  FleetCacheClient cache_client_{*this};
  /// Guards endpoint states + idle pools (enforced via ECAD_GUARDED_BY).
  mutable util::Mutex mutex_;
  mutable std::vector<EndpointState> states_ ECAD_GUARDED_BY(mutex_);
  mutable std::atomic<std::uint64_t> next_request_id_{1};
  mutable std::atomic<std::size_t> round_robin_{0};
  mutable std::atomic<std::size_t> remote_evaluations_{0};
  mutable std::atomic<std::size_t> fallback_evaluations_{0};
  mutable std::atomic<std::size_t> batches_dispatched_{0};
  mutable std::atomic<std::size_t> streamed_items_{0};
  mutable std::atomic<std::size_t> out_of_order_items_{0};
  mutable std::atomic<std::size_t> heartbeat_rejoins_{0};

  util::Mutex heartbeat_mutex_;
  util::CondVar heartbeat_cv_;
  bool stopping_ ECAD_GUARDED_BY(heartbeat_mutex_) = false;
  std::thread heartbeat_thread_;
};

}  // namespace ecad::net
