// RemoteWorker: a core::Worker whose evaluations run on remote ecad_workerd
// daemons.  The Master stays oblivious — it dispatches genomes exactly as it
// would to a local worker, and this class fans the work out across a pool of
// endpoints with per-request timeouts, retry-on-disconnect, and (optionally)
// fallback to a local worker when nothing is reachable.
//
// Batching (protocol v2): evaluate_batch() shards a generation-sized chunk
// across the healthy endpoints proportionally to their observed throughput
// and ships each shard as one EvalBatchRequest frame, so a whole shard costs
// one network round-trip instead of one per genome.  When an endpoint dies
// mid-batch its unfinished items are re-sharded across the survivors; items
// the remote worker itself failed on are NOT retried (deterministic per
// genome) and surface through their per-item error slots.  Endpoints that
// only speak v1 are still sharded to — their shard degrades to per-item
// EvalRequest frames pipelined on one pooled connection (all requests sent
// up front, responses matched by id), so the daemon's pool still evaluates
// the shard concurrently.
//
// Connection model: each exchange checks a connection out of a shared idle
// pool (connecting + handshaking lazily), speaks on it exclusively, and
// returns it for reuse, so failure handling stays local to one exchange.
// Version negotiation happens per connection in the Hello exchange; a peer
// so old it drops the v2 Hello (trailing-bytes error) gets one downgrade
// retry with the exact v1 handshake and is remembered as v1-only.
//
// Heartbeats: endpoints that fail are sidelined, and a background thread
// pings sidelined endpoints every heartbeat_interval_ms — a revived daemon
// rejoins the pool via Ping/Pong without waiting for an evaluation to probe
// it.  With heartbeats disabled (interval 0), sidelining falls back to the
// v1 fixed cooldown window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/worker.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ecad::net {

struct RemoteWorkerOptions {
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 2000;
  /// Deadline for one EvalResponse (covers remote training time).  Batch
  /// responses get this budget per item: a shard of N genomes waits up to
  /// N * request_timeout_ms for its single response frame.
  int request_timeout_ms = 120000;
  /// How long a failed endpoint sits out before being retried when
  /// heartbeats are disabled.  With heartbeats on, a sidelined endpoint
  /// rejoins only when a ping succeeds.
  int endpoint_cooldown_ms = 1000;
  /// Full passes over the endpoint list before giving up on the network.
  std::size_t max_rounds = 2;
  /// Background ping period for sidelined endpoints; 0 disables the
  /// heartbeat thread (v1 cooldown behavior).
  int heartbeat_interval_ms = 250;
  /// Highest protocol version offered in the handshake.  Pin to 1 to force
  /// per-genome EvalRequest exchanges even against v2 daemons.
  std::uint16_t max_protocol = kProtocolVersion;
  /// When no endpoint is reachable: evaluate locally on this worker instead
  /// of failing the search. nullptr = throw NetError.
  const core::Worker* fallback = nullptr;
};

class RemoteWorker final : public core::Worker {
 public:
  /// Throws std::invalid_argument when no endpoints are given.
  explicit RemoteWorker(RemoteWorkerOptions options);
  ~RemoteWorker() override;

  std::string name() const override;

  /// Thread-safe; called concurrently by the Master's pool.  Network faults
  /// rotate to the next endpoint; a *remote evaluation* error (the worker
  /// threw on its machine) is not retried — it is deterministic — and
  /// surfaces as std::runtime_error with the remote message.
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

  /// Shard the chunk across healthy endpoints (one EvalBatchRequest frame
  /// per shard), re-sharding remainders when endpoints die mid-batch.
  /// Outcomes are in input order; network exhaustion falls back to the local
  /// worker or throws NetError, exactly like evaluate().
  std::vector<evo::EvalOutcome> evaluate_batch(const std::vector<evo::Genome>& genomes,
                                               util::ThreadPool& pool) const override;

  /// Round-trip a Ping to every endpoint; number of live daemons.
  std::size_t ping_all() const;

  /// Ask every reachable daemon to exit (used by ecad_searchd --shutdown-workers).
  void shutdown_all() const;

  std::size_t remote_evaluations() const {
    return remote_evaluations_.load(std::memory_order_relaxed);
  }
  std::size_t fallback_evaluations() const {
    return fallback_evaluations_.load(std::memory_order_relaxed);
  }
  /// EvalBatchRequest frames dispatched (shards, not generations).
  std::size_t batches_dispatched() const {
    return batches_dispatched_.load(std::memory_order_relaxed);
  }
  /// Sidelined endpoints revived by the heartbeat thread's Ping.
  std::size_t heartbeat_rejoins() const {
    return heartbeat_rejoins_.load(std::memory_order_relaxed);
  }
  /// Endpoints currently eligible for checkout (not sidelined).
  std::size_t healthy_endpoints() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PooledConnection {
    Socket socket;
    std::uint16_t version = 1;  // negotiated in the Hello exchange
  };

  struct EndpointState {
    Endpoint endpoint;
    bool down = false;                    // sidelined until ping / cooldown expiry
    Clock::time_point down_until{};       // cooldown gate (heartbeats disabled)
    std::uint16_t max_version = kProtocolVersion;  // lowered after a v1 downgrade
    double throughput_ips = 0.0;          // EWMA items/sec; 0 = not yet observed
    std::vector<PooledConnection> idle;   // handshaken connections ready for reuse
  };

  struct Checkout {
    std::size_t endpoint_index = 0;
    PooledConnection connection;
  };

  bool endpoint_available(const EndpointState& state, Clock::time_point now) const;

  /// Next healthy endpoint in round-robin order with a ready or freshly
  /// connected (and handshaken) socket; false when every endpoint is
  /// sidelined or unreachable right now.
  bool checkout(Checkout& out) const;
  /// Same, but pinned to one endpoint (used by the batch scheduler, which
  /// decides placement itself).  Sidelines the endpoint on failure.
  bool checkout_endpoint(std::size_t endpoint_index, Checkout& out) const;
  void check_in(Checkout&& checkout) const;
  void penalize(std::size_t endpoint_index) const;
  void record_throughput(std::size_t endpoint_index, std::size_t items, double seconds) const;

  /// Connect + Hello/HelloAck at the endpoint's remembered max version, with
  /// one v1 downgrade retry when a v2 handshake bounces off an old peer.
  bool connect_endpoint(std::size_t endpoint_index, PooledConnection& out) const;

  /// One request/response exchange on a checked-out connection.
  evo::EvalResult exchange(Socket& socket, const evo::Genome& genome) const;

  /// One EvalBatchRequest/Response exchange for `items` (indices into
  /// `genomes`), writing outcome slots.  Throws NetError/WireError on
  /// connection-level failures (the caller re-shards).
  void exchange_batch(Socket& socket, const std::vector<evo::Genome>& genomes,
                      const std::vector<std::size_t>& items,
                      std::vector<evo::EvalOutcome>& outcomes) const;

  /// v1 equivalent of exchange_batch: per-genome EvalRequest frames
  /// pipelined on one connection, responses matched by request id as the
  /// daemon finishes them (any order).  Slots settle incrementally, so a
  /// mid-pipeline disconnect loses only the unanswered items.
  void exchange_pipelined(Socket& socket, const std::vector<evo::Genome>& genomes,
                          const std::vector<std::size_t>& items,
                          std::vector<evo::EvalOutcome>& outcomes) const;

  /// Run one shard on one endpoint; indices it could not finish (network
  /// fault) land in `unfinished` for re-sharding.
  void run_shard(std::size_t endpoint_index, const std::vector<evo::Genome>& genomes,
                 const std::vector<std::size_t>& items, std::vector<evo::EvalOutcome>& outcomes,
                 std::vector<std::size_t>& unfinished) const;

  void heartbeat_loop();

  RemoteWorkerOptions options_;
  mutable std::mutex mutex_;             // guards endpoint states + idle pools
  mutable std::vector<EndpointState> states_;
  mutable std::atomic<std::uint64_t> next_request_id_{1};
  mutable std::atomic<std::size_t> round_robin_{0};
  mutable std::atomic<std::size_t> remote_evaluations_{0};
  mutable std::atomic<std::size_t> fallback_evaluations_{0};
  mutable std::atomic<std::size_t> batches_dispatched_{0};
  mutable std::atomic<std::size_t> heartbeat_rejoins_{0};

  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool stopping_ = false;                // guarded by heartbeat_mutex_
  std::thread heartbeat_thread_;
};

}  // namespace ecad::net
