// Fleet-wide content-addressed result cache (wire protocol v6).
//
// Two halves live here:
//
//  * Key derivation.  A cache key must be computable by *any* master sharing
//    the fleet and stable across processes, builds, and standard libraries —
//    so it is an explicit FNV-1a hash over a canonical string, never
//    std::hash (whose value is implementation-defined).  The hashed string
//    is the eval-config identity (EvalConfigId: the determinism-contract
//    fields of the worker spec) joined with the canonical genome key.  The
//    injected-delay knobs (--eval-delay-ms and friends) are documented as
//    outside the determinism contract and are deliberately NOT part of the
//    identity: they change timings, never results.
//
//  * FleetResultCache.  The daemon-side store behind CacheLookup/CacheStore:
//    an LRU map from key to EvalResult under a byte budget (--cache-bytes;
//    0 disables the tier).  Entries are fixed-size, so the budget is
//    enforced as entries * kCacheEntryBytes.  Hit/miss/eviction counters and
//    entry/byte gauges land in the process metrics registry under
//    `fleet.cache_*`, which is how the smoke matrices assert warm-fleet hit
//    rates over the v5 stats wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "evo/fitness.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::net {

/// 64-bit FNV-1a over raw bytes.  Pinned by a golden-hash test: changing
/// this function (or the identity strings fed to it) silently invalidates
/// every deployed fleet cache, so it must never drift.
std::uint64_t fnv1a64(std::string_view bytes);

/// The determinism-contract half of a cache key: every field that changes
/// what an evaluation *returns* (as opposed to how long it takes).  Mirrors
/// the worker spec the smoke matrices pass to every process in a fleet.
struct EvalConfigId {
  std::string worker_kind;        // "analytic" | "accuracy" | "hwdb" | ...
  std::uint64_t data_seed = 0;
  std::uint64_t data_samples = 0;
  std::uint64_t data_features = 0;
  std::uint64_t data_classes = 0;
  std::uint64_t train_epochs = 0;
  std::uint64_t eval_seed = 0;

  /// Canonical `key=value;...` rendering — the exact bytes that get hashed,
  /// so reordering or renaming a field is a cache-format break.
  std::string to_string() const;
};

/// The content address of one (eval config, genome) evaluation.
/// `eval_config` is EvalConfigId::to_string(); `genome_key` is
/// evo::Genome::key().
std::uint64_t fleet_cache_key(const std::string& eval_config, const std::string& genome_key);

/// Bytes charged per cache entry against the --cache-bytes budget: the
/// EvalResult payload plus a flat allowance for the hash-map node, recency
/// list node, and key.  Entries are fixed-size so this makes the budget an
/// exact entry count rather than an estimate that drifts per platform.
inline constexpr std::size_t kCacheEntryBytes = 256;

/// Daemon-side LRU store for the fleet cache tier.  Thread-safe: the server
/// loop thread serves lookups while pool threads publish stores.
class FleetResultCache {
 public:
  /// `byte_budget` caps memory at kCacheEntryBytes per entry; 0 disables
  /// the tier entirely (lookups miss, stores are dropped, nothing counted).
  explicit FleetResultCache(std::size_t byte_budget);

  bool enabled() const { return budget_entries_ > 0; }

  /// Returns the cached result and refreshes its recency, or nullopt.
  std::optional<evo::EvalResult> lookup(std::uint64_t key) ECAD_EXCLUDES(mutex_);

  /// Insert or refresh a binding, evicting least-recently-used entries
  /// until the budget holds.
  void store(std::uint64_t key, const evo::EvalResult& result) ECAD_EXCLUDES(mutex_);

  std::size_t entries() const ECAD_EXCLUDES(mutex_);
  std::size_t bytes() const ECAD_EXCLUDES(mutex_);
  std::uint64_t evictions() const ECAD_EXCLUDES(mutex_);

  /// Every live binding, least-recently-used first — so replaying the list
  /// through store() reproduces both the contents and the recency order.
  /// Does not touch recency or the hit/miss counters.
  std::vector<std::pair<std::uint64_t, evo::EvalResult>> export_entries() const
      ECAD_EXCLUDES(mutex_);

 private:
  struct Entry {
    evo::EvalResult result;
    std::list<std::uint64_t>::iterator recency;  // position in recency_
  };

  const std::size_t budget_entries_;
  mutable util::Mutex mutex_;
  /// Most-recently-used at the front; evictions pop the back.
  std::list<std::uint64_t> recency_ ECAD_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Entry> entries_ ECAD_GUARDED_BY(mutex_);
  std::uint64_t evictions_ ECAD_GUARDED_BY(mutex_) = 0;
};

/// Magic prefix of a fleet-cache snapshot file ("ECCF", little-endian).
/// The on-disk format is magic + util::kSnapshotFormatVersion + entry count
/// + (key, EvalResult) pairs in LRU-first order, reusing the engine-snapshot
/// EvalResult byte layout — so the same version bump covers both formats.
inline constexpr std::uint32_t kCacheFileMagic = 0x46434345u;

/// Cache entries -> snapshot bytes (LRU-first, as export_entries() yields).
std::vector<std::uint8_t> serialize_cache_entries(
    const std::vector<std::pair<std::uint64_t, evo::EvalResult>>& entries);

/// Snapshot bytes -> cache entries.  Throws util::SnapshotError on
/// truncated, corrupt, or version-mismatched input.
std::vector<std::pair<std::uint64_t, evo::EvalResult>> deserialize_cache_entries(
    const std::vector<std::uint8_t>& bytes);

/// Atomically persist the cache's live entries to `path` (tmp + fsync +
/// rename; crash label "cache_file").  Throws util::SnapshotError on I/O
/// failure.
void save_cache_file(const std::string& path, const FleetResultCache& cache);

/// Replay a snapshot file into `cache` through store(), oldest-first, and
/// return the number of entries loaded.  Throws util::SnapshotError if the
/// file is unreadable or malformed — callers log and start cold.
std::size_t load_cache_file(const std::string& path, FleetResultCache& cache);

}  // namespace ecad::net
