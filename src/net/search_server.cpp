#include "net/search_server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "net/stats.h"
#include "util/logging.h"

namespace ecad::net {

namespace {

SearchDone done_from_outcome(const core::SearchOutcome& outcome) {
  SearchDone done;
  done.search_id = outcome.search_id;
  switch (outcome.state) {
    case core::SearchState::Completed:
      done.status = SearchDone::Status::Completed;
      done.record.history = outcome.result.history;
      done.record.best = outcome.result.best;
      done.record.models_evaluated = outcome.result.stats.models_evaluated;
      done.record.duplicates_skipped = outcome.result.stats.duplicates_skipped;
      break;
    case core::SearchState::Canceled:
      done.status = SearchDone::Status::Canceled;
      done.message = outcome.message;
      break;
    default:
      done.status = SearchDone::Status::Failed;
      done.message = outcome.message;
      break;
  }
  return done;
}

}  // namespace

SearchServer::SearchServer(core::SearchScheduler& scheduler, SearchServerOptions options)
    : scheduler_(scheduler), options_(std::move(options)) {}

SearchServer::~SearchServer() { stop(); }

void SearchServer::start() {
  if (started_) return;
  listener_ = Listener(options_.host, options_.port);
  port_ = listener_.port();
  started_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { run_loop(); });
  util::Log(util::LogLevel::Info, "net")
      << "search server '" << options_.name << "' listening on " << options_.host << ":" << port_;
}

void SearchServer::stop() {
  running_.store(false, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
  if (!started_) return;
  started_ = false;
  // Drain before closing sockets: running searches finish their in-flight
  // generations and every terminal SearchDone frame is written through the
  // still-open connections.  Only then is it safe to tear the wires down.
  scheduler_.drain();
  for (const auto& connection : connections_) {
    connection->closed.store(true, std::memory_order_release);
    connection->socket.shutdown_both();
  }
  connections_.clear();
  listener_.close();
  util::Log(util::LogLevel::Info, "net")
      << "search server on port " << port_ << " stopped: "
      << searches_accepted_.load(std::memory_order_relaxed) << " accepted, "
      << searches_completed_.load(std::memory_order_relaxed) << " completed, "
      << searches_canceled_.load(std::memory_order_relaxed) << " canceled, "
      << searches_failed_.load(std::memory_order_relaxed) << " failed";
}

void SearchServer::send_frame(const std::shared_ptr<Connection>& connection, MsgType type,
                              const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  util::MutexLock lock(connection->write_mutex);
  if (connection->closed.load(std::memory_order_acquire)) return;
  connection->socket.send_all(frame.data(), frame.size());
}

void SearchServer::send_done(const std::shared_ptr<Connection>& connection,
                             const core::SearchOutcome& outcome) {
  // Count before writing (a client holding the frame always sees itself in
  // the daemon's exit summary).
  switch (outcome.state) {
    case core::SearchState::Completed:
      searches_completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case core::SearchState::Canceled:
      searches_canceled_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      searches_failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  WireWriter writer;
  write_search_done(writer, done_from_outcome(outcome));
  try {
    send_frame(connection, MsgType::SearchDone, writer.bytes());
  } catch (const NetError& e) {
    util::Log(util::LogLevel::Debug, "net") << "SearchDone dropped: " << e.what();
  }
}

void SearchServer::handle_submit(const std::shared_ptr<Connection>& connection, Frame frame) {
  WireReader reader(frame.payload);
  SubmitSearch submit = read_submit_search(reader);
  reader.expect_end();

  auto on_progress = [this, connection](const core::SearchProgressInfo& info) {
    SearchProgress progress;
    progress.search_id = info.search_id;
    progress.generation = info.generation;
    progress.models_evaluated = info.models_evaluated;
    progress.max_evaluations = info.max_evaluations;
    progress.pareto_front_size = info.pareto_front_size;
    progress.best_fitness = info.best_fitness;
    WireWriter writer;
    write_search_progress(writer, progress);
    try {
      send_frame(connection, MsgType::SearchProgress, writer.bytes());
    } catch (const NetError& e) {
      util::Log(util::LogLevel::Debug, "net") << "SearchProgress dropped: " << e.what();
    }
  };
  auto on_done = [this, connection](const core::SearchOutcome& outcome) {
    send_done(connection, outcome);
  };

  // Ahead-of-us count at admission time (informational, for the client log).
  const auto queue_position = static_cast<std::uint32_t>(scheduler_.active_searches());
  try {
    // The accepted frame must precede the search's first progress frame, and
    // a runner may pick the search up the instant submit() enqueues it — so
    // hold the write lock across submit + ack; the runner's first progress
    // write blocks on it until the ack is on the wire.
    util::MutexLock lock(connection->write_mutex);
    const std::uint64_t search_id =
        scheduler_.submit(std::move(submit.request), on_progress, on_done);
    connection->live_searches.push_back(search_id);
    searches_accepted_.fetch_add(1, std::memory_order_relaxed);
    SearchAccepted accepted;
    accepted.submit_id = submit.submit_id;
    accepted.search_id = search_id;
    accepted.queue_position = queue_position;
    WireWriter writer;
    write_search_accepted(writer, accepted);
    const std::vector<std::uint8_t> out = encode_frame(MsgType::SearchAccepted, writer.bytes());
    if (!connection->closed.load(std::memory_order_acquire)) {
      connection->socket.send_all(out.data(), out.size());
    }
    util::Log(util::LogLevel::Info, "net")
        << "accepted search " << search_id << " (submit " << submit.submit_id << ", "
        << queue_position << " ahead)";
  } catch (const NetError&) {
    throw;  // connection-level failure: let the loop drop the connection
  } catch (const std::exception& e) {
    // Rejected (draining, unknown fitness, ...): answer with a Failed
    // SearchDone carrying search_id 0 — the reserved "no search" id — so
    // the client's pending submit fails with the reason instead of a
    // dropped connection.
    core::SearchOutcome outcome;
    outcome.search_id = 0;
    outcome.state = core::SearchState::Failed;
    outcome.message = e.what();
    util::Log(util::LogLevel::Warn, "net")
        << "rejected search submission (submit " << submit.submit_id << "): " << e.what();
    send_done(connection, outcome);
  }
}

bool SearchServer::handle_frame(const std::shared_ptr<Connection>& connection, Frame frame) {
  switch (frame.type) {
    case MsgType::Hello: {
      WireReader reader(frame.payload);
      const HelloPayload hello = read_hello_payload(reader);
      connection->version = std::min(hello.max_version, options_.max_protocol);
      util::Log(util::LogLevel::Debug, "net")
          << "hello from '" << hello.name << "' (max v" << hello.max_version << "); speaking v"
          << connection->version;
      WireWriter ack;
      write_hello_payload(ack, options_.name, connection->version);
      send_frame(connection, MsgType::HelloAck, ack.bytes());
      return true;
    }
    case MsgType::Ping:
      send_frame(connection, MsgType::Pong, {});
      return true;
    case MsgType::Shutdown:
      util::Log(util::LogLevel::Info, "net") << "shutdown requested by peer";
      running_.store(false, std::memory_order_release);
      return false;
    case MsgType::SubmitSearch: {
      if (connection->version < 4) {
        util::Log(util::LogLevel::Warn, "net")
            << "SubmitSearch on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      handle_submit(connection, std::move(frame));
      return true;
    }
    case MsgType::CancelSearch: {
      if (connection->version < 4) {
        util::Log(util::LogLevel::Warn, "net")
            << "CancelSearch on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      WireReader reader(frame.payload);
      const CancelSearch cancel = read_cancel_search(reader);
      reader.expect_end();
      if (!scheduler_.cancel(cancel.search_id, "canceled by client")) {
        util::Log(util::LogLevel::Debug, "net")
            << "cancel for unknown or finished search " << cancel.search_id << "; ignoring";
      }
      return true;
    }
    case MsgType::GetStats: {
      if (connection->version < 5) {
        util::Log(util::LogLevel::Warn, "net")
            << "GetStats on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      WireReader reader(frame.payload);
      const GetStats request = read_get_stats(reader);
      reader.expect_end();
      WireWriter writer;
      write_stats_report(writer, snapshot_stats_report(request.prefix));
      send_frame(connection, MsgType::StatsReport, writer.bytes());
      return true;
    }
    // This daemon runs searches; it never receives evaluation traffic or
    // its own server->client frames.
    case MsgType::HelloAck:
    case MsgType::Pong:
    case MsgType::EvalRequest:
    case MsgType::EvalResponse:
    case MsgType::EvalBatchRequest:
    case MsgType::EvalBatchResponse:
    case MsgType::EvalItemResult:
    case MsgType::EvalBatchDone:
    case MsgType::SearchAccepted:
    case MsgType::SearchProgress:
    case MsgType::SearchDone:
    case MsgType::StatsReport:
    case MsgType::CacheLookup:
    case MsgType::CacheStore:
      util::Log(util::LogLevel::Warn, "net")
          << "unexpected " << to_string(frame.type) << " from client; dropping connection";
      return false;
  }
  return false;
}

void SearchServer::run_loop() {
  std::vector<std::uint8_t> scratch(64 * 1024);
  while (running_.load(std::memory_order_acquire)) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(connections_.size() + 1);
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& connection : connections_) {
      pfds.push_back({connection->socket.fd(), POLLIN, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::Log(util::LogLevel::Error, "net") << "poll failed; stopping server";
      running_.store(false, std::memory_order_release);
      break;
    }
    if (rc == 0) continue;

    const std::size_t polled = connections_.size();

    if (pfds[0].revents & POLLIN) {
      try {
        if (auto accepted = listener_.accept(0)) {
          auto connection = std::make_shared<Connection>();
          connection->socket = std::move(*accepted);
          connections_.push_back(std::move(connection));
        }
      } catch (const NetError& e) {
        util::Log(util::LogLevel::Warn, "net") << "accept failed: " << e.what();
      }
    }

    std::vector<std::shared_ptr<Connection>> dead;
    for (std::size_t i = 0; i < polled; ++i) {
      const auto& connection = connections_[i];
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      bool keep = (revents & (POLLERR | POLLNVAL)) == 0;
      if (keep && (revents & (POLLIN | POLLHUP))) {
        try {
          const std::size_t n = connection->socket.recv_some(scratch.data(), scratch.size(), 0);
          if (n > 0) {
            connection->inbox.insert(connection->inbox.end(), scratch.begin(),
                                     scratch.begin() + static_cast<std::ptrdiff_t>(n));
            Frame frame;
            while (keep && try_extract_frame(connection->inbox, frame)) {
              keep = handle_frame(connection, std::move(frame));
            }
          }
        } catch (const NetError&) {
          keep = false;  // peer EOF or reset
        } catch (const WireError& e) {
          util::Log(util::LogLevel::Warn, "net")
              << "protocol error: " << e.what() << "; dropping connection";
          keep = false;
        }
      }
      if (!keep) dead.push_back(connection);
    }
    for (const auto& connection : dead) {
      // A disconnecting client takes its searches with it: cancel() is a
      // no-op (returns false) for the ones that already finished.
      for (const std::uint64_t id : connection->live_searches) {
        if (scheduler_.cancel(id, "client disconnected")) {
          util::Log(util::LogLevel::Info, "net")
              << "search " << id << " canceled: client disconnected";
        }
      }
      connection->closed.store(true, std::memory_order_release);
      connection->socket.shutdown_both();
      connections_.erase(std::remove(connections_.begin(), connections_.end(), connection),
                         connections_.end());
    }
  }
}

}  // namespace ecad::net
