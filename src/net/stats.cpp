#include "net/stats.h"

#include <algorithm>
#include <utility>

#include "net/socket.h"
#include "util/metrics.h"

namespace ecad::net {

StatsReport snapshot_stats_report(const std::string& prefix) {
  StatsReport report;
  std::vector<util::MetricSnapshot> snapshots = util::metrics().snapshot(prefix);
  report.entries.reserve(snapshots.size());
  for (util::MetricSnapshot& snap : snapshots) {
    StatsEntry entry;
    entry.name = std::move(snap.name);
    entry.kind = static_cast<std::uint8_t>(snap.kind);
    entry.value = snap.value;
    entry.count = snap.count;
    entry.sum = snap.sum;
    entry.buckets = std::move(snap.buckets);
    report.entries.push_back(std::move(entry));
  }
  return report;
}

namespace {

Frame recv_frame_on(Socket& socket, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  socket.recv_exact(header, sizeof(header), timeout_ms);
  const FrameHeader decoded = decode_frame_header(header);
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket.recv_exact(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
  return frame;
}

void send_frame_on(Socket& socket, MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

}  // namespace

StatsReport fetch_stats(const std::string& host, std::uint16_t port, const std::string& prefix,
                        int timeout_ms) {
  Socket socket = Socket::connect(Endpoint{host, port}, timeout_ms);

  WireWriter hello;
  write_hello_payload(hello, "ecad-stats", kProtocolVersion);
  send_frame_on(socket, MsgType::Hello, hello.bytes());
  const Frame ack = recv_frame_on(socket, timeout_ms);
  if (ack.type != MsgType::HelloAck) {
    throw NetError("stats: expected HelloAck, got " + std::string(to_string(ack.type)));
  }
  WireReader ack_reader(ack.payload);
  const HelloPayload payload = read_hello_payload(ack_reader);
  const std::uint16_t negotiated = std::min(kProtocolVersion, payload.max_version);
  if (negotiated < 5) {
    throw WireError("stats: peer '" + payload.name + "' speaks v" + std::to_string(negotiated) +
                    " (stats frames need v5)");
  }

  GetStats request;
  request.prefix = prefix;
  WireWriter writer;
  write_get_stats(writer, request);
  send_frame_on(socket, MsgType::GetStats, writer.bytes());

  const Frame frame = recv_frame_on(socket, timeout_ms);
  if (frame.type != MsgType::StatsReport) {
    throw NetError("stats: expected StatsReport, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  StatsReport report = read_stats_report(reader);
  reader.expect_end();
  return report;
}

}  // namespace ecad::net
