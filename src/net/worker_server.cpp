#include "net/worker_server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "net/stats.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ecad::net {

WorkerServer::WorkerServer(const core::Worker& worker, WorkerServerOptions options)
    : worker_(worker), options_(std::move(options)), cache_(options_.cache_bytes) {}

WorkerServer::~WorkerServer() { stop(); }

void WorkerServer::start() {
  if (pool_) return;  // already started
  listener_ = Listener(options_.host, options_.port);
  port_ = listener_.port();
  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { run_loop(); });
  util::Log(util::LogLevel::Info, "net")
      << "worker server '" << worker_.name() << "' listening on " << options_.host << ":" << port_
      << " (" << pool_->size() << " eval threads)";
}

void WorkerServer::stop() {
  // Full teardown must run even when the event loop already exited on its
  // own (peer Shutdown frame, poll failure) — running_ being false only
  // means the loop is done, not that the thread was joined or the pool
  // drained; skipping the join here would std::terminate in ~WorkerServer.
  running_.store(false, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
  if (!pool_) return;  // never started, or a previous stop() finished
  // Shut the sockets down *before* draining the pool: a task blocked in
  // send_all() against a stalled peer is only unblocked by shutdown(2), so
  // the reverse order could wait on it forever.
  for (const auto& connection : connections_) {
    connection->closed.store(true, std::memory_order_release);
    connection->socket.shutdown_both();
  }
  pool_->shutdown();
  pool_.reset();
  connections_.clear();
  listener_.close();
  util::Log(util::LogLevel::Info, "net")
      << "worker server on port " << port_ << " stopped after "
      << requests_served_.load(std::memory_order_relaxed) << " evaluations";
}

void WorkerServer::send_frame(const std::shared_ptr<Connection>& connection, MsgType type,
                              const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  util::MutexLock lock(connection->write_mutex);
  if (connection->closed.load(std::memory_order_acquire)) return;
  connection->socket.send_all(frame.data(), frame.size());
}

bool WorkerServer::handle_frame(const std::shared_ptr<Connection>& connection, Frame frame) {
  switch (frame.type) {
    case MsgType::Hello: {
      WireReader reader(frame.payload);
      const HelloPayload hello = read_hello_payload(reader);
      connection->version = std::min(hello.max_version, options_.max_protocol);
      util::Log(util::LogLevel::Debug, "net")
          << "hello from '" << hello.name << "' (max v" << hello.max_version << "); speaking v"
          << connection->version;
      WireWriter ack;
      // A v1 ack (no trailer) for v1 connections: byte-identical to the v1
      // encoder, so old clients never see bytes they would reject.
      write_hello_payload(ack, worker_.name(), connection->version);
      send_frame(connection, MsgType::HelloAck, ack.bytes());
      return true;
    }
    case MsgType::Ping:
      send_frame(connection, MsgType::Pong, {});
      return true;
    case MsgType::Shutdown:
      util::Log(util::LogLevel::Info, "net") << "shutdown requested by peer";
      running_.store(false, std::memory_order_release);
      return false;
    case MsgType::EvalRequest: {
      if (options_.cache_only) {
        util::Log(util::LogLevel::Warn, "net")
            << "EvalRequest on a cache-only daemon; dropping connection";
        return false;
      }
      // Parse on the loop thread (cheap, and malformed frames drop the
      // connection right here); evaluate + respond on the pool.
      WireReader reader(frame.payload);
      const std::uint64_t request_id = reader.get_u64();
      evo::Genome genome = read_genome(reader);
      reader.expect_end();
      pool_->submit([this, connection, request_id, genome = std::move(genome)] {
        static util::Gauge& concurrent = util::metrics().gauge("workerd.concurrent_evals");
        concurrent.add(1.0);
        const evo::EvalOutcome outcome = core::evaluate_outcome(worker_, genome);
        concurrent.add(-1.0);
        WireWriter response;
        response.put_u64(request_id);
        response.put_bool(outcome.ok);
        if (outcome.ok) {
          write_eval_result(response, outcome.result);
        } else {
          response.put_string(outcome.error);
        }
        // Count before writing: a client that already holds the response must
        // never observe a counter that excludes it.
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        try {
          send_frame(connection, MsgType::EvalResponse, response.bytes());
        } catch (const NetError& e) {
          // Master went away while we were computing; nothing to answer.
          util::Log(util::LogLevel::Debug, "net") << "response dropped: " << e.what();
        }
      });
      return true;
    }
    case MsgType::EvalBatchRequest: {
      if (connection->version < 2) {
        util::Log(util::LogLevel::Warn, "net")
            << "EvalBatchRequest on a v" << connection->version
            << " connection; dropping connection";
        return false;
      }
      if (options_.cache_only) {
        util::Log(util::LogLevel::Warn, "net")
            << "EvalBatchRequest on a cache-only daemon; dropping connection";
        return false;
      }
      handle_batch_request(connection, std::move(frame));
      return true;
    }
    case MsgType::CacheLookup: {
      if (connection->version < 6) {
        util::Log(util::LogLevel::Warn, "net")
            << "CacheLookup on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      // Served on the loop thread: lookups are a handful of map probes, far
      // cheaper than the evaluations they displace.  The answer is a
      // CacheStore frame carrying only the hits — an absent key was a miss.
      WireReader reader(frame.payload);
      const CacheLookup lookup = read_cache_lookup(reader);
      reader.expect_end();
      CacheStore found;
      for (const std::uint64_t key : lookup.keys) {
        if (auto result = cache_.lookup(key)) {
          found.entries.push_back(CacheEntry{key, *result});
        }
      }
      WireWriter writer;
      write_cache_store(writer, found);
      send_frame(connection, MsgType::CacheStore, writer.bytes());
      return true;
    }
    case MsgType::CacheStore: {
      if (connection->version < 6) {
        util::Log(util::LogLevel::Warn, "net")
            << "CacheStore on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      // Fire-and-forget publish from a master; no acknowledgement frame.
      WireReader reader(frame.payload);
      const CacheStore store = read_cache_store(reader);
      reader.expect_end();
      for (const CacheEntry& entry : store.entries) cache_.store(entry.key, entry.result);
      return true;
    }
    case MsgType::GetStats: {
      if (connection->version < 5) {
        util::Log(util::LogLevel::Warn, "net")
            << "GetStats on a v" << connection->version << " connection; dropping connection";
        return false;
      }
      WireReader reader(frame.payload);
      const GetStats request = read_get_stats(reader);
      reader.expect_end();
      WireWriter writer;
      write_stats_report(writer, snapshot_stats_report(request.prefix));
      send_frame(connection, MsgType::StatsReport, writer.bytes());
      return true;
    }
    case MsgType::HelloAck:
    case MsgType::Pong:
    case MsgType::EvalResponse:
    case MsgType::EvalBatchResponse:
    case MsgType::EvalItemResult:
    case MsgType::EvalBatchDone:
    // The search-service frames (v4) belong to ecad_searchd's SearchServer;
    // an evaluation daemon never accepts whole searches.
    case MsgType::SubmitSearch:
    case MsgType::SearchAccepted:
    case MsgType::SearchProgress:
    case MsgType::SearchDone:
    case MsgType::CancelSearch:
    // A daemon never *receives* its own answer frame.
    case MsgType::StatsReport:
      util::Log(util::LogLevel::Warn, "net")
          << "unexpected " << to_string(frame.type) << " from client; dropping connection";
      return false;
  }
  return false;
}

void WorkerServer::handle_batch_request(const std::shared_ptr<Connection>& connection,
                                        Frame frame) {
  WireReader reader(frame.payload);
  EvalBatchRequest request = read_eval_batch_request(reader);
  reader.expect_end();

  static util::Counter& batches = util::metrics().counter("workerd.batches_total");
  batches.add(1);
  static util::Gauge& pending_items = util::metrics().gauge("workerd.pending_items");
  pending_items.add(static_cast<double>(request.genomes.size()));
  util::trace_instant("workerd", "batch " + std::to_string(request.batch_id) + " accepted n=" +
                                     std::to_string(request.genomes.size()));

  // Shared by the batch's pool tasks: outcome slots are written by disjoint
  // indices, `remaining` elects the task that sends the terminal frame.
  struct BatchJob {
    std::uint64_t batch_id = 0;
    std::vector<evo::Genome> genomes;
    std::vector<evo::EvalOutcome> outcomes;
    std::atomic<std::size_t> remaining{0};
  };
  auto job = std::make_shared<BatchJob>();
  job->batch_id = request.batch_id;
  job->genomes = std::move(request.genomes);
  job->outcomes.resize(job->genomes.size());
  job->remaining.store(job->genomes.size(), std::memory_order_relaxed);

  // v3 connections get streamed per-item frames (one the moment each item
  // completes, in completion order) closed by EvalBatchDone; v2 connections
  // keep the single collected EvalBatchResponse byte-for-byte.
  const bool streaming = connection->version >= 3;

  auto finish = [this, connection, job, streaming] {
    WireWriter writer;
    MsgType type;
    if (streaming) {
      EvalBatchDone done;
      done.batch_id = job->batch_id;
      done.count = static_cast<std::uint32_t>(job->outcomes.size());
      write_eval_batch_done(writer, done);
      type = MsgType::EvalBatchDone;
    } else {
      EvalBatchResponse response;
      response.batch_id = job->batch_id;
      response.items = std::move(job->outcomes);
      write_eval_batch_response(writer, response);
      type = MsgType::EvalBatchResponse;
      // Count before writing: a client holding the response must never
      // observe a counter that excludes it.  (Streamed items were already
      // counted as their frames went out.)
      requests_served_.fetch_add(response.items.size(), std::memory_order_relaxed);
    }
    try {
      send_frame(connection, type, writer.bytes());
    } catch (const NetError& e) {
      util::Log(util::LogLevel::Debug, "net") << "batch response dropped: " << e.what();
    }
  };
  if (job->genomes.empty()) {  // degenerate but legal: answer immediately
    finish();
    return;
  }
  for (std::size_t i = 0; i < job->genomes.size(); ++i) {
    pool_->submit([this, connection, job, finish, streaming, i] {
      static util::Gauge& concurrent = util::metrics().gauge("workerd.concurrent_evals");
      static util::Gauge& pending = util::metrics().gauge("workerd.pending_items");
      concurrent.add(1.0);
      evo::EvalOutcome outcome;
      {
        util::TraceSpan span("workerd",
                             "batch " + std::to_string(job->batch_id) + " item " +
                                 std::to_string(i));
        outcome = core::evaluate_outcome(worker_, job->genomes[i]);
      }
      concurrent.add(-1.0);
      pending.add(-1.0);
      if (streaming) {
        // The outcome travels in its own frame right now; finish() only
        // needs outcomes.size() for EvalBatchDone, so skip the store.
        EvalItemResult item;
        item.batch_id = job->batch_id;
        item.index = static_cast<std::uint32_t>(i);
        item.outcome = std::move(outcome);
        WireWriter writer;
        write_eval_item_result(writer, item);
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        try {
          send_frame(connection, MsgType::EvalItemResult, writer.bytes());
        } catch (const NetError& e) {
          util::Log(util::LogLevel::Debug, "net") << "item frame dropped: " << e.what();
        }
      } else {
        job->outcomes[i] = std::move(outcome);
      }
      if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) finish();
    });
  }
}

void WorkerServer::run_loop() {
  std::vector<std::uint8_t> scratch(64 * 1024);
  while (running_.load(std::memory_order_acquire)) {
    // (Re)build the poll set: listener + every live connection.
    std::vector<struct pollfd> pfds;
    pfds.reserve(connections_.size() + 1);
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& connection : connections_) {
      pfds.push_back({connection->socket.fd(), POLLIN, 0});
    }
    const int rc = ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::Log(util::LogLevel::Error, "net") << "poll failed; stopping server";
      running_.store(false, std::memory_order_release);  // running() must not lie
      break;
    }
    if (rc == 0) continue;

    // The number of connections the poll set was built from; accepting below
    // grows connections_, but those new entries have no pfds slot this round.
    const std::size_t polled = connections_.size();

    if (pfds[0].revents & POLLIN) {
      try {
        if (auto accepted = listener_.accept(0)) {
          auto connection = std::make_shared<Connection>();
          connection->socket = std::move(*accepted);
          connections_.push_back(std::move(connection));
        }
      } catch (const NetError& e) {
        util::Log(util::LogLevel::Warn, "net") << "accept failed: " << e.what();
      }
    }

    std::vector<std::shared_ptr<Connection>> dead;
    for (std::size_t i = 0; i < polled; ++i) {
      const auto& connection = connections_[i];
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      bool keep = (revents & (POLLERR | POLLNVAL)) == 0;
      if (keep && (revents & (POLLIN | POLLHUP))) {
        try {
          const std::size_t n =
              connection->socket.recv_some(scratch.data(), scratch.size(), 0);
          if (n > 0) {
            connection->inbox.insert(connection->inbox.end(), scratch.begin(),
                                     scratch.begin() + static_cast<std::ptrdiff_t>(n));
            Frame frame;
            while (keep && try_extract_frame(connection->inbox, frame)) {
              keep = handle_frame(connection, std::move(frame));
            }
          }
        } catch (const NetError&) {
          keep = false;  // peer EOF or reset
        } catch (const WireError& e) {
          util::Log(util::LogLevel::Warn, "net")
              << "protocol error: " << e.what() << "; dropping connection";
          keep = false;
        }
      }
      if (!keep) dead.push_back(connection);
    }
    for (const auto& connection : dead) {
      connection->closed.store(true, std::memory_order_release);
      connection->socket.shutdown_both();
      connections_.erase(std::remove(connections_.begin(), connections_.end(), connection),
                         connections_.end());
    }
  }
}

}  // namespace ecad::net
