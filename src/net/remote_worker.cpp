#include "net/remote_worker.h"

#include <algorithm>
#include <climits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace ecad::net {

namespace {

/// The worker itself threw while evaluating — a property of the genome, not
/// of the connection that carried it.
class RemoteEvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void send_frame_on(Socket& socket, MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

Frame recv_frame_on(Socket& socket, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  socket.recv_exact(header, sizeof(header), timeout_ms);
  const FrameHeader decoded = decode_frame_header(header);
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket.recv_exact(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
  return frame;
}

/// Hello/HelloAck at `attempt_max`; returns the negotiated version.
std::uint16_t handshake_on(Socket& socket, std::uint16_t attempt_max, int timeout_ms) {
  WireWriter hello;
  write_hello_payload(hello, "ecad-master", attempt_max);
  send_frame_on(socket, MsgType::Hello, hello.bytes());
  const Frame ack = recv_frame_on(socket, timeout_ms);
  if (ack.type != MsgType::HelloAck) {
    throw NetError("handshake: expected HelloAck, got " + std::string(to_string(ack.type)));
  }
  WireReader reader(ack.payload);
  const HelloPayload payload = read_hello_payload(reader);
  return std::min(attempt_max, payload.max_version);
}

/// A whole shard waits on one response frame; give it the per-item budget
/// times the shard size (negative timeouts keep meaning "block forever").
int batch_timeout_ms(int per_item_ms, std::size_t items) {
  if (per_item_ms < 0) return -1;
  const long long total =
      static_cast<long long>(per_item_ms) * static_cast<long long>(std::max<std::size_t>(1, items));
  return total > INT_MAX ? INT_MAX : static_cast<int>(total);
}

}  // namespace

RemoteWorker::RemoteWorker(RemoteWorkerOptions options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("RemoteWorker: endpoint list is empty");
  }
  if (options_.max_protocol < kMinProtocolVersion) {
    throw std::invalid_argument("RemoteWorker: max_protocol must be >= " +
                                std::to_string(kMinProtocolVersion));
  }
  states_.reserve(options_.endpoints.size());
  for (const Endpoint& endpoint : options_.endpoints) {
    EndpointState state;
    state.endpoint = endpoint;
    state.max_version = std::min(options_.max_protocol, kProtocolVersion);
    states_.push_back(std::move(state));
  }
  if (options_.heartbeat_interval_ms > 0) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

RemoteWorker::~RemoteWorker() {
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    stopping_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

std::string RemoteWorker::name() const {
  return "remote(" + std::to_string(options_.endpoints.size()) + " endpoints)";
}

bool RemoteWorker::endpoint_available(const EndpointState& state, Clock::time_point now) const {
  if (!state.down) return true;
  // Without a heartbeat thread the fixed cooldown window is the only way
  // back in; with one, only a successful ping revives the endpoint.
  return options_.heartbeat_interval_ms <= 0 && now >= state.down_until;
}

bool RemoteWorker::connect_endpoint(std::size_t endpoint_index, PooledConnection& out) const {
  Endpoint endpoint;
  std::uint16_t attempt = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const EndpointState& state = states_[endpoint_index];
    endpoint = state.endpoint;
    attempt = std::min(state.max_version, options_.max_protocol);
  }
  for (;;) {
    Socket socket;
    try {
      socket = Socket::connect(endpoint, options_.connect_timeout_ms);
    } catch (const NetError& e) {
      // TCP-level failure: the host is down or unreachable.  No downgrade
      // retry — a v1 greeting cannot fix a refused connection, it would
      // only double the connect timeout per checkout of a dead endpoint.
      util::Log(util::LogLevel::Debug, "net")
          << "endpoint " << endpoint.to_string() << " unavailable: " << e.what();
      penalize(endpoint_index);
      return false;
    }
    try {
      const std::uint16_t negotiated =
          handshake_on(socket, attempt, options_.connect_timeout_ms);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        EndpointState& state = states_[endpoint_index];
        state.down = false;
        state.max_version = negotiated;
      }
      out.socket = std::move(socket);
      out.version = negotiated;
      return true;
    } catch (const NetError& e) {
      // The connection came up but the handshake died — a peer so old it
      // drops the v2 Hello (trailing-bytes error) closes before acking.
      // Retry once with the exact v1 greeting.
      if (attempt >= 2) {
        util::Log(util::LogLevel::Debug, "net")
            << "v" << attempt << " handshake with " << endpoint.to_string() << " failed ("
            << e.what() << "); retrying as v1";
        attempt = 1;
        continue;
      }
      util::Log(util::LogLevel::Debug, "net")
          << "endpoint " << endpoint.to_string() << " handshake failed: " << e.what();
    } catch (const WireError& e) {
      if (attempt >= 2) {
        attempt = 1;
        continue;
      }
      util::Log(util::LogLevel::Warn, "net")
          << "endpoint " << endpoint.to_string() << " protocol mismatch: " << e.what();
    }
    penalize(endpoint_index);
    return false;
  }
}

bool RemoteWorker::checkout(Checkout& out) const {
  const std::size_t count = states_.size();
  const std::size_t start = round_robin_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t offset = 0; offset < count; ++offset) {
    const std::size_t index = (start + offset) % count;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EndpointState& state = states_[index];
      if (!endpoint_available(state, Clock::now())) continue;
      if (!state.idle.empty()) {
        out.endpoint_index = index;
        out.connection = std::move(state.idle.back());
        state.idle.pop_back();
        return true;
      }
    }
    // Connect + handshake outside the lock: a slow or dead endpoint must not
    // stall the other evaluation threads.
    if (connect_endpoint(index, out.connection)) {
      out.endpoint_index = index;
      return true;
    }
  }
  return false;
}

bool RemoteWorker::checkout_endpoint(std::size_t endpoint_index, Checkout& out) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EndpointState& state = states_[endpoint_index];
    if (!endpoint_available(state, Clock::now())) return false;
    if (!state.idle.empty()) {
      out.endpoint_index = endpoint_index;
      out.connection = std::move(state.idle.back());
      state.idle.pop_back();
      return true;
    }
  }
  if (connect_endpoint(endpoint_index, out.connection)) {
    out.endpoint_index = endpoint_index;
    return true;
  }
  return false;
}

void RemoteWorker::check_in(Checkout&& checkout) const {
  std::lock_guard<std::mutex> lock(mutex_);
  states_[checkout.endpoint_index].idle.push_back(std::move(checkout.connection));
}

void RemoteWorker::penalize(std::size_t endpoint_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointState& state = states_[endpoint_index];
  state.down = true;
  state.down_until = Clock::now() + std::chrono::milliseconds(options_.endpoint_cooldown_ms);
  state.idle.clear();  // stale sockets to a failed daemon are worthless
}

void RemoteWorker::record_throughput(std::size_t endpoint_index, std::size_t items,
                                     double seconds) const {
  if (items == 0 || seconds <= 0.0) return;
  const double observed = static_cast<double>(items) / seconds;
  std::lock_guard<std::mutex> lock(mutex_);
  double& ips = states_[endpoint_index].throughput_ips;
  ips = ips <= 0.0 ? observed : 0.7 * ips + 0.3 * observed;
}

evo::EvalResult RemoteWorker::exchange(Socket& socket, const evo::Genome& genome) const {
  const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  WireWriter request;
  request.put_u64(request_id);
  write_genome(request, genome);
  send_frame_on(socket, MsgType::EvalRequest, request.bytes());

  const Frame frame = recv_frame_on(socket, options_.request_timeout_ms);
  if (frame.type != MsgType::EvalResponse) {
    throw NetError("expected EvalResponse, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  const std::uint64_t response_id = reader.get_u64();
  if (response_id != request_id) {
    throw NetError("response id mismatch (" + std::to_string(response_id) + " != " +
                   std::to_string(request_id) + ")");
  }
  const bool ok = reader.get_bool();
  if (!ok) {
    // The remote worker itself threw. Deterministic per genome — retrying on
    // another endpoint would fail identically, so surface it to the Master.
    const std::string message = reader.get_string();
    reader.expect_end();
    throw RemoteEvalError("remote evaluation failed: " + message);
  }
  const evo::EvalResult result = read_eval_result(reader);
  reader.expect_end();
  return result;
}

void RemoteWorker::exchange_batch(Socket& socket, const std::vector<evo::Genome>& genomes,
                                  const std::vector<std::size_t>& items,
                                  std::vector<evo::EvalOutcome>& outcomes) const {
  EvalBatchRequest request;
  request.batch_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.genomes.reserve(items.size());
  for (std::size_t index : items) request.genomes.push_back(genomes[index]);
  WireWriter writer;
  write_eval_batch_request(writer, request);
  send_frame_on(socket, MsgType::EvalBatchRequest, writer.bytes());
  batches_dispatched_.fetch_add(1, std::memory_order_relaxed);

  const Frame frame =
      recv_frame_on(socket, batch_timeout_ms(options_.request_timeout_ms, items.size()));
  if (frame.type != MsgType::EvalBatchResponse) {
    throw NetError("expected EvalBatchResponse, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  EvalBatchResponse response = read_eval_batch_response(reader);
  reader.expect_end();
  if (response.batch_id != request.batch_id) {
    throw NetError("batch id mismatch (" + std::to_string(response.batch_id) + " != " +
                   std::to_string(request.batch_id) + ")");
  }
  if (response.items.size() != items.size()) {
    throw WireError("wire: batch response holds " + std::to_string(response.items.size()) +
                    " outcomes for " + std::to_string(items.size()) + " genomes");
  }
  for (std::size_t k = 0; k < items.size(); ++k) {
    evo::EvalOutcome& slot = outcomes[items[k]];
    slot = std::move(response.items[k]);
    if (!slot.ok) slot.error = "remote evaluation failed: " + slot.error;
  }
}

void RemoteWorker::exchange_pipelined(Socket& socket, const std::vector<evo::Genome>& genomes,
                                      const std::vector<std::size_t>& items,
                                      std::vector<evo::EvalOutcome>& outcomes) const {
  std::unordered_map<std::uint64_t, std::size_t> in_flight;  // request id -> genome index
  in_flight.reserve(items.size());
  for (std::size_t index : items) {
    const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    WireWriter request;
    request.put_u64(request_id);
    write_genome(request, genomes[index]);
    send_frame_on(socket, MsgType::EvalRequest, request.bytes());
    in_flight.emplace(request_id, index);
  }
  while (!in_flight.empty()) {
    const Frame frame = recv_frame_on(socket, options_.request_timeout_ms);
    if (frame.type != MsgType::EvalResponse) {
      throw NetError("expected EvalResponse, got " + std::string(to_string(frame.type)));
    }
    WireReader reader(frame.payload);
    const std::uint64_t response_id = reader.get_u64();
    const auto it = in_flight.find(response_id);
    if (it == in_flight.end()) {
      throw NetError("response id " + std::to_string(response_id) + " is not in flight");
    }
    evo::EvalOutcome& slot = outcomes[it->second];
    if (reader.get_bool()) {
      slot.result = read_eval_result(reader);
      reader.expect_end();
      slot.ok = true;
    } else {
      // Remote evaluation failure: deterministic per genome, settles the
      // slot instead of being retried elsewhere.
      slot.error = "remote evaluation failed: " + reader.get_string();
      reader.expect_end();
    }
    in_flight.erase(it);
  }
}

void RemoteWorker::run_shard(std::size_t endpoint_index, const std::vector<evo::Genome>& genomes,
                             const std::vector<std::size_t>& items,
                             std::vector<evo::EvalOutcome>& outcomes,
                             std::vector<std::size_t>& unfinished) const {
  Checkout conn;
  if (!checkout_endpoint(endpoint_index, conn)) {
    unfinished = items;
    return;
  }
  // An outcome slot is settled once it holds a result or an error message;
  // anything else was lost to the connection fault and must be re-sharded.
  const auto settled = [&outcomes](std::size_t index) {
    return outcomes[index].ok || !outcomes[index].error.empty();
  };
  util::Stopwatch watch;
  try {
    if (conn.connection.version >= 2) {
      exchange_batch(conn.connection.socket, genomes, items, outcomes);
    } else {
      // v1-only endpoint: the shard degrades to per-genome frames pipelined
      // on the one pooled connection (still a single connect/handshake, and
      // the daemon's pool still runs the items concurrently).
      exchange_pipelined(conn.connection.socket, genomes, items, outcomes);
    }
    record_throughput(endpoint_index, items.size(), watch.elapsed_seconds());
    check_in(std::move(conn));
  } catch (const NetError& e) {
    util::Log(util::LogLevel::Warn, "net")
        << "batch shard on " << options_.endpoints[endpoint_index].to_string() << " failed ("
        << e.what() << "); re-sharding";
    penalize(endpoint_index);
  } catch (const WireError& e) {
    util::Log(util::LogLevel::Warn, "net")
        << "malformed batch response from " << options_.endpoints[endpoint_index].to_string()
        << " (" << e.what() << "); re-sharding";
    penalize(endpoint_index);
  }
  std::size_t settled_count = 0;
  for (std::size_t index : items) {
    if (settled(index)) {
      ++settled_count;  // includes slots a failed shard settled before dying
    } else {
      unfinished.push_back(index);
    }
  }
  remote_evaluations_.fetch_add(settled_count, std::memory_order_relaxed);
}

std::vector<evo::EvalOutcome> RemoteWorker::evaluate_batch(const std::vector<evo::Genome>& genomes,
                                                           util::ThreadPool& pool) const {
  std::vector<evo::EvalOutcome> outcomes(genomes.size());
  if (genomes.empty()) return outcomes;

  std::vector<std::size_t> pending(genomes.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  struct Shard {
    std::size_t endpoint_index = 0;
    std::vector<std::size_t> items;
  };

  // Each scheduling round shards `pending` across the currently healthy
  // endpoints proportionally to their observed throughput (largest-remainder
  // apportionment; unknown endpoints get the mean weight), runs the shards
  // concurrently, and re-shards whatever a dying endpoint left unfinished.
  const std::size_t max_rounds =
      std::max<std::size_t>(1, options_.max_rounds) * states_.size() + 1;
  for (std::size_t round = 0; round < max_rounds && !pending.empty(); ++round) {
    std::vector<std::size_t> available;
    std::vector<double> weights;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (!endpoint_available(states_[i], now)) continue;
        available.push_back(i);
        weights.push_back(states_[i].throughput_ips);
      }
    }
    if (available.empty()) break;  // nothing reachable; fall through to fallback

    double known_sum = 0.0;
    std::size_t known = 0;
    for (double w : weights) {
      if (w > 0.0) {
        known_sum += w;
        ++known;
      }
    }
    const double default_weight = known > 0 ? known_sum / static_cast<double>(known) : 1.0;
    double total_weight = 0.0;
    for (double& w : weights) {
      if (w <= 0.0) w = default_weight;
      total_weight += w;
    }

    // Integer apportionment of pending.size() items: floors first, then the
    // largest fractional remainders claim the leftovers.
    const std::size_t total_items = pending.size();
    std::vector<std::size_t> counts(available.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t s = 0; s < available.size(); ++s) {
      const double exact = static_cast<double>(total_items) * weights[s] / total_weight;
      counts[s] = std::min<std::size_t>(static_cast<std::size_t>(exact), kMaxBatchItems);
      assigned += counts[s];
      remainders.emplace_back(exact - static_cast<double>(counts[s]), s);
    }
    std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (std::size_t k = 0; assigned < total_items && k < remainders.size(); ++k) {
      const std::size_t s = remainders[k].second;
      if (counts[s] >= kMaxBatchItems) continue;
      ++counts[s];
      ++assigned;
    }

    std::vector<Shard> shards;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < available.size() && cursor < total_items; ++s) {
      if (counts[s] == 0) continue;
      Shard shard;
      shard.endpoint_index = available[s];
      const std::size_t take = std::min(counts[s], total_items - cursor);
      shard.items.assign(pending.begin() + static_cast<std::ptrdiff_t>(cursor),
                         pending.begin() + static_cast<std::ptrdiff_t>(cursor + take));
      cursor += take;
      shards.push_back(std::move(shard));
    }

    std::vector<std::vector<std::size_t>> unfinished(shards.size());
    if (shards.size() == 1) {
      run_shard(shards[0].endpoint_index, genomes, shards[0].items, outcomes, unfinished[0]);
    } else {
      pool.parallel_for(shards.size(), [&](std::size_t s) {
        run_shard(shards[s].endpoint_index, genomes, shards[s].items, outcomes, unfinished[s]);
      });
    }

    std::vector<std::size_t> next;
    // Items the apportionment could not place this round (batch-size caps)
    // stay pending alongside whatever the shards could not finish.
    next.insert(next.end(), pending.begin() + static_cast<std::ptrdiff_t>(cursor), pending.end());
    for (const std::vector<std::size_t>& shard_unfinished : unfinished) {
      next.insert(next.end(), shard_unfinished.begin(), shard_unfinished.end());
    }
    std::sort(next.begin(), next.end());
    pending = std::move(next);
  }

  if (!pending.empty()) {
    if (options_.fallback == nullptr) {
      throw NetError("RemoteWorker: no evaluation daemon reachable and no local fallback configured");
    }
    util::Log(util::LogLevel::Warn, "net")
        << "no evaluation daemon reachable for " << pending.size()
        << " batch items; falling back to local worker '" << options_.fallback->name() << "'";
    std::vector<evo::Genome> rest;
    rest.reserve(pending.size());
    for (std::size_t index : pending) rest.push_back(genomes[index]);
    std::vector<evo::EvalOutcome> rest_outcomes = options_.fallback->evaluate_batch(rest, pool);
    for (std::size_t k = 0; k < pending.size() && k < rest_outcomes.size(); ++k) {
      outcomes[pending[k]] = std::move(rest_outcomes[k]);
    }
    fallback_evaluations_.fetch_add(pending.size(), std::memory_order_relaxed);
  }
  return outcomes;
}

evo::EvalResult RemoteWorker::evaluate(const evo::Genome& genome) const {
  const std::size_t attempts = options_.max_rounds * states_.size();
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    Checkout conn;
    if (!checkout(conn)) break;  // every endpoint down or cooling off
    try {
      const evo::EvalResult result = exchange(conn.connection.socket, genome);
      remote_evaluations_.fetch_add(1, std::memory_order_relaxed);
      check_in(std::move(conn));
      return result;
    } catch (const RemoteEvalError&) {
      // The exchange itself completed — the connection is healthy, only the
      // genome is poison. Return the socket for reuse and let the error
      // surface to the Master.
      check_in(std::move(conn));
      throw;
    } catch (const NetError& e) {
      // Disconnect / timeout / protocol break mid-exchange: drop this
      // connection, sideline the endpoint, move on to the next one.
      util::Log(util::LogLevel::Warn, "net")
          << "evaluation on " << options_.endpoints[conn.endpoint_index].to_string()
          << " failed (" << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    } catch (const WireError& e) {
      util::Log(util::LogLevel::Warn, "net")
          << "malformed response from " << options_.endpoints[conn.endpoint_index].to_string()
          << " (" << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    }
  }
  if (options_.fallback != nullptr) {
    fallback_evaluations_.fetch_add(1, std::memory_order_relaxed);
    util::Log(util::LogLevel::Warn, "net")
        << "no evaluation daemon reachable; falling back to local worker '"
        << options_.fallback->name() << "'";
    return options_.fallback->evaluate(genome);
  }
  throw NetError("RemoteWorker: no evaluation daemon reachable and no local fallback configured");
}

std::size_t RemoteWorker::ping_all() const {
  std::size_t alive = 0;
  for (std::size_t index = 0; index < states_.size(); ++index) {
    Endpoint endpoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      endpoint = states_[index].endpoint;
    }
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Ping, {});
      const Frame frame = recv_frame_on(socket, options_.connect_timeout_ms);
      if (frame.type == MsgType::Pong) ++alive;
    } catch (const NetError&) {
    } catch (const WireError&) {
    }
  }
  return alive;
}

std::size_t RemoteWorker::healthy_endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point now = Clock::now();
  std::size_t healthy = 0;
  for (const EndpointState& state : states_) {
    if (endpoint_available(state, now)) ++healthy;
  }
  return healthy;
}

void RemoteWorker::shutdown_all() const {
  for (std::size_t index = 0; index < states_.size(); ++index) {
    Endpoint endpoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      endpoint = states_[index].endpoint;
    }
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Shutdown, {});
    } catch (const NetError&) {
      // Already gone — that's what shutdown wanted anyway.
    }
  }
}

void RemoteWorker::heartbeat_loop() {
  const auto interval = std::chrono::milliseconds(options_.heartbeat_interval_ms);
  std::unique_lock<std::mutex> lock(heartbeat_mutex_);
  while (!stopping_) {
    heartbeat_cv_.wait_for(lock, interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();

    std::vector<std::size_t> sidelined;
    {
      std::lock_guard<std::mutex> state_lock(mutex_);
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].down) sidelined.push_back(i);
      }
    }
    for (std::size_t index : sidelined) {
      Endpoint endpoint;
      {
        std::lock_guard<std::mutex> state_lock(mutex_);
        endpoint = states_[index].endpoint;
      }
      try {
        Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
        send_frame_on(socket, MsgType::Ping, {});
        const Frame frame = recv_frame_on(socket, options_.connect_timeout_ms);
        if (frame.type != MsgType::Pong) continue;
        {
          std::lock_guard<std::mutex> state_lock(mutex_);
          EndpointState& state = states_[index];
          if (!state.down) continue;  // an evaluation beat us to it
          state.down = false;
          // A restarted daemon may speak a different protocol generation
          // than its predecessor; rediscover in the next handshake.
          state.max_version = std::min(options_.max_protocol, kProtocolVersion);
        }
        heartbeat_rejoins_.fetch_add(1, std::memory_order_relaxed);
        util::Log(util::LogLevel::Info, "net")
            << "endpoint " << endpoint.to_string() << " rejoined the pool via heartbeat ping";
      } catch (const NetError&) {
        // Still down; try again next tick.
      } catch (const WireError&) {
      }
    }
    lock.lock();
  }
}

}  // namespace ecad::net
