#include "net/remote_worker.h"

#include <stdexcept>

#include "net/wire.h"
#include "util/logging.h"

namespace ecad::net {

namespace {

/// The worker itself threw while evaluating — a property of the genome, not
/// of the connection that carried it.
class RemoteEvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void send_frame_on(Socket& socket, MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

Frame recv_frame_on(Socket& socket, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  socket.recv_exact(header, sizeof(header), timeout_ms);
  const FrameHeader decoded = decode_frame_header(header);
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket.recv_exact(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
  return frame;
}

}  // namespace

RemoteWorker::RemoteWorker(RemoteWorkerOptions options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("RemoteWorker: endpoint list is empty");
  }
  states_.reserve(options_.endpoints.size());
  for (const Endpoint& endpoint : options_.endpoints) {
    EndpointState state;
    state.endpoint = endpoint;
    states_.push_back(std::move(state));
  }
}

std::string RemoteWorker::name() const {
  return "remote(" + std::to_string(options_.endpoints.size()) + " endpoints)";
}

bool RemoteWorker::checkout(Checkout& out) const {
  const std::size_t count = states_.size();
  const std::size_t start = round_robin_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t offset = 0; offset < count; ++offset) {
    const std::size_t index = (start + offset) % count;
    Endpoint endpoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EndpointState& state = states_[index];
      if (Clock::now() < state.down_until) continue;
      if (!state.idle.empty()) {
        out.endpoint_index = index;
        out.socket = std::move(state.idle.back());
        state.idle.pop_back();
        return true;
      }
      endpoint = state.endpoint;
    }
    // Connect + handshake outside the lock: a slow or dead endpoint must not
    // stall the other evaluation threads.
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      WireWriter hello;
      hello.put_string("ecad-master");
      send_frame_on(socket, MsgType::Hello, hello.bytes());
      const Frame ack = recv_frame_on(socket, options_.connect_timeout_ms);
      if (ack.type != MsgType::HelloAck) {
        throw NetError("handshake: expected HelloAck, got " + std::string(to_string(ack.type)));
      }
      out.endpoint_index = index;
      out.socket = std::move(socket);
      return true;
    } catch (const NetError& e) {
      util::Log(util::LogLevel::Debug, "net")
          << "endpoint " << endpoint.to_string() << " unavailable: " << e.what();
      penalize(index);
    } catch (const WireError& e) {
      util::Log(util::LogLevel::Warn, "net")
          << "endpoint " << endpoint.to_string() << " protocol mismatch: " << e.what();
      penalize(index);
    }
  }
  return false;
}

void RemoteWorker::check_in(Checkout&& checkout) const {
  std::lock_guard<std::mutex> lock(mutex_);
  states_[checkout.endpoint_index].idle.push_back(std::move(checkout.socket));
}

void RemoteWorker::penalize(std::size_t endpoint_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointState& state = states_[endpoint_index];
  state.down_until = Clock::now() + std::chrono::milliseconds(options_.endpoint_cooldown_ms);
  state.idle.clear();  // stale sockets to a failed daemon are worthless
}

evo::EvalResult RemoteWorker::exchange(Socket& socket, const evo::Genome& genome) const {
  const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  WireWriter request;
  request.put_u64(request_id);
  write_genome(request, genome);
  send_frame_on(socket, MsgType::EvalRequest, request.bytes());

  const Frame frame = recv_frame_on(socket, options_.request_timeout_ms);
  if (frame.type != MsgType::EvalResponse) {
    throw NetError("expected EvalResponse, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  const std::uint64_t response_id = reader.get_u64();
  if (response_id != request_id) {
    throw NetError("response id mismatch (" + std::to_string(response_id) + " != " +
                   std::to_string(request_id) + ")");
  }
  const bool ok = reader.get_bool();
  if (!ok) {
    // The remote worker itself threw. Deterministic per genome — retrying on
    // another endpoint would fail identically, so surface it to the Master.
    const std::string message = reader.get_string();
    reader.expect_end();
    throw RemoteEvalError("remote evaluation failed: " + message);
  }
  const evo::EvalResult result = read_eval_result(reader);
  reader.expect_end();
  return result;
}

evo::EvalResult RemoteWorker::evaluate(const evo::Genome& genome) const {
  const std::size_t attempts = options_.max_rounds * states_.size();
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    Checkout conn;
    if (!checkout(conn)) break;  // every endpoint down or cooling off
    try {
      const evo::EvalResult result = exchange(conn.socket, genome);
      remote_evaluations_.fetch_add(1, std::memory_order_relaxed);
      check_in(std::move(conn));
      return result;
    } catch (const RemoteEvalError&) {
      // The exchange itself completed — the connection is healthy, only the
      // genome is poison. Return the socket for reuse and let the error
      // surface to the Master.
      check_in(std::move(conn));
      throw;
    } catch (const NetError& e) {
      // Disconnect / timeout / protocol break mid-exchange: drop this
      // connection, sideline the endpoint, move on to the next one.
      util::Log(util::LogLevel::Warn, "net")
          << "evaluation on " << states_[conn.endpoint_index].endpoint.to_string() << " failed ("
          << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    } catch (const WireError& e) {
      util::Log(util::LogLevel::Warn, "net")
          << "malformed response from " << states_[conn.endpoint_index].endpoint.to_string()
          << " (" << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    }
  }
  if (options_.fallback != nullptr) {
    fallback_evaluations_.fetch_add(1, std::memory_order_relaxed);
    util::Log(util::LogLevel::Warn, "net")
        << "no evaluation daemon reachable; falling back to local worker '"
        << options_.fallback->name() << "'";
    return options_.fallback->evaluate(genome);
  }
  throw NetError("RemoteWorker: no evaluation daemon reachable and no local fallback configured");
}

std::size_t RemoteWorker::ping_all() const {
  std::size_t alive = 0;
  for (std::size_t index = 0; index < states_.size(); ++index) {
    Endpoint endpoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      endpoint = states_[index].endpoint;
    }
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Ping, {});
      const Frame frame = recv_frame_on(socket, options_.connect_timeout_ms);
      if (frame.type == MsgType::Pong) ++alive;
    } catch (const NetError&) {
    } catch (const WireError&) {
    }
  }
  return alive;
}

void RemoteWorker::shutdown_all() const {
  for (std::size_t index = 0; index < states_.size(); ++index) {
    Endpoint endpoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      endpoint = states_[index].endpoint;
    }
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Shutdown, {});
    } catch (const NetError&) {
      // Already gone — that's what shutdown wanted anyway.
    }
  }
}

}  // namespace ecad::net
