#include "net/remote_worker.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "net/fleet_cache.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace ecad::net {

namespace {

/// The worker itself threw while evaluating — a property of the genome, not
/// of the connection that carried it.
class RemoteEvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void send_frame_on(Socket& socket, MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

Frame recv_frame_on(Socket& socket, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  socket.recv_exact(header, sizeof(header), timeout_ms);
  const FrameHeader decoded = decode_frame_header(header);
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket.recv_exact(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
  return frame;
}

/// Hello/HelloAck at `attempt_max`; returns the negotiated version.
std::uint16_t handshake_on(Socket& socket, std::uint16_t attempt_max, int timeout_ms) {
  WireWriter hello;
  write_hello_payload(hello, "ecad-master", attempt_max);
  send_frame_on(socket, MsgType::Hello, hello.bytes());
  const Frame ack = recv_frame_on(socket, timeout_ms);
  if (ack.type != MsgType::HelloAck) {
    throw NetError("handshake: expected HelloAck, got " + std::string(to_string(ack.type)));
  }
  WireReader reader(ack.payload);
  const HelloPayload payload = read_hello_payload(reader);
  return std::min(attempt_max, payload.max_version);
}

/// A shard's frames share the per-item budget: a shard of N genomes allows
/// up to N * request_timeout_ms for any single response or item frame
/// (negative timeouts keep meaning "block forever").
int batch_timeout_ms(int per_item_ms, std::size_t items) {
  if (per_item_ms < 0) return -1;
  const long long total =
      static_cast<long long>(per_item_ms) * static_cast<long long>(std::max<std::size_t>(1, items));
  return total > INT_MAX ? INT_MAX : static_cast<int>(total);
}

}  // namespace

RemoteWorker::RemoteWorker(RemoteWorkerOptions options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("RemoteWorker: endpoint list is empty");
  }
  if (options_.max_protocol < kMinProtocolVersion) {
    throw std::invalid_argument("RemoteWorker: max_protocol must be >= " +
                                std::to_string(kMinProtocolVersion));
  }
  {
    // No other thread exists yet, but states_ is mutex_-guarded and the
    // analysis (rightly) has no carve-out for constructors.
    util::MutexLock lock(mutex_);
    states_.reserve(options_.endpoints.size());
    for (const Endpoint& endpoint : options_.endpoints) {
      EndpointState state;
      state.endpoint = endpoint;
      state.max_version = std::min(options_.max_protocol, kProtocolVersion);
      states_.push_back(std::move(state));
    }
  }
  if (options_.heartbeat_interval_ms > 0) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

RemoteWorker::~RemoteWorker() {
  {
    util::MutexLock lock(heartbeat_mutex_);
    stopping_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

std::string RemoteWorker::name() const {
  return "remote(" + std::to_string(options_.endpoints.size()) + " endpoints)";
}

const core::FleetEvalCache* RemoteWorker::fleet_cache() const {
  const bool enabled = options_.fleet_cache && !options_.cache_config.empty() &&
                       std::min(options_.max_protocol, kProtocolVersion) >= 6;
  return enabled ? &cache_client_ : nullptr;
}

namespace {

/// One short-lived v6 connection for a cache exchange, or nullopt when the
/// endpoint is unreachable or negotiates below v6 (a v5 daemon in a mixed
/// fleet is simply skipped).  Ephemeral connections — the fetch_stats idiom —
/// keep cache traffic out of the pooled-connection state machine and learn
/// the peer's version fresh each call, so the first batch of a warm run
/// already hits.
std::optional<Socket> connect_cache_peer(const Endpoint& endpoint, std::uint16_t max_protocol,
                                         int timeout_ms) {
  try {
    Socket socket = Socket::connect(endpoint, timeout_ms);
    const std::uint16_t version = handshake_on(socket, max_protocol, timeout_ms);
    if (version < 6) return std::nullopt;
    return socket;
  } catch (const NetError&) {
  } catch (const WireError&) {
  }
  return std::nullopt;
}

}  // namespace

void RemoteWorker::FleetCacheClient::fleet_lookup(const std::vector<evo::Genome>& genomes,
                                                  std::vector<evo::EvalOutcome>& outcomes) const {
  static util::Counter& hits = util::metrics().counter("net.fleet_cache_hits_total");
  static util::Counter& misses = util::metrics().counter("net.fleet_cache_misses_total");
  const RemoteWorkerOptions& options = owner_.options_;
  const std::uint16_t max_protocol = std::min(options.max_protocol, kProtocolVersion);

  // Duplicate keys are possible only when the dedup stage is disabled; keep
  // every slot for a key so one reply settles all of them.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> slots_by_key;
  for (std::size_t i = 0; i < genomes.size() && i < outcomes.size(); ++i) {
    slots_by_key[fleet_cache_key(options.cache_config, genomes[i].key())].push_back(i);
  }

  std::size_t settled = 0;
  for (const Endpoint& endpoint : options.endpoints) {
    if (settled == slots_by_key.size()) break;
    std::optional<Socket> socket =
        connect_cache_peer(endpoint, max_protocol, options.connect_timeout_ms);
    if (!socket) continue;
    try {
      CacheLookup lookup;
      lookup.keys.reserve(slots_by_key.size() - settled);
      for (const auto& [key, slots] : slots_by_key) {
        if (!outcomes[slots.front()].ok) lookup.keys.push_back(key);
      }
      // Chunk to the frame cap; generation batches are far smaller, but the
      // pipeline contract does not know that.
      for (std::size_t offset = 0; offset < lookup.keys.size(); offset += kMaxCacheEntries) {
        CacheLookup chunk;
        chunk.keys.assign(lookup.keys.begin() + static_cast<std::ptrdiff_t>(offset),
                          lookup.keys.begin() +
                              static_cast<std::ptrdiff_t>(
                                  std::min(offset + kMaxCacheEntries, lookup.keys.size())));
        WireWriter writer;
        write_cache_lookup(writer, chunk);
        send_frame_on(*socket, MsgType::CacheLookup, writer.bytes());
        const Frame reply = recv_frame_on(*socket, options.connect_timeout_ms);
        if (reply.type != MsgType::CacheStore) {
          throw NetError("cache: expected CacheStore, got " + std::string(to_string(reply.type)));
        }
        WireReader reader(reply.payload);
        const CacheStore found = read_cache_store(reader);
        reader.expect_end();
        for (const CacheEntry& entry : found.entries) {
          const auto it = slots_by_key.find(entry.key);
          if (it == slots_by_key.end() || outcomes[it->second.front()].ok) continue;
          for (const std::size_t slot : it->second) {
            outcomes[slot].result = entry.result;
            outcomes[slot].ok = true;
          }
          ++settled;
        }
      }
    } catch (const NetError&) {
    } catch (const WireError&) {
      // Best-effort: a half-answered endpoint keeps whatever settled; the
      // rest stays unsettled and dispatches normally.
    }
  }
  hits.add(settled);
  misses.add(slots_by_key.size() - settled);
}

void RemoteWorker::FleetCacheClient::fleet_store(const std::vector<evo::Genome>& genomes,
                                                 const std::vector<evo::EvalOutcome>& outcomes) const {
  static util::Counter& published = util::metrics().counter("net.fleet_cache_publishes_total");
  const RemoteWorkerOptions& options = owner_.options_;
  const std::uint16_t max_protocol = std::min(options.max_protocol, kProtocolVersion);

  CacheStore store;
  for (std::size_t i = 0; i < genomes.size() && i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) continue;  // failures are not content-addressable facts
    store.entries.push_back(
        CacheEntry{fleet_cache_key(options.cache_config, genomes[i].key()), outcomes[i].result});
  }
  if (store.entries.empty()) return;
  published.add(store.entries.size());

  // Broadcast to every endpoint: a replicated cache makes a later run hit
  // regardless of which daemon its shards happen to land on.
  for (const Endpoint& endpoint : options.endpoints) {
    std::optional<Socket> socket =
        connect_cache_peer(endpoint, max_protocol, options.connect_timeout_ms);
    if (!socket) continue;
    try {
      for (std::size_t offset = 0; offset < store.entries.size(); offset += kMaxCacheEntries) {
        CacheStore chunk;
        chunk.entries.assign(store.entries.begin() + static_cast<std::ptrdiff_t>(offset),
                             store.entries.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     std::min(offset + kMaxCacheEntries, store.entries.size())));
        WireWriter writer;
        write_cache_store(writer, chunk);
        send_frame_on(*socket, MsgType::CacheStore, writer.bytes());
      }
    } catch (const NetError&) {
      // Fire-and-forget: a lost store costs a future re-evaluation.
    }
  }
}

bool RemoteWorker::endpoint_available(const EndpointState& state, Clock::time_point now) const {
  if (!state.down) return true;
  // Without a heartbeat thread the fixed cooldown window is the only way
  // back in; with one, only a successful ping revives the endpoint.
  return options_.heartbeat_interval_ms <= 0 && now >= state.down_until;
}

bool RemoteWorker::connect_endpoint(std::size_t endpoint_index, PooledConnection& out,
                                    bool penalize_on_failure) const {
  Endpoint endpoint;
  std::uint16_t attempt = 1;
  {
    util::MutexLock lock(mutex_);
    EndpointState& state = states_[endpoint_index];
    endpoint = state.endpoint;
    // An expired v1 demotion means the downgrade may have been a transient
    // handshake fault, not a genuinely old peer: re-offer the full protocol.
    if (state.max_version < options_.max_protocol && Clock::now() >= state.demoted_until) {
      state.max_version = std::min(options_.max_protocol, kProtocolVersion);
    }
    attempt = std::min(state.max_version, options_.max_protocol);
  }
  for (;;) {
    Socket socket;
    try {
      socket = Socket::connect(endpoint, options_.connect_timeout_ms);
    } catch (const NetError& e) {
      // TCP-level failure: the host is down or unreachable.  No downgrade
      // retry — a v1 greeting cannot fix a refused connection, it would
      // only double the connect timeout per checkout of a dead endpoint.
      util::Log(util::LogLevel::Debug, "net")
          << "endpoint " << endpoint.to_string() << " unavailable: " << e.what();
      if (penalize_on_failure) penalize(endpoint_index);
      return false;
    }
    try {
      const std::uint16_t negotiated =
          handshake_on(socket, attempt, options_.connect_timeout_ms);
      {
        util::MutexLock lock(mutex_);
        EndpointState& state = states_[endpoint_index];
        state.down = false;
        state.max_version = negotiated;
        if (negotiated < options_.max_protocol) {
          state.demoted_until = Clock::now() + std::chrono::seconds(60);
        }
      }
      if (negotiated < options_.max_protocol) {
        static util::Counter& demotions = util::metrics().counter("net.v1_demotions_total");
        demotions.add(1);
      }
      out.socket = std::move(socket);
      out.version = negotiated;
      return true;
    } catch (const NetError& e) {
      // The connection came up but the handshake died — a peer so old it
      // drops the v2+ Hello (trailing-bytes error) closes before acking.
      // Retry once with the exact v1 greeting.
      if (attempt >= 2) {
        util::Log(util::LogLevel::Debug, "net")
            << "v" << attempt << " handshake with " << endpoint.to_string() << " failed ("
            << e.what() << "); retrying as v1";
        attempt = 1;
        continue;
      }
      util::Log(util::LogLevel::Debug, "net")
          << "endpoint " << endpoint.to_string() << " handshake failed: " << e.what();
    } catch (const WireError& e) {
      if (attempt >= 2) {
        attempt = 1;
        continue;
      }
      util::Log(util::LogLevel::Warn, "net")
          << "endpoint " << endpoint.to_string() << " protocol mismatch: " << e.what();
    }
    if (penalize_on_failure) penalize(endpoint_index);
    return false;
  }
}

bool RemoteWorker::checkout(Checkout& out) const {
  // The endpoint count comes from the immutable options, not from the
  // mutex_-guarded states_ — the old unlocked states_.size() read was benign
  // (the vector never resizes after construction) but unprovable.
  const std::size_t count = options_.endpoints.size();
  const std::size_t start = round_robin_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t offset = 0; offset < count; ++offset) {
    const std::size_t index = (start + offset) % count;
    {
      util::MutexLock lock(mutex_);
      EndpointState& state = states_[index];
      if (!endpoint_available(state, Clock::now())) continue;
      if (!state.idle.empty()) {
        out.endpoint_index = index;
        out.connection = std::move(state.idle.back());
        state.idle.pop_back();
        return true;
      }
    }
    // Connect + handshake outside the lock: a slow or dead endpoint must not
    // stall the other evaluation threads.
    if (connect_endpoint(index, out.connection)) {
      out.endpoint_index = index;
      return true;
    }
  }
  return false;
}

bool RemoteWorker::checkout_endpoint(std::size_t endpoint_index, Checkout& out,
                                     bool penalize_on_failure) const {
  {
    util::MutexLock lock(mutex_);
    EndpointState& state = states_[endpoint_index];
    if (!endpoint_available(state, Clock::now())) return false;
    if (!state.idle.empty()) {
      out.endpoint_index = endpoint_index;
      out.connection = std::move(state.idle.back());
      state.idle.pop_back();
      return true;
    }
  }
  if (connect_endpoint(endpoint_index, out.connection, penalize_on_failure)) {
    out.endpoint_index = endpoint_index;
    return true;
  }
  return false;
}

void RemoteWorker::check_in(Checkout&& checkout) const {
  util::MutexLock lock(mutex_);
  states_[checkout.endpoint_index].idle.push_back(std::move(checkout.connection));
}

void RemoteWorker::penalize(std::size_t endpoint_index) const {
  util::MutexLock lock(mutex_);
  EndpointState& state = states_[endpoint_index];
  state.down = true;
  state.down_until = Clock::now() + std::chrono::milliseconds(options_.endpoint_cooldown_ms);
  state.idle.clear();  // stale sockets to a failed daemon are worthless
}

void RemoteWorker::record_item_latency(std::size_t endpoint_index, double seconds) const {
  // Clamp instead of discarding: a loopback analytic eval really can finish
  // inside the clock granularity, and a zero EWMA would read as "unobserved".
  seconds = std::max(seconds, 1e-9);
  // The histogram keeps the full per-endpoint latency distribution the EWMA
  // below compresses away; labeled lookup before taking mutex_ so the
  // registry mutex is never acquired under it.
  util::metrics()
      .histogram(util::labeled_metric("net.item_latency_seconds", "endpoint",
                                      options_.endpoints[endpoint_index].to_string()))
      .observe(seconds);
  util::MutexLock lock(mutex_);
  EndpointState& state = states_[endpoint_index];
  if (state.item_latency_ewma_s <= 0.0) {
    state.item_latency_ewma_s = seconds;
    state.item_latency_var_s2 = 0.0;
    return;
  }
  const double deviation = seconds - state.item_latency_ewma_s;
  state.item_latency_ewma_s += 0.3 * deviation;
  state.item_latency_var_s2 = 0.7 * state.item_latency_var_s2 + 0.3 * deviation * deviation;
}

std::size_t RemoteWorker::shard_size(std::size_t endpoint_index, const BatchQueue& queue) const {
  // Fair share of the *currently pending* items across every stream of this
  // round.  This is both the equal cold-start prior (every endpoint starts
  // with the same unobserved latency, so the first wave splits the queue
  // evenly) and a hard ceiling on the adaptive size — without it a fast
  // endpoint's latency estimate can claim the whole queue in one shard,
  // starving the rest of the fleet and silently recreating the one-giant-
  // shard degeneration this scheduler exists to kill.
  const std::size_t pending = queue.pending.size();
  if (pending == 0) return 1;
  const std::size_t streams = std::max<std::size_t>(1, queue.total_streams);
  const std::size_t fair_share = (pending + streams - 1) / streams;
  const std::size_t cap =
      std::min(fair_share, std::max<std::size_t>(1, std::min<std::size_t>(
                                                        options_.max_shard_items, kMaxBatchItems)));
  double ewma = 0.0;
  double variance = 0.0;
  {
    util::MutexLock lock(mutex_);
    ewma = states_[endpoint_index].item_latency_ewma_s;
    variance = states_[endpoint_index].item_latency_var_s2;
  }
  if (ewma <= 0.0) return cap;  // equal prior: the fair share itself
  // Aim each shard at ~shard_target_ms of endpoint wall clock, penalized by
  // the observed latency spread: a jittery endpoint gets smaller shards so a
  // stuck genome strands less work behind it.
  const double target_s = std::max(1, options_.shard_target_ms) / 1000.0;
  const double penalized_latency = ewma + std::sqrt(std::max(0.0, variance));
  if (penalized_latency <= 0.0) return cap;
  const double exact = target_s / penalized_latency;
  if (exact >= static_cast<double>(cap)) return cap;
  return std::max<std::size_t>(1, static_cast<std::size_t>(exact));
}

evo::EvalResult RemoteWorker::exchange(Socket& socket, const evo::Genome& genome) const {
  const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  WireWriter request;
  request.put_u64(request_id);
  write_genome(request, genome);
  send_frame_on(socket, MsgType::EvalRequest, request.bytes());

  const Frame frame = recv_frame_on(socket, options_.request_timeout_ms);
  if (frame.type != MsgType::EvalResponse) {
    throw NetError("expected EvalResponse, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  const std::uint64_t response_id = reader.get_u64();
  if (response_id != request_id) {
    throw NetError("response id mismatch (" + std::to_string(response_id) + " != " +
                   std::to_string(request_id) + ")");
  }
  const bool ok = reader.get_bool();
  if (!ok) {
    // The remote worker itself threw. Deterministic per genome — retrying on
    // another endpoint would fail identically, so surface it to the Master.
    const std::string message = reader.get_string();
    reader.expect_end();
    throw RemoteEvalError("remote evaluation failed: " + message);
  }
  const evo::EvalResult result = read_eval_result(reader);
  reader.expect_end();
  return result;
}

std::uint64_t RemoteWorker::send_shard_request(Socket& socket,
                                               const std::vector<evo::Genome>& genomes,
                                               const std::vector<std::size_t>& items) const {
  EvalBatchRequest request;
  request.batch_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.genomes.reserve(items.size());
  for (std::size_t index : items) request.genomes.push_back(genomes[index]);
  WireWriter writer;
  write_eval_batch_request(writer, request);
  send_frame_on(socket, MsgType::EvalBatchRequest, writer.bytes());
  batches_dispatched_.fetch_add(1, std::memory_order_relaxed);
  return request.batch_id;
}

void RemoteWorker::exchange_batch(Socket& socket, const std::vector<evo::Genome>& genomes,
                                  const std::vector<std::size_t>& items,
                                  std::vector<evo::EvalOutcome>& outcomes) const {
  const std::uint64_t batch_id = send_shard_request(socket, genomes, items);

  const Frame frame =
      recv_frame_on(socket, batch_timeout_ms(options_.request_timeout_ms, items.size()));
  if (frame.type != MsgType::EvalBatchResponse) {
    throw NetError("expected EvalBatchResponse, got " + std::string(to_string(frame.type)));
  }
  WireReader reader(frame.payload);
  EvalBatchResponse response = read_eval_batch_response(reader);
  reader.expect_end();
  if (response.batch_id != batch_id) {
    throw NetError("batch id mismatch (" + std::to_string(response.batch_id) + " != " +
                   std::to_string(batch_id) + ")");
  }
  if (response.items.size() != items.size()) {
    throw WireError("wire: batch response holds " + std::to_string(response.items.size()) +
                    " outcomes for " + std::to_string(items.size()) + " genomes");
  }
  for (std::size_t k = 0; k < items.size(); ++k) {
    evo::EvalOutcome& slot = outcomes[items[k]];
    slot = std::move(response.items[k]);
    if (!slot.ok) slot.error = "remote evaluation failed: " + slot.error;
  }
}

void RemoteWorker::exchange_stream(std::size_t endpoint_index, Socket& socket,
                                   const std::vector<evo::Genome>& genomes,
                                   const std::vector<std::size_t>& items,
                                   std::vector<evo::EvalOutcome>& outcomes) const {
  const std::uint64_t batch_id = send_shard_request(socket, genomes, items);

  // Item frames arrive in completion order; slots settle by frame index the
  // moment each lands, so a disconnect below loses only unanswered items.
  const int frame_timeout = batch_timeout_ms(options_.request_timeout_ms, items.size());
  std::vector<char> seen(items.size(), 0);
  std::size_t settled = 0;
  std::uint32_t highest_index = 0;
  bool any_seen = false;
  std::size_t out_of_order = 0;
  util::Stopwatch watch;
  double previous_arrival_s = 0.0;
  while (settled < items.size()) {
    const Frame frame = recv_frame_on(socket, frame_timeout);
    if (frame.type != MsgType::EvalItemResult) {
      if (frame.type == MsgType::EvalBatchDone) {
        throw WireError("wire: EvalBatchDone with " + std::to_string(items.size() - settled) +
                        " unsettled items");
      }
      throw NetError("expected EvalItemResult, got " + std::string(to_string(frame.type)));
    }
    WireReader reader(frame.payload);
    EvalItemResult item = read_eval_item_result(reader);
    reader.expect_end();
    if (item.batch_id != batch_id) {
      throw NetError("item batch id mismatch (" + std::to_string(item.batch_id) + " != " +
                     std::to_string(batch_id) + ")");
    }
    if (item.index >= items.size()) {
      throw WireError("wire: item index " + std::to_string(item.index) + " beyond shard of " +
                      std::to_string(items.size()));
    }
    if (seen[item.index]) {
      throw WireError("wire: duplicate item frame for index " + std::to_string(item.index));
    }
    seen[item.index] = 1;
    ++settled;
    if (any_seen && item.index < highest_index) ++out_of_order;
    if (!any_seen || item.index > highest_index) highest_index = item.index;
    any_seen = true;

    // Arrival gaps sum to the shard's wall clock, so their EWMA is the
    // endpoint's true per-item rate while their spread captures the
    // heterogeneity the adaptive sizer reacts to.
    const double arrival_s = watch.elapsed_seconds();
    record_item_latency(endpoint_index, arrival_s - previous_arrival_s);
    previous_arrival_s = arrival_s;

    evo::EvalOutcome& slot = outcomes[items[item.index]];
    slot = std::move(item.outcome);
    if (!slot.ok) slot.error = "remote evaluation failed: " + slot.error;
    streamed_items_.fetch_add(1, std::memory_order_relaxed);
  }
  const Frame done_frame = recv_frame_on(socket, frame_timeout);
  if (done_frame.type != MsgType::EvalBatchDone) {
    throw NetError("expected EvalBatchDone, got " + std::string(to_string(done_frame.type)));
  }
  WireReader done_reader(done_frame.payload);
  const EvalBatchDone done = read_eval_batch_done(done_reader);
  done_reader.expect_end();
  if (done.batch_id != batch_id || done.count != items.size()) {
    throw WireError("wire: EvalBatchDone mismatch (batch " + std::to_string(done.batch_id) +
                    ", count " + std::to_string(done.count) + ")");
  }
  if (out_of_order > 0) {
    out_of_order_items_.fetch_add(out_of_order, std::memory_order_relaxed);
    util::Log(util::LogLevel::Debug, "net")
        << "streamed shard of " << items.size() << " items consumed " << out_of_order
        << " out-of-order item frames";
  }
}

void RemoteWorker::exchange_pipelined(Socket& socket, const std::vector<evo::Genome>& genomes,
                                      const std::vector<std::size_t>& items,
                                      std::vector<evo::EvalOutcome>& outcomes) const {
  std::unordered_map<std::uint64_t, std::size_t> in_flight;  // request id -> genome index
  in_flight.reserve(items.size());
  for (std::size_t index : items) {
    const std::uint64_t request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    WireWriter request;
    request.put_u64(request_id);
    write_genome(request, genomes[index]);
    send_frame_on(socket, MsgType::EvalRequest, request.bytes());
    in_flight.emplace(request_id, index);
  }
  while (!in_flight.empty()) {
    const Frame frame = recv_frame_on(socket, options_.request_timeout_ms);
    if (frame.type != MsgType::EvalResponse) {
      throw NetError("expected EvalResponse, got " + std::string(to_string(frame.type)));
    }
    WireReader reader(frame.payload);
    const std::uint64_t response_id = reader.get_u64();
    const auto it = in_flight.find(response_id);
    if (it == in_flight.end()) {
      throw NetError("response id " + std::to_string(response_id) + " is not in flight");
    }
    evo::EvalOutcome& slot = outcomes[it->second];
    if (reader.get_bool()) {
      slot.result = read_eval_result(reader);
      reader.expect_end();
      slot.ok = true;
    } else {
      // Remote evaluation failure: deterministic per genome, settles the
      // slot instead of being retried elsewhere.
      slot.error = "remote evaluation failed: " + reader.get_string();
      reader.expect_end();
    }
    in_flight.erase(it);
  }
}

bool RemoteWorker::run_shard(Checkout& conn, const std::vector<evo::Genome>& genomes,
                             const std::vector<std::size_t>& items,
                             std::vector<evo::EvalOutcome>& outcomes,
                             std::vector<std::size_t>& unfinished) const {
  const std::string endpoint_label = options_.endpoints[conn.endpoint_index].to_string();
  static util::Histogram& shard_hist = util::metrics().histogram("net.shard_items");
  shard_hist.observe(static_cast<double>(items.size()));
  util::metrics()
      .counter(util::labeled_metric("net.items_dispatched_total", "endpoint", endpoint_label))
      .add(items.size());
  util::TraceSpan span("net",
                       "shard " + endpoint_label + " n=" + std::to_string(items.size()));
  util::Stopwatch watch;
  bool healthy = false;
  try {
    if (conn.connection.version >= 3) {
      exchange_stream(conn.endpoint_index, conn.connection.socket, genomes, items, outcomes);
    } else if (conn.connection.version == 2) {
      exchange_batch(conn.connection.socket, genomes, items, outcomes);
    } else {
      // v1-only endpoint: the shard degrades to per-genome frames pipelined
      // on the one pooled connection (still a single connect/handshake, and
      // the daemon's pool still runs the items concurrently).
      exchange_pipelined(conn.connection.socket, genomes, items, outcomes);
    }
    if (conn.connection.version < 3 && !items.empty()) {
      // No per-item arrival times on the collected paths; one averaged
      // sample still keeps the adaptive sizer honest about the endpoint.
      record_item_latency(conn.endpoint_index,
                          watch.elapsed_seconds() / static_cast<double>(items.size()));
    }
    healthy = true;
  } catch (const NetError& e) {
    util::Log(util::LogLevel::Warn, "net")
        << "batch shard on " << options_.endpoints[conn.endpoint_index].to_string()
        << " failed (" << e.what() << "); requeueing unsettled items";
    penalize(conn.endpoint_index);
  } catch (const WireError& e) {
    util::Log(util::LogLevel::Warn, "net")
        << "malformed batch response from "
        << options_.endpoints[conn.endpoint_index].to_string() << " (" << e.what()
        << "); requeueing unsettled items";
    penalize(conn.endpoint_index);
  }
  std::size_t settled_count = 0;
  for (std::size_t index : items) {
    if (outcomes[index].settled()) {
      ++settled_count;  // includes slots a failed shard settled before dying
    } else {
      unfinished.push_back(index);
    }
  }
  remote_evaluations_.fetch_add(settled_count, std::memory_order_relaxed);
  return healthy;
}

void RemoteWorker::drive_endpoint(std::size_t endpoint_index,
                                  const std::vector<evo::Genome>& genomes,
                                  std::vector<std::size_t> first_shard, BatchQueue& queue,
                                  std::vector<evo::EvalOutcome>& outcomes, bool primary) const {
  const auto requeue = [&queue](const std::vector<std::size_t>& items) {
    if (items.empty()) return;
    static util::Counter& requeued = util::metrics().counter("net.requeued_items_total");
    requeued.add(items.size());
    util::MutexLock lock(queue.mutex);
    for (std::size_t index : items) queue.pending.push_back(index);
  };

  // Connection first, work second: until the stream actually holds a
  // handshaken socket it owns no items, so a connect timeout here delays
  // nothing — the other streams keep draining the queue meanwhile.
  Checkout conn;
  if (!checkout_endpoint(endpoint_index, conn, /*penalize_on_failure=*/primary)) {
    requeue(first_shard);
    return;
  }

  std::vector<std::size_t> shard = std::move(first_shard);
  for (;;) {
    if (shard.empty()) {
      util::MutexLock lock(queue.mutex);
      if (queue.pending.empty()) break;
      const std::size_t take = std::min(shard_size(endpoint_index, queue), queue.pending.size());
      shard.assign(queue.pending.begin(),
                   queue.pending.begin() + static_cast<std::ptrdiff_t>(take));
      queue.pending.erase(queue.pending.begin(),
                          queue.pending.begin() + static_cast<std::ptrdiff_t>(take));
    }
    std::vector<std::size_t> unfinished;
    const bool healthy = run_shard(conn, genomes, shard, outcomes, unfinished);
    requeue(unfinished);
    if (!healthy) return;  // connection dead, endpoint sidelined; drop it
    shard.clear();
  }
  check_in(std::move(conn));
}

std::vector<evo::EvalOutcome> RemoteWorker::evaluate_batch(const std::vector<evo::Genome>& genomes,
                                                           util::ThreadPool& pool) const {
  std::vector<evo::EvalOutcome> outcomes(genomes.size());
  if (genomes.empty()) return outcomes;
  util::TraceSpan batch_span("net", "evaluate_batch n=" + std::to_string(genomes.size()));

  std::vector<std::size_t> pending(genomes.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  // Each scheduling round spins up a bounded set of shard streams over the
  // currently healthy endpoints, all pulling from one shared queue; a round
  // ends when every stream has drained or died, and whatever is unsettled
  // re-enters the next round (endpoints may have revived by then).
  const std::size_t max_rounds =
      std::max<std::size_t>(1, options_.max_rounds) * options_.endpoints.size() + 1;
  bool waited_for_revival = false;
  for (std::size_t round = 0; round < max_rounds && !pending.empty(); ++round) {
    std::vector<std::size_t> available;
    {
      util::MutexLock lock(mutex_);
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (endpoint_available(states_[i], now)) available.push_back(i);
      }
    }
    if (available.empty()) {
      // With heartbeats on, a sidelined endpoint revives only through the
      // background ping — which may be milliseconds away.  Give it one
      // bounded window before declaring the fleet dead: a transiently
      // penalized endpoint (e.g. a handshake that lost a race) should cost
      // a beat, not the whole batch's worth of remote work.
      if (options_.heartbeat_interval_ms > 0 && !waited_for_revival) {
        waited_for_revival = true;
        const int wait_ms =
            std::min(2000, std::max(100, options_.heartbeat_interval_ms * 4));
        const Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(wait_ms);
        while (Clock::now() < deadline && healthy_endpoints() == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (healthy_endpoints() > 0) continue;
      }
      break;  // nothing reachable; fall through to fallback
    }

    const std::size_t streams_each = std::max<std::size_t>(1, options_.streams_per_endpoint);
    const std::size_t total_streams =
        std::max<std::size_t>(1, std::min(available.size() * streams_each, pending.size()));

    BatchQueue queue;
    // Reserve one equal-prior shard per endpoint up front: the round's first
    // wave covers the whole fleet deterministically, and only then does the
    // shared queue turn the remainder into a work-stealing race.  No stream
    // has launched yet, but shard_size() requires queue.mutex — the old
    // "or has exclusive access pre-launch" escape hatch is gone — so the
    // whole setup pass takes the lock.
    std::vector<std::vector<std::size_t>> reserved(available.size());
    {
      util::MutexLock lock(queue.mutex);
      queue.pending.assign(pending.begin(), pending.end());
      queue.total_streams = total_streams;
      for (std::size_t s = 0; s < available.size() && !queue.pending.empty(); ++s) {
        const std::size_t take =
            std::min(shard_size(available[s], queue), queue.pending.size());
        reserved[s].assign(queue.pending.begin(),
                           queue.pending.begin() + static_cast<std::ptrdiff_t>(take));
        queue.pending.erase(queue.pending.begin(),
                            queue.pending.begin() + static_cast<std::ptrdiff_t>(take));
      }
    }

    struct Stream {
      std::size_t endpoint_index = 0;
      std::vector<std::size_t> first_shard;
      bool primary = false;
    };
    std::vector<Stream> streams;
    streams.reserve(available.size() * streams_each);
    for (std::size_t s = 0; s < available.size(); ++s) {
      for (std::size_t k = 0; k < streams_each; ++k) {
        Stream stream;
        stream.endpoint_index = available[s];
        stream.primary = (k == 0);
        if (k == 0) stream.first_shard = std::move(reserved[s]);
        streams.push_back(std::move(stream));
      }
    }

    if (streams.size() == 1) {
      drive_endpoint(streams[0].endpoint_index, genomes, std::move(streams[0].first_shard),
                     queue, outcomes, /*primary=*/true);
    } else {
      pool.parallel_for(streams.size(), [&](std::size_t s) {
        drive_endpoint(streams[s].endpoint_index, genomes, std::move(streams[s].first_shard),
                       queue, outcomes, /*primary=*/streams[s].primary);
      });
    }

    std::vector<std::size_t> next;
    for (std::size_t index : pending) {
      if (!outcomes[index].settled()) next.push_back(index);
    }
    pending = std::move(next);
  }

  if (!pending.empty()) {
    if (options_.fallback == nullptr) {
      throw NetError("RemoteWorker: no evaluation daemon reachable and no local fallback configured");
    }
    util::Log(util::LogLevel::Warn, "net")
        << "no evaluation daemon reachable for " << pending.size()
        << " batch items; falling back to local worker '" << options_.fallback->name() << "'";
    std::vector<evo::Genome> rest;
    rest.reserve(pending.size());
    for (std::size_t index : pending) rest.push_back(genomes[index]);
    std::vector<evo::EvalOutcome> rest_outcomes = options_.fallback->evaluate_batch(rest, pool);
    for (std::size_t k = 0; k < pending.size() && k < rest_outcomes.size(); ++k) {
      outcomes[pending[k]] = std::move(rest_outcomes[k]);
    }
    fallback_evaluations_.fetch_add(pending.size(), std::memory_order_relaxed);
  }
  return outcomes;
}

evo::EvalResult RemoteWorker::evaluate(const evo::Genome& genome) const {
  const std::size_t attempts = options_.max_rounds * options_.endpoints.size();
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    Checkout conn;
    if (!checkout(conn)) break;  // every endpoint down or cooling off
    try {
      const evo::EvalResult result = exchange(conn.connection.socket, genome);
      remote_evaluations_.fetch_add(1, std::memory_order_relaxed);
      check_in(std::move(conn));
      return result;
    } catch (const RemoteEvalError&) {
      // The exchange itself completed — the connection is healthy, only the
      // genome is poison. Return the socket for reuse and let the error
      // surface to the Master.
      check_in(std::move(conn));
      throw;
    } catch (const NetError& e) {
      // Disconnect / timeout / protocol break mid-exchange: drop this
      // connection, sideline the endpoint, move on to the next one.
      util::Log(util::LogLevel::Warn, "net")
          << "evaluation on " << options_.endpoints[conn.endpoint_index].to_string()
          << " failed (" << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    } catch (const WireError& e) {
      util::Log(util::LogLevel::Warn, "net")
          << "malformed response from " << options_.endpoints[conn.endpoint_index].to_string()
          << " (" << e.what() << "); retrying elsewhere";
      penalize(conn.endpoint_index);
    }
  }
  if (options_.fallback != nullptr) {
    fallback_evaluations_.fetch_add(1, std::memory_order_relaxed);
    util::Log(util::LogLevel::Warn, "net")
        << "no evaluation daemon reachable; falling back to local worker '"
        << options_.fallback->name() << "'";
    return options_.fallback->evaluate(genome);
  }
  throw NetError("RemoteWorker: no evaluation daemon reachable and no local fallback configured");
}

std::size_t RemoteWorker::ping_all() const {
  std::size_t alive = 0;
  // states_[i].endpoint mirrors options_.endpoints[i] and never changes, so
  // the probe loop reads the immutable options instead of the guarded state.
  for (const Endpoint& endpoint : options_.endpoints) {
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Ping, {});
      const Frame frame = recv_frame_on(socket, options_.connect_timeout_ms);
      if (frame.type == MsgType::Pong) ++alive;
    } catch (const NetError&) {
    } catch (const WireError&) {
    }
  }
  return alive;
}

std::size_t RemoteWorker::healthy_endpoints() const {
  util::MutexLock lock(mutex_);
  const Clock::time_point now = Clock::now();
  std::size_t healthy = 0;
  for (const EndpointState& state : states_) {
    if (endpoint_available(state, now)) ++healthy;
  }
  return healthy;
}

void RemoteWorker::shutdown_all() const {
  for (const Endpoint& endpoint : options_.endpoints) {
    try {
      Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
      send_frame_on(socket, MsgType::Shutdown, {});
    } catch (const NetError&) {
      // Already gone — that's what shutdown wanted anyway.
    }
  }
}

void RemoteWorker::heartbeat_loop() {
  const auto interval = std::chrono::milliseconds(options_.heartbeat_interval_ms);
  for (;;) {
    {
      // Explicit check/wait/check instead of a predicate lambda: the analysis
      // can't see guarded reads inside a lambda body (see util/mutex.h).  A
      // spurious wakeup at worst triggers one early ping sweep.
      util::MutexLock lock(heartbeat_mutex_);
      if (stopping_) return;
      heartbeat_cv_.wait_for(heartbeat_mutex_, interval);
      if (stopping_) return;
    }

    std::vector<std::size_t> sidelined;
    {
      util::MutexLock state_lock(mutex_);
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].down) sidelined.push_back(i);
      }
    }
    for (std::size_t index : sidelined) {
      const Endpoint& endpoint = options_.endpoints[index];
      try {
        Socket socket = Socket::connect(endpoint, options_.connect_timeout_ms);
        send_frame_on(socket, MsgType::Ping, {});
        const Frame frame = recv_frame_on(socket, options_.connect_timeout_ms);
        if (frame.type != MsgType::Pong) continue;
        {
          util::MutexLock state_lock(mutex_);
          EndpointState& state = states_[index];
          if (!state.down) continue;  // an evaluation beat us to it
          state.down = false;
          // A restarted daemon may speak a different protocol generation
          // than its predecessor; rediscover in the next handshake.
          state.max_version = std::min(options_.max_protocol, kProtocolVersion);
        }
        heartbeat_rejoins_.fetch_add(1, std::memory_order_relaxed);
        static util::Counter& rejoins = util::metrics().counter("net.heartbeat_rejoins_total");
        rejoins.add(1);
        util::Log(util::LogLevel::Info, "net")
            << "endpoint " << endpoint.to_string() << " rejoined the pool via heartbeat ping";
      } catch (const NetError&) {
        // Still down; try again next tick.
      } catch (const WireError&) {
      }
    }
  }
}

}  // namespace ecad::net
