// Evaluation daemon: wraps any core::Worker behind the wire protocol.
//
// Architecture (paper §III): remote Workers hold the expensive evaluation
// machinery (training data, hardware models) and serve EvalRequest /
// EvalBatchRequest frames from the Master.  One poll(2) event-loop thread
// owns the listener and all connection reads; complete request frames are
// dispatched to the existing util::ThreadPool, so N in-flight requests —
// from one Master connection or several — evaluate concurrently.  A batch's
// items each get their own pool task (they evaluate concurrently with each
// other and with other requests).  On a v2 connection the last item to
// finish assembles and sends the single EvalBatchResponse frame; on a v3
// connection every item streams its own EvalItemResult frame the moment it
// completes (completion order, not request order) and the last one closes
// the batch with EvalBatchDone.  Responses are written from pool threads
// under a per-connection mutex (frames stay whole on the wire).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/worker.h"
#include "net/fleet_cache.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/thread_safety.h"

namespace ecad::net {

struct WorkerServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral port; read the actual one back via port().
  std::uint16_t port = 0;
  /// Evaluation pool width; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Event-loop poll granularity (also bounds stop() latency).
  int poll_interval_ms = 50;
  /// Highest protocol version offered during the handshake.  Pin to 1 to
  /// serve as a v1-only worker (per-genome EvalRequest frames only); pin to
  /// 2 to disable per-item streaming (single EvalBatchResponse frames).
  std::uint16_t max_protocol = kProtocolVersion;
  /// Byte budget for the fleet result cache tier (v6 CacheLookup/CacheStore
  /// frames).  0 — the default — disables the tier: lookups answer empty
  /// and stores are dropped, so a cache-less fleet behaves exactly like a
  /// v5 one.
  std::size_t cache_bytes = 0;
  /// Serve *only* the cache tier (plus handshake/ping/stats): evaluation
  /// frames are protocol violations and drop the connection.  For dedicated
  /// `ecad_workerd --cache-only` daemons that pool cache capacity without
  /// burning evaluation threads.
  bool cache_only = false;
};

class WorkerServer {
 public:
  /// `worker` must outlive the server and be thread-safe (the core::Worker
  /// contract) — evaluations run concurrently on the pool.
  WorkerServer(const core::Worker& worker, WorkerServerOptions options = {});
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Bind + launch the event loop. Throws NetError if the port is taken.
  void start();

  /// Close the listener and all connections, join the loop, drain the pool.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (valid after start()).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Total candidate evaluations served — one per EvalRequest plus one per
  /// EvalBatchRequest item (counted before the response is written, so a
  /// client holding a response always sees itself included).
  std::size_t requests_served() const { return requests_served_.load(std::memory_order_relaxed); }

  /// The fleet result cache tier, exposed so the daemon can persist it
  /// across restarts (`ecad_workerd --cache-file`).  Thread-safe; preload
  /// before start() so warm entries are visible from the first lookup.
  FleetResultCache& cache() { return cache_; }
  const FleetResultCache& cache() const { return cache_; }

 private:
  struct Connection {
    Socket socket;
    std::vector<std::uint8_t> inbox;  // partial-frame reassembly buffer
    /// Serializes response frames: pool tasks and the loop thread both write
    /// to the socket, and a frame must hit the wire whole.  The socket itself
    /// can't be GUARDED_BY it — the loop thread recv()s without it — so the
    /// contract is "every send_all goes through send_frame".
    util::Mutex write_mutex;
    std::atomic<bool> closed{false};
    /// Negotiated protocol version; written on the loop thread during the
    /// Hello exchange, and 1 until then — batch frames before (or without) a
    /// v2 handshake are protocol violations and drop the connection.
    std::uint16_t version = 1;
  };

  void run_loop();
  /// Returns false when the connection should be dropped.
  bool handle_frame(const std::shared_ptr<Connection>& connection, Frame frame);
  void handle_batch_request(const std::shared_ptr<Connection>& connection, Frame frame);
  void send_frame(const std::shared_ptr<Connection>& connection, MsgType type,
                  const std::vector<std::uint8_t>& payload)
      ECAD_EXCLUDES(connection->write_mutex);

  const core::Worker& worker_;
  WorkerServerOptions options_;
  FleetResultCache cache_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread loop_thread_;
  std::vector<std::shared_ptr<Connection>> connections_;  // owned by the loop thread
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> requests_served_{0};
};

}  // namespace ecad::net
