// Thin POSIX TCP layer for the distributed evaluation service: RAII sockets,
// a listener, and poll(2)-based timeouts.  No third-party dependencies — the
// daemons must build anywhere the rest of the tree does.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecad::net {

/// Connection / syscall failures (includes timeouts and peer EOF).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// "host:port" pair for a remote evaluation daemon.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.host == b.host && a.port == b.port;
  }
};

/// Parse "host:port" ("127.0.0.1:7001", "worker-3:9000").
/// Throws std::invalid_argument on missing/unparsable ports.
Endpoint parse_endpoint(const std::string& text);

/// Comma-separated endpoint list; empty entries are skipped.
std::vector<Endpoint> parse_endpoint_list(const std::string& text);

/// Move-only RAII wrapper over a connected TCP socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Resolve `host` and connect with a deadline. Throws NetError.
  static Socket connect(const Endpoint& endpoint, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write the whole buffer (handles partial writes and EINTR).
  /// Throws NetError on failure, including a closed peer.
  void send_all(const void* data, std::size_t size);

  /// Read exactly `size` bytes within `timeout_ms` (a single deadline for the
  /// whole read, enforced with poll). Throws NetError on timeout, EOF, or
  /// socket errors. `timeout_ms < 0` blocks indefinitely.
  void recv_exact(void* data, std::size_t size, int timeout_ms);

  /// One nonblocking-ish read of up to `size` bytes: waits up to `timeout_ms`
  /// for readability, then returns whatever recv() delivers (0 = timeout).
  /// Throws NetError on EOF or socket errors.
  std::size_t recv_some(void* data, std::size_t size, int timeout_ms);

  void set_nodelay(bool enable);

  /// shutdown(2) both directions — wakes a peer blocked in recv with EOF.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket; accept() with poll-based timeouts.
class Listener {
 public:
  Listener() = default;
  /// Bind + listen. `port == 0` picks an ephemeral port (see port()).
  /// Throws NetError.
  Listener(const std::string& host, std::uint16_t port, int backlog = 64);
  ~Listener() { close(); }

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Actual bound port (resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for a connection; nullopt on timeout.
  /// Throws NetError on listener failure. `timeout_ms < 0` blocks.
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ecad::net
