// Thin client for the search service (protocol v4): submit a whole search
// to a resident ecad_searchd master, stream its per-generation progress,
// and collect the deterministic final record.
//
// Blocking, single-threaded, one search at a time per client — the shape
// the --submit CLI and the service smoke need.  Concurrency comes from
// running several clients (processes or threads) against one daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/master.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ecad::net {

struct SearchClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 5000;
  /// Per-frame receive budget while streaming.  A healthy daemon emits a
  /// progress frame per folded generation, so this bounds silence, not
  /// total search time.  Negative = block forever.
  int frame_timeout_ms = 120000;
  /// Highest protocol version to offer (the daemon needs >= 4 to accept
  /// searches; connect() throws if the negotiation lands lower).
  std::uint16_t max_protocol = kProtocolVersion;
  /// Display name sent in Hello.
  std::string name = "ecad-search-client";
};

class SearchClient {
 public:
  explicit SearchClient(SearchClientOptions options);
  ~SearchClient();

  SearchClient(const SearchClient&) = delete;
  SearchClient& operator=(const SearchClient&) = delete;

  /// Connect + handshake.  Throws NetError on connection failure and
  /// WireError when the daemon negotiated below protocol 4.
  void connect();

  /// Negotiated protocol version (valid after connect()).
  std::uint16_t version() const { return version_; }

  /// Submit one search; blocks until the daemon answers.  Returns the
  /// server-assigned search id.  Throws std::runtime_error with the
  /// daemon's reason when the submission is rejected.
  std::uint64_t submit(const core::SearchRequest& request);

  /// Consume the stream for `search_id` until its SearchDone arrives,
  /// invoking `on_progress` (may be null) per progress frame.  Calling
  /// cancel() from inside the callback is allowed — the resulting
  /// SearchDone (status Canceled) still ends the stream normally.
  SearchDone stream(std::uint64_t search_id,
                    const std::function<void(const SearchProgress&)>& on_progress);

  /// Ask the daemon to stop `search_id` at its next generation boundary.
  void cancel(std::uint64_t search_id);

  /// Ask the daemon to exit its accept loop (it drains and stops).
  void shutdown_server();

  void close();

 private:
  Frame recv_frame();

  SearchClientOptions options_;
  Socket socket_;
  std::uint16_t version_ = 0;
  std::uint64_t next_submit_id_ = 1;
};

}  // namespace ecad::net
