// Deterministic, seeded fault injection for the socket layer.
//
//   ECAD_FAULT=seed:42,drop:0.05,short_write:0.02,delay_ms:3
//
// arms a process-wide injector consulted by Socket::send_all / recv_exact /
// recv_some (see socket.cpp):
//   drop:P        — with probability P the operation shuts the socket down
//                   and throws NetError, as if the peer vanished mid-frame.
//   short_write:P — with probability P a send transmits only a prefix of
//                   its bytes before dying, so the peer sees a torn frame.
//   delay_ms:D    — every faultable operation first sleeps D ms (latency
//                   chaos; exercises timeout/straggler paths, not errors).
//   seed:N        — PRNG seed.  The fault decision sequence is a pure
//                   function of the seed and the order in which operations
//                   consult the injector, so single-connection runs replay
//                   exactly and the chaos smoke can pick seeds that are
//                   known to complete.
//
// RemoteWorker's retry/cooldown/requeue machinery is expected to absorb
// every injected fault: the chaos smoke asserts a fault-injected search
// still produces a byte-identical record.  Unset (the default) the injector
// is a single branch per socket op.
#pragma once

#include <cstdint>
#include <string>

#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::net {

struct FaultConfig {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double short_write = 0.0;
  int delay_ms = 0;

  bool enabled() const { return drop > 0.0 || short_write > 0.0 || delay_ms > 0; }
};

/// Parse an ECAD_FAULT spec ("key:value" pairs, comma-separated).  Throws
/// std::invalid_argument on unknown keys or unparsable values.
FaultConfig parse_fault_config(const std::string& spec);

class FaultInjector {
 public:
  /// The process-wide injector; parses ECAD_FAULT on first use (a malformed
  /// spec logs a warning and disables injection rather than killing the
  /// daemon).
  static FaultInjector& instance();

  bool enabled() const { return enabled_; }

  enum class SendFate : std::uint8_t { Ok, Drop, ShortWrite };

  /// Roll the fate of one send (counts injected faults).
  SendFate send_fate() ECAD_EXCLUDES(mutex_);
  /// Roll whether one recv drops the connection.
  bool drop_recv() ECAD_EXCLUDES(mutex_);
  /// Sleep the configured delay (no-op for delay_ms 0).
  void maybe_delay() const;

  /// Faults injected so far (test/diagnostic hook; also exported as the
  /// net.faults_injected_total metric).
  std::uint64_t injected() const ECAD_EXCLUDES(mutex_);

  /// Test hook: replace the configuration and reset the PRNG + counters.
  void configure_for_testing(const FaultConfig& config) ECAD_EXCLUDES(mutex_);

 private:
  FaultInjector();

  double next_unit() ECAD_REQUIRES(mutex_);  // uniform [0,1)

  mutable util::Mutex mutex_;
  FaultConfig config_;
  bool enabled_ = false;  // written only at construction / configure_for_testing
  std::uint64_t state_ ECAD_GUARDED_BY(mutex_) = 0;  // splitmix64 state
  std::uint64_t injected_ ECAD_GUARDED_BY(mutex_) = 0;
};

}  // namespace ecad::net
