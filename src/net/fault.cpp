#include "net/fault.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace ecad::net {

namespace {

// splitmix64: tiny, seedable, and statistically fine for fault coin flips.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double parse_probability(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("ECAD_FAULT: bad value for " + key + ": '" + value + "'");
  }
  if (used != value.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("ECAD_FAULT: " + key + " must be a probability in [0,1], got '" +
                                value + "'");
  }
  return p;
}

void count_injected(const char* kind) {
  util::metrics().counter(std::string("net.faults_injected_total")).add(1);
  util::metrics()
      .counter(util::labeled_metric("net.faults_injected", "kind", kind))
      .add(1);
}

}  // namespace

FaultConfig parse_fault_config(const std::string& spec) {
  FaultConfig config;
  for (const std::string& part : util::split(spec, ',')) {
    const std::string trimmed(util::trim(part));
    if (trimmed.empty()) continue;
    const std::size_t colon = trimmed.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("ECAD_FAULT: expected key:value, got '" + trimmed + "'");
    }
    const std::string key = trimmed.substr(0, colon);
    const std::string value = trimmed.substr(colon + 1);
    if (key == "seed") {
      try {
        config.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("ECAD_FAULT: bad seed '" + value + "'");
      }
    } else if (key == "drop") {
      config.drop = parse_probability(key, value);
    } else if (key == "short_write") {
      config.short_write = parse_probability(key, value);
    } else if (key == "delay_ms") {
      try {
        config.delay_ms = std::stoi(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("ECAD_FAULT: bad delay_ms '" + value + "'");
      }
      if (config.delay_ms < 0) {
        throw std::invalid_argument("ECAD_FAULT: delay_ms must be >= 0");
      }
    } else {
      throw std::invalid_argument("ECAD_FAULT: unknown key '" + key + "'");
    }
  }
  return config;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("ECAD_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  try {
    config_ = parse_fault_config(env);
  } catch (const std::invalid_argument& e) {
    util::Log(util::LogLevel::Warn, "net")
        << "ignoring malformed ECAD_FAULT spec: " << e.what();
    return;
  }
  enabled_ = config_.enabled();
  state_ = config_.seed;
  if (enabled_) {
    util::Log(util::LogLevel::Warn, "net")
        << "fault injection armed: seed=" << config_.seed << " drop=" << config_.drop
        << " short_write=" << config_.short_write << " delay_ms=" << config_.delay_ms;
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

double FaultInjector::next_unit() {
  // 53 random bits -> [0,1), same construction std::generate_canonical uses.
  return static_cast<double>(splitmix64(state_) >> 11) * 0x1.0p-53;
}

FaultInjector::SendFate FaultInjector::send_fate() {
  const char* kind = nullptr;
  SendFate fate = SendFate::Ok;
  {
    util::MutexLock lock(mutex_);
    const double roll = next_unit();
    if (roll < config_.drop) {
      fate = SendFate::Drop;
      kind = "drop";
    } else if (roll < config_.drop + config_.short_write) {
      fate = SendFate::ShortWrite;
      kind = "short_write";
    }
    if (kind != nullptr) ++injected_;
  }
  // Metric bump outside mutex_ (leaf-lock discipline).
  if (kind != nullptr) count_injected(kind);
  return fate;
}

bool FaultInjector::drop_recv() {
  bool drop = false;
  {
    util::MutexLock lock(mutex_);
    drop = next_unit() < config_.drop;
    if (drop) ++injected_;
  }
  if (drop) count_injected("drop");
  return drop;
}

void FaultInjector::maybe_delay() const {
  if (config_.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
  }
}

std::uint64_t FaultInjector::injected() const {
  util::MutexLock lock(mutex_);
  return injected_;
}

void FaultInjector::configure_for_testing(const FaultConfig& config) {
  util::MutexLock lock(mutex_);
  config_ = config;
  enabled_ = config.enabled();
  state_ = config.seed;
  injected_ = 0;
}

}  // namespace ecad::net
