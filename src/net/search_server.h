// Search-as-a-service front end (protocol v4): a resident master daemon
// that accepts whole searches from thin clients and streams their progress.
//
// One poll(2) event-loop thread owns the listener and all connection reads
// (the WorkerServer pattern); parsed SubmitSearch frames go straight into
// the borrowed core::SearchScheduler, whose runner threads execute the
// searches and fire the progress/done callbacks.  Those callbacks write
// SearchProgress / SearchDone frames from scheduler threads under each
// connection's write mutex, so frames from concurrent searches interleave
// whole on the wire, in completion order.  A client that disconnects takes
// its searches with it (they are canceled, not orphaned).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/search_scheduler.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::net {

struct SearchServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral port; read the actual one back via port().
  std::uint16_t port = 0;
  /// Event-loop poll granularity (also bounds stop() latency).
  int poll_interval_ms = 50;
  /// Highest protocol version offered during the handshake.  Search frames
  /// need >= 4; lower pins turn the daemon into a ping-only peer (useful in
  /// compatibility tests).
  std::uint16_t max_protocol = kProtocolVersion;
  /// Display name sent in HelloAck.
  std::string name = "ecad-searchd";
};

class SearchServer {
 public:
  /// `scheduler` is borrowed and must outlive the server; its worker fleet
  /// is shared by every search this server admits.
  SearchServer(core::SearchScheduler& scheduler, SearchServerOptions options = {});
  ~SearchServer();

  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  /// Bind + launch the event loop. Throws NetError if the port is taken.
  void start();

  /// Graceful shutdown: stop accepting, drain the scheduler (running
  /// searches finish their in-flight generations and their SearchDone
  /// frames go out), then close every connection.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (valid after start()).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Searches admitted (SearchAccepted sent).
  std::size_t searches_accepted() const {
    return searches_accepted_.load(std::memory_order_relaxed);
  }
  /// Terminal SearchDone frames by status.
  std::size_t searches_completed() const {
    return searches_completed_.load(std::memory_order_relaxed);
  }
  std::size_t searches_canceled() const {
    return searches_canceled_.load(std::memory_order_relaxed);
  }
  std::size_t searches_failed() const { return searches_failed_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    Socket socket;
    std::vector<std::uint8_t> inbox;  // partial-frame reassembly buffer
    /// Serializes outgoing frames: scheduler runner threads (progress/done)
    /// and the loop thread (acks) both write to the socket.
    util::Mutex write_mutex;
    std::atomic<bool> closed{false};
    /// Negotiated protocol version; 1 until the Hello exchange.  Search
    /// frames on a < 4 connection are protocol violations.
    std::uint16_t version = 1;
    /// Searches submitted over this connection that have not reported done
    /// yet; owned by the loop thread (disconnect cancels them).
    std::vector<std::uint64_t> live_searches;
  };

  void run_loop();
  /// Returns false when the connection should be dropped.
  bool handle_frame(const std::shared_ptr<Connection>& connection, Frame frame);
  void handle_submit(const std::shared_ptr<Connection>& connection, Frame frame);
  void send_frame(const std::shared_ptr<Connection>& connection, MsgType type,
                  const std::vector<std::uint8_t>& payload)
      ECAD_EXCLUDES(connection->write_mutex);
  void send_done(const std::shared_ptr<Connection>& connection, const core::SearchOutcome& outcome);

  core::SearchScheduler& scheduler_;
  SearchServerOptions options_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread loop_thread_;
  std::vector<std::shared_ptr<Connection>> connections_;  // owned by the loop thread
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::atomic<std::size_t> searches_accepted_{0};
  std::atomic<std::size_t> searches_completed_{0};
  std::atomic<std::size_t> searches_canceled_{0};
  std::atomic<std::size_t> searches_failed_{0};
};

}  // namespace ecad::net
