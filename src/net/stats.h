// Stats over the wire (protocol v5): the daemon side renders the process
// metrics registry into a StatsReport frame, the client side asks a running
// daemon (workerd or searchd) for one.  Both daemons answer GetStats with
// the same snapshot path, so `ecad_searchd --stats` and `ecad_workerd
// --remote-stats` read identical shapes.
#pragma once

#include <cstdint>
#include <string>

#include "net/wire.h"

namespace ecad::net {

/// Render the process-wide metrics registry (util::metrics()) into the wire
/// shape, filtered by metric-name prefix ("" = everything).  Entries come
/// back sorted by name (the registry snapshot order).
StatsReport snapshot_stats_report(const std::string& prefix);

/// Connect to `host:port`, handshake, send GetStats(`prefix`) and return the
/// daemon's StatsReport.  Opens its own short-lived connection (works
/// against both WorkerServer and SearchServer).  Throws NetError on
/// connection failure and WireError when the peer negotiates below
/// protocol 5 (it cannot answer stats frames).
StatsReport fetch_stats(const std::string& host, std::uint16_t port, const std::string& prefix,
                        int timeout_ms = 5000);

}  // namespace ecad::net
