#include "net/search_client.h"

#include <algorithm>

#include "util/logging.h"

namespace ecad::net {

SearchClient::SearchClient(SearchClientOptions options) : options_(std::move(options)) {}

SearchClient::~SearchClient() { close(); }

void SearchClient::connect() {
  Endpoint endpoint;
  endpoint.host = options_.host;
  endpoint.port = options_.port;
  socket_ = Socket::connect(endpoint, options_.connect_timeout_ms);
  socket_.set_nodelay(true);
  const std::uint16_t attempt = std::min(options_.max_protocol, kProtocolVersion);
  WireWriter hello;
  write_hello_payload(hello, options_.name, attempt);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::Hello, hello.bytes());
  socket_.send_all(frame.data(), frame.size());
  const Frame ack = recv_frame();
  if (ack.type != MsgType::HelloAck) {
    throw NetError("handshake: expected HelloAck, got " + std::string(to_string(ack.type)));
  }
  WireReader reader(ack.payload);
  const HelloPayload payload = read_hello_payload(reader);
  version_ = std::min(attempt, payload.max_version);
  if (version_ < 4) {
    throw WireError("search service needs protocol >= 4; peer '" + payload.name +
                    "' negotiated v" + std::to_string(version_));
  }
  util::Log(util::LogLevel::Debug, "net")
      << "connected to search daemon '" << payload.name << "' (v" << version_ << ")";
}

std::uint64_t SearchClient::submit(const core::SearchRequest& request) {
  SubmitSearch message;
  message.submit_id = next_submit_id_++;
  message.request = request;
  WireWriter writer;
  write_submit_search(writer, message);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::SubmitSearch, writer.bytes());
  socket_.send_all(frame.data(), frame.size());
  // The accepted frame is written under the daemon's connection lock before
  // any progress frame for the new search, so it is the next search-service
  // frame on the wire (Pongs for interleaved pings may still precede it).
  for (;;) {
    const Frame reply = recv_frame();
    if (reply.type == MsgType::SearchAccepted) {
      WireReader reader(reply.payload);
      const SearchAccepted accepted = read_search_accepted(reader);
      reader.expect_end();
      if (accepted.submit_id != message.submit_id) {
        throw WireError("SearchAccepted for submit " + std::to_string(accepted.submit_id) +
                        ", expected " + std::to_string(message.submit_id));
      }
      return accepted.search_id;
    }
    if (reply.type == MsgType::SearchDone) {
      WireReader reader(reply.payload);
      const SearchDone done = read_search_done(reader);
      reader.expect_end();
      if (done.search_id == 0) {  // the reserved "no search" id: a rejection
        throw std::runtime_error("search rejected: " + done.message);
      }
      continue;  // a previous search of this connection finishing; not ours
    }
    if (reply.type == MsgType::SearchProgress || reply.type == MsgType::Pong) {
      continue;  // interleaved traffic for other searches on this connection
    }
    throw WireError("unexpected " + std::string(to_string(reply.type)) +
                    " while awaiting SearchAccepted");
  }
}

SearchDone SearchClient::stream(std::uint64_t search_id,
                                const std::function<void(const SearchProgress&)>& on_progress) {
  for (;;) {
    const Frame frame = recv_frame();
    if (frame.type == MsgType::SearchProgress) {
      WireReader reader(frame.payload);
      const SearchProgress progress = read_search_progress(reader);
      reader.expect_end();
      if (progress.search_id == search_id && on_progress) on_progress(progress);
      continue;
    }
    if (frame.type == MsgType::SearchDone) {
      WireReader reader(frame.payload);
      SearchDone done = read_search_done(reader);
      reader.expect_end();
      if (done.search_id == search_id) return done;
      continue;  // another search on this connection
    }
    if (frame.type == MsgType::Pong) continue;
    throw WireError("unexpected " + std::string(to_string(frame.type)) +
                    " while streaming search " + std::to_string(search_id));
  }
}

void SearchClient::cancel(std::uint64_t search_id) {
  CancelSearch message;
  message.search_id = search_id;
  WireWriter writer;
  write_cancel_search(writer, message);
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::CancelSearch, writer.bytes());
  socket_.send_all(frame.data(), frame.size());
}

void SearchClient::shutdown_server() {
  const std::vector<std::uint8_t> frame = encode_frame(MsgType::Shutdown, {});
  socket_.send_all(frame.data(), frame.size());
}

void SearchClient::close() {
  if (socket_.valid()) socket_.close();
  version_ = 0;
}

Frame SearchClient::recv_frame() {
  std::uint8_t header[kFrameHeaderBytes];
  socket_.recv_exact(header, sizeof(header), options_.frame_timeout_ms);
  const FrameHeader decoded = decode_frame_header(header);
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_size);
  if (decoded.payload_size > 0) {
    socket_.recv_exact(frame.payload.data(), frame.payload.size(), options_.frame_timeout_ms);
  }
  return frame;
}

}  // namespace ecad::net
