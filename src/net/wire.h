// Wire protocol for the distributed evaluation service (paper §III: the
// Master "distribut[es] the co-design population" to remote Workers).
//
// Framing: every message is a length-prefixed binary frame
//
//     u32  magic    0x45434144 ("ECAD", little-endian on the wire)
//     u16  version  lowest protocol version that understands this message
//     u16  type     MsgType
//     u32  length   payload byte count (<= kMaxPayloadBytes)
//     u8[] payload  type-specific body
//
// All integers are little-endian regardless of host order; doubles travel as
// their IEEE-754 bit pattern in a u64, so every value — including NaNs and
// signed zeros — round-trips bit-for-bit.  Decoding is fully bounds-checked:
// truncated or oversized input throws WireError, never reads past the end.
//
// Versioning (v2): the header's version field carries the lowest protocol
// version able to parse that message — v1 messages keep a version-1 header
// forever, so a v1-only peer interoperates untouched, while the v2 batch
// messages are framed version 2 and bounce off old peers as a header error.
// Peers negotiate the connection version in the handshake: Hello/HelloAck
// payloads optionally carry a trailing u16 with the sender's maximum
// supported version (absent = 1), and both sides speak min(theirs, ours).
// Batch frames are only legal on connections negotiated to >= 2.
//
// Streaming (v3): on a connection negotiated to >= 3, a worker answers
// EvalBatchRequest not with one EvalBatchResponse but with one EvalItemResult
// frame per item *as each item completes* (in completion order, not request
// order) followed by a terminal EvalBatchDone frame.  One slow genome no
// longer holds back its shard-mates' results.  v2 connections keep the
// single-response shape byte-for-byte, so a --max-protocol 2 pin restores
// the old wire behavior exactly.
//
// Search service (v4): thin clients submit whole searches to a resident
// master daemon.  SubmitSearch carries a serialized core::SearchRequest; the
// daemon answers SearchAccepted, then streams one SearchProgress frame per
// folded generation (in completion order across concurrent searches) and
// closes with SearchDone carrying either the full deterministic search
// record (every evaluated candidate plus the winner — the same data the
// standalone CLI prints) or an error/cancellation message.  CancelSearch
// stops a running search at its next generation boundary.
//
// Stats (v5): any peer can ask a daemon for its process-wide metrics
// registry (util/metrics.h).  GetStats carries a metric-name prefix filter
// ("" = everything); the daemon answers one StatsReport frame with a
// snapshot of every matching counter, gauge, and histogram (log-bucket
// counts included, so p50/p90/p99 are derivable client-side).  Stats frames
// are only legal on connections negotiated to >= 5; v4 and older peers are
// untouched.
//
// Fleet cache (v6): a content-addressed result cache tier hosted by worker
// daemons (net/fleet_cache.h).  Entries are (u64 key, EvalResult) bindings
// where the key is a stable FNV-1a hash of the eval-config identity plus the
// canonical genome key — computed identically by every master sharing the
// fleet, never with std::hash (which differs across processes).  CacheLookup
// carries a batch of keys; the daemon answers with a CacheStore frame
// holding the bindings it has (misses are simply absent).  CacheStore in the
// client->server direction publishes freshly computed results and needs no
// acknowledgement.  Cache frames are only legal on connections negotiated to
// >= 6; v5 and older peers are untouched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/master.h"
#include "evo/engine.h"
#include "evo/fitness.h"
#include "evo/genome.h"

namespace ecad::net {

/// Malformed, truncated, or protocol-violating bytes.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encoded little-endian like every other integer, so the first four bytes
/// of a frame on the wire literally read "ECAD" (0x45 'E' is the low byte).
inline constexpr std::uint32_t kWireMagic = 0x44414345u;
/// Highest protocol version this build speaks. Peers negotiate down to the
/// smaller of the two maxima; version 1 peers keep working unmodified.
inline constexpr std::uint16_t kProtocolVersion = 6;
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Genomes and results are tiny; anything near this limit is corruption.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;
inline constexpr std::uint32_t kMaxStringBytes = 1u << 20;
inline constexpr std::uint32_t kMaxVectorElems = 1u << 20;
/// Hard cap on genomes (or result slots) per batch frame; a generation is a
/// few dozen, so anything near this limit is corruption.
inline constexpr std::uint32_t kMaxBatchItems = 4096;
/// Hard cap on candidates per SearchDone record (the full history of one
/// search).  Budgets are hundreds-to-thousands; 64Ki candidates at ~150
/// bytes each still fits kMaxPayloadBytes with headroom.
inline constexpr std::uint32_t kMaxRecordCandidates = 65536;
/// Hard cap on metric entries per StatsReport frame; a process registers a
/// few dozen series (plus one per endpoint/search label), so anything near
/// this limit is corruption.
inline constexpr std::uint32_t kMaxStatsEntries = 4096;
/// Hard cap on log buckets per histogram entry (util::Histogram uses 40).
inline constexpr std::uint32_t kMaxHistogramBuckets = 64;
/// Hard cap on keys per CacheLookup and bindings per CacheStore frame; the
/// master looks up at most one batch of genomes at a time, so this mirrors
/// kMaxBatchItems and anything near it is corruption.
inline constexpr std::uint32_t kMaxCacheEntries = 4096;

enum class MsgType : std::uint16_t {
  Hello = 1,             // client -> server: string client name [+ u16 max version]
  HelloAck = 2,          // server -> client: string worker name [+ u16 negotiated version]
  EvalRequest = 3,       // u64 request id + Genome
  EvalResponse = 4,      // u64 request id + u8 ok + (EvalResult | string error)
  Ping = 5,              // empty
  Pong = 6,              // empty
  Shutdown = 7,          // client asks the daemon to exit its accept loop
  EvalBatchRequest = 8,  // v2: u64 batch id + u32 count + count Genomes
  EvalBatchResponse = 9, // v2: u64 batch id + u32 count + count outcome slots
  EvalItemResult = 10,   // v3: u64 batch id + u32 slot index + one outcome slot
  EvalBatchDone = 11,    // v3: u64 batch id + u32 count of item frames sent
  SubmitSearch = 12,     // v4: u64 submit id + SearchRequest
  SearchAccepted = 13,   // v4: u64 submit id + u64 search id + u32 queue position
  SearchProgress = 14,   // v4: u64 search id + per-generation stats
  SearchDone = 15,       // v4: u64 search id + u8 status + (record | string)
  CancelSearch = 16,     // v4: u64 search id
  GetStats = 17,         // v5: string metric-name prefix filter ("" = all)
  StatsReport = 18,      // v5: u32 count + count metric snapshot entries
  CacheLookup = 19,      // v6: u32 count + count u64 cache keys
  CacheStore = 20,       // v6: u32 count + count (u64 key + EvalResult)
};

const char* to_string(MsgType type);

/// Lowest protocol version that understands `type` — and the version its
/// frame header carries, so old peers reject only the messages they cannot
/// parse instead of the whole stream.
std::uint16_t frame_version_for(MsgType type);

// ---------------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; exact for every double including NaN payloads.
  void put_f64(double v);
  /// u32 length + raw bytes. Throws WireError above kMaxStringBytes.
  void put_string(const std::string& v);
  void put_size_vector(const std::vector<std::size_t>& v);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  bool get_bool() { return get_u8() != 0; }
  double get_f64();
  std::string get_string();
  std::vector<std::size_t> get_size_vector();

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws WireError unless every byte has been consumed (catches payloads
  /// with trailing garbage).
  void expect_end() const;

 private:
  const std::uint8_t* need(std::size_t count);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Domain serializers (round-trip exact)
// ---------------------------------------------------------------------------

void write_genome(WireWriter& writer, const evo::Genome& genome);
evo::Genome read_genome(WireReader& reader);

void write_eval_result(WireWriter& writer, const evo::EvalResult& result);
evo::EvalResult read_eval_result(WireReader& reader);

void write_search_request(WireWriter& writer, const core::SearchRequest& request);
core::SearchRequest read_search_request(WireReader& reader);

// ---------------------------------------------------------------------------
// Batched evaluation (protocol v2)
// ---------------------------------------------------------------------------

/// One EvalBatchRequest frame: N genomes evaluated per network round-trip.
struct EvalBatchRequest {
  std::uint64_t batch_id = 0;
  std::vector<evo::Genome> genomes;
};

/// One EvalBatchResponse frame: outcome slots in request order.  Per-item
/// error slots mean one poisoned genome fails its own slot, not the batch.
struct EvalBatchResponse {
  std::uint64_t batch_id = 0;
  std::vector<evo::EvalOutcome> items;
};

void write_eval_batch_request(WireWriter& writer, const EvalBatchRequest& request);
EvalBatchRequest read_eval_batch_request(WireReader& reader);

void write_eval_batch_response(WireWriter& writer, const EvalBatchResponse& response);
EvalBatchResponse read_eval_batch_response(WireReader& reader);

// ---------------------------------------------------------------------------
// Streaming evaluation (protocol v3)
// ---------------------------------------------------------------------------

/// One EvalItemResult frame: a single slot of an in-flight batch, streamed
/// the moment its evaluation completes.  `index` is the slot position in the
/// originating EvalBatchRequest; frames arrive in completion order, so a
/// receiver must settle slots by index, never by arrival position.
struct EvalItemResult {
  std::uint64_t batch_id = 0;
  std::uint32_t index = 0;
  evo::EvalOutcome outcome;
};

/// Terminal frame of a streamed batch: after `count` EvalItemResult frames
/// the worker declares the batch finished.  A receiver holding unsettled
/// slots past this frame knows the stream was corrupt rather than slow.
struct EvalBatchDone {
  std::uint64_t batch_id = 0;
  std::uint32_t count = 0;
};

void write_eval_item_result(WireWriter& writer, const EvalItemResult& item);
EvalItemResult read_eval_item_result(WireReader& reader);

void write_eval_batch_done(WireWriter& writer, const EvalBatchDone& done);
EvalBatchDone read_eval_batch_done(WireReader& reader);

// ---------------------------------------------------------------------------
// Search service (protocol v4)
// ---------------------------------------------------------------------------

/// One SubmitSearch frame: a thin client asks the resident master daemon to
/// run a whole search.  `submit_id` is client-chosen and echoed in the
/// SearchAccepted answer, so one connection can correlate several pending
/// submissions.
struct SubmitSearch {
  std::uint64_t submit_id = 0;
  core::SearchRequest request;
};

/// The daemon's answer to SubmitSearch: the server-assigned `search_id`
/// every later progress/done/cancel frame uses, plus the number of searches
/// (queued + running) ahead of this one at admission time.
struct SearchAccepted {
  std::uint64_t submit_id = 0;
  std::uint64_t search_id = 0;
  std::uint32_t queue_position = 0;
};

/// One per-generation progress frame, streamed in completion order across
/// all concurrent searches on the connection.  `generation` 0 is the scored
/// initial population.
struct SearchProgress {
  std::uint64_t search_id = 0;
  std::uint32_t generation = 0;
  std::uint64_t models_evaluated = 0;
  std::uint64_t max_evaluations = 0;
  /// Non-dominated subset of the current population (accuracy/throughput).
  std::uint32_t pareto_front_size = 0;
  double best_fitness = 0.0;
};

/// The deterministic final record of one search — the structured form of the
/// standalone CLI's stdout (candidate history in evaluation order, winner,
/// counters), so a submitted search can be re-rendered byte-identically.
struct SearchRecord {
  std::vector<evo::Candidate> history;
  evo::Candidate best;
  std::uint64_t models_evaluated = 0;
  std::uint64_t duplicates_skipped = 0;
};

/// Terminal frame of one search.  Completed carries the record; Canceled and
/// Failed carry a human-readable message instead.
struct SearchDone {
  enum class Status : std::uint8_t { Failed = 0, Completed = 1, Canceled = 2 };
  std::uint64_t search_id = 0;
  Status status = Status::Failed;
  SearchRecord record;  // meaningful only when status == Completed
  std::string message;  // meaningful only when status != Completed
};

/// Client asks the daemon to stop a search at its next generation boundary.
/// The search still answers with SearchDone (status Canceled).
struct CancelSearch {
  std::uint64_t search_id = 0;
};

void write_candidate(WireWriter& writer, const evo::Candidate& candidate);
evo::Candidate read_candidate(WireReader& reader);

void write_search_record(WireWriter& writer, const SearchRecord& record);
SearchRecord read_search_record(WireReader& reader);

void write_submit_search(WireWriter& writer, const SubmitSearch& submit);
SubmitSearch read_submit_search(WireReader& reader);

void write_search_accepted(WireWriter& writer, const SearchAccepted& accepted);
SearchAccepted read_search_accepted(WireReader& reader);

void write_search_progress(WireWriter& writer, const SearchProgress& progress);
SearchProgress read_search_progress(WireReader& reader);

void write_search_done(WireWriter& writer, const SearchDone& done);
SearchDone read_search_done(WireReader& reader);

void write_cancel_search(WireWriter& writer, const CancelSearch& cancel);
CancelSearch read_cancel_search(WireReader& reader);

// ---------------------------------------------------------------------------
// Stats (protocol v5)
// ---------------------------------------------------------------------------

/// One GetStats frame: ask a daemon for its metrics registry.  `prefix`
/// filters by metric-name prefix; empty returns everything.
struct GetStats {
  std::string prefix;
};

/// One metric in a StatsReport: the wire form of util::MetricSnapshot.
/// `kind` is util::MetricKind (0 counter, 1 gauge, 2 histogram); counters
/// and gauges carry `value`, histograms carry count/sum/buckets (log-bucket
/// counts, util::Histogram layout, so quantiles are derivable client-side).
struct StatsEntry {
  std::string name;
  std::uint8_t kind = 0;
  double value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// The daemon's answer to GetStats: every matching metric, sorted by name.
struct StatsReport {
  std::vector<StatsEntry> entries;
};

void write_get_stats(WireWriter& writer, const GetStats& request);
GetStats read_get_stats(WireReader& reader);

void write_stats_report(WireWriter& writer, const StatsReport& report);
StatsReport read_stats_report(WireReader& reader);

// ---------------------------------------------------------------------------
// Fleet cache (protocol v6)
// ---------------------------------------------------------------------------

/// One CacheLookup frame: a master asks a daemon which of these
/// content-addressed keys it holds results for.  Keys come from
/// net::fleet_cache_key (a stable hash — see net/fleet_cache.h), so every
/// master sharing the fleet derives identical keys for identical work.
struct CacheLookup {
  std::vector<std::uint64_t> keys;
};

/// One (key, result) binding of the fleet cache.  Only successful results
/// are cached — failures are not content-addressable facts about a genome.
struct CacheEntry {
  std::uint64_t key = 0;
  evo::EvalResult result;
};

/// One CacheStore frame: a bag of cache bindings.  Server -> client it is
/// the answer to CacheLookup (hits only; a key absent from the reply was a
/// miss).  Client -> server it publishes freshly computed results into the
/// daemon's cache tier and needs no acknowledgement.
struct CacheStore {
  std::vector<CacheEntry> entries;
};

void write_cache_lookup(WireWriter& writer, const CacheLookup& lookup);
CacheLookup read_cache_lookup(WireReader& reader);

void write_cache_store(WireWriter& writer, const CacheStore& store);
CacheStore read_cache_store(WireReader& reader);

// ---------------------------------------------------------------------------
// Handshake payloads
// ---------------------------------------------------------------------------

/// Hello / HelloAck body: a display name plus the sender's maximum protocol
/// version.  v1 peers send just the name; the reader treats a missing
/// trailer as version 1, so both generations parse both encodings.
struct HelloPayload {
  std::string name;
  std::uint16_t max_version = 1;
};

/// Omits the version trailer when `max_version == 1`, producing the exact
/// v1 encoding (a v1 peer calls expect_end() after the name and would drop
/// the connection over trailing bytes).
void write_hello_payload(WireWriter& writer, const std::string& name, std::uint16_t max_version);
HelloPayload read_hello_payload(WireReader& reader);

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

struct Frame {
  MsgType type = MsgType::Ping;
  std::vector<std::uint8_t> payload;
};

/// Header + payload as one contiguous buffer ready for send().  The header
/// version is frame_version_for(type) — v1 messages stay byte-identical to
/// the v1 encoder (the golden-fixture test pins this).
std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload);

struct FrameHeader {
  MsgType type = MsgType::Ping;
  std::uint16_t version = kMinProtocolVersion;
  std::uint32_t payload_size = 0;
};

/// Validates magic, version (kMinProtocolVersion..kProtocolVersion), known
/// type, and the payload size cap.
/// `header` must point at kFrameHeaderBytes readable bytes.
FrameHeader decode_frame_header(const std::uint8_t* header);

/// Incremental frame assembly for the poll loop: when `buffer` holds at least
/// one complete frame, pops it off the front and returns true.
bool try_extract_frame(std::vector<std::uint8_t>& buffer, Frame& out);

}  // namespace ecad::net
