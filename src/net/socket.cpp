#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/fault.h"
#include "util/string_util.h"

namespace ecad::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Remaining milliseconds before `deadline`; -1 for "no deadline", 0 when
/// already past. Suitable for poll().
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// poll() one fd for `events`, retrying EINTR against the deadline.
/// Returns false on timeout.
bool poll_one(int fd, short events, bool has_deadline, Clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (rc > 0) return true;  // readable/writable or error condition to surface via recv/send
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

Endpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    throw std::invalid_argument("parse_endpoint: expected host:port, got '" + text + "'");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port < 1 || port > 65535) {
    throw std::invalid_argument("parse_endpoint: bad port in '" + text + "'");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::vector<Endpoint> parse_endpoint_list(const std::string& text) {
  std::vector<Endpoint> endpoints;
  for (const std::string& part : util::split(text, ',')) {
    const std::string trimmed(util::trim(part));
    if (trimmed.empty()) continue;
    endpoints.push_back(parse_endpoint(trimmed));
  }
  return endpoints;
}

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const Endpoint& endpoint, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  const int gai = ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints, &results);
  if (gai != 0) {
    throw NetError("resolve " + endpoint.to_string() + ": " + ::gai_strerror(gai));
  }

  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string last_error = "no addresses";
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    set_cloexec(fd);
    // Nonblocking connect so the deadline applies to the handshake too.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      try {
        if (!poll_one(fd, POLLOUT, has_deadline, deadline)) {
          last_error = "connect timed out";
          ::close(fd);
          continue;
        }
      } catch (const NetError& e) {
        last_error = e.what();
        ::close(fd);
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      rc = so_error == 0 ? 0 : -1;
      errno = so_error;
    }
    if (rc != 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking; timeouts come from poll
    Socket socket(fd);
    socket.set_nodelay(true);
    ::freeaddrinfo(results);
    return socket;
  }
  ::freeaddrinfo(results);
  throw NetError("connect " + endpoint.to_string() + ": " + last_error);
}

namespace {

/// The raw blocking send loop, shared by the normal path and the injected
/// short-write path (which must transmit a real prefix so the peer observes
/// a torn frame, not a clean close).
void send_raw(int fd, const char* at, std::size_t size) {
  while (size > 0) {
    const ::ssize_t n = ::send(fd, at, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        poll_one(fd, POLLOUT, /*has_deadline=*/false, Clock::time_point());
        continue;
      }
      throw_errno("send");
    }
    at += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void Socket::send_all(const void* data, std::size_t size) {
  FaultInjector& faults = FaultInjector::instance();
  if (faults.enabled()) {
    faults.maybe_delay();
    switch (faults.send_fate()) {
      case FaultInjector::SendFate::Drop:
        shutdown_both();
        throw NetError("send: injected connection drop (ECAD_FAULT)");
      case FaultInjector::SendFate::ShortWrite: {
        // Transmit half the bytes, then die: the peer's length-prefixed read
        // sees a torn frame and must treat this connection as poisoned.
        send_raw(fd_, static_cast<const char*>(data), size / 2);
        shutdown_both();
        throw NetError("send: injected short write (ECAD_FAULT)");
      }
      case FaultInjector::SendFate::Ok: break;
    }
  }
  send_raw(fd_, static_cast<const char*>(data), size);
}

void Socket::recv_exact(void* data, std::size_t size, int timeout_ms) {
  FaultInjector& faults = FaultInjector::instance();
  if (faults.enabled()) {
    faults.maybe_delay();
    if (faults.drop_recv()) {
      shutdown_both();
      throw NetError("recv: injected connection drop (ECAD_FAULT)");
    }
  }
  char* at = static_cast<char*>(data);
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (size > 0) {
    if (!poll_one(fd_, POLLIN, has_deadline, deadline)) {
      throw NetError("recv: timed out");
    }
    const ::ssize_t n = ::recv(fd_, at, size, 0);
    if (n == 0) throw NetError("recv: peer closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    at += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(void* data, std::size_t size, int timeout_ms) {
  FaultInjector& faults = FaultInjector::instance();
  if (faults.enabled()) {
    faults.maybe_delay();
    if (faults.drop_recv()) {
      shutdown_both();
      throw NetError("recv: injected connection drop (ECAD_FAULT)");
    }
  }
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!poll_one(fd_, POLLIN, has_deadline, deadline)) return 0;
    const ::ssize_t n = ::recv(fd_, data, size, 0);
    if (n == 0) throw NetError("recv: peer closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

void Socket::set_nodelay(bool enable) {
  const int value = enable ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value));
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* results = nullptr;
  const std::string port_text = std::to_string(port);
  const int gai = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port_text.c_str(), &hints,
                                &results);
  if (gai != 0) {
    throw NetError("resolve " + host + ": " + ::gai_strerror(gai));
  }
  std::string last_error = "no addresses";
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    set_cloexec(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, backlog) != 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    throw NetError("listen on " + host + ":" + port_text + ": " + last_error);
  }
}

Listener::Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!poll_one(fd_, POLLIN, has_deadline, deadline)) return std::nullopt;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      throw_errno("accept");
    }
    set_cloexec(fd);
    Socket socket(fd);
    socket.set_nodelay(true);
    return socket;
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ecad::net
