#include "net/fleet_cache.h"

#include "util/metrics.h"

namespace ecad::net {

std::uint64_t fnv1a64(std::string_view bytes) {
  // FNV-1a, 64-bit: offset basis 0xcbf29ce484222325, prime 0x100000001b3.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string EvalConfigId::to_string() const {
  return "worker=" + worker_kind + ";data_seed=" + std::to_string(data_seed) +
         ";data_samples=" + std::to_string(data_samples) +
         ";data_features=" + std::to_string(data_features) +
         ";data_classes=" + std::to_string(data_classes) +
         ";train_epochs=" + std::to_string(train_epochs) +
         ";eval_seed=" + std::to_string(eval_seed);
}

std::uint64_t fleet_cache_key(const std::string& eval_config, const std::string& genome_key) {
  // '\n' can appear in neither half, so the join is unambiguous.
  return fnv1a64(eval_config + "\n" + genome_key);
}

namespace {

// Process-wide tier counters (bumped outside the cache mutex so the registry
// mutex stays a leaf lock).  The smoke cache legs read these over the v5
// stats wire and assert warm-run hit-rate deltas against them.
void count_query(bool present) {
  static util::Counter& hits = util::metrics().counter("fleet.cache_hits_total");
  static util::Counter& misses = util::metrics().counter("fleet.cache_misses_total");
  (present ? hits : misses).add(1);
}

void set_size_gauges(std::size_t entries) {
  static util::Gauge& entry_gauge = util::metrics().gauge("fleet.cache_entries");
  static util::Gauge& byte_gauge = util::metrics().gauge("fleet.cache_bytes");
  entry_gauge.set(static_cast<double>(entries));
  byte_gauge.set(static_cast<double>(entries * kCacheEntryBytes));
}

void count_evictions(std::uint64_t n) {
  static util::Counter& evictions = util::metrics().counter("fleet.cache_evictions_total");
  evictions.add(n);
}

}  // namespace

FleetResultCache::FleetResultCache(std::size_t byte_budget)
    : budget_entries_(byte_budget / kCacheEntryBytes) {}

std::optional<evo::EvalResult> FleetResultCache::lookup(std::uint64_t key) {
  if (!enabled()) return std::nullopt;
  std::optional<evo::EvalResult> found;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second.recency);
      found = it->second.result;
    }
  }
  count_query(found.has_value());
  return found;
}

void FleetResultCache::store(std::uint64_t key, const evo::EvalResult& result) {
  if (!enabled()) return;
  std::uint64_t evicted = 0;
  std::size_t size = 0;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Identical keys should carry identical results (content addressing);
      // refresh recency and keep the newer bits in case they differ.
      it->second.result = result;
      recency_.splice(recency_.begin(), recency_, it->second.recency);
    } else {
      recency_.push_front(key);
      entries_.emplace(key, Entry{result, recency_.begin()});
      while (entries_.size() > budget_entries_) {
        entries_.erase(recency_.back());
        recency_.pop_back();
        ++evictions_;
        ++evicted;
      }
    }
    size = entries_.size();
  }
  if (evicted > 0) count_evictions(evicted);
  set_size_gauges(size);
}

std::size_t FleetResultCache::entries() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t FleetResultCache::bytes() const {
  util::MutexLock lock(mutex_);
  return entries_.size() * kCacheEntryBytes;
}

std::uint64_t FleetResultCache::evictions() const {
  util::MutexLock lock(mutex_);
  return evictions_;
}

}  // namespace ecad::net
