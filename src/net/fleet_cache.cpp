#include "net/fleet_cache.h"

#include "evo/snapshot.h"
#include "util/metrics.h"
#include "util/snapshot_io.h"

namespace ecad::net {

std::uint64_t fnv1a64(std::string_view bytes) {
  // FNV-1a, 64-bit: offset basis 0xcbf29ce484222325, prime 0x100000001b3.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string EvalConfigId::to_string() const {
  return "worker=" + worker_kind + ";data_seed=" + std::to_string(data_seed) +
         ";data_samples=" + std::to_string(data_samples) +
         ";data_features=" + std::to_string(data_features) +
         ";data_classes=" + std::to_string(data_classes) +
         ";train_epochs=" + std::to_string(train_epochs) +
         ";eval_seed=" + std::to_string(eval_seed);
}

std::uint64_t fleet_cache_key(const std::string& eval_config, const std::string& genome_key) {
  // '\n' can appear in neither half, so the join is unambiguous.
  return fnv1a64(eval_config + "\n" + genome_key);
}

namespace {

// Process-wide tier counters (bumped outside the cache mutex so the registry
// mutex stays a leaf lock).  The smoke cache legs read these over the v5
// stats wire and assert warm-run hit-rate deltas against them.
void count_query(bool present) {
  static util::Counter& hits = util::metrics().counter("fleet.cache_hits_total");
  static util::Counter& misses = util::metrics().counter("fleet.cache_misses_total");
  (present ? hits : misses).add(1);
}

void set_size_gauges(std::size_t entries) {
  static util::Gauge& entry_gauge = util::metrics().gauge("fleet.cache_entries");
  static util::Gauge& byte_gauge = util::metrics().gauge("fleet.cache_bytes");
  entry_gauge.set(static_cast<double>(entries));
  byte_gauge.set(static_cast<double>(entries * kCacheEntryBytes));
}

void count_evictions(std::uint64_t n) {
  static util::Counter& evictions = util::metrics().counter("fleet.cache_evictions_total");
  evictions.add(n);
}

}  // namespace

FleetResultCache::FleetResultCache(std::size_t byte_budget)
    : budget_entries_(byte_budget / kCacheEntryBytes) {}

std::optional<evo::EvalResult> FleetResultCache::lookup(std::uint64_t key) {
  if (!enabled()) return std::nullopt;
  std::optional<evo::EvalResult> found;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second.recency);
      found = it->second.result;
    }
  }
  count_query(found.has_value());
  return found;
}

void FleetResultCache::store(std::uint64_t key, const evo::EvalResult& result) {
  if (!enabled()) return;
  std::uint64_t evicted = 0;
  std::size_t size = 0;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Identical keys should carry identical results (content addressing);
      // refresh recency and keep the newer bits in case they differ.
      it->second.result = result;
      recency_.splice(recency_.begin(), recency_, it->second.recency);
    } else {
      recency_.push_front(key);
      entries_.emplace(key, Entry{result, recency_.begin()});
      while (entries_.size() > budget_entries_) {
        entries_.erase(recency_.back());
        recency_.pop_back();
        ++evictions_;
        ++evicted;
      }
    }
    size = entries_.size();
  }
  if (evicted > 0) count_evictions(evicted);
  set_size_gauges(size);
}

std::size_t FleetResultCache::entries() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t FleetResultCache::bytes() const {
  util::MutexLock lock(mutex_);
  return entries_.size() * kCacheEntryBytes;
}

std::uint64_t FleetResultCache::evictions() const {
  util::MutexLock lock(mutex_);
  return evictions_;
}

std::vector<std::pair<std::uint64_t, evo::EvalResult>> FleetResultCache::export_entries() const {
  std::vector<std::pair<std::uint64_t, evo::EvalResult>> out;
  util::MutexLock lock(mutex_);
  out.reserve(entries_.size());
  // recency_ runs newest-first; walk it backwards so replaying the vector
  // through store() (which pushes to the front) rebuilds the same order.
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    out.emplace_back(*it, entries_.at(*it).result);
  }
  return out;
}

std::vector<std::uint8_t> serialize_cache_entries(
    const std::vector<std::pair<std::uint64_t, evo::EvalResult>>& entries) {
  util::SnapshotWriter writer;
  writer.put_u32(kCacheFileMagic);
  writer.put_u16(util::kSnapshotFormatVersion);
  writer.put_u64(entries.size());
  for (const auto& [key, result] : entries) {
    writer.put_u64(key);
    evo::write_eval_result(writer, result);
  }
  return writer.take();
}

std::vector<std::pair<std::uint64_t, evo::EvalResult>> deserialize_cache_entries(
    const std::vector<std::uint8_t>& bytes) {
  util::SnapshotReader reader(bytes);
  if (reader.get_u32() != kCacheFileMagic) {
    throw util::SnapshotError("cache file: bad magic");
  }
  const std::uint16_t version = reader.get_u16();
  if (version != util::kSnapshotFormatVersion) {
    throw util::SnapshotError("cache file: unsupported format version " +
                              std::to_string(version));
  }
  const std::uint64_t count = reader.get_u64();
  if (count > util::kMaxSnapshotVectorElems) {
    throw util::SnapshotError("cache file: entry count " + std::to_string(count) +
                              " exceeds cap");
  }
  std::vector<std::pair<std::uint64_t, evo::EvalResult>> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = reader.get_u64();
    entries.emplace_back(key, evo::read_eval_result(reader));
  }
  reader.expect_end();
  return entries;
}

void save_cache_file(const std::string& path, const FleetResultCache& cache) {
  util::write_file_atomic(path, serialize_cache_entries(cache.export_entries()),
                          "cache_file");
}

std::size_t load_cache_file(const std::string& path, FleetResultCache& cache) {
  const auto entries = deserialize_cache_entries(util::read_file_bytes(path));
  for (const auto& [key, result] : entries) {
    cache.store(key, result);
  }
  return entries.size();
}

}  // namespace ecad::net
