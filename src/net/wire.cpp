#include "net/wire.h"

#include <cstring>

#include "nn/activation.h"

namespace ecad::net {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloAck: return "HelloAck";
    case MsgType::EvalRequest: return "EvalRequest";
    case MsgType::EvalResponse: return "EvalResponse";
    case MsgType::Ping: return "Ping";
    case MsgType::Pong: return "Pong";
    case MsgType::Shutdown: return "Shutdown";
    case MsgType::EvalBatchRequest: return "EvalBatchRequest";
    case MsgType::EvalBatchResponse: return "EvalBatchResponse";
    case MsgType::EvalItemResult: return "EvalItemResult";
    case MsgType::EvalBatchDone: return "EvalBatchDone";
    case MsgType::SubmitSearch: return "SubmitSearch";
    case MsgType::SearchAccepted: return "SearchAccepted";
    case MsgType::SearchProgress: return "SearchProgress";
    case MsgType::SearchDone: return "SearchDone";
    case MsgType::CancelSearch: return "CancelSearch";
    case MsgType::GetStats: return "GetStats";
    case MsgType::StatsReport: return "StatsReport";
    case MsgType::CacheLookup: return "CacheLookup";
    case MsgType::CacheStore: return "CacheStore";
  }
  return "?";
}

std::uint16_t frame_version_for(MsgType type) {
  switch (type) {
    case MsgType::EvalBatchRequest:
    case MsgType::EvalBatchResponse:
      return 2;
    case MsgType::EvalItemResult:
    case MsgType::EvalBatchDone:
      return 3;
    case MsgType::SubmitSearch:
    case MsgType::SearchAccepted:
    case MsgType::SearchProgress:
    case MsgType::SearchDone:
    case MsgType::CancelSearch:
      return 4;
    case MsgType::GetStats:
    case MsgType::StatsReport:
      return 5;
    case MsgType::CacheLookup:
    case MsgType::CacheStore:
      return 6;
    default:
      return 1;
  }
}

namespace {

bool known_msg_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MsgType::Hello) &&
         raw <= static_cast<std::uint16_t>(MsgType::CacheStore);
}

}  // namespace

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::put_f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t), "IEEE-754 double expected");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void WireWriter::put_string(const std::string& v) {
  if (v.size() > kMaxStringBytes) {
    throw WireError("wire: string of " + std::to_string(v.size()) + " bytes exceeds the limit");
  }
  put_u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void WireWriter::put_size_vector(const std::vector<std::size_t>& v) {
  if (v.size() > kMaxVectorElems) {
    throw WireError("wire: vector of " + std::to_string(v.size()) + " elements exceeds the limit");
  }
  put_u32(static_cast<std::uint32_t>(v.size()));
  for (std::size_t value : v) put_u64(static_cast<std::uint64_t>(value));
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

const std::uint8_t* WireReader::need(std::size_t count) {
  if (count > size_ - pos_) {
    throw WireError("wire: truncated payload (need " + std::to_string(count) + " bytes, have " +
                    std::to_string(size_ - pos_) + ")");
  }
  const std::uint8_t* at = data_ + pos_;
  pos_ += count;
  return at;
}

std::uint8_t WireReader::get_u8() { return *need(1); }

std::uint16_t WireReader::get_u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t WireReader::get_u32() {
  const std::uint8_t* p = need(4);
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t WireReader::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

double WireReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::get_string() {
  const std::uint32_t size = get_u32();
  if (size > kMaxStringBytes) {
    throw WireError("wire: string length " + std::to_string(size) + " exceeds the limit");
  }
  const std::uint8_t* p = need(size);
  return std::string(reinterpret_cast<const char*>(p), size);
}

std::vector<std::size_t> WireReader::get_size_vector() {
  const std::uint32_t count = get_u32();
  if (count > kMaxVectorElems) {
    throw WireError("wire: vector length " + std::to_string(count) + " exceeds the limit");
  }
  if (static_cast<std::size_t>(count) * 8 > remaining()) {
    throw WireError("wire: truncated vector");
  }
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(static_cast<std::size_t>(get_u64()));
  return out;
}

void WireReader::expect_end() const {
  if (pos_ != size_) {
    throw WireError("wire: " + std::to_string(size_ - pos_) + " trailing bytes after payload");
  }
}

// ---------------------------------------------------------------------------
// Domain serializers
// ---------------------------------------------------------------------------

namespace {

// Activations travel as their canonical names, not enum ordinals, so the
// wire stays valid if the enum is ever reordered.
void put_activation(WireWriter& writer, nn::Activation activation) {
  writer.put_string(std::string(nn::to_string(activation)));
}

nn::Activation get_activation(WireReader& reader) {
  const std::string name = reader.get_string();
  try {
    return nn::activation_from_name(name);
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("wire: ") + e.what());
  }
}

}  // namespace

void write_genome(WireWriter& writer, const evo::Genome& genome) {
  writer.put_size_vector(genome.nna.hidden);
  put_activation(writer, genome.nna.activation);
  writer.put_bool(genome.nna.use_bias);
  writer.put_u64(genome.grid.rows);
  writer.put_u64(genome.grid.cols);
  writer.put_u64(genome.grid.vec_width);
  writer.put_u64(genome.grid.interleave_m);
  writer.put_u64(genome.grid.interleave_n);
}

evo::Genome read_genome(WireReader& reader) {
  evo::Genome genome;
  genome.nna.hidden = reader.get_size_vector();
  genome.nna.activation = get_activation(reader);
  genome.nna.use_bias = reader.get_bool();
  genome.grid.rows = static_cast<std::size_t>(reader.get_u64());
  genome.grid.cols = static_cast<std::size_t>(reader.get_u64());
  genome.grid.vec_width = static_cast<std::size_t>(reader.get_u64());
  genome.grid.interleave_m = static_cast<std::size_t>(reader.get_u64());
  genome.grid.interleave_n = static_cast<std::size_t>(reader.get_u64());
  return genome;
}

void write_eval_result(WireWriter& writer, const evo::EvalResult& result) {
  writer.put_f64(result.accuracy);
  writer.put_f64(result.outputs_per_second);
  writer.put_f64(result.latency_seconds);
  writer.put_f64(result.potential_gflops);
  writer.put_f64(result.effective_gflops);
  writer.put_f64(result.hw_efficiency);
  writer.put_f64(result.power_watts);
  writer.put_f64(result.fmax_mhz);
  writer.put_f64(result.parameters);
  writer.put_f64(result.flops_per_sample);
  writer.put_f64(result.eval_seconds);
  writer.put_bool(result.feasible);
}

evo::EvalResult read_eval_result(WireReader& reader) {
  evo::EvalResult result;
  result.accuracy = reader.get_f64();
  result.outputs_per_second = reader.get_f64();
  result.latency_seconds = reader.get_f64();
  result.potential_gflops = reader.get_f64();
  result.effective_gflops = reader.get_f64();
  result.hw_efficiency = reader.get_f64();
  result.power_watts = reader.get_f64();
  result.fmax_mhz = reader.get_f64();
  result.parameters = reader.get_f64();
  result.flops_per_sample = reader.get_f64();
  result.eval_seconds = reader.get_f64();
  result.feasible = reader.get_bool();
  return result;
}

void write_search_request(WireWriter& writer, const core::SearchRequest& request) {
  const evo::SearchSpace& space = request.space;
  writer.put_u64(space.min_hidden_layers);
  writer.put_u64(space.max_hidden_layers);
  writer.put_size_vector(space.width_choices);
  if (space.activations.size() > kMaxVectorElems) {
    throw WireError("wire: activation list exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(space.activations.size()));
  for (nn::Activation activation : space.activations) put_activation(writer, activation);
  writer.put_bool(space.allow_no_bias);
  writer.put_size_vector(space.grid.row_choices);
  writer.put_size_vector(space.grid.col_choices);
  writer.put_size_vector(space.grid.vec_choices);
  writer.put_size_vector(space.grid.interleave_choices);
  writer.put_bool(space.search_hardware);

  const evo::EvolutionConfig& evolution = request.evolution;
  writer.put_u64(evolution.population_size);
  writer.put_u64(evolution.max_evaluations);
  writer.put_u64(evolution.tournament_size);
  writer.put_f64(evolution.crossover_probability);
  writer.put_f64(evolution.mutation_strength);
  writer.put_u64(evolution.dedup_attempts);
  writer.put_u64(evolution.batch_size);
  // Overlap fields (PR 5).  Since v4 this encoding travels inside
  // SubmitSearch frames, so any future field additions must ride a protocol
  // version bump (the golden submit_search fixture pins today's bytes).
  writer.put_bool(evolution.overlap_generations);
  writer.put_u64(evolution.max_inflight_batches);

  writer.put_string(request.fitness);
  writer.put_u64(request.seed);
  writer.put_u64(request.threads);
}

core::SearchRequest read_search_request(WireReader& reader) {
  core::SearchRequest request;
  evo::SearchSpace& space = request.space;
  space.min_hidden_layers = static_cast<std::size_t>(reader.get_u64());
  space.max_hidden_layers = static_cast<std::size_t>(reader.get_u64());
  space.width_choices = reader.get_size_vector();
  const std::uint32_t activation_count = reader.get_u32();
  if (activation_count > kMaxVectorElems) {
    throw WireError("wire: activation list length exceeds the limit");
  }
  space.activations.clear();
  space.activations.reserve(activation_count);
  for (std::uint32_t i = 0; i < activation_count; ++i) {
    space.activations.push_back(get_activation(reader));
  }
  space.allow_no_bias = reader.get_bool();
  space.grid.row_choices = reader.get_size_vector();
  space.grid.col_choices = reader.get_size_vector();
  space.grid.vec_choices = reader.get_size_vector();
  space.grid.interleave_choices = reader.get_size_vector();
  space.search_hardware = reader.get_bool();

  evo::EvolutionConfig& evolution = request.evolution;
  evolution.population_size = static_cast<std::size_t>(reader.get_u64());
  evolution.max_evaluations = static_cast<std::size_t>(reader.get_u64());
  evolution.tournament_size = static_cast<std::size_t>(reader.get_u64());
  evolution.crossover_probability = reader.get_f64();
  evolution.mutation_strength = reader.get_f64();
  evolution.dedup_attempts = static_cast<std::size_t>(reader.get_u64());
  evolution.batch_size = static_cast<std::size_t>(reader.get_u64());
  evolution.overlap_generations = reader.get_bool();
  evolution.max_inflight_batches = static_cast<std::size_t>(reader.get_u64());

  request.fitness = reader.get_string();
  request.seed = reader.get_u64();
  request.threads = static_cast<std::size_t>(reader.get_u64());
  return request;
}

// ---------------------------------------------------------------------------
// Batched evaluation (protocol v2)
// ---------------------------------------------------------------------------

void write_eval_batch_request(WireWriter& writer, const EvalBatchRequest& request) {
  if (request.genomes.size() > kMaxBatchItems) {
    throw WireError("wire: batch of " + std::to_string(request.genomes.size()) +
                    " genomes exceeds the limit");
  }
  writer.put_u64(request.batch_id);
  writer.put_u32(static_cast<std::uint32_t>(request.genomes.size()));
  for (const evo::Genome& genome : request.genomes) write_genome(writer, genome);
}

EvalBatchRequest read_eval_batch_request(WireReader& reader) {
  EvalBatchRequest request;
  request.batch_id = reader.get_u64();
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxBatchItems) {
    throw WireError("wire: batch length " + std::to_string(count) + " exceeds the limit");
  }
  request.genomes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) request.genomes.push_back(read_genome(reader));
  return request;
}

namespace {

// Outcome-slot encoding shared by the v2 batch response and the v3 item
// frame, so the two generations cannot drift apart.
void put_outcome(WireWriter& writer, const evo::EvalOutcome& item) {
  writer.put_bool(item.ok);
  if (item.ok) {
    write_eval_result(writer, item.result);
  } else {
    writer.put_string(item.error);
  }
}

evo::EvalOutcome get_outcome(WireReader& reader) {
  evo::EvalOutcome item;
  item.ok = reader.get_bool();
  if (item.ok) {
    item.result = read_eval_result(reader);
  } else {
    item.error = reader.get_string();
  }
  return item;
}

}  // namespace

void write_eval_batch_response(WireWriter& writer, const EvalBatchResponse& response) {
  if (response.items.size() > kMaxBatchItems) {
    throw WireError("wire: batch of " + std::to_string(response.items.size()) +
                    " outcomes exceeds the limit");
  }
  writer.put_u64(response.batch_id);
  writer.put_u32(static_cast<std::uint32_t>(response.items.size()));
  for (const evo::EvalOutcome& item : response.items) put_outcome(writer, item);
}

EvalBatchResponse read_eval_batch_response(WireReader& reader) {
  EvalBatchResponse response;
  response.batch_id = reader.get_u64();
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxBatchItems) {
    throw WireError("wire: batch length " + std::to_string(count) + " exceeds the limit");
  }
  response.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) response.items.push_back(get_outcome(reader));
  return response;
}

// ---------------------------------------------------------------------------
// Streaming evaluation (protocol v3)
// ---------------------------------------------------------------------------

void write_eval_item_result(WireWriter& writer, const EvalItemResult& item) {
  if (item.index >= kMaxBatchItems) {
    throw WireError("wire: item index " + std::to_string(item.index) + " exceeds the limit");
  }
  writer.put_u64(item.batch_id);
  writer.put_u32(item.index);
  put_outcome(writer, item.outcome);
}

EvalItemResult read_eval_item_result(WireReader& reader) {
  EvalItemResult item;
  item.batch_id = reader.get_u64();
  item.index = reader.get_u32();
  if (item.index >= kMaxBatchItems) {
    throw WireError("wire: item index " + std::to_string(item.index) + " exceeds the limit");
  }
  item.outcome = get_outcome(reader);
  return item;
}

void write_eval_batch_done(WireWriter& writer, const EvalBatchDone& done) {
  if (done.count > kMaxBatchItems) {
    throw WireError("wire: batch-done count " + std::to_string(done.count) +
                    " exceeds the limit");
  }
  writer.put_u64(done.batch_id);
  writer.put_u32(done.count);
}

EvalBatchDone read_eval_batch_done(WireReader& reader) {
  EvalBatchDone done;
  done.batch_id = reader.get_u64();
  done.count = reader.get_u32();
  if (done.count > kMaxBatchItems) {
    throw WireError("wire: batch-done count " + std::to_string(done.count) +
                    " exceeds the limit");
  }
  return done;
}

// ---------------------------------------------------------------------------
// Search service (protocol v4)
// ---------------------------------------------------------------------------

void write_candidate(WireWriter& writer, const evo::Candidate& candidate) {
  write_genome(writer, candidate.genome);
  write_eval_result(writer, candidate.result);
  writer.put_f64(candidate.fitness);
}

evo::Candidate read_candidate(WireReader& reader) {
  evo::Candidate candidate;
  candidate.genome = read_genome(reader);
  candidate.result = read_eval_result(reader);
  candidate.fitness = reader.get_f64();
  return candidate;
}

void write_search_record(WireWriter& writer, const SearchRecord& record) {
  if (record.history.size() > kMaxRecordCandidates) {
    throw WireError("wire: search record of " + std::to_string(record.history.size()) +
                    " candidates exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(record.history.size()));
  for (const evo::Candidate& candidate : record.history) write_candidate(writer, candidate);
  write_candidate(writer, record.best);
  writer.put_u64(record.models_evaluated);
  writer.put_u64(record.duplicates_skipped);
}

SearchRecord read_search_record(WireReader& reader) {
  SearchRecord record;
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxRecordCandidates) {
    throw WireError("wire: search record length " + std::to_string(count) +
                    " exceeds the limit");
  }
  record.history.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) record.history.push_back(read_candidate(reader));
  record.best = read_candidate(reader);
  record.models_evaluated = reader.get_u64();
  record.duplicates_skipped = reader.get_u64();
  return record;
}

void write_submit_search(WireWriter& writer, const SubmitSearch& submit) {
  writer.put_u64(submit.submit_id);
  write_search_request(writer, submit.request);
}

SubmitSearch read_submit_search(WireReader& reader) {
  SubmitSearch submit;
  submit.submit_id = reader.get_u64();
  submit.request = read_search_request(reader);
  return submit;
}

void write_search_accepted(WireWriter& writer, const SearchAccepted& accepted) {
  writer.put_u64(accepted.submit_id);
  writer.put_u64(accepted.search_id);
  writer.put_u32(accepted.queue_position);
}

SearchAccepted read_search_accepted(WireReader& reader) {
  SearchAccepted accepted;
  accepted.submit_id = reader.get_u64();
  accepted.search_id = reader.get_u64();
  accepted.queue_position = reader.get_u32();
  return accepted;
}

void write_search_progress(WireWriter& writer, const SearchProgress& progress) {
  writer.put_u64(progress.search_id);
  writer.put_u32(progress.generation);
  writer.put_u64(progress.models_evaluated);
  writer.put_u64(progress.max_evaluations);
  writer.put_u32(progress.pareto_front_size);
  writer.put_f64(progress.best_fitness);
}

SearchProgress read_search_progress(WireReader& reader) {
  SearchProgress progress;
  progress.search_id = reader.get_u64();
  progress.generation = reader.get_u32();
  progress.models_evaluated = reader.get_u64();
  progress.max_evaluations = reader.get_u64();
  progress.pareto_front_size = reader.get_u32();
  progress.best_fitness = reader.get_f64();
  return progress;
}

void write_search_done(WireWriter& writer, const SearchDone& done) {
  writer.put_u64(done.search_id);
  writer.put_u8(static_cast<std::uint8_t>(done.status));
  if (done.status == SearchDone::Status::Completed) {
    write_search_record(writer, done.record);
  } else {
    writer.put_string(done.message);
  }
}

SearchDone read_search_done(WireReader& reader) {
  SearchDone done;
  done.search_id = reader.get_u64();
  const std::uint8_t raw_status = reader.get_u8();
  if (raw_status > static_cast<std::uint8_t>(SearchDone::Status::Canceled)) {
    throw WireError("wire: unknown SearchDone status " + std::to_string(raw_status));
  }
  done.status = static_cast<SearchDone::Status>(raw_status);
  if (done.status == SearchDone::Status::Completed) {
    done.record = read_search_record(reader);
  } else {
    done.message = reader.get_string();
  }
  return done;
}

void write_cancel_search(WireWriter& writer, const CancelSearch& cancel) {
  writer.put_u64(cancel.search_id);
}

CancelSearch read_cancel_search(WireReader& reader) {
  CancelSearch cancel;
  cancel.search_id = reader.get_u64();
  return cancel;
}

// ---------------------------------------------------------------------------
// Stats (protocol v5)
// ---------------------------------------------------------------------------

void write_get_stats(WireWriter& writer, const GetStats& request) {
  writer.put_string(request.prefix);
}

GetStats read_get_stats(WireReader& reader) {
  GetStats request;
  request.prefix = reader.get_string();
  return request;
}

namespace {

void put_stats_entry(WireWriter& writer, const StatsEntry& entry) {
  if (entry.buckets.size() > kMaxHistogramBuckets) {
    throw WireError("wire: histogram of " + std::to_string(entry.buckets.size()) +
                    " buckets exceeds the limit");
  }
  writer.put_string(entry.name);
  writer.put_u8(entry.kind);
  writer.put_f64(entry.value);
  writer.put_u64(entry.count);
  writer.put_f64(entry.sum);
  writer.put_u32(static_cast<std::uint32_t>(entry.buckets.size()));
  for (std::uint64_t bucket : entry.buckets) writer.put_u64(bucket);
}

StatsEntry get_stats_entry(WireReader& reader) {
  StatsEntry entry;
  entry.name = reader.get_string();
  entry.kind = reader.get_u8();
  entry.value = reader.get_f64();
  entry.count = reader.get_u64();
  entry.sum = reader.get_f64();
  const std::uint32_t bucket_count = reader.get_u32();
  if (bucket_count > kMaxHistogramBuckets) {
    throw WireError("wire: histogram bucket count " + std::to_string(bucket_count) +
                    " exceeds the limit");
  }
  entry.buckets.reserve(bucket_count);
  for (std::uint32_t i = 0; i < bucket_count; ++i) entry.buckets.push_back(reader.get_u64());
  return entry;
}

}  // namespace

void write_stats_report(WireWriter& writer, const StatsReport& report) {
  if (report.entries.size() > kMaxStatsEntries) {
    throw WireError("wire: stats report of " + std::to_string(report.entries.size()) +
                    " entries exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(report.entries.size()));
  for (const StatsEntry& entry : report.entries) put_stats_entry(writer, entry);
}

StatsReport read_stats_report(WireReader& reader) {
  StatsReport report;
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxStatsEntries) {
    throw WireError("wire: stats report length " + std::to_string(count) + " exceeds the limit");
  }
  report.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) report.entries.push_back(get_stats_entry(reader));
  return report;
}

// ---------------------------------------------------------------------------
// Fleet cache (protocol v6)
// ---------------------------------------------------------------------------

void write_cache_lookup(WireWriter& writer, const CacheLookup& lookup) {
  if (lookup.keys.size() > kMaxCacheEntries) {
    throw WireError("wire: cache lookup of " + std::to_string(lookup.keys.size()) +
                    " keys exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(lookup.keys.size()));
  for (std::uint64_t key : lookup.keys) writer.put_u64(key);
}

CacheLookup read_cache_lookup(WireReader& reader) {
  CacheLookup lookup;
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxCacheEntries) {
    throw WireError("wire: cache lookup length " + std::to_string(count) + " exceeds the limit");
  }
  if (static_cast<std::size_t>(count) * 8 > reader.remaining()) {
    throw WireError("wire: truncated cache lookup");
  }
  lookup.keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) lookup.keys.push_back(reader.get_u64());
  return lookup;
}

void write_cache_store(WireWriter& writer, const CacheStore& store) {
  if (store.entries.size() > kMaxCacheEntries) {
    throw WireError("wire: cache store of " + std::to_string(store.entries.size()) +
                    " entries exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(store.entries.size()));
  for (const CacheEntry& entry : store.entries) {
    writer.put_u64(entry.key);
    write_eval_result(writer, entry.result);
  }
}

CacheStore read_cache_store(WireReader& reader) {
  CacheStore store;
  const std::uint32_t count = reader.get_u32();
  if (count > kMaxCacheEntries) {
    throw WireError("wire: cache store length " + std::to_string(count) + " exceeds the limit");
  }
  store.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CacheEntry entry;
    entry.key = reader.get_u64();
    entry.result = read_eval_result(reader);
    store.entries.push_back(entry);
  }
  return store;
}

// ---------------------------------------------------------------------------
// Handshake payloads
// ---------------------------------------------------------------------------

void write_hello_payload(WireWriter& writer, const std::string& name, std::uint16_t max_version) {
  writer.put_string(name);
  if (max_version >= 2) writer.put_u16(max_version);
}

HelloPayload read_hello_payload(WireReader& reader) {
  HelloPayload hello;
  hello.name = reader.get_string();
  if (reader.remaining() >= 2) hello.max_version = reader.get_u16();
  if (hello.max_version < 1) hello.max_version = 1;
  reader.expect_end();
  return hello;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw WireError("wire: payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the frame limit");
  }
  WireWriter header;
  header.put_u32(kWireMagic);
  header.put_u16(frame_version_for(type));
  header.put_u16(static_cast<std::uint16_t>(type));
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> frame = header.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameHeader decode_frame_header(const std::uint8_t* header) {
  WireReader reader(header, kFrameHeaderBytes);
  const std::uint32_t magic = reader.get_u32();
  if (magic != kWireMagic) {
    throw WireError("wire: bad frame magic (not an ECAD peer?)");
  }
  const std::uint16_t version = reader.get_u16();
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw WireError("wire: protocol version " + std::to_string(version) + " (supported: " +
                    std::to_string(kMinProtocolVersion) + "-" + std::to_string(kProtocolVersion) +
                    ")");
  }
  const std::uint16_t raw_type = reader.get_u16();
  if (!known_msg_type(raw_type)) {
    throw WireError("wire: unknown message type " + std::to_string(raw_type));
  }
  FrameHeader out;
  out.type = static_cast<MsgType>(raw_type);
  out.version = version;
  out.payload_size = reader.get_u32();
  if (out.payload_size > kMaxPayloadBytes) {
    throw WireError("wire: frame payload of " + std::to_string(out.payload_size) +
                    " bytes exceeds the limit");
  }
  return out;
}

bool try_extract_frame(std::vector<std::uint8_t>& buffer, Frame& out) {
  if (buffer.size() < kFrameHeaderBytes) return false;
  const FrameHeader header = decode_frame_header(buffer.data());
  const std::size_t total = kFrameHeaderBytes + header.payload_size;
  if (buffer.size() < total) return false;
  out.type = header.type;
  out.payload.assign(buffer.begin() + kFrameHeaderBytes, buffer.begin() + total);
  buffer.erase(buffer.begin(), buffer.begin() + total);
  return true;
}

}  // namespace ecad::net
