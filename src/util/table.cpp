#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace ecad::util {

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width " + std::to_string(row.size()) +
                                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto pad = [](const std::string& text, std::size_t width) {
    std::string cell = text;
    cell.resize(width, ' ');
    return cell;
  };

  std::string out;
  if (!title.empty()) {
    out += title;
    out += '\n';
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += " | ";
      out += pad(row[c], widths[c]);
    }
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 3);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::print(std::ostream& out, const std::string& title) const {
  out << render(title);
}

}  // namespace ecad::util
