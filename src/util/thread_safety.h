// Clang thread-safety analysis macros (no-ops on other compilers).
//
// These wrap the capability attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so every locking
// contract in the tree is machine-checked at compile time instead of living
// in comments.  The CI `static-analysis` job builds with Clang and
// `-Wthread-safety` promoted to an error; GCC compiles the same code with
// the attributes expanded to nothing.
//
// The annotations only understand capability types, so the lockable
// primitives themselves live in util/mutex.h (`ecad::util::Mutex`,
// `MutexLock`, `CondVar`) — a plain `std::mutex` member cannot appear in an
// `ECAD_GUARDED_BY` expression.
//
// Contract cheat sheet for contributors:
//  * `ECAD_GUARDED_BY(mu)` on a data member: every read and write must hold
//    `mu`.  The analysis rejects unlocked accesses at compile time.
//  * `ECAD_REQUIRES(mu)` on a function: callers must already hold `mu` when
//    calling it (the "caller holds the lock" comment, enforced).  The
//    function must not re-acquire or release it.
//  * `ECAD_ACQUIRE(mu)` / `ECAD_RELEASE(mu)`: the function takes/drops the
//    lock; callers must not hold it on entry (resp. must hold it).
//  * `ECAD_EXCLUDES(mu)`: the function acquires `mu` internally, so calling
//    it with `mu` held would self-deadlock on a non-recursive mutex.
#pragma once

#if defined(__clang__) && !defined(ECAD_NO_THREAD_SAFETY_ANALYSIS)
#define ECAD_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define ECAD_TSA_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define ECAD_CAPABILITY(x) ECAD_TSA_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define ECAD_SCOPED_CAPABILITY ECAD_TSA_ATTRIBUTE(scoped_lockable)

/// Data members: accesses require the named capability (exclusive).
#define ECAD_GUARDED_BY(x) ECAD_TSA_ATTRIBUTE(guarded_by(x))

/// Pointer members: dereferences require the named capability.
#define ECAD_PT_GUARDED_BY(x) ECAD_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Documented lock-ordering edges (deadlock detection).
#define ECAD_ACQUIRED_BEFORE(...) ECAD_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ECAD_ACQUIRED_AFTER(...) ECAD_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Functions: the caller must hold the capability (exclusively / shared).
#define ECAD_REQUIRES(...) ECAD_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define ECAD_REQUIRES_SHARED(...) ECAD_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire the capability (caller must not hold it).
#define ECAD_ACQUIRE(...) ECAD_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ECAD_ACQUIRE_SHARED(...) ECAD_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Functions: release the capability (caller must hold it).
#define ECAD_RELEASE(...) ECAD_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define ECAD_RELEASE_SHARED(...) ECAD_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define ECAD_RELEASE_GENERIC(...) ECAD_TSA_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Functions: acquire only when returning the given value.
#define ECAD_TRY_ACQUIRE(...) ECAD_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define ECAD_TRY_ACQUIRE_SHARED(...) ECAD_TSA_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Functions: must NOT be called with the capability held (self-deadlock).
#define ECAD_EXCLUDES(...) ECAD_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. lock state threaded through callbacks).
#define ECAD_ASSERT_CAPABILITY(x) ECAD_TSA_ATTRIBUTE(assert_capability(x))

/// Functions returning a reference to a capability.
#define ECAD_RETURN_CAPABILITY(x) ECAD_TSA_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function is deliberately not analyzed.  Use sparingly
/// and leave a comment saying why the analysis cannot follow the code.
#define ECAD_NO_THREAD_SAFETY_ANALYSIS ECAD_TSA_ATTRIBUTE(no_thread_safety_analysis)
