// Machine-readable benchmark reporting.
//
// Every bench target emits a `BENCH_<name>.json` file next to its human
// tables so the repo accumulates a perf trajectory that CI can archive and
// diff across commits. Schema (schema_version 1):
//
//   {
//     "bench": "<name>",
//     "schema_version": 1,
//     "generated_unix": <seconds>,
//     "metadata": { "<key>": "<string>", ... },
//     "entries": [
//       { "name": "<entry>",
//         "labels":  { "<key>": "<string>", ... },
//         "metrics": { "<key>": <number>, ... } },
//       ...
//     ]
//   }
//
// `labels` carry identity (kernel, shape, dataset); `metrics` carry measured
// numbers (gflops, seconds, speedups). The output directory defaults to the
// working directory and is overridable via ECAD_BENCH_JSON_DIR.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ecad::util {

class TextTable;

/// Minimal streaming JSON writer: tracks nesting and comma placement, and
/// escapes strings per RFC 8259. Numbers are emitted with round-trip float
/// precision; non-finite values degrade to null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);

  static std::string escape(const std::string& text);

 private:
  void element_prefix();
  void newline_indent();

  std::ostream& out_;
  std::vector<bool> has_element_;  // per nesting level
  bool after_key_ = false;
};

/// One measured configuration within a bench run.
struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;

  BenchEntry& label(const std::string& k, const std::string& v);
  BenchEntry& metric(const std::string& k, double v);
};

/// Collects entries for one bench target and writes `BENCH_<name>.json`.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void set_metadata(const std::string& k, const std::string& v);
  BenchEntry& add_entry(const std::string& name);

  std::size_t num_entries() const { return entries_.size(); }

  /// Serializes the whole report.
  std::string to_json() const;

  /// Resolves the output directory (ECAD_BENCH_JSON_DIR or `.`), writes
  /// `BENCH_<name>.json`, and returns the path written. Throws
  /// std::runtime_error when the file cannot be opened.
  std::string write_file() const;

  /// Path the report would be written to.
  std::string output_path() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> metadata_;
  std::vector<BenchEntry> entries_;
};

/// Converts a rendered TextTable into a BenchReport: one entry per row named
/// after its first column, remaining columns attached as labels keyed by
/// header. Lets the table/figure regeneration benches emit JSON alongside
/// their ASCII output without restructuring.
BenchReport table_to_report(const std::string& bench_name, const std::string& title,
                            const TextTable& table);

}  // namespace ecad::util
