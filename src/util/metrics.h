// Process-wide metrics registry: named counters, gauges, and fixed
// log-bucket latency histograms, shared by every layer of the stack
// (RemoteWorker fan-out, WorkerServer, SearchScheduler, EvalCache).
//
// Design constraints, in order:
//  * Hot-path increments are lock-free relaxed atomics — instrumenting the
//    evaluation path must not perturb timings or serialize worker threads.
//  * Registration (name -> metric lookup) takes the registry mutex; callers
//    on hot paths cache the returned reference once (metric objects are
//    never destroyed or moved, so references stay valid for the process
//    lifetime).
//  * Snapshots race benignly with writers: every field is an independent
//    atomic, so a snapshot taken mid-update sees a slightly stale but
//    internally monotone view (TSan-clean; see metrics_test.cpp stress).
//
// Snapshots serialize two ways: to the wire (protocol v5 StatsReport, see
// net/wire.h) and to the BENCH-style JSON schema (bench_json.h), so fleet
// stats ride the existing perf-regression tooling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bench_json.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::util {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, concurrency, clocks).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over fixed base-2 log buckets.  Bucket i (i < kBuckets-1)
/// counts observations v with upper_bound(i-1) < v <= upper_bound(i), where
/// upper_bound(i) = 1e-6 * 2^i seconds — 1 µs up to ~275 s — and the last
/// bucket is the +inf overflow.  Quantiles interpolated from the buckets are
/// exact to within one bucket, i.e. at most a factor-2 relative error (the
/// bound metrics_test.cpp pins).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  /// Upper bound of bucket i in seconds; +inf for the overflow bucket.
  static double upper_bound(std::size_t i);
  /// Bucket receiving observation `v` (values <= 1 µs land in bucket 0).
  static std::size_t bucket_index(double v);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::vector<std::uint64_t> bucket_counts() const;
  /// Quantile estimate (q in [0,1]) interpolated from the current buckets;
  /// 0 when empty.
  double quantile(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored as bit pattern
};

enum class MetricKind : std::uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

/// One metric's point-in-time state — the shape shipped in a v5 StatsReport
/// entry. `value` carries the counter/gauge reading; histograms fill
/// `count`/`sum`/`buckets` instead.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// Quantile estimate from a histogram's bucket counts (same interpolation as
/// Histogram::quantile) — used on snapshots received over the wire.
double quantile_from_buckets(const std::vector<std::uint64_t>& buckets, double q);

/// `base{key=value}` — the labeled-series naming convention (one metric
/// object per label value, e.g. net.items_dispatched_total{endpoint=...}).
std::string labeled_metric(const std::string& base, const std::string& key,
                           const std::string& value);

/// Name -> metric map.  Lookups lock; the returned references are stable for
/// the registry's lifetime, so hot paths resolve once and increment forever.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) ECAD_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) ECAD_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) ECAD_EXCLUDES(mutex_);

  /// All metrics whose name starts with `prefix` ("" = everything), sorted
  /// by name.
  std::vector<MetricSnapshot> snapshot(const std::string& prefix = "") const
      ECAD_EXCLUDES(mutex_);

  /// Snapshot in the BENCH JSON schema: one entry per metric, `type` label,
  /// counters/gauges as a `value` metric, histograms as
  /// count/sum/p50_s/p90_s/p99_s.
  BenchReport to_bench_report(const std::string& bench_name) const ECAD_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ ECAD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ECAD_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ ECAD_GUARDED_BY(mutex_);
};

/// The process-wide registry every layer reports through (function-local
/// static, usable during other TUs' static initialization).
MetricsRegistry& metrics();

}  // namespace ecad::util
