// Minimal leveled logger for the ECAD framework.
//
// Thread-safe: each emitted line is written under a single global mutex so
// concurrent workers do not interleave partial lines.  The level is a global
// process-wide setting; benchmarks lower it to `Warn` to keep table output
// clean.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ecad::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "info", "debug", ... (case-insensitive). Throws std::invalid_argument.
LogLevel parse_log_level(std::string_view name);
std::string_view to_string(LogLevel level);

/// Emit one formatted line: "[LEVEL] [component] message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style builder:  Log(LogLevel::Info, "evo") << "gen " << g;
/// The line is emitted on destruction.
class Log {
 public:
  Log(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log();

  template <typename T>
  Log& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ecad::util
