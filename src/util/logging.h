// Minimal leveled logger for the ECAD framework.
//
// Safe for concurrent writers — including writers in *different processes*
// sharing one terminal or pipe (the distributed daemons): each line is
// formatted into a single buffer and emitted with one write(2) call, so lines
// never interleave mid-way as long as they stay under the kernel's atomic
// pipe write size.  A process-wide mutex additionally serializes in-process
// writers.  The level is a global process-wide setting; benchmarks lower it
// to `Warn` to keep table output clean.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ecad::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.  The initial value
/// is read from the ECAD_LOG_LEVEL environment variable ("trace" ... "off");
/// unset or unparsable values leave the default (Info).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Re-read ECAD_LOG_LEVEL from the environment and apply it (no-op when the
/// variable is unset or unparsable). Called once automatically at startup;
/// exposed for tests and for daemons that adjust their environment.
void refresh_log_level_from_env();

/// Optional process identity prepended to every line (e.g. "workerd:7001").
/// Daemons set this at startup so interleaved logs from several processes on
/// one terminal stay attributable.  Empty (the default) adds nothing.
void set_log_identity(std::string identity);
std::string log_identity();

/// Parse "info", "debug", ... (case-insensitive). Throws std::invalid_argument.
LogLevel parse_log_level(std::string_view name);
std::string_view to_string(LogLevel level);

/// Emit one formatted line: "[LEVEL] [component] message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style builder:  Log(LogLevel::Info, "evo") << "gen " << g;
/// The line is emitted on destruction.
class Log {
 public:
  Log(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log();

  template <typename T>
  Log& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ecad::util
