// Annotated locking primitives for Clang's thread-safety analysis.
//
// `std::mutex` is not a capability type, so it cannot appear in
// `ECAD_GUARDED_BY` / `ECAD_REQUIRES` expressions.  These thin wrappers
// (the canonical pattern from the Clang thread-safety docs) carry the
// capability attributes while delegating every operation to the standard
// primitives — zero-cost at runtime, machine-checked at compile time.
//
// Usage:
//
//   class Queue {
//    public:
//     void push(Item item) ECAD_EXCLUDES(mutex_) {
//       MutexLock lock(mutex_);
//       items_.push_back(std::move(item));
//       cv_.notify_one();
//     }
//     Item pop() ECAD_EXCLUDES(mutex_) {
//       MutexLock lock(mutex_);
//       while (items_.empty()) cv_.wait(mutex_);   // explicit loop, no lambda
//       ...
//     }
//    private:
//     Mutex mutex_;
//     std::deque<Item> items_ ECAD_GUARDED_BY(mutex_);
//     CondVar cv_;
//   };
//
// Condition predicates must be explicit `while` loops: the analysis treats
// a lambda as an unrelated function with no lock context, so a guarded read
// inside a `wait(lock, pred)`-style lambda fails the build (correctly — the
// annotation machinery cannot prove the lock is held there).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_safety.h"

namespace ecad::util {

/// A `std::mutex` annotated as a thread-safety capability.  Satisfies
/// *Lockable*, so `std::lock_guard<Mutex>` etc. still compile, but prefer
/// `MutexLock` — the std wrappers carry no annotations.
class ECAD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ECAD_ACQUIRE() { mutex_.lock(); }
  void unlock() ECAD_RELEASE() { mutex_.unlock(); }
  bool try_lock() ECAD_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for Mutex (the annotated equivalent of std::lock_guard).
class ECAD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ECAD_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() ECAD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to util::Mutex.  wait() is annotated
/// ECAD_REQUIRES(mutex): from the caller's (and the analysis') point of view
/// the lock is held across the call, exactly like std::condition_variable —
/// the release/re-acquire inside is invisible and atomic with the block.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, block until notified (or spuriously woken),
  /// and re-acquire before returning.  Always re-check the predicate in a
  /// `while` loop around this call.
  void wait(Mutex& mutex) ECAD_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // lock ownership stays with the caller's MutexLock
  }

  /// Timed wait; std::cv_status::timeout when the deadline passed first.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& timeout)
      ECAD_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ecad::util
