#include "util/crash_point.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/logging.h"

namespace ecad::util {

namespace {

struct CrashSpec {
  bool armed = false;
  std::string label;
  std::size_t fire_on_hit = 0;  // 1-based: crash on the n-th hit
  std::size_t hits = 0;
};

std::mutex g_mutex;
CrashSpec g_spec;
bool g_parsed = false;

// Parse "<label>:<n>"; n defaults to 1 when omitted. Malformed specs disarm
// with a warning instead of aborting startup.
CrashSpec parse_spec(const std::string& spec) {
  CrashSpec out;
  if (spec.empty()) return out;
  std::size_t colon = spec.find_last_of(':');
  std::string label = (colon == std::string::npos) ? spec : spec.substr(0, colon);
  std::size_t n = 1;
  if (colon != std::string::npos) {
    try {
      n = static_cast<std::size_t>(std::stoull(spec.substr(colon + 1)));
    } catch (const std::exception&) {
      log_line(LogLevel::Warn, "crash_point",
               "ignoring malformed ECAD_CRASH_AFTER spec '" + spec + "'");
      return out;
    }
  }
  if (label.empty() || n == 0) {
    log_line(LogLevel::Warn, "crash_point",
             "ignoring malformed ECAD_CRASH_AFTER spec '" + spec + "'");
    return out;
  }
  out.armed = true;
  out.label = label;
  out.fire_on_hit = n;
  return out;
}

void ensure_parsed_locked() {
  if (g_parsed) return;
  g_parsed = true;
  const char* env = std::getenv("ECAD_CRASH_AFTER");
  if (env != nullptr) g_spec = parse_spec(env);
}

}  // namespace

void crash_point(const std::string& label) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    ensure_parsed_locked();
    if (!g_spec.armed || g_spec.label != label) return;
    ++g_spec.hits;
    fire = g_spec.hits >= g_spec.fire_on_hit;
  }
  if (fire) {
    // stderr only — the whole point is to die before any graceful teardown.
    std::fprintf(stderr, "crash_point: injected crash at '%s'\n", label.c_str());
    std::fflush(stderr);
    std::_Exit(kCrashPointExitCode);
  }
}

void set_crash_point_spec_for_testing(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_parsed = true;
  g_spec = parse_spec(spec);
}

std::size_t crash_point_hits_for_testing() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_spec.hits;
}

}  // namespace ecad::util
