// Opt-in batch-lifecycle tracing in Chrome trace-event JSON (the format
// Perfetto / chrome://tracing load directly).
//
// Disabled (the default) every call is a cheap no-op — one relaxed atomic
// load — so instrumentation can stay compiled into the hot paths.  Enabled
// via `--trace-file PATH` on the daemons or the ECAD_TRACE environment
// variable, events append to the file as they happen (one fflush per event),
// so a crashed process still leaves a loadable trace: the JSON array format
// tolerates a missing closing bracket.
//
// Timestamps share one process-wide monotonic epoch with the logger's line
// prefix (monotonic_micros), so trace spans and stderr log lines correlate
// by eyeball.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ecad::util {

/// Microseconds since the process-wide monotonic epoch (first use).  The
/// shared timebase of log-line timestamps and trace events.
std::uint64_t monotonic_micros();

/// True once a trace file is open.
bool trace_enabled();

/// Open `path` for trace output (truncating) and start the event array.
/// Subsequent opens are ignored while a file is active.  Throws
/// std::runtime_error when the file cannot be created.
void trace_open(const std::string& path);

/// Close the event array and the file.  No-op when tracing is off.
void trace_close();

/// Emit a complete ("X") event spanning [start_us, end_us].
void trace_complete(std::string_view category, std::string_view name, std::uint64_t start_us,
                    std::uint64_t end_us);

/// Emit an instant ("i") event at now.
void trace_instant(std::string_view category, std::string_view name);

/// RAII complete-event span: stamps construction time, emits on destruction.
/// Constructing one while tracing is disabled costs one atomic load.
class TraceSpan {
 public:
  TraceSpan(std::string_view category, std::string name)
      : enabled_(trace_enabled()),
        category_(category),
        name_(std::move(name)),
        start_us_(enabled_ ? monotonic_micros() : 0) {}
  ~TraceSpan() {
    if (enabled_) trace_complete(category_, name_, start_us_, monotonic_micros());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool enabled_;
  std::string_view category_;  // must outlive the span (string literals)
  std::string name_;
  std::uint64_t start_us_;
};

}  // namespace ecad::util
