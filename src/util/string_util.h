// Small string helpers shared across the framework (config parsing, CSV,
// report formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ecad::util {

/// Remove leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Split on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delimiter);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Parse helpers that validate the *entire* token. Throw std::invalid_argument.
double parse_double(std::string_view token);
long long parse_int(std::string_view token);
bool parse_bool(std::string_view token);

/// Format a double in engineering style close to the paper's tables,
/// e.g. 1.40E7 -> "1.40E7", 8190 -> "8.19E3".
std::string format_scientific(double value, int significant_digits = 3);

/// Fixed-precision formatting ("0.9852").
std::string format_fixed(double value, int decimals);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& tokens, std::string_view separator);

}  // namespace ecad::util
