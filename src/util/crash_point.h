// Deterministic crash injection for the chaos harness.
//
// Production code marks hazardous instants with `crash_point("label")`.
// Normally a no-op; when the process runs with
//
//   ECAD_CRASH_AFTER=<label>:<n>
//
// the n-th time that label is hit the process dies immediately via
// `std::_Exit(kCrashPointExitCode)` — no atexit handlers, no flushing, the
// closest portable stand-in for kill -9 at an exactly chosen point.  The
// chaos smoke uses this to kill the master between a checkpoint's tmp-fsync
// and its rename ("checkpoint_tmp") or right after the rename ("checkpoint")
// instead of hoping a timed kill lands somewhere interesting.
#pragma once

#include <string>

namespace ecad::util {

/// Distinctive exit status so harnesses can tell an injected crash from a
/// genuine failure.
inline constexpr int kCrashPointExitCode = 87;

/// Die here if ECAD_CRASH_AFTER selects this label and its counter expires.
/// Thread-safe; the environment is parsed once per process.
void crash_point(const std::string& label);

/// Test hook: override the spec (same syntax as ECAD_CRASH_AFTER, empty
/// string disarms) and reset the hit counter.
void set_crash_point_spec_for_testing(const std::string& spec);

/// Test hook: hits recorded so far for the armed label.
std::size_t crash_point_hits_for_testing();

}  // namespace ecad::util
