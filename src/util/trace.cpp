#include "util/trace.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <thread>

#include "util/bench_json.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::util {

namespace {

// Mutex + the file state it guards in one struct (same pattern as the
// logging sink) so the thread-safety analysis ties them together.
struct TraceSink {
  Mutex mutex;
  std::FILE* file ECAD_GUARDED_BY(mutex) = nullptr;
  bool first_event ECAD_GUARDED_BY(mutex) = true;
};

TraceSink& trace_sink() {
  static TraceSink sink;
  return sink;
}

// Fast-path gate: one relaxed load decides whether an event site does any
// work at all, so disabled tracing never touches the sink mutex.
std::atomic<bool>& trace_active() {
  static std::atomic<bool> active{false};
  return active;
}

std::uint64_t thread_tid() {
  // Stable small-ish per-thread id for the trace's tid column.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

void emit_event(std::string_view category, std::string_view name, char phase,
                std::uint64_t ts_us, std::uint64_t dur_us) {
  const std::string escaped_name = JsonWriter::escape(std::string(name));
  const std::string escaped_cat = JsonWriter::escape(std::string(category));
  TraceSink& sink = trace_sink();
  MutexLock lock(sink.mutex);
  if (sink.file == nullptr) return;
  if (!sink.first_event) std::fputs(",\n", sink.file);
  sink.first_event = false;
  if (phase == 'X') {
    std::fprintf(sink.file,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                 "\"pid\":%ld,\"tid\":%llu}",
                 escaped_name.c_str(), escaped_cat.c_str(),
                 static_cast<unsigned long long>(ts_us), static_cast<unsigned long long>(dur_us),
                 static_cast<long>(::getpid()), static_cast<unsigned long long>(thread_tid()));
  } else {
    std::fprintf(sink.file,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%llu,\"s\":\"t\","
                 "\"pid\":%ld,\"tid\":%llu}",
                 escaped_name.c_str(), escaped_cat.c_str(),
                 static_cast<unsigned long long>(ts_us), static_cast<long>(::getpid()),
                 static_cast<unsigned long long>(thread_tid()));
  }
  // Flush per event: tracing is low-rate (batches and generations, not
  // items), and a killed daemon must still leave a loadable file.
  std::fflush(sink.file);
}

// ECAD_TRACE in the environment arms tracing at process start, mirroring
// ECAD_LOG_LEVEL.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("ECAD_TRACE");
    if (path != nullptr && *path != '\0') trace_open(path);
  }
};
const EnvTraceInit g_env_trace_init;

}  // namespace

std::uint64_t monotonic_micros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

bool trace_enabled() { return trace_active().load(std::memory_order_relaxed); }

void trace_open(const std::string& path) {
  monotonic_micros();  // pin the epoch no later than the first event
  TraceSink& sink = trace_sink();
  MutexLock lock(sink.mutex);
  if (sink.file != nullptr) return;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) throw std::runtime_error("cannot open trace file " + path);
  sink.file = file;
  sink.first_event = true;
  std::fputs("[\n", file);
  std::fflush(file);
  trace_active().store(true, std::memory_order_relaxed);
}

void trace_close() {
  TraceSink& sink = trace_sink();
  MutexLock lock(sink.mutex);
  if (sink.file == nullptr) return;
  trace_active().store(false, std::memory_order_relaxed);
  std::fputs("\n]\n", sink.file);
  std::fclose(sink.file);
  sink.file = nullptr;
  sink.first_event = true;
}

void trace_complete(std::string_view category, std::string_view name, std::uint64_t start_us,
                    std::uint64_t end_us) {
  if (!trace_enabled()) return;
  emit_event(category, name, 'X', start_us, end_us >= start_us ? end_us - start_us : 0);
}

void trace_instant(std::string_view category, std::string_view name) {
  if (!trace_enabled()) return;
  emit_event(category, name, 'i', monotonic_micros(), 0);
}

}  // namespace ecad::util
