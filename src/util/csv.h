// CSV reading/writing.  The ECAD flow ingests datasets "exported into a
// Comma Separated Value (CSV) tabular data format" (paper §III) and emits
// result tables as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ecad::util {

struct CsvTable {
  std::vector<std::string> header;        // empty if has_header=false at parse
  std::vector<std::vector<std::string>> rows;

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_cols() const { return header.empty() ? (rows.empty() ? 0 : rows[0].size()) : header.size(); }
};

/// Parse CSV text.  Supports quoted fields with embedded commas/quotes
/// (RFC-4180 double-quote escaping) and both \n and \r\n line endings.
CsvTable parse_csv(const std::string& text, bool has_header);

/// Read and parse a CSV file. Throws std::runtime_error on I/O failure.
CsvTable read_csv_file(const std::string& path, bool has_header);

/// Serialize with proper quoting.
std::string to_csv(const CsvTable& table);

/// Write to file. Throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace ecad::util
