// Minimal C++17 stand-in for std::span<T> (C++20).
//
// The build targets C++17, so the handful of call sites that want a
// non-owning view over contiguous floats use ecad::span instead. Only the
// operations the codebase actually needs are provided: construction from
// pointer+size / vector / array, element access, iteration, and size
// queries. Swap for std::span wholesale once the toolchain baseline moves
// to C++20.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace ecad {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using size_type = std::size_t;
  using iterator = T*;

  constexpr span() noexcept = default;
  constexpr span(T* data, size_type size) noexcept : data_(data), size_(size) {}

  template <typename U, typename A,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr span(std::vector<U, A>& v) noexcept : data_(v.data()), size_(v.size()) {}

  template <typename U, typename A,
            typename = std::enable_if_t<std::is_convertible_v<const U (*)[], T (*)[]>>>
  constexpr span(const std::vector<U, A>& v) noexcept : data_(v.data()), size_(v.size()) {}

  // Like std::span, refuse a temporary vector when the element type is
  // mutable (the view could dangle past the full expression); spans of
  // const elements may view temporaries, matching C++20's borrowed-range
  // carve-out for const element types.
  template <typename U, typename A, typename V = T,
            typename = std::enable_if_t<!std::is_const_v<V>>>
  span(const std::vector<U, A>&&) = delete;

  template <std::size_t N>
  constexpr span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}

  // span<T> -> span<const T>
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr span(const span<U>& other) noexcept : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_type size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T& operator[](size_type i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr iterator begin() const noexcept { return data_; }
  constexpr iterator end() const noexcept { return data_ + size_; }

  constexpr span subspan(size_type offset, size_type count) const {
    return span(data_ + offset, count);
  }
  constexpr span first(size_type count) const { return span(data_, count); }
  constexpr span last(size_type count) const { return span(data_ + (size_ - count), count); }

 private:
  T* data_ = nullptr;
  size_type size_ = 0;
};

}  // namespace ecad
