// Deterministic random source used by every stochastic component.
//
// All search, initialization, and synthetic-data code takes an explicit
// `Rng&` so experiments are reproducible bit-for-bit from the seed recorded
// in the experiment configuration (Core Guidelines: no hidden global state).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace ecad::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t next_index(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double next_double();

  /// Uniform real in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal (mean 0, stddev 1).
  double next_gaussian();

  /// Gaussian with explicit mean/stddev.
  double next_gaussian(double mean, double stddev);

  /// Bernoulli trial.
  bool next_bool(double probability_true = 0.5);

  /// Derive an independent child generator (for per-thread / per-worker use).
  Rng split();

  /// Full engine state as a portable ASCII string (classic-locale digits),
  /// suitable for embedding in a checkpoint. Restoring via `deserialize`
  /// continues the stream bit-identically.
  std::string serialize() const;

  /// Restore state produced by `serialize`. Throws std::invalid_argument on
  /// malformed input.
  void deserialize(const std::string& state);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_index(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// UniformRandomBitGenerator interface so std::distributions also work.
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ecad::util
