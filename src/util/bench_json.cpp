#include "util/bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/table.h"

namespace ecad::util {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < has_element_.size(); ++i) out_ << "  ";
}

void JsonWriter::element_prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ << ',';
    has_element_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  element_prefix();
  out_ << '"' << escape(name) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  element_prefix();
  out_ << '"' << escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) { return value(std::string(text)); }

JsonWriter& JsonWriter::value(double number) {
  element_prefix();
  if (!std::isfinite(number)) {
    out_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", number);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  element_prefix();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  element_prefix();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  element_prefix();
  out_ << (flag ? "true" : "false");
  return *this;
}

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

BenchEntry& BenchEntry::label(const std::string& k, const std::string& v) {
  labels.emplace_back(k, v);
  return *this;
}

BenchEntry& BenchEntry::metric(const std::string& k, double v) {
  metrics.emplace_back(k, v);
  return *this;
}

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {
#if defined(__VERSION__)
  set_metadata("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
  set_metadata("build", "release");
#else
  set_metadata("build", "debug");
#endif
}

void BenchReport::set_metadata(const std::string& k, const std::string& v) {
  for (auto& kv : metadata_) {
    if (kv.first == k) {
      kv.second = v;
      return;
    }
  }
  metadata_.emplace_back(k, v);
}

BenchEntry& BenchReport::add_entry(const std::string& name) {
  entries_.emplace_back();
  entries_.back().name = name;
  return entries_.back();
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("bench").value(name_);
  json.key("schema_version").value(std::int64_t{1});
  json.key("generated_unix").value(static_cast<std::int64_t>(std::time(nullptr)));
  json.key("metadata").begin_object();
  for (const auto& [k, v] : metadata_) json.key(k).value(v);
  json.end_object();
  json.key("entries").begin_array();
  for (const auto& entry : entries_) {
    json.begin_object();
    json.key("name").value(entry.name);
    json.key("labels").begin_object();
    for (const auto& [k, v] : entry.labels) json.key(k).value(v);
    json.end_object();
    json.key("metrics").begin_object();
    for (const auto& [k, v] : entry.metrics) json.key(k).value(v);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
  return out.str();
}

std::string BenchReport::output_path() const {
  const char* dir = std::getenv("ECAD_BENCH_JSON_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (base.back() != '/') base += '/';
  return base + "BENCH_" + name_ + ".json";
}

std::string BenchReport::write_file() const {
  const std::string path = output_path();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  out << to_json();
  return path;
}

BenchReport table_to_report(const std::string& bench_name, const std::string& title,
                            const TextTable& table) {
  BenchReport report(bench_name);
  report.set_metadata("title", title);
  const auto& header = table.header();
  for (const auto& row : table.rows()) {
    BenchEntry& entry = report.add_entry(row.empty() ? "" : row.front());
    for (std::size_t c = 0; c < row.size() && c < header.size(); ++c) {
      entry.label(header[c], row[c]);
    }
  }
  return report;
}

}  // namespace ecad::util
