#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/mutex.h"
#include "util/thread_safety.h"
#include "util/trace.h"

namespace ecad::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

struct EnvLevelInit {
  EnvLevelInit() { refresh_log_level_from_env(); }
};
const EnvLevelInit g_env_level_init;

// The sink's mutex and the state it guards live in one struct so the
// thread-safety analysis can tie them together (a function-local static
// mutex cannot be named in an ECAD_GUARDED_BY expression).  Function-local
// so logging works during other TUs' static initialization.
struct Sink {
  Mutex mutex;
  std::string identity ECAD_GUARDED_BY(mutex);
};

Sink& sink() {
  static Sink s;
  return s;
}

// One write(2) per line so lines from separate processes sharing a terminal
// or pipe never interleave mid-line (atomic up to PIPE_BUF). Short writes
// (signals, full pipes) are resumed; EOF/errors are dropped — logging must
// never throw.
void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ::ssize_t n = ::write(fd, data, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void refresh_log_level_from_env() {
  const char* env = std::getenv("ECAD_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  try {
    set_log_level(parse_log_level(env));
  } catch (const std::invalid_argument&) {
    // Keep the current level rather than aborting daemon startup on a typo;
    // the variable is advisory.
  }
}

void set_log_identity(std::string identity) {
  Sink& s = sink();
  MutexLock lock(s.mutex);
  s.identity = std::move(identity);
}

std::string log_identity() {
  Sink& s = sink();
  MutexLock lock(s.mutex);
  return s.identity;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + std::string(name));
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  // Monotonic seconds since process start, the same epoch trace events use
  // (util/trace.h), so log lines and Perfetto spans correlate directly.
  const std::uint64_t now_us = monotonic_micros();
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%llu.%06llu] ",
                static_cast<unsigned long long>(now_us / 1000000),
                static_cast<unsigned long long>(now_us % 1000000));
  std::string line;
  line.reserve(32 + component.size() + message.size());
  line += stamp;
  line += '[';
  line += to_string(level);
  line += "] ";
  Sink& s = sink();
  MutexLock lock(s.mutex);
  if (!s.identity.empty()) {
    line += '[';
    line += s.identity;
    line += "] ";
  }
  line += '[';
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  write_all(STDERR_FILENO, line.data(), line.size());
}

Log::~Log() { log_line(level_, component_, stream_.str()); }

}  // namespace ecad::util
