#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace ecad::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + std::string(name));
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::ostream& out = (level >= LogLevel::Warn) ? std::cerr : std::clog;
  out << '[' << to_string(level) << "] [" << component << "] " << message << '\n';
}

Log::~Log() { log_line(level_, component_, stream_.str()); }

}  // namespace ecad::util
