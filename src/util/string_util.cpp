#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ecad::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return lower;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view token) {
  token = trim(token);
  if (token.empty()) throw std::invalid_argument("parse_double: empty token");
  // std::from_chars for double is not universally available; strtod on a copy.
  std::string copy(token);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    throw std::invalid_argument("parse_double: invalid token '" + copy + "'");
  }
  return value;
}

long long parse_int(std::string_view token) {
  token = trim(token);
  long long value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw std::invalid_argument("parse_int: invalid token '" + std::string(token) + "'");
  }
  return value;
}

bool parse_bool(std::string_view token) {
  token = trim(token);
  if (iequals(token, "true") || token == "1" || iequals(token, "yes") || iequals(token, "on")) {
    return true;
  }
  if (iequals(token, "false") || token == "0" || iequals(token, "no") || iequals(token, "off")) {
    return false;
  }
  throw std::invalid_argument("parse_bool: invalid token '" + std::string(token) + "'");
}

std::string format_scientific(double value, int significant_digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : "-inf";
  int exponent = static_cast<int>(std::floor(std::log10(std::fabs(value))));
  double mantissa = value / std::pow(10.0, exponent);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*fE%d",
                std::max(0, significant_digits - 1), mantissa, exponent);
  return buffer;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string join(const std::vector<std::string>& tokens, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += separator;
    out += tokens[i];
  }
  return out;
}

}  // namespace ecad::util
