// Wall-clock stopwatch used for run-time statistics (paper Table III).
#pragma once

#include <chrono>

namespace ecad::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ecad::util
