#include "util/rng.h"

#include <cassert>
#include <locale>
#include <sstream>
#include <stdexcept>

namespace ecad::util {

std::uint64_t Rng::next_index(std::uint64_t bound) {
  assert(bound > 0);
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::next_double() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::next_double(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::next_gaussian() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::next_gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::next_bool(double probability_true) {
  return next_double() < probability_true;
}

std::string Rng::serialize() const {
  // The standard guarantees operator<< / operator>> round-trip mt19937_64
  // exactly; the classic locale keeps the digits free of grouping separators
  // so checkpoints are portable across machines.
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << engine_;
  return out.str();
}

void Rng::deserialize(const std::string& state) {
  std::istringstream in(state);
  in.imbue(std::locale::classic());
  std::mt19937_64 engine;
  in >> engine;
  if (in.fail()) {
    throw std::invalid_argument("rng: malformed serialized engine state");
  }
  engine_ = engine;
}

Rng Rng::split() {
  // Two draws decorrelate the child from subsequent parent output.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0xa5a5a5a5a5a5a5a5ull);
}

}  // namespace ecad::util
