#include "util/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace ecad::util {

std::string Config::normalize(std::string_view name) { return to_lower(trim(name)); }

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#' || view.front() == ';') continue;
    if (view.front() == '[') {
      if (view.back() != ']') {
        throw std::invalid_argument("Config: unterminated section at line " +
                                    std::to_string(line_number));
      }
      section = normalize(view.substr(1, view.size() - 2));
      continue;
    }
    std::size_t eq = view.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("Config: expected key=value at line " +
                                  std::to_string(line_number));
    }
    std::string key = normalize(view.substr(0, eq));
    if (key.empty()) {
      throw std::invalid_argument("Config: empty key at line " + std::to_string(line_number));
    }
    std::string value(trim(view.substr(eq + 1)));
    config.values_[section][key] = std::move(value);
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

void Config::set(std::string_view section, std::string_view key, std::string value) {
  values_[normalize(section)][normalize(key)] = std::move(value);
}

bool Config::has(std::string_view section, std::string_view key) const {
  auto sit = values_.find(normalize(section));
  if (sit == values_.end()) return false;
  return sit->second.count(normalize(key)) > 0;
}

const std::string& Config::get(std::string_view section, std::string_view key) const {
  auto sit = values_.find(normalize(section));
  if (sit == values_.end()) {
    throw std::out_of_range("Config: missing section '" + std::string(section) + "'");
  }
  auto kit = sit->second.find(normalize(key));
  if (kit == sit->second.end()) {
    throw std::out_of_range("Config: missing key '" + std::string(section) + "." +
                            std::string(key) + "'");
  }
  return kit->second;
}

std::optional<std::string> Config::try_get(std::string_view section, std::string_view key) const {
  if (!has(section, key)) return std::nullopt;
  return get(section, key);
}

std::string Config::get_string(std::string_view section, std::string_view key,
                               std::string default_value) const {
  if (auto v = try_get(section, key)) return *v;
  return default_value;
}

double Config::get_double(std::string_view section, std::string_view key,
                          double default_value) const {
  if (auto v = try_get(section, key)) return parse_double(*v);
  return default_value;
}

long long Config::get_int(std::string_view section, std::string_view key,
                          long long default_value) const {
  if (auto v = try_get(section, key)) return parse_int(*v);
  return default_value;
}

bool Config::get_bool(std::string_view section, std::string_view key, bool default_value) const {
  if (auto v = try_get(section, key)) return parse_bool(*v);
  return default_value;
}

std::vector<long long> Config::get_int_list(std::string_view section, std::string_view key,
                                            std::vector<long long> default_value) const {
  auto v = try_get(section, key);
  if (!v) return default_value;
  std::vector<long long> out;
  for (const std::string& token : split(*v, ',')) {
    std::string_view trimmed = trim(token);
    if (trimmed.empty()) continue;
    out.push_back(parse_int(trimmed));
  }
  return out;
}

std::vector<std::string> Config::keys(std::string_view section) const {
  std::vector<std::string> out;
  auto sit = values_.find(normalize(section));
  if (sit == values_.end()) return out;
  out.reserve(sit->second.size());
  for (const auto& [key, _] : sit->second) out.push_back(key);
  return out;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, _] : values_) out.push_back(name);
  return out;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [section, kv] : values_) {
    if (!section.empty()) {
      out += '[';
      out += section;
      out += "]\n";
    }
    for (const auto& [key, value] : kv) {
      out += key;
      out += " = ";
      out += value;
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

}  // namespace ecad::util
