// Fixed-width ASCII table printer used by the bench harnesses so their
// output visually matches the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ecad::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Row width must equal the header width; throws std::invalid_argument.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Raw cell access, used by the JSON bench reporter (bench_json.h).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with a title line, column rule, and padded cells.
  std::string render(const std::string& title) const;

  /// Convenience: render and stream to `out`.
  void print(std::ostream& out, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecad::util
