#include "util/snapshot_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crash_point.h"

namespace ecad::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SnapshotError("snapshot: " + what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

void SnapshotWriter::put_u8(std::uint8_t v) { bytes_.push_back(v); }

void SnapshotWriter::put_u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
  bytes_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void SnapshotWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void SnapshotWriter::put_string(const std::string& s) {
  if (s.size() > kMaxSnapshotStringBytes) {
    throw SnapshotError("snapshot: string of " + std::to_string(s.size()) +
                        " bytes exceeds the limit");
  }
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void SnapshotWriter::put_size_vector(const std::vector<std::size_t>& values) {
  if (values.size() > kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: vector of " + std::to_string(values.size()) +
                        " elements exceeds the limit");
  }
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (std::size_t v : values) put_u64(static_cast<std::uint64_t>(v));
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

const std::uint8_t* SnapshotReader::need(std::size_t count) {
  if (count > size_ - pos_) {
    throw SnapshotError("snapshot: truncated (need " + std::to_string(count) + " bytes, have " +
                        std::to_string(size_ - pos_) + ")");
  }
  const std::uint8_t* at = data_ + pos_;
  pos_ += count;
  return at;
}

std::uint8_t SnapshotReader::get_u8() { return *need(1); }

std::uint16_t SnapshotReader::get_u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t SnapshotReader::get_u32() {
  const std::uint8_t* p = need(4);
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t SnapshotReader::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

double SnapshotReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::get_string() {
  const std::uint32_t size = get_u32();
  if (size > kMaxSnapshotStringBytes) {
    throw SnapshotError("snapshot: string length " + std::to_string(size) + " exceeds the limit");
  }
  const std::uint8_t* p = need(size);
  return std::string(reinterpret_cast<const char*>(p), size);
}

std::vector<std::size_t> SnapshotReader::get_size_vector() {
  const std::uint32_t count = get_u32();
  if (count > kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: vector length " + std::to_string(count) + " exceeds the limit");
  }
  if (static_cast<std::size_t>(count) * 8 > remaining()) {
    throw SnapshotError("snapshot: truncated vector");
  }
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(static_cast<std::size_t>(get_u64()));
  return out;
}

void SnapshotReader::expect_end() const {
  if (pos_ != size_) {
    throw SnapshotError("snapshot: " + std::to_string(size_ - pos_) +
                        " trailing bytes after payload");
  }
}

// ---------------------------------------------------------------------------
// Atomic file persistence
// ---------------------------------------------------------------------------

namespace {

void fsync_path(const std::string& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) throw_errno("open for fsync '" + path + "'");
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync '" + path + "'");
  }
  ::close(fd);
}

std::string parent_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes,
                       const std::string& crash_label) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("create '" + tmp + "'");

  const std::uint8_t* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t wrote = ::write(fd, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      throw_errno("write '" + tmp + "'");
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("fsync '" + tmp + "'");
  }
  ::close(fd);

  // The tmp file is durable but the target still names the previous
  // snapshot — a crash here must leave the old checkpoint loadable.
  if (!crash_label.empty()) crash_point(crash_label + "_tmp");

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("rename '" + tmp + "' -> '" + path + "'");
  }
  // Persist the directory entry so the rename survives power loss.
  fsync_path(parent_dir(path), O_RDONLY | O_DIRECTORY);

  if (!crash_label.empty()) crash_point(crash_label);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open '" + path + "'");

  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read '" + path + "'");
    }
    if (got == 0) break;
    if (bytes.size() + static_cast<std::size_t>(got) > kMaxSnapshotBytes) {
      ::close(fd);
      throw SnapshotError("snapshot: '" + path + "' exceeds the " +
                          std::to_string(kMaxSnapshotBytes) + "-byte limit");
    }
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  ::close(fd);
  return bytes;
}

}  // namespace ecad::util
