// Fixed-size thread pool used by the ECAD master to evaluate candidate
// designs in parallel (paper §III-A: the Master "orchestrates the evaluation
// process by distributing the co-design population").
//
// Lock discipline (machine-checked, see util/thread_safety.h): the task
// queue and stop flag are guarded by `mutex_`; the worker vector is guarded
// by `shutdown_mutex_`, which also serializes the whole stop/notify/join
// sequence so concurrent shutdown() calls cannot double-join.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads the pool was built with. Stable for the
  /// pool's whole lifetime (including after shutdown()), so it is safe to
  /// read concurrently with shutdown.
  std::size_t size() const { return num_threads_; }

  /// Drain queued tasks, stop all workers, and join them. Idempotent, and
  /// concurrent shutdown() calls on a live pool serialize safely; called
  /// automatically by the destructor. As with any C++ object, callers must
  /// not race shutdown() (or any member) with the pool's destruction —
  /// lifetime is external synchronization. After shutdown() returns,
  /// submit() throws std::runtime_error.
  void shutdown() ECAD_EXCLUDES(shutdown_mutex_, mutex_);

  /// Enqueue a task; the returned future yields its result (or exception).
  /// Throws std::runtime_error if the pool has been shut down.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.push([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for completion.
  /// Always waits for every task it managed to enqueue — even when a task or
  /// an enqueue throws — so `fn` is never referenced after return. Exceptions
  /// from tasks are rethrown (the first one encountered, in index order); a
  /// submit failure (pool shut down concurrently) is rethrown only if no task
  /// failed first.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() ECAD_EXCLUDES(mutex_);

  std::size_t num_threads_ = 0;  // set once in the constructor, then immutable
  Mutex mutex_;
  Mutex shutdown_mutex_;  // serializes shutdown(); guards workers_ join/clear
  std::vector<std::thread> workers_ ECAD_GUARDED_BY(shutdown_mutex_);
  std::queue<std::function<void()>> tasks_ ECAD_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ ECAD_GUARDED_BY(mutex_) = false;
};

}  // namespace ecad::util
