// Fixed-size thread pool used by the ECAD master to evaluate candidate
// designs in parallel (paper §III-A: the Master "orchestrates the evaluation
// process by distributing the co-design population").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ecad::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.push([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ecad::util
