#include "util/thread_pool.h"

#include <algorithm>

namespace ecad::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ecad::util
