#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace ecad::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  // A failed std::thread spawn must not leak the already-running workers:
  // an unjoined std::thread terminates the process on destruction.  The
  // spawn loop holds shutdown_mutex_ (workers_' capability); the recovery
  // shutdown() re-acquires it, so it must run after the scope closes.
  std::exception_ptr spawn_error;
  {
    MutexLock lock(shutdown_mutex_);
    workers_.reserve(num_threads);
    try {
      for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
      }
    } catch (...) {
      spawn_error = std::current_exception();
    }
  }
  if (spawn_error) {
    shutdown();
    std::rethrow_exception(spawn_error);
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // shutdown_mutex_ serializes the whole stop-notify-join sequence, so
  // concurrent shutdown() calls on a live pool cannot double-join or
  // observe a half-cleared workers_. It cannot (and does not claim to)
  // protect against racing the destructor itself — keeping the pool alive
  // across the call is the caller's job, as for any member function.
  // Must not be called from a worker thread (self-join).
  MutexLock shutdown_lock(shutdown_mutex_);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  // If a submit throws (pool shut down concurrently), we must still wait for
  // the tasks already enqueued: they hold a reference to `fn`, which dies
  // when this frame unwinds.
  std::exception_ptr submit_error;
  try {
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
  } catch (...) {
    submit_error = std::current_exception();
  }
  std::exception_ptr first_task_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_task_error) first_task_error = std::current_exception();
    }
  }
  if (first_task_error) std::rethrow_exception(first_task_error);
  if (submit_error) std::rethrow_exception(submit_error);
}

}  // namespace ecad::util
