#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace ecad::util {

namespace {

double bits_to_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

}  // namespace

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

double Histogram::upper_bound(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return 1e-6 * static_cast<double>(std::uint64_t{1} << i);
}

std::size_t Histogram::bucket_index(double v) {
  for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
    if (v <= upper_bound(i)) return i;
  }
  return kBuckets - 1;
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(bits, double_to_bits(bits_to_double(bits) + v),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return bits_to_double(sum_bits_.load(std::memory_order_relaxed)); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double q) const { return quantile_from_buckets(bucket_counts(), q); }

double quantile_from_buckets(const std::vector<std::uint64_t>& buckets, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // 1-based rank of the order statistic the quantile names.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      const double lower = i == 0 ? 0.0 : Histogram::upper_bound(i - 1);
      double upper = Histogram::upper_bound(i);
      // The overflow bucket has no finite width; report its lower edge.
      if (!std::isfinite(upper)) return lower;
      const double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative += buckets[i];
  }
  return 0.0;
}

std::string labeled_metric(const std::string& base, const std::string& key,
                           const std::string& value) {
  return base + "{" + key + "=" + value + "}";
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  std::vector<MetricSnapshot> out;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, counter] : counters_) {
      if (!matches(name)) continue;
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::Counter;
      snap.value = static_cast<double>(counter->value());
      snap.count = counter->value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, gauge] : gauges_) {
      if (!matches(name)) continue;
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::Gauge;
      snap.value = gauge->value();
      out.push_back(std::move(snap));
    }
    for (const auto& [name, histogram] : histograms_) {
      if (!matches(name)) continue;
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = MetricKind::Histogram;
      snap.count = histogram->count();
      snap.sum = histogram->sum();
      snap.buckets = histogram->bucket_counts();
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

BenchReport MetricsRegistry::to_bench_report(const std::string& bench_name) const {
  BenchReport report(bench_name);
  report.set_metadata("flavor", "metrics-snapshot");
  for (const MetricSnapshot& snap : snapshot()) {
    BenchEntry& entry = report.add_entry(snap.name);
    switch (snap.kind) {
      case MetricKind::Counter:
        entry.label("type", "counter").metric("value", snap.value);
        break;
      case MetricKind::Gauge:
        entry.label("type", "gauge").metric("value", snap.value);
        break;
      case MetricKind::Histogram:
        entry.label("type", "histogram")
            .metric("count", static_cast<double>(snap.count))
            .metric("sum", snap.sum)
            .metric("p50_s", quantile_from_buckets(snap.buckets, 0.50))
            .metric("p90_s", quantile_from_buckets(snap.buckets, 0.90))
            .metric("p99_s", quantile_from_buckets(snap.buckets, 0.99));
        break;
    }
  }
  return report;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ecad::util
