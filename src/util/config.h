// INI-style configuration files.
//
// The paper's flow is driven by "a configuration file ... containing
// information on (a) the general NNA structure ... (b) Hardware target ...
// (c) optimization targets" (§III).  This parser supports `[section]`
// headers, `key = value` pairs, `#`/`;` comments, and typed accessors with
// defaults.  Section+key lookups are case-insensitive.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ecad::util {

class Config {
 public:
  Config() = default;

  /// Parse from INI text. Throws std::invalid_argument on malformed lines.
  static Config parse(const std::string& text);

  /// Read and parse a file. Throws std::runtime_error / std::invalid_argument.
  static Config from_file(const std::string& path);

  void set(std::string_view section, std::string_view key, std::string value);

  bool has(std::string_view section, std::string_view key) const;

  /// Raw access; throws std::out_of_range when the key is missing.
  const std::string& get(std::string_view section, std::string_view key) const;

  std::optional<std::string> try_get(std::string_view section, std::string_view key) const;

  // Typed accessors with defaults. Throw std::invalid_argument on bad values.
  std::string get_string(std::string_view section, std::string_view key,
                         std::string default_value) const;
  double get_double(std::string_view section, std::string_view key, double default_value) const;
  long long get_int(std::string_view section, std::string_view key, long long default_value) const;
  bool get_bool(std::string_view section, std::string_view key, bool default_value) const;

  /// Comma-separated list of integers, e.g. "layers = 128, 64, 10".
  std::vector<long long> get_int_list(std::string_view section, std::string_view key,
                                      std::vector<long long> default_value) const;

  /// All keys present in a section (normalized lowercase), sorted.
  std::vector<std::string> keys(std::string_view section) const;

  /// All section names (normalized lowercase), sorted.
  std::vector<std::string> sections() const;

  /// Serialize back to INI text (sections sorted, keys sorted).
  std::string to_string() const;

 private:
  static std::string normalize(std::string_view name);
  // section -> key -> value
  std::map<std::string, std::map<std::string, std::string>> values_;
};

}  // namespace ecad::util
