// Bounds-checked binary snapshot primitives + atomic file persistence.
//
// This is the checkpoint-side sibling of net/wire.h: the same little-endian
// byte conventions (u64 integers, IEEE-754 doubles as u64 bits,
// length-prefixed strings) but usable from layers *below* net — evo engine
// snapshots, core checkpoint files, and the workerd cache file all encode
// through these primitives.  Keeping them in util preserves the layer
// diagram: core stays below net.
//
// Every on-disk snapshot starts with a magic u32 and the format version
// below.  `lint_wire_protocol.py` pins the version against README so format
// drift cannot land silently; bump it whenever any snapshot codec changes
// encoded bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecad::util {

/// Version stamped into every snapshot file (engine checkpoints, submission
/// journals, worker cache files).  Readers reject any other value.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Hard caps mirroring net/wire.h so a corrupt length prefix cannot drive a
/// multi-gigabyte allocation while loading a checkpoint.
inline constexpr std::size_t kMaxSnapshotBytes = 64ull * 1024 * 1024;
inline constexpr std::size_t kMaxSnapshotStringBytes = 1ull * 1024 * 1024;
inline constexpr std::size_t kMaxSnapshotVectorElems = 1ull * 1024 * 1024;

/// Thrown on any malformed, truncated, or over-cap snapshot. Loaders treat
/// this as "checkpoint unusable", never as a crash.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder (mirror of net::WireWriter).
class SnapshotWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_size_vector(const std::vector<std::size_t>& values);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder over a byte span (mirror of net::WireReader).
/// Throws SnapshotError on any read past the end or over-cap length.
class SnapshotReader {
 public:
  SnapshotReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit SnapshotReader(const std::vector<std::uint8_t>& bytes)
      : SnapshotReader(bytes.data(), bytes.size()) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  std::vector<std::size_t> get_size_vector();

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless every byte has been consumed (catches trailing garbage).
  void expect_end() const;

 private:
  const std::uint8_t* need(std::size_t count);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

/// Write `bytes` to `path` atomically: write to `<path>.tmp`, fsync the file,
/// rename over the target, then fsync the directory. A reader can never
/// observe a torn file — it sees either the old snapshot or the new one.
///
/// `crash_label`, when non-empty, arms two deterministic crash points for the
/// chaos harness (see util/crash_point.h): `<label>_tmp` fires after the tmp
/// file is durable but before the rename (simulating a crash that must leave
/// the previous snapshot intact), and `<label>` fires after the rename.
void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes,
                       const std::string& crash_label = "");

/// Read an entire file. Throws SnapshotError if the file is missing,
/// unreadable, or larger than kMaxSnapshotBytes.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace ecad::util
