#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ecad::util {

namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// line terminator. Handles RFC-4180 quoting.
std::vector<std::string> parse_record(const std::string& text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
    } else if (c == '"') {
      in_quotes = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\r') {
      ++pos;
      if (pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else if (c == '\n') {
      ++pos;
      break;
    } else {
      field.push_back(c);
      ++pos;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

CsvTable parse_csv(const std::string& text, bool has_header) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    // Skip completely blank lines.
    if (text[pos] == '\n') { ++pos; continue; }
    if (text[pos] == '\r') { ++pos; continue; }
    std::vector<std::string> record = parse_record(text, pos);
    if (first && has_header) {
      table.header = std::move(record);
      first = false;
      continue;
    }
    first = false;
    table.rows.push_back(std::move(record));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, bool has_header) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  if (!table.header.empty()) {
    for (std::size_t i = 0; i < table.header.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_field(out, table.header[i]);
    }
    out.push_back('\n');
  }
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_field(out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("write_csv_file: cannot open " + path);
  file << to_csv(table);
  if (!file) throw std::runtime_error("write_csv_file: write failed for " + path);
}

}  // namespace ecad::util
