// Dense row-major FP32 matrix.
//
// The paper's entire compute substrate is single-precision GEMM ("All data
// is 32-bit floating-point", §III-C), so `Matrix` is float-valued; analytic
// hardware models use double internally but never this type.
#pragma once

#include <cstddef>
#include <initializer_list>
#include "util/span.h"
#include <vector>

#include "util/rng.h"

namespace ecad::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<float>> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  float operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  ecad::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  ecad::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  ecad::span<float> data() { return data_; }
  ecad::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  void fill(float value);

  /// Resize, discarding contents (cells zeroed).
  void reshape_discard(std::size_t rows, std::size_t cols);

  /// Returns the transposed matrix.
  Matrix transposed() const;

  /// Elementwise comparison within `tolerance` (absolute).
  bool approx_equal(const Matrix& other, float tolerance = 1e-5f) const;

  /// Fill with uniform values in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, util::Rng& rng,
                               float lo = -1.0f, float hi = 1.0f);

  /// Fill with Gaussian values.
  static Matrix random_gaussian(std::size_t rows, std::size_t cols, util::Rng& rng,
                                float mean = 0.0f, float stddev = 1.0f);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }
  friend bool operator!=(const Matrix& a, const Matrix& b) { return !(a == b); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ecad::linalg
