#include "linalg/vector_ops.h"

#include <cassert>
#include <cmath>

namespace ecad::linalg {

void add_inplace(ecad::span<float> out, ecad::span<const float> x) {
  assert(out.size() == x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += x[i];
}

void sub_inplace(ecad::span<float> out, ecad::span<const float> x) {
  assert(out.size() == x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] -= x[i];
}

void scale_inplace(ecad::span<float> out, float s) {
  for (float& v : out) v *= s;
}

void axpy(ecad::span<float> out, float s, ecad::span<const float> x) {
  assert(out.size() == x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += s * x[i];
}

void mul_inplace(ecad::span<float> out, ecad::span<const float> x) {
  assert(out.size() == x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= x[i];
}

float dot(ecad::span<const float> a, ecad::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float sum(ecad::span<const float> x) {
  float acc = 0.0f;
  for (float v : x) acc += v;
  return acc;
}

float max_value(ecad::span<const float> x) {
  assert(!x.empty());
  float best = x[0];
  for (float v : x) best = std::max(best, v);
  return best;
}

std::size_t argmax(ecad::span<const float> x) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

float norm2(ecad::span<const float> x) { return std::sqrt(dot(x, x)); }

float squared_distance(ecad::span<const float> a, ecad::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace ecad::linalg
