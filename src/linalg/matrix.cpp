#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecad::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::reshape_discard(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

bool Matrix::approx_equal(const Matrix& other, float tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, util::Rng& rng, float lo,
                              float hi) {
  Matrix out(rows, cols);
  for (float& v : out.data_) v = static_cast<float>(rng.next_double(lo, hi));
  return out;
}

Matrix Matrix::random_gaussian(std::size_t rows, std::size_t cols, util::Rng& rng, float mean,
                               float stddev) {
  Matrix out(rows, cols);
  for (float& v : out.data_) v = static_cast<float>(rng.next_gaussian(mean, stddev));
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1.0f;
  return out;
}

}  // namespace ecad::linalg
