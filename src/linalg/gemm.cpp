#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>

namespace ecad::linalg {

namespace {

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm: inner dimensions differ (" + std::to_string(a.cols()) +
                                " vs " + std::to_string(b.rows()) + ")");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm: output shape mismatch");
  }
}

constexpr std::size_t kDefaultBlock = 64;

// Blocked kernel over a row range [row_begin, row_end) of A/C.
void gemm_block_range(const Matrix& a, const Matrix& b, Matrix& c, std::size_t row_begin,
                      std::size_t row_end, std::size_t block) {
  const std::size_t k_total = a.cols();
  const std::size_t n_total = b.cols();
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, row_end);
    for (std::size_t k0 = 0; k0 < k_total; k0 += block) {
      const std::size_t k1 = std::min(k0 + block, k_total);
      for (std::size_t j0 = 0; j0 < n_total; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n_total);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* a_row = a.raw() + i * k_total;
          float* c_row = c.raw() + i * n_total;
          for (std::size_t k = k0; k < k1; ++k) {
            const float a_ik = a_row[k];
            const float* b_row = b.raw() + k * n_total;
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ik * b_row[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  check_shapes(a, b, c);
  if (!accumulate) c.fill(0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = c.at(i, j);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
}

void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate,
                  std::size_t block) {
  check_shapes(a, b, c);
  if (block == 0) block = kDefaultBlock;
  if (!accumulate) c.fill(0.0f);
  gemm_block_range(a, b, c, 0, a.rows(), block);
}

void gemm_parallel(const Matrix& a, const Matrix& b, Matrix& c, util::ThreadPool& pool,
                   bool accumulate) {
  check_shapes(a, b, c);
  if (!accumulate) c.fill(0.0f);
  const std::size_t rows = a.rows();
  const std::size_t shards = std::min(rows, pool.size() * 4);
  if (shards <= 1) {
    gemm_block_range(a, b, c, 0, rows, kDefaultBlock);
    return;
  }
  const std::size_t chunk = (rows + shards - 1) / shards;
  pool.parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, rows);
    if (begin < end) gemm_block_range(a, b, c, begin, end, kDefaultBlock);
  });
}

void gemm_at(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  // a: m×k_out viewed transposed; result c: a.cols() × b.cols().
  if (a.rows() != b.rows()) throw std::invalid_argument("gemm_at: row counts differ");
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_at: output shape mismatch");
  }
  if (!accumulate) c.fill(0.0f);
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.raw() + i * k;
    const float* b_row = b.raw() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      float* c_row = c.raw() + p * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

void gemm_bt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  // c: a.rows() × b.rows(); inner dim a.cols() == b.cols().
  if (a.cols() != b.cols()) throw std::invalid_argument("gemm_bt: inner dimensions differ");
  if (c.rows() != a.rows() || c.cols() != b.rows()) {
    throw std::invalid_argument("gemm_bt: output shape mismatch");
  }
  if (!accumulate) c.fill(0.0f);
  const std::size_t inner = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* a_row = a.raw() + i * inner;
    float* c_row = c.raw() + i * b.rows();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* b_row = b.raw() + j * inner;
      float acc = 0.0f;
      for (std::size_t p = 0; p < inner; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_blocked(a, b, c);
  return c;
}

void affine(const Matrix& x, const Matrix& w, const Matrix& bias, Matrix& y) {
  if (y.rows() != x.rows() || y.cols() != w.cols()) {
    y.reshape_discard(x.rows(), w.cols());
  }
  gemm_blocked(x, w, y);
  if (bias.empty()) return;
  if (bias.cols() != w.cols() || bias.rows() != 1) {
    throw std::invalid_argument("affine: bias must be 1 x n");
  }
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* row = y.raw() + i * y.cols();
    const float* b = bias.raw();
    for (std::size_t j = 0; j < y.cols(); ++j) row[j] += b[j];
  }
}

std::size_t gemm_flops(std::size_t m, std::size_t k, std::size_t n) { return 2 * m * k * n; }

}  // namespace ecad::linalg
