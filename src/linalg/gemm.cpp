#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "linalg/gemm_packed.h"

namespace ecad::linalg {

namespace {

using detail::MatView;

// Shared shape validation so every entry point throws the same exception
// type with the same message style: "<op>: inner dimensions differ (x vs y)"
// or "<op>: output shape mismatch (rxc vs expected rxc)".
void check_shapes(const char* op, std::size_t inner_a, std::size_t inner_b, std::size_t m,
                  std::size_t n, const Matrix& c) {
  if (inner_a != inner_b) {
    throw std::invalid_argument(std::string(op) + ": inner dimensions differ (" +
                                std::to_string(inner_a) + " vs " + std::to_string(inner_b) +
                                ")");
  }
  if (c.rows() != m || c.cols() != n) {
    throw std::invalid_argument(std::string(op) + ": output shape mismatch (" +
                                std::to_string(c.rows()) + "x" + std::to_string(c.cols()) +
                                " vs expected " + std::to_string(m) + "x" + std::to_string(n) +
                                ")");
  }
}

constexpr std::size_t kDefaultBlock = 64;

// Legacy cache-blocked ikj kernel over rows [row_begin, row_end) of A/C.
// Retained as the GemmKernel::Blocked backend and the bench's pre-packing
// comparison baseline (gemm_blocked with an explicit `block` also lands
// here, preserving the historical tile-edge semantics).
void gemm_block_range(const Matrix& a, const Matrix& b, Matrix& c, std::size_t row_begin,
                      std::size_t row_end, std::size_t block) {
  const std::size_t k_total = a.cols();
  const std::size_t n_total = b.cols();
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, row_end);
    for (std::size_t k0 = 0; k0 < k_total; k0 += block) {
      const std::size_t k1 = std::min(k0 + block, k_total);
      for (std::size_t j0 = 0; j0 < n_total; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n_total);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* a_row = a.raw() + i * k_total;
          float* c_row = c.raw() + i * n_total;
          for (std::size_t k = k0; k < k1; ++k) {
            const float a_ik = a_row[k];
            const float* b_row = b.raw() + k * n_total;
            for (std::size_t j = j0; j < j1; ++j) {
              c_row[j] += a_ik * b_row[j];
            }
          }
        }
      }
    }
  }
}

// Reference loops for the transposed products (Naive/Blocked backends).
void gemm_at_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.raw() + i * k;
    const float* b_row = b.raw() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      float* c_row = c.raw() + p * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

void gemm_bt_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t inner = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* a_row = a.raw() + i * inner;
    float* c_row = c.raw() + i * b.rows();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* b_row = b.raw() + j * inner;
      float acc = 0.0f;
      for (std::size_t p = 0; p < inner; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

}  // namespace

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  check_shapes("gemm", a.cols(), b.rows(), a.rows(), b.cols(), c);
  if (!accumulate) c.fill(0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = c.at(i, j);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
}

void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate,
                  std::size_t block) {
  check_shapes("gemm", a.cols(), b.rows(), a.rows(), b.cols(), c);
  if (block != 0) {
    // Explicit tile edge requests the legacy kernel with that block size.
    if (!accumulate) c.fill(0.0f);
    gemm_block_range(a, b, c, 0, a.rows(), block);
    return;
  }
  switch (active_gemm_kernel()) {
    case GemmKernel::Packed:
      detail::gemm_packed(MatView::normal(a), MatView::normal(b), c, accumulate);
      return;
    case GemmKernel::Blocked:
      if (!accumulate) c.fill(0.0f);
      gemm_block_range(a, b, c, 0, a.rows(), kDefaultBlock);
      return;
    case GemmKernel::Naive:
      gemm_naive(a, b, c, accumulate);
      return;
  }
}

void gemm_parallel(const Matrix& a, const Matrix& b, Matrix& c, util::ThreadPool& pool,
                   bool accumulate) {
  check_shapes("gemm", a.cols(), b.rows(), a.rows(), b.cols(), c);
  if (active_gemm_kernel() == GemmKernel::Packed) {
    detail::gemm_packed_parallel(MatView::normal(a), MatView::normal(b), c, pool, accumulate);
    return;
  }
  if (!accumulate) c.fill(0.0f);
  const std::size_t rows = a.rows();
  const std::size_t shards = std::min(rows, pool.size() * 4);
  if (shards <= 1) {
    gemm_block_range(a, b, c, 0, rows, kDefaultBlock);
    return;
  }
  const std::size_t chunk = (rows + shards - 1) / shards;
  pool.parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, rows);
    if (begin < end) gemm_block_range(a, b, c, begin, end, kDefaultBlock);
  });
}

void gemm_at(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  // Logical product: C (a.cols × b.cols) = aᵀ · b; the shared inner dim is
  // the row count of both operands.
  check_shapes("gemm_at", a.rows(), b.rows(), a.cols(), b.cols(), c);
  if (active_gemm_kernel() == GemmKernel::Packed) {
    detail::gemm_packed(MatView::transposed(a), MatView::normal(b), c, accumulate);
    return;
  }
  if (!accumulate) c.fill(0.0f);
  gemm_at_reference(a, b, c);
}

void gemm_bt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  // Logical product: C (a.rows × b.rows) = a · bᵀ; the shared inner dim is
  // the column count of both operands.
  check_shapes("gemm_bt", a.cols(), b.cols(), a.rows(), b.rows(), c);
  if (active_gemm_kernel() == GemmKernel::Packed) {
    detail::gemm_packed(MatView::normal(a), MatView::transposed(b), c, accumulate);
    return;
  }
  if (!accumulate) c.fill(0.0f);
  gemm_bt_reference(a, b, c);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_blocked(a, b, c);
  return c;
}

void add_bias_rows(Matrix& y, const Matrix& bias) {
  if (bias.empty()) return;
  if (bias.cols() != y.cols() || bias.rows() != 1) {
    throw std::invalid_argument("affine: bias must be 1 x n (got " +
                                std::to_string(bias.rows()) + "x" +
                                std::to_string(bias.cols()) + " for n=" +
                                std::to_string(y.cols()) + ")");
  }
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* row = y.raw() + i * y.cols();
    const float* b = bias.raw();
    for (std::size_t j = 0; j < y.cols(); ++j) row[j] += b[j];
  }
}

void affine(const Matrix& x, const Matrix& w, const Matrix& bias, Matrix& y) {
  if (y.rows() != x.rows() || y.cols() != w.cols()) {
    y.reshape_discard(x.rows(), w.cols());
  }
  gemm_blocked(x, w, y);
  add_bias_rows(y, bias);
}

std::size_t gemm_flops(std::size_t m, std::size_t k, std::size_t n) { return 2 * m * k * n; }

}  // namespace ecad::linalg
