// General matrix multiplication entry points.
//
// "At the heart of MLP is a general matrix multiplication (GEMM)" (§I).
// All entry points share one contract (C = A·B, with optional accumulate)
// and dispatch on the runtime-selected backend (see gemm_packed.h):
//   * gemm_naive    — reference triple loop, used as the test oracle;
//   * gemm_blocked  — default entry point; Packed backend unless an
//                     explicit `block` requests the legacy ikj kernel;
//   * gemm_parallel — row-partitioned over a thread pool for large layers;
//   * gemm_at/bt    — transposed products via strided packing (no
//                     materialized transpose).
#pragma once

#include <cstddef>

#include "linalg/gemm_packed.h"
#include "linalg/matrix.h"
#include "util/thread_pool.h"

namespace ecad::linalg {

/// C (m×n) = A (m×k) · B (k×n).  If `accumulate` is true, adds into C.
/// Dimension mismatches throw std::invalid_argument.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false);

/// Default GEMM entry point. `block == 0` dispatches to the active backend
/// (Packed by default); a nonzero `block` forces the legacy cache-blocked
/// ikj kernel with that tile edge (kept as the pre-packing baseline).
void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false,
                  std::size_t block = 0);

/// Parallel blocked GEMM: splits rows of A across `pool`.
void gemm_parallel(const Matrix& a, const Matrix& b, Matrix& c, util::ThreadPool& pool,
                   bool accumulate = false);

/// C (k×n) = Aᵀ (k×m) · B (m×n) without materializing Aᵀ.
/// Used by backprop for weight gradients (dW = aᵀ·δ).
void gemm_at(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false);

/// C (m×k) = A (m×n) · Bᵀ (n×k) without materializing Bᵀ.
/// Used by backprop for upstream deltas (δ_prev = δ·Wᵀ).
void gemm_bt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false);

/// Convenience allocating wrappers.
Matrix matmul(const Matrix& a, const Matrix& b);

/// y (m×n) = x (m×k) · w (k×n) + broadcast-row bias (1×n or empty).
void affine(const Matrix& x, const Matrix& w, const Matrix& bias, Matrix& y);

/// Adds a broadcast 1×n bias row to every row of y; empty bias is a no-op.
/// Any other bias shape throws std::invalid_argument.
void add_bias_rows(Matrix& y, const Matrix& bias);

/// FLOP count of one GEMM (2·m·k·n), used by throughput accounting.
std::size_t gemm_flops(std::size_t m, std::size_t k, std::size_t n);

}  // namespace ecad::linalg
