// Elementwise and reduction kernels shared by the NN and baseline libraries.
#pragma once

#include <cstddef>
#include "util/span.h"

namespace ecad::linalg {

/// out[i] += x[i]
void add_inplace(ecad::span<float> out, ecad::span<const float> x);

/// out[i] -= x[i]
void sub_inplace(ecad::span<float> out, ecad::span<const float> x);

/// out[i] *= s
void scale_inplace(ecad::span<float> out, float s);

/// out[i] += s * x[i]  (axpy)
void axpy(ecad::span<float> out, float s, ecad::span<const float> x);

/// Hadamard: out[i] *= x[i]
void mul_inplace(ecad::span<float> out, ecad::span<const float> x);

float dot(ecad::span<const float> a, ecad::span<const float> b);

float sum(ecad::span<const float> x);

float max_value(ecad::span<const float> x);

/// Index of the maximum element (first occurrence). Empty input returns 0.
std::size_t argmax(ecad::span<const float> x);

/// Euclidean norm.
float norm2(ecad::span<const float> x);

/// Squared Euclidean distance between two equal-length vectors.
float squared_distance(ecad::span<const float> a, ecad::span<const float> b);

}  // namespace ecad::linalg
