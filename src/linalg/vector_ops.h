// Elementwise and reduction kernels shared by the NN and baseline libraries.
#pragma once

#include <cstddef>
#include <span>

namespace ecad::linalg {

/// out[i] += x[i]
void add_inplace(std::span<float> out, std::span<const float> x);

/// out[i] -= x[i]
void sub_inplace(std::span<float> out, std::span<const float> x);

/// out[i] *= s
void scale_inplace(std::span<float> out, float s);

/// out[i] += s * x[i]  (axpy)
void axpy(std::span<float> out, float s, std::span<const float> x);

/// Hadamard: out[i] *= x[i]
void mul_inplace(std::span<float> out, std::span<const float> x);

float dot(std::span<const float> a, std::span<const float> b);

float sum(std::span<const float> x);

float max_value(std::span<const float> x);

/// Index of the maximum element (first occurrence). Empty input returns 0.
std::size_t argmax(std::span<const float> x);

/// Euclidean norm.
float norm2(std::span<const float> x);

/// Squared Euclidean distance between two equal-length vectors.
float squared_distance(std::span<const float> a, std::span<const float> b);

}  // namespace ecad::linalg
