#include "linalg/gemm_packed.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/logging.h"
#include "util/string_util.h"

// On x86-64 GCC, clone the hot loops for wider ISAs and pick the best one at
// load time via ifunc dispatch; default codegen stays portable (SSE2), so
// binaries built without -march still run the AVX2/AVX-512 microkernel on
// hardware that has it. TSan cannot run ifunc resolvers (they execute before
// the runtime is initialized and segfault at load), so sanitized builds fall
// back to the portable kernel — races are ISA-independent, nothing is lost.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__SANITIZE_THREAD__)
#define ECAD_GEMM_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define ECAD_GEMM_TARGET_CLONES
#endif

namespace ecad::linalg {

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

GemmKernel parse_gemm_kernel(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "packed") return GemmKernel::Packed;
  if (lower == "blocked") return GemmKernel::Blocked;
  if (lower == "naive") return GemmKernel::Naive;
  throw std::invalid_argument("parse_gemm_kernel: unknown kernel '" + name +
                              "' (expected packed|blocked|naive)");
}

const char* to_string(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::Packed: return "packed";
    case GemmKernel::Blocked: return "blocked";
    case GemmKernel::Naive: return "naive";
  }
  return "?";
}

namespace {

GemmKernel kernel_from_env() {
  const char* env = std::getenv("ECAD_GEMM_KERNEL");
  if (env == nullptr || *env == '\0') return GemmKernel::Packed;
  try {
    return parse_gemm_kernel(env);
  } catch (const std::invalid_argument&) {
    util::Log(util::LogLevel::Warn, "linalg")
        << "ECAD_GEMM_KERNEL='" << env << "' not recognized; using 'packed'";
    return GemmKernel::Packed;
  }
}

std::atomic<GemmKernel>& kernel_slot() {
  static std::atomic<GemmKernel> slot{kernel_from_env()};
  return slot;
}

}  // namespace

GemmKernel active_gemm_kernel() { return kernel_slot().load(std::memory_order_relaxed); }

void set_gemm_kernel(GemmKernel kernel) {
  kernel_slot().store(kernel, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

namespace detail {
namespace {

inline std::size_t round_up(std::size_t value, std::size_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

// Packs column strips [j_begin, j_end) of rows [pc, pc+kc) of logical B into
// the panel at `panel_out`: strip j0 holds columns [j0, j0+kNR) as kc
// contiguous rows of kNR floats, zero-padded past b.cols, at panel offset
// (j0/kNR)·kc·kNR.  `j_begin` must be kNR-aligned.  Strips are disjoint in
// the output, so distinct ranges of one panel can be packed concurrently.
void pack_b_panel_strips(const MatView& b, std::size_t pc, std::size_t kc, std::size_t j_begin,
                         std::size_t j_end, float* panel_out) {
  const std::size_t n = b.cols;
  for (std::size_t j0 = j_begin; j0 < j_end; j0 += kNR) {
    const std::size_t jw = std::min(kNR, n - j0);
    float* out = panel_out + (j0 / kNR) * kc * kNR;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = b.data + (pc + p) * b.row_stride + j0 * b.col_stride;
      float* dst = out + p * kNR;
      if (b.col_stride == 1) {
        std::memcpy(dst, src, jw * sizeof(float));
      } else {
        for (std::size_t j = 0; j < jw; ++j) dst[j] = src[j * b.col_stride];
      }
      for (std::size_t j = jw; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

/// Whole panel: rows [pc, pc+kc), all column strips.
/// Output occupies kc * round_up(b.cols, kNR) floats.
void pack_b_panel(const MatView& b, std::size_t pc, std::size_t kc, float* out) {
  pack_b_panel_strips(b, pc, kc, 0, b.cols, out);
}

// Packs rows [ic, ic+mc) × cols [pc, pc+kc) of logical A into kMR-row strips:
// strip i0 holds rows [i0, i0+kMR) column-major within the strip (element
// (ii, p) at p·kMR + ii), zero-padded past mc. Output occupies
// round_up(mc, kMR) * kc floats.
void pack_a_block(const MatView& a, std::size_t ic, std::size_t mc, std::size_t pc,
                  std::size_t kc, float* out) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t ih = std::min(kMR, mc - i0);
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = a.data + (ic + i0) * a.row_stride + (pc + p) * a.col_stride;
      float* dst = out + p * kMR;
      for (std::size_t ii = 0; ii < ih; ++ii) dst[ii] = src[ii * a.row_stride];
      for (std::size_t ii = ih; ii < kMR; ++ii) dst[ii] = 0.0f;
    }
    out += kc * kMR;
  }
}

// ---------------------------------------------------------------------------
// Microkernel + macrokernel
// ---------------------------------------------------------------------------

// acc[kMR][kNR] += packed-A strip × packed-B strip over kc. Both strips are
// contiguous and edge-padded, so the loops have fixed trip counts the
// vectorizer turns into broadcast-FMA over kNR-wide rows.
#if defined(__GNUC__)
#define ECAD_GEMM_INLINE inline __attribute__((always_inline))
#else
#define ECAD_GEMM_INLINE inline
#endif

ECAD_GEMM_INLINE void micro_kernel(std::size_t kc, const float* a_strip, const float* b_strip,
                                   float acc[kMR * kNR]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = a_strip + p * kMR;
    const float* b = b_strip + p * kNR;
#if defined(__GNUC__)
#pragma GCC unroll 8
#endif
    for (std::size_t i = 0; i < kMR; ++i) {
      const float ai = a[i];
      float* row = acc + i * kNR;
#if defined(__GNUC__)
#pragma GCC unroll 8
#endif
      for (std::size_t j = 0; j < kNR; ++j) row[j] += ai * b[j];
    }
  }
}

// One packed A block (mc rows) × one packed B panel (kc × n): adds into C.
ECAD_GEMM_TARGET_CLONES
void macro_kernel(std::size_t mc, std::size_t n, std::size_t kc, const float* packed_a,
                  const float* packed_b, float* c, std::size_t ldc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kNR) {
    const std::size_t jw = std::min(kNR, n - j0);
    const float* b_strip = packed_b + (j0 / kNR) * kc * kNR;
    for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
      const std::size_t ih = std::min(kMR, mc - i0);
      const float* a_strip = packed_a + (i0 / kMR) * kc * kMR;
      float acc[kMR * kNR] = {};
      micro_kernel(kc, a_strip, b_strip, acc);
      float* c_tile = c + i0 * ldc + j0;
      if (ih == kMR && jw == kNR) {
        for (std::size_t i = 0; i < kMR; ++i) {
          float* c_row = c_tile + i * ldc;
          const float* a_row = acc + i * kNR;
          for (std::size_t j = 0; j < kNR; ++j) c_row[j] += a_row[j];
        }
      } else {
        for (std::size_t i = 0; i < ih; ++i) {
          float* c_row = c_tile + i * ldc;
          const float* a_row = acc + i * kNR;
          for (std::size_t j = 0; j < jw; ++j) c_row[j] += a_row[j];
        }
      }
    }
  }
}

void zero_rows(Matrix& c, std::size_t row_begin, std::size_t row_end) {
  std::memset(c.raw() + row_begin * c.cols(), 0,
              (row_end - row_begin) * c.cols() * sizeof(float));
}

// Multiplies rows [ic0, ic1) of logical A against all packed B panels.
// `packed_b_at(pc, kc)` returns the packed panel for K rows [pc, pc+kc).
template <typename PanelFn>
void run_row_range(const MatView& a, std::size_t ic0, std::size_t ic1, std::size_t n,
                   Matrix& c, std::vector<float>& a_scratch, const PanelFn& packed_b_at) {
  const std::size_t k = a.cols;
  const std::size_t ldc = c.cols();
  for (std::size_t ic = ic0; ic < ic1; ic += kMC) {
    const std::size_t mc = std::min(kMC, ic1 - ic);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      a_scratch.resize(round_up(mc, kMR) * kc);
      pack_a_block(a, ic, mc, pc, kc, a_scratch.data());
      macro_kernel(mc, n, kc, a_scratch.data(), packed_b_at(pc, kc),
                   c.raw() + ic * ldc, ldc);
    }
  }
}

}  // namespace

void gemm_packed(const MatView& a, const MatView& b, Matrix& c, bool accumulate) {
  const std::size_t k = a.cols;
  const std::size_t n = b.cols;
  if (!accumulate) zero_rows(c, 0, a.rows);
  if (a.rows == 0 || n == 0 || k == 0) return;
  std::vector<float> b_scratch(round_up(n, kNR) * std::min(kKC, k));
  std::vector<float> a_scratch;
  // K panels outermost so each B panel is packed exactly once.
  for (std::size_t pc = 0; pc < k; pc += kKC) {
    const std::size_t kc = std::min(kKC, k - pc);
    pack_b_panel(b, pc, kc, b_scratch.data());
    for (std::size_t ic = 0; ic < a.rows; ic += kMC) {
      const std::size_t mc = std::min(kMC, a.rows - ic);
      a_scratch.resize(round_up(mc, kMR) * kc);
      pack_a_block(a, ic, mc, pc, kc, a_scratch.data());
      macro_kernel(mc, n, kc, a_scratch.data(), b_scratch.data(), c.raw() + ic * c.cols(),
                   c.cols());
    }
  }
}

void gemm_packed_prepacked(const MatView& a, const PackedB& b, Matrix& c, bool accumulate) {
  if (!accumulate) zero_rows(c, 0, a.rows);
  if (a.rows == 0 || b.cols() == 0 || a.cols == 0) return;
  std::vector<float> a_scratch;
  run_row_range(a, 0, a.rows, b.cols(), c, a_scratch,
                [&](std::size_t pc, std::size_t) { return b.panel(pc); });
}

void gemm_packed_parallel(const MatView& a, const MatView& b, Matrix& c,
                          util::ThreadPool& pool, bool accumulate) {
  const std::size_t m = a.rows;
  // Shard rows in kMR-aligned slabs; a slab per pool slot ×4 balances tails.
  const std::size_t max_shards = std::max<std::size_t>(1, pool.size() * 4);
  const std::size_t slabs = (m + kMR - 1) / kMR;
  const std::size_t shards = std::min(slabs, max_shards);
  if (shards <= 1) {
    gemm_packed(a, b, c, accumulate);
    return;
  }
  // Pack the shared B once up front (read-only for all shards), using the
  // pool for the packing itself — serial packing here was the driver's
  // remaining sequential phase.
  PackedB packed_b;
  packed_b.pack_view_parallel(b, pool);
  const std::size_t rows_per_shard = round_up((m + shards - 1) / shards, kMR);
  pool.parallel_for(shards, [&](std::size_t s) {
    const std::size_t ic0 = s * rows_per_shard;
    const std::size_t ic1 = std::min(ic0 + rows_per_shard, m);
    if (ic0 >= ic1) return;
    if (!accumulate) zero_rows(c, ic0, ic1);
    std::vector<float> a_scratch;
    run_row_range(a, ic0, ic1, packed_b.cols(), c, a_scratch,
                  [&](std::size_t pc, std::size_t) { return packed_b.panel(pc); });
  });
}

}  // namespace detail

// ---------------------------------------------------------------------------
// PackedB
// ---------------------------------------------------------------------------

void PackedB::ensure_storage(std::size_t floats) {
  if (floats <= capacity_) return;  // reuse: repacking after updates is allocation-free
  data_.reset(new float[floats]);  // default-init: no zero-fill, packing writes every element
  capacity_ = floats;
}

void PackedB::pack(const Matrix& b, bool transpose) {
  pack_view(transpose ? detail::MatView::transposed(b) : detail::MatView::normal(b));
}

void PackedB::pack_view(const detail::MatView& b) {
  k_ = b.rows;
  n_ = b.cols;
  padded_n_ = (n_ + detail::kNR - 1) / detail::kNR * detail::kNR;
  ensure_storage(k_ * padded_n_);
  for (std::size_t pc = 0; pc < k_; pc += detail::kKC) {
    const std::size_t kc = std::min(detail::kKC, k_ - pc);
    detail::pack_b_panel(b, pc, kc, data_.get() + pc * padded_n_);
  }
}

void PackedB::pack_view_parallel(const detail::MatView& b, util::ThreadPool& pool) {
  k_ = b.rows;
  n_ = b.cols;
  padded_n_ = (n_ + detail::kNR - 1) / detail::kNR * detail::kNR;
  ensure_storage(k_ * padded_n_);
  if (k_ == 0 || n_ == 0) return;
  const std::size_t panels = (k_ + detail::kKC - 1) / detail::kKC;
  const std::size_t strips = padded_n_ / detail::kNR;
  // Panels alone under-parallelize (512³ has only two), so also split each
  // panel's strip range; ~4 tasks per thread balances the tail.
  const std::size_t want_tasks = std::max(pool.size() * 4, panels);
  std::size_t chunks_per_panel = std::max<std::size_t>(1, (want_tasks + panels - 1) / panels);
  chunks_per_panel = std::min(chunks_per_panel, strips);
  const std::size_t chunk_strips = (strips + chunks_per_panel - 1) / chunks_per_panel;
  if (panels * chunks_per_panel <= 1) {
    detail::pack_b_panel(b, 0, k_, data_.get());
    return;
  }
  pool.parallel_for(panels * chunks_per_panel, [&](std::size_t task) {
    const std::size_t panel = task / chunks_per_panel;
    const std::size_t chunk = task % chunks_per_panel;
    const std::size_t pc = panel * detail::kKC;
    const std::size_t kc = std::min(detail::kKC, k_ - pc);
    const std::size_t j_begin = chunk * chunk_strips * detail::kNR;
    if (j_begin >= n_) return;
    const std::size_t j_end = std::min(n_, j_begin + chunk_strips * detail::kNR);
    detail::pack_b_panel_strips(b, pc, kc, j_begin, j_end, data_.get() + pc * padded_n_);
  });
}

void gemm_prepacked(const Matrix& a, const PackedB& b, Matrix& c, bool accumulate) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm_prepacked: inner dimensions differ (" +
                                std::to_string(a.cols()) + " vs " + std::to_string(b.rows()) +
                                ")");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm_prepacked: output shape mismatch (" +
                                std::to_string(c.rows()) + "x" + std::to_string(c.cols()) +
                                " vs expected " + std::to_string(a.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
  }
  detail::gemm_packed_prepacked(detail::MatView::normal(a), b, c, accumulate);
}

}  // namespace ecad::linalg
