// Packed, register-blocked GEMM backend.
//
// The paper's candidate evaluations spend nearly all wall clock inside GEMM
// ("At the heart of MLP is a general matrix multiplication", §I), so the
// production kernels here follow the classic Goto/BLIS decomposition:
//   * operand panels are packed into contiguous, cache-tiled buffers
//     (A in MR-row strips, B in NR-column strips, zero-padded at edges);
//   * an MR×NR register-accumulator microkernel runs over each KC slice,
//     written so the compiler vectorizes it (and, on x86-64 GCC, cloned for
//     AVX2/AVX-512 with runtime dispatch);
//   * transposed operands are handled by strided packing, so Aᵀ·B and A·Bᵀ
//     (backprop's dW and δ products) never materialize a transpose.
//
// Kernel selection: the public gemm_* entry points in gemm.h dispatch on
// `active_gemm_kernel()`, settable programmatically or via the
// ECAD_GEMM_KERNEL environment variable ("packed" | "blocked" | "naive").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/thread_pool.h"

namespace ecad::linalg {

/// Which backend the gemm_* entry points in gemm.h dispatch to.
///   * Packed  — packed register-blocked driver (default, fastest);
///   * Blocked — legacy cache-blocked ikj loops (pre-packing baseline);
///   * Naive   — reference triple loop (oracle; debugging only).
enum class GemmKernel { Packed, Blocked, Naive };

/// Parses "packed" / "blocked" / "naive" (case-insensitive).
/// Throws std::invalid_argument on anything else.
GemmKernel parse_gemm_kernel(const std::string& name);

const char* to_string(GemmKernel kernel);

/// Currently active kernel. First call reads ECAD_GEMM_KERNEL (an
/// unrecognized value logs a warning and keeps the Packed default).
GemmKernel active_gemm_kernel();

/// Overrides the active kernel for this process (tests, benches).
void set_gemm_kernel(GemmKernel kernel);

namespace detail {

/// Strided read-only view of a logical rows×cols operand. Lets the packing
/// routines walk A, Aᵀ, B, or Bᵀ uniformly: element (i, j) lives at
/// data[i·row_stride + j·col_stride].
struct MatView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t row_stride = 0;
  std::size_t col_stride = 0;

  static MatView normal(const Matrix& m) { return {m.raw(), m.rows(), m.cols(), m.cols(), 1}; }
  static MatView transposed(const Matrix& m) {
    return {m.raw(), m.cols(), m.rows(), 1, m.cols()};
  }
};

/// Register tile and cache-block sizes shared by the packers and drivers.
/// MR×NR accumulators stay in registers; KC sizes one packed strip pair to
/// fit L1; MC bounds the packed A block (~MC·KC floats) to fit L2.
constexpr std::size_t kMR = 8;
constexpr std::size_t kNR = 8;
constexpr std::size_t kKC = 256;
constexpr std::size_t kMC = 128;

}  // namespace detail

/// A fully packed logical B operand (k×n), reusable across GEMM calls while
/// the source matrix is unchanged. Panels are laid out exactly as the driver
/// consumes them, so `gemm_prepacked` skips all packing work — the win the
/// MLP layers exploit by reusing weight panels across minibatches.
class PackedB {
 public:
  PackedB() = default;
  /// Move-only: the packed buffer is raw storage with no value semantics a
  /// copy would preserve cheaply (MLP caches hold these in vectors).
  PackedB(PackedB&&) noexcept = default;
  PackedB& operator=(PackedB&&) noexcept = default;
  PackedB(const PackedB&) = delete;
  PackedB& operator=(const PackedB&) = delete;

  /// Packs logical B = `b` (or `bᵀ` when `transpose`). Reuses the existing
  /// buffer capacity, so repacking after a weight update does not allocate.
  void pack(const Matrix& b, bool transpose = false);

  /// Packs an arbitrary strided view (used by the parallel driver).
  void pack_view(const detail::MatView& b);

  /// Same layout, but the packing work itself fans out across `pool`:
  /// (K-panel × column-strip-chunk) tasks write disjoint output regions.
  /// The parallel GEMM driver packed B serially before sharding — at large
  /// N that serial phase capped multi-thread scaling (Amdahl).
  void pack_view_parallel(const detail::MatView& b, util::ThreadPool& pool);

  bool empty() const { return k_ == 0 || n_ == 0; }
  std::size_t rows() const { return k_; }  // logical k
  std::size_t cols() const { return n_; }  // logical n

  /// Start of the packed panel for rows [pc, pc+kc): strips of kNR columns,
  /// each kc×kNR, zero-padded past `cols()`.
  const float* panel(std::size_t pc) const { return data_.get() + pc * padded_n_; }

 private:
  /// Grow the buffer to at least `floats` WITHOUT value-initializing it.
  /// vector::resize would memset the whole packed buffer serially on first
  /// use (and every growth) even though packing overwrites every element —
  /// padding included — which showed up as a serial phase ahead of
  /// gemm_parallel's sharded packing.
  void ensure_storage(std::size_t floats);

  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::size_t padded_n_ = 0;  // n rounded up to kNR
  std::unique_ptr<float[]> data_;  // uninitialized storage, capacity_ floats
  std::size_t capacity_ = 0;
};

namespace detail {

/// C (m×n) = A·B (+C when `accumulate`) over strided views; serial driver.
/// Shapes must already be validated by the caller.
void gemm_packed(const MatView& a, const MatView& b, Matrix& c, bool accumulate);

/// Row-partitioned packed driver: B is packed once, then MR-aligned row
/// shards of A are packed and multiplied across `pool`.
void gemm_packed_parallel(const MatView& a, const MatView& b, Matrix& c, util::ThreadPool& pool,
                          bool accumulate);

/// Serial driver over an already-packed B.
void gemm_packed_prepacked(const MatView& a, const PackedB& b, Matrix& c, bool accumulate);

}  // namespace detail

/// C (m×n) = A (m×k) · B, with B supplied pre-packed. Dimension mismatches
/// throw std::invalid_argument in the same style as gemm_naive.
void gemm_prepacked(const Matrix& a, const PackedB& b, Matrix& c, bool accumulate = false);

}  // namespace ecad::linalg
