// Fitness: metric extraction, objective weighting, and the user-extensible
// fitness-function registry.
//
// Paper §III-A: "Each candidate ... is evaluated according to configurable
// and potentially multiple criteria, for example accuracy alone or accuracy
// vs throughput. ... Simple evaluation functions can be specified in the
// configuration file and more complex ones are written in code and added by
// registering them with the framework."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ecad::evo {

/// Everything a worker measures about one candidate.  Fields irrelevant to a
/// given worker stay at their defaults (e.g. GPU runs leave FPGA fields 0).
struct EvalResult {
  double accuracy = 0.0;
  double outputs_per_second = 0.0;
  double latency_seconds = 0.0;
  double potential_gflops = 0.0;
  double effective_gflops = 0.0;
  double hw_efficiency = 0.0;     // effective / potential
  double power_watts = 0.0;
  double fmax_mhz = 0.0;
  double parameters = 0.0;        // trainable parameter count
  double flops_per_sample = 0.0;
  double eval_seconds = 0.0;      // wall-clock cost of this evaluation
  bool feasible = true;           // false: config does not fit the device
};

/// Outcome slot for one candidate of a batched evaluation: either a result
/// or the worker's error message.  Per-item slots keep one poisoned genome
/// from failing the whole batch it travelled with.
struct EvalOutcome {
  EvalResult result;
  bool ok = false;
  std::string error;  // meaningful only when !ok

  /// A slot is settled once it holds a result or an error message; anything
  /// else is still in flight (or was lost to a connection fault and must be
  /// rescheduled).  Shared vocabulary of the streaming scheduler and the
  /// overlapped engine, so the two layers cannot disagree on "done".
  bool settled() const { return ok || !error.empty(); }
};

enum class Metric {
  Accuracy,
  Throughput,      // outputs per second
  Latency,         // seconds (lower is better)
  Efficiency,      // hw efficiency
  EffectiveGflops,
  Power,           // watts (lower is better)
  Parameters,      // count (lower is better)
};

std::string_view to_string(Metric metric);
Metric metric_from_name(std::string_view name);

/// Extract a metric value from a result.
double metric_value(const EvalResult& result, Metric metric);

/// One term of a scalarized fitness.
struct Objective {
  Metric metric = Metric::Accuracy;
  double weight = 1.0;
  bool maximize = true;
  /// Compress many-orders-of-magnitude metrics (throughput) before weighting.
  bool log_scale = false;
};

/// Weighted scalarization; infeasible candidates map to -infinity.
double scalarize(const EvalResult& result, const std::vector<Objective>& objectives);

/// Registry of named fitness functions (result -> scalar, bigger = fitter).
class FitnessRegistry {
 public:
  using Fn = std::function<double(const EvalResult&)>;

  /// Re-registering a name replaces the previous function.
  void register_fn(std::string name, Fn fn);

  bool has(std::string_view name) const;

  /// Throws std::out_of_range for unknown names.
  const Fn& get(std::string_view name) const;

  std::vector<std::string> names() const;

  /// Registry preloaded with "accuracy", "throughput",
  /// "accuracy_x_throughput", "efficiency", and "low_latency".
  static FitnessRegistry with_builtins();

 private:
  std::map<std::string, Fn, std::less<>> fns_;
};

}  // namespace ecad::evo
