#include "evo/cache.h"

#include "util/metrics.h"

namespace ecad::evo {

namespace {

// Process-wide counters aggregate across every cache instance (one per
// engine), preserving the hits + misses == lookups invariant the smoke
// stats legs assert.  Both query paths — lookup() and the presence probe
// contains() the breeding loops use — count as lookups.
void count_query(bool present) {
  static util::Counter& lookups = util::metrics().counter("evo.cache_lookups_total");
  static util::Counter& hit_counter = util::metrics().counter("evo.cache_hits_total");
  static util::Counter& miss_counter = util::metrics().counter("evo.cache_misses_total");
  lookups.add(1);
  (present ? hit_counter : miss_counter).add(1);
}

}  // namespace

std::optional<EvalResult> EvalCache::lookup(const std::string& key) {
  std::optional<EvalResult> found;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
    } else {
      ++hits_;
      found = it->second;
    }
  }
  // Registry counters are bumped outside mutex_ so the registry mutex stays
  // a leaf lock (same discipline as RemoteWorker's labeled lookups).
  count_query(found.has_value());
  return found;
}

void EvalCache::store(const std::string& key, const EvalResult& result) {
  bool raced = false;
  {
    util::MutexLock lock(mutex_);
    raced = !entries_.insert_or_assign(key, result).second;
  }
  // A store that found the key already present means two producers raced to
  // evaluate the same genome (e.g. overlapped generations breeding a
  // duplicate before the first copy's result landed).  Harmless — results
  // are deterministic per key — but each one is a wasted evaluation, so the
  // counter makes the waste visible.  Bumped outside mutex_ (leaf-lock
  // discipline, same as count_query).
  if (raced) {
    static util::Counter& races = util::metrics().counter("evo.cache_races_total");
    races.add(1);
  }
}

bool EvalCache::contains(const std::string& key) const {
  bool present = false;
  {
    util::MutexLock lock(mutex_);
    present = entries_.find(key) != entries_.end();
  }
  count_query(present);
  return present;
}

std::size_t EvalCache::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t EvalCache::hits() const {
  util::MutexLock lock(mutex_);
  return hits_;
}

std::size_t EvalCache::misses() const {
  util::MutexLock lock(mutex_);
  return misses_;
}

void EvalCache::restore_stats(std::size_t hits, std::size_t misses) {
  util::MutexLock lock(mutex_);
  hits_ = hits;
  misses_ = misses;
}

}  // namespace ecad::evo
