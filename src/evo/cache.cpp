#include "evo/cache.h"

namespace ecad::evo {

std::optional<EvalResult> EvalCache::lookup(const std::string& key) {
  util::MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::store(const std::string& key, const EvalResult& result) {
  util::MutexLock lock(mutex_);
  entries_[key] = result;
}

bool EvalCache::contains(const std::string& key) const {
  util::MutexLock lock(mutex_);
  return entries_.find(key) != entries_.end();
}

std::size_t EvalCache::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t EvalCache::hits() const {
  util::MutexLock lock(mutex_);
  return hits_;
}

std::size_t EvalCache::misses() const {
  util::MutexLock lock(mutex_);
  return misses_;
}

}  // namespace ecad::evo
