#include "evo/pareto.h"

#include <limits>

namespace ecad::evo {

namespace {

bool is_minimized(Metric metric) {
  return metric == Metric::Latency || metric == Metric::Power || metric == Metric::Parameters;
}

// Value oriented so bigger is always better.
double oriented(const EvalResult& result, Metric metric) {
  const double value = metric_value(result, metric);
  return is_minimized(metric) ? -value : value;
}

}  // namespace

bool dominates(const EvalResult& a, const EvalResult& b, const std::vector<Metric>& metrics) {
  if (!a.feasible) return false;
  if (!b.feasible) return true;
  bool strictly_better = false;
  for (Metric metric : metrics) {
    const double va = oriented(a, metric);
    const double vb = oriented(b, metric);
    if (va < vb) return false;
    if (va > vb) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front(const std::vector<EvalResult>& results,
                                      const std::vector<Metric>& metrics) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (i != j && dominates(results[j], results[i], metrics)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> nondominated_rank(const std::vector<EvalResult>& results,
                                           const std::vector<Metric>& metrics) {
  const std::size_t n = results.size();
  std::vector<std::size_t> rank(n, std::numeric_limits<std::size_t>::max());
  std::vector<bool> assigned(n, false);
  std::size_t assigned_count = 0;
  std::size_t current = 0;
  while (assigned_count < n) {
    std::vector<std::size_t> this_front;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || assigned[j]) continue;
        if (dominates(results[j], results[i], metrics)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) this_front.push_back(i);
    }
    if (this_front.empty()) {
      // Remaining candidates are mutually non-comparable (e.g. infeasible);
      // sweep them into the current front to guarantee termination.
      for (std::size_t i = 0; i < n; ++i) {
        if (!assigned[i]) this_front.push_back(i);
      }
    }
    for (std::size_t index : this_front) {
      rank[index] = current;
      assigned[index] = true;
      ++assigned_count;
    }
    ++current;
  }
  return rank;
}

}  // namespace ecad::evo
