#include "evo/genome.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ecad::evo {

namespace {

template <typename T>
const T& pick(const std::vector<T>& choices, util::Rng& rng) {
  return choices[rng.next_index(choices.size())];
}

}  // namespace

nn::MlpSpec NnaTraits::to_mlp_spec(std::size_t input_dim, std::size_t output_dim) const {
  nn::MlpSpec spec;
  spec.input_dim = input_dim;
  spec.output_dim = output_dim;
  spec.hidden = hidden;
  spec.activation = activation;
  spec.use_bias = use_bias;
  return spec;
}

std::string Genome::key() const {
  std::ostringstream out;
  out << "h:";
  for (std::size_t i = 0; i < nna.hidden.size(); ++i) {
    if (i != 0) out << '-';
    out << nna.hidden[i];
  }
  out << " a:" << nn::to_string(nna.activation) << " b:" << (nna.use_bias ? 1 : 0)
      << " | " << grid.to_string();
  return out.str();
}

void SearchSpace::validate() const {
  if (min_hidden_layers > max_hidden_layers) {
    throw std::invalid_argument("SearchSpace: min_hidden_layers > max_hidden_layers");
  }
  if (width_choices.empty()) throw std::invalid_argument("SearchSpace: no width choices");
  if (activations.empty()) throw std::invalid_argument("SearchSpace: no activations");
  if (grid.row_choices.empty() || grid.col_choices.empty() || grid.vec_choices.empty() ||
      grid.interleave_choices.empty()) {
    throw std::invalid_argument("SearchSpace: empty grid choice list");
  }
}

Genome random_genome(const SearchSpace& space, util::Rng& rng) {
  space.validate();
  Genome genome;
  const std::size_t layers = static_cast<std::size_t>(
      rng.next_int(static_cast<std::int64_t>(space.min_hidden_layers),
                   static_cast<std::int64_t>(space.max_hidden_layers)));
  genome.nna.hidden.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    genome.nna.hidden.push_back(pick(space.width_choices, rng));
  }
  genome.nna.activation = pick(space.activations, rng);
  genome.nna.use_bias = space.allow_no_bias ? rng.next_bool(0.8) : true;
  if (space.search_hardware) {
    genome.grid.rows = pick(space.grid.row_choices, rng);
    genome.grid.cols = pick(space.grid.col_choices, rng);
    genome.grid.vec_width = pick(space.grid.vec_choices, rng);
    genome.grid.interleave_m = pick(space.grid.interleave_choices, rng);
    genome.grid.interleave_n = pick(space.grid.interleave_choices, rng);
  }
  // else: keep the default grid so NNA-identical genomes share a cache key
  // (GPU searches ignore the hardware half entirely).
  return genome;
}

Genome mutate(const Genome& genome, const SearchSpace& space, util::Rng& rng, std::size_t count) {
  space.validate();
  Genome out = genome;
  count = std::max<std::size_t>(1, count);

  // NNA mutations 0-4; HW mutations 5-9 (only when searching hardware).
  const std::size_t kinds = space.search_hardware ? 10 : 5;
  for (std::size_t applied = 0; applied < count; ++applied) {
    switch (rng.next_index(kinds)) {
      case 0: {  // add a hidden layer
        if (out.nna.hidden.size() >= space.max_hidden_layers) break;
        const std::size_t position = rng.next_index(out.nna.hidden.size() + 1);
        out.nna.hidden.insert(out.nna.hidden.begin() + static_cast<std::ptrdiff_t>(position),
                              space.width_choices[rng.next_index(space.width_choices.size())]);
        break;
      }
      case 1: {  // remove a hidden layer
        if (out.nna.hidden.size() <= space.min_hidden_layers) break;
        const std::size_t position = rng.next_index(out.nna.hidden.size());
        out.nna.hidden.erase(out.nna.hidden.begin() + static_cast<std::ptrdiff_t>(position));
        break;
      }
      case 2: {  // resize a hidden layer
        if (out.nna.hidden.empty()) break;
        out.nna.hidden[rng.next_index(out.nna.hidden.size())] =
            space.width_choices[rng.next_index(space.width_choices.size())];
        break;
      }
      case 3:
        out.nna.activation = space.activations[rng.next_index(space.activations.size())];
        break;
      case 4:
        if (space.allow_no_bias) out.nna.use_bias = !out.nna.use_bias;
        break;
      case 5:
        out.grid.rows = space.grid.row_choices[rng.next_index(space.grid.row_choices.size())];
        break;
      case 6:
        out.grid.cols = space.grid.col_choices[rng.next_index(space.grid.col_choices.size())];
        break;
      case 7:
        out.grid.vec_width = space.grid.vec_choices[rng.next_index(space.grid.vec_choices.size())];
        break;
      case 8:
        out.grid.interleave_m =
            space.grid.interleave_choices[rng.next_index(space.grid.interleave_choices.size())];
        break;
      case 9:
        out.grid.interleave_n =
            space.grid.interleave_choices[rng.next_index(space.grid.interleave_choices.size())];
        break;
    }
  }
  return out;
}

Genome crossover(const Genome& a, const Genome& b, const SearchSpace& space, util::Rng& rng) {
  space.validate();
  Genome child;

  // Hidden layers: splice a prefix of one parent with a suffix of the other.
  const auto& first = rng.next_bool() ? a.nna.hidden : b.nna.hidden;
  const auto& second = (&first == &a.nna.hidden) ? b.nna.hidden : a.nna.hidden;
  const std::size_t cut_first = rng.next_index(first.size() + 1);
  const std::size_t cut_second = rng.next_index(second.size() + 1);
  child.nna.hidden.assign(first.begin(), first.begin() + static_cast<std::ptrdiff_t>(cut_first));
  child.nna.hidden.insert(child.nna.hidden.end(),
                          second.begin() + static_cast<std::ptrdiff_t>(cut_second), second.end());
  // Clamp depth into bounds.
  while (child.nna.hidden.size() > space.max_hidden_layers) child.nna.hidden.pop_back();
  while (child.nna.hidden.size() < space.min_hidden_layers) {
    child.nna.hidden.push_back(space.width_choices[rng.next_index(space.width_choices.size())]);
  }

  child.nna.activation = rng.next_bool() ? a.nna.activation : b.nna.activation;
  child.nna.use_bias = rng.next_bool() ? a.nna.use_bias : b.nna.use_bias;
  if (space.search_hardware) {
    child.grid.rows = rng.next_bool() ? a.grid.rows : b.grid.rows;
    child.grid.cols = rng.next_bool() ? a.grid.cols : b.grid.cols;
    child.grid.vec_width = rng.next_bool() ? a.grid.vec_width : b.grid.vec_width;
    child.grid.interleave_m = rng.next_bool() ? a.grid.interleave_m : b.grid.interleave_m;
    child.grid.interleave_n = rng.next_bool() ? a.grid.interleave_n : b.grid.interleave_n;
  }
  return child;
}

}  // namespace ecad::evo
