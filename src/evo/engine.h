// Steady-state evolutionary engine (paper §III-A, based on Goldberg & Deb's
// steady-state model [16]): tournament parent selection, crossover+mutation,
// reverse-tournament replacement, no generational barrier.  Offspring are
// evaluated in parallel batches by the Master's thread pool and deduplicated
// through the EvalCache.
//
// Two dispatch modes:
//  * sequential (default): each offspring batch is bred, evaluated, and
//    folded into the population before the next one is bred — the fully
//    deterministic trajectory every seeded test pins.
//  * overlapped (config.overlap_generations): batches are shipped through an
//    AsyncBatchDispatcher and the engine breeds the next batch — from
//    parents that are already scored — while up to max_inflight_batches
//    previous batches are still evaluating remotely.  Batches are folded in
//    submission order at fixed points (whenever the pipeline is full), so
//    the overlapped trajectory is also deterministic for a given config; it
//    just differs from the sequential one because breeding no longer waits
//    for the immediately preceding batch.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "evo/cache.h"
#include "evo/fitness.h"
#include "evo/genome.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/thread_safety.h"

namespace ecad::evo {

struct EvolutionConfig {
  std::size_t population_size = 16;
  /// Total unique-candidate evaluation budget (including the initial
  /// population).
  std::size_t max_evaluations = 100;
  std::size_t tournament_size = 3;
  double crossover_probability = 0.6;
  /// Expected point mutations per offspring (at least one is applied).
  double mutation_strength = 1.5;
  /// Attempts to generate a not-yet-evaluated offspring before accepting a
  /// duplicate's cached result.
  std::size_t dedup_attempts = 12;
  /// Offspring evaluated concurrently per steady-state step (0 = pool size).
  std::size_t batch_size = 0;
  /// Overlap breeding with in-flight evaluation batches (see file header).
  /// Off by default: the overlapped trajectory is deterministic but not the
  /// same search as the sequential one.
  bool overlap_generations = false;
  /// Evaluation batches the overlapped mode keeps in flight before it
  /// blocks on the oldest (>= 1; ignored when overlap is off).
  std::size_t max_inflight_batches = 2;
};

struct Candidate {
  Genome genome;
  EvalResult result;
  double fitness = 0.0;
};

struct RunStats {
  std::size_t models_evaluated = 0;   // unique evaluations performed
  std::size_t duplicates_skipped = 0; // offspring served from the cache
  std::size_t overlapped_batches = 0; // batches bred while another was in flight
  double total_eval_seconds = 0.0;    // summed worker time (Table III "Total")
  double avg_eval_seconds = 0.0;      // per-model mean (Table III "AVG")
  double wall_seconds = 0.0;          // end-to-end search wall clock
};

struct EvolutionResult {
  std::vector<Candidate> population;  // final population, best first
  std::vector<Candidate> history;     // every unique evaluated candidate
  Candidate best;
  RunStats stats;
};

/// Complete engine state at a generation boundary — everything a fresh
/// process needs to continue the search bit-identically (see evo/snapshot.h
/// for the versioned binary codec).  `history` doubles as the Pareto
/// archive: it holds every unique evaluated candidate, which is the exact
/// input the NSGA-II / Pareto reporting paths rank.
struct EngineSnapshot {
  std::string rng_state;    // util::Rng::serialize() of the search stream
  bool overlap = false;     // mode the snapshot was taken in (sanity-checked on resume)
  std::uint64_t generation = 0;
  /// Genomes submitted for evaluation so far — the budget spent.  Equals
  /// models_evaluated in sequential mode; in overlapped mode it additionally
  /// counts the `pending` batches still in flight.
  std::uint64_t submitted = 0;
  std::vector<Candidate> population;
  std::vector<Candidate> history;
  /// Overlapped mode: in-flight offspring batches in submission order.
  /// Resume re-dispatches them before breeding anything new.
  std::vector<std::vector<Genome>> pending;
  // RunStats at the boundary (wall_seconds excluded: it restarts on resume
  // and is not part of the printed record).
  std::uint64_t models_evaluated = 0;
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t overlapped_batches = 0;
  double total_eval_seconds = 0.0;
  // Dedup-cache tallies (entries are reconstructed from history + pending).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Snapshot handed to the progress observer at each generation boundary.
/// The vectors are borrowed from the running engine and only valid for the
/// duration of the callback.
struct GenerationProgress {
  std::size_t generation = 0;  // 0 = the scored initial population
  std::size_t models_evaluated = 0;
  std::size_t duplicates_skipped = 0;
  const std::vector<Candidate>* population = nullptr;
  const std::vector<Candidate>* history = nullptr;
};

class EvolutionEngine {
 public:
  /// `evaluate` is the worker dispatch: genome -> measured result.  It is
  /// called from pool threads and must be thread-safe.
  using Evaluator = std::function<EvalResult(const Genome&)>;
  /// Whole-generation dispatch: genomes -> one outcome slot per genome, in
  /// input order.  Called with the pool at its disposal; the Master wires
  /// core::Worker::evaluate_batch in here so remote backends amortize one
  /// network round-trip over the whole chunk.  In overlapped mode it runs on
  /// dispatcher threads — up to max_inflight_batches calls concurrently — so
  /// it must be thread-safe.  May throw for batch-wide failures; per-item
  /// failures go in error slots.
  using BatchEvaluator =
      std::function<std::vector<EvalOutcome>(const std::vector<Genome>&, util::ThreadPool&)>;
  /// Scalar fitness, bigger = fitter (see FitnessRegistry).
  using Fitness = std::function<double(const EvalResult&)>;

  /// Per-genome evaluator: wrapped into a BatchEvaluator that fans items
  /// across the pool, preserving the pre-batching exception behavior (the
  /// first item failure, in index order, propagates out of run()).
  EvolutionEngine(SearchSpace space, EvolutionConfig config, Evaluator evaluate, Fitness fitness);
  EvolutionEngine(SearchSpace space, EvolutionConfig config, BatchEvaluator evaluate,
                  Fitness fitness);

  /// Run the full search. Deterministic in `rng` for a serial pool (1 thread);
  /// the overlapped mode is deterministic for any pool width because batches
  /// fold in submission order at fixed points.
  EvolutionResult run(util::Rng& rng, util::ThreadPool& pool);

  /// Continue a search from a checkpoint: restores the RNG stream (the
  /// seed `rng` was constructed with is irrelevant), dedup cache, stats,
  /// population, and — in overlapped mode — re-dispatches the in-flight
  /// batches, then runs to completion.  Contract: with a deterministic
  /// evaluator, resume produces a final record bit-identical to the
  /// uninterrupted run the snapshot was taken from.  Throws
  /// std::invalid_argument for snapshots inconsistent with this engine's
  /// config (mode mismatch, empty population).
  EvolutionResult resume(const EngineSnapshot& snapshot, util::Rng& rng, util::ThreadPool& pool);

  /// Checkpoint hook, invoked on the fold thread at every generation
  /// boundary the engine can be resumed from (after the progress observer).
  /// The snapshot is self-contained — the sink may persist it from another
  /// thread.  Like the observer, the sink consumes no engine RNG, so
  /// checkpointing never perturbs the trajectory.
  using CheckpointSink = std::function<void(const EngineSnapshot&)>;
  void set_checkpoint_sink(CheckpointSink sink) { checkpoint_ = std::move(sink); }

  /// Generation-boundary hook (the search service's progress stream and
  /// cancellation point).  Called on the run() thread after the initial
  /// population is scored (generation 0) and after every subsequent fold.
  /// Returning false stops the search at this boundary: batches already in
  /// flight (overlapped mode) still fold into the record, but nothing new is
  /// bred or dispatched, and run() finalizes the partial result.  While the
  /// observer returns true the trajectory is bit-identical to running
  /// without one — the hook consumes no RNG and mutates nothing.
  using ProgressObserver = std::function<bool(const GenerationProgress&)>;
  void set_progress_observer(ProgressObserver observer) { observer_ = std::move(observer); }

  const EvalCache& cache() const { return cache_; }

 private:
  /// One generation-sized chunk through the batch evaluator: candidates in
  /// input order, results cached, stats updated.  The first failed slot (in
  /// index order) throws std::runtime_error with the slot's error message.
  std::vector<Candidate> evaluate_generation(const std::vector<Genome>& genomes,
                                             util::ThreadPool& pool);
  /// Outcome slots -> scored candidates (shared tail of the sequential and
  /// overlapped folds): throws on the first failed slot, stores results in
  /// the cache, updates stats.
  std::vector<Candidate> fold_outcomes(const std::vector<Genome>& genomes,
                                       std::vector<EvalOutcome> outcomes)
      ECAD_EXCLUDES(stats_mutex_);
  /// Unique evaluations performed so far (the run loops' budget check; the
  /// stats lock makes the read sound even while overlapped batches fold).
  std::size_t models_evaluated() const ECAD_EXCLUDES(stats_mutex_);
  /// Invoke the observer (if any) for one generation boundary; true = keep
  /// searching.  No observer always means keep searching.
  bool notify_progress(std::size_t generation, const std::vector<Candidate>& population,
                       const std::vector<Candidate>& history) ECAD_EXCLUDES(stats_mutex_);
  /// Breed up to `count` fresh offspring from scored parents (tournament +
  /// crossover + mutation + cache-reservation dedup).  Falls back to one
  /// random immigrant when the neighborhood is exhausted; empty means even
  /// the immigrant was a duplicate and the search should stop.
  std::vector<Genome> breed_offspring(const std::vector<Candidate>& population,
                                      std::size_t count, util::Rng& rng);
  /// Reverse-tournament replacement of `evaluated` into the population,
  /// appending every candidate to the history.
  void replace_into(std::vector<Candidate> evaluated, std::vector<Candidate>& population,
                    std::vector<Candidate>& history, util::Rng& rng);

  /// Capture engine state and hand it to the checkpoint sink (no-op without
  /// one).  Called only at resumable generation boundaries.
  void emit_checkpoint(const util::Rng& rng, std::size_t generation, std::size_t submitted,
                       const std::vector<Candidate>& population,
                       const std::vector<Candidate>& history,
                       std::vector<std::vector<Genome>> pending) ECAD_EXCLUDES(stats_mutex_);

  /// The shared loop bodies.  Fresh runs enter with `resumed == false`
  /// (generation 0 gets notified and checkpointed); resume() enters with the
  /// restored state and `resumed == true` (the snapshot's boundary was
  /// already notified in the previous life).
  EvolutionResult run_sequential(util::Rng& rng, util::ThreadPool& pool,
                                 std::vector<Candidate> population,
                                 std::vector<Candidate> history, std::size_t start_generation,
                                 bool resumed);
  EvolutionResult run_overlapped(util::Rng& rng, util::ThreadPool& pool,
                                 std::vector<Candidate> population, std::vector<Candidate> history,
                                 std::size_t start_generation,
                                 std::vector<std::vector<Genome>> pending,
                                 std::size_t submitted_start, bool resumed);
  EvolutionResult finalize(std::vector<Candidate> population, std::vector<Candidate> history,
                           double wall_seconds);

  std::size_t tournament_best(const std::vector<Candidate>& population, util::Rng& rng) const;
  std::size_t tournament_worst(const std::vector<Candidate>& population, util::Rng& rng) const;

  SearchSpace space_;
  EvolutionConfig config_;
  BatchEvaluator evaluate_;
  Fitness fitness_;
  ProgressObserver observer_;
  CheckpointSink checkpoint_;
  EvalCache cache_;
  mutable util::Mutex stats_mutex_;
  RunStats stats_ ECAD_GUARDED_BY(stats_mutex_);
};

/// Submit/poll dispatch for overlapped evolution: submit() ships one
/// offspring batch to the BatchEvaluator on a dedicated thread and returns a
/// ticket immediately; poll() answers without blocking; wait() collects a
/// ticket's outcomes (each ticket exactly once).  Destruction blocks until
/// every in-flight batch finishes, so borrowed genomes and the pool are
/// never referenced after the owner's frame unwinds.
class AsyncBatchDispatcher {
 public:
  using Ticket = std::uint64_t;

  /// `evaluate` and `pool` are borrowed and must outlive the dispatcher.
  AsyncBatchDispatcher(const EvolutionEngine::BatchEvaluator& evaluate, util::ThreadPool& pool)
      : evaluate_(evaluate), pool_(pool) {}

  /// Ships `genomes` for evaluation; never blocks on the evaluation itself.
  Ticket submit(std::vector<Genome> genomes) ECAD_EXCLUDES(mutex_);
  /// True once wait(ticket) would not block. False for unknown/collected
  /// tickets.
  bool poll(Ticket ticket) const ECAD_EXCLUDES(mutex_);
  /// Outcomes for `ticket`, blocking until they settle.  Rethrows the batch
  /// evaluator's exception for batch-wide failures.  Throws
  /// std::invalid_argument for unknown (or already collected) tickets.
  std::vector<EvalOutcome> wait(Ticket ticket) ECAD_EXCLUDES(mutex_);

  std::size_t in_flight() const ECAD_EXCLUDES(mutex_);

 private:
  const EvolutionEngine::BatchEvaluator& evaluate_;
  util::ThreadPool& pool_;
  mutable util::Mutex mutex_;
  Ticket next_ticket_ ECAD_GUARDED_BY(mutex_) = 1;
  std::map<Ticket, std::future<std::vector<EvalOutcome>>> futures_ ECAD_GUARDED_BY(mutex_);
};

}  // namespace ecad::evo
