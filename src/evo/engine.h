// Steady-state evolutionary engine (paper §III-A, based on Goldberg & Deb's
// steady-state model [16]): tournament parent selection, crossover+mutation,
// reverse-tournament replacement, no generational barrier.  Offspring are
// evaluated in parallel batches by the Master's thread pool and deduplicated
// through the EvalCache.
#pragma once

#include <functional>
#include <vector>

#include "evo/cache.h"
#include "evo/fitness.h"
#include "evo/genome.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ecad::evo {

struct EvolutionConfig {
  std::size_t population_size = 16;
  /// Total unique-candidate evaluation budget (including the initial
  /// population).
  std::size_t max_evaluations = 100;
  std::size_t tournament_size = 3;
  double crossover_probability = 0.6;
  /// Expected point mutations per offspring (at least one is applied).
  double mutation_strength = 1.5;
  /// Attempts to generate a not-yet-evaluated offspring before accepting a
  /// duplicate's cached result.
  std::size_t dedup_attempts = 12;
  /// Offspring evaluated concurrently per steady-state step (0 = pool size).
  std::size_t batch_size = 0;
};

struct Candidate {
  Genome genome;
  EvalResult result;
  double fitness = 0.0;
};

struct RunStats {
  std::size_t models_evaluated = 0;   // unique evaluations performed
  std::size_t duplicates_skipped = 0; // offspring served from the cache
  double total_eval_seconds = 0.0;    // summed worker time (Table III "Total")
  double avg_eval_seconds = 0.0;      // per-model mean (Table III "AVG")
  double wall_seconds = 0.0;          // end-to-end search wall clock
};

struct EvolutionResult {
  std::vector<Candidate> population;  // final population, best first
  std::vector<Candidate> history;     // every unique evaluated candidate
  Candidate best;
  RunStats stats;
};

class EvolutionEngine {
 public:
  /// `evaluate` is the worker dispatch: genome -> measured result.  It is
  /// called from pool threads and must be thread-safe.
  using Evaluator = std::function<EvalResult(const Genome&)>;
  /// Whole-generation dispatch: genomes -> one outcome slot per genome, in
  /// input order.  Called from the engine's driving thread with the pool at
  /// its disposal; the Master wires core::Worker::evaluate_batch in here so
  /// remote backends amortize one network round-trip over the whole chunk.
  /// May throw for batch-wide failures; per-item failures go in error slots.
  using BatchEvaluator =
      std::function<std::vector<EvalOutcome>(const std::vector<Genome>&, util::ThreadPool&)>;
  /// Scalar fitness, bigger = fitter (see FitnessRegistry).
  using Fitness = std::function<double(const EvalResult&)>;

  /// Per-genome evaluator: wrapped into a BatchEvaluator that fans items
  /// across the pool, preserving the pre-batching exception behavior (the
  /// first item failure, in index order, propagates out of run()).
  EvolutionEngine(SearchSpace space, EvolutionConfig config, Evaluator evaluate, Fitness fitness);
  EvolutionEngine(SearchSpace space, EvolutionConfig config, BatchEvaluator evaluate,
                  Fitness fitness);

  /// Run the full search. Deterministic in `rng` for a serial pool (1 thread).
  EvolutionResult run(util::Rng& rng, util::ThreadPool& pool);

  const EvalCache& cache() const { return cache_; }

 private:
  /// One generation-sized chunk through the batch evaluator: candidates in
  /// input order, results cached, stats updated.  The first failed slot (in
  /// index order) throws std::runtime_error with the slot's error message.
  std::vector<Candidate> evaluate_generation(const std::vector<Genome>& genomes,
                                             util::ThreadPool& pool);
  std::size_t tournament_best(const std::vector<Candidate>& population, util::Rng& rng) const;
  std::size_t tournament_worst(const std::vector<Candidate>& population, util::Rng& rng) const;

  SearchSpace space_;
  EvolutionConfig config_;
  BatchEvaluator evaluate_;
  Fitness fitness_;
  EvalCache cache_;
  std::mutex stats_mutex_;
  RunStats stats_;
};

}  // namespace ecad::evo
