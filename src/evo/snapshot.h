// Versioned binary codec for EngineSnapshot (see evo/engine.h).
//
// Same discipline as the net wire codecs: bounds-checked little-endian
// read/write pair, a golden fixture pinning the exact bytes
// (tests/evo/golden/engine_snapshot_v1.bin, regenerated with
// ECAD_REGEN_GOLDEN=1), and hard caps so a corrupt file cannot drive a giant
// allocation.  The encoding starts with the "ECSN" magic and
// util::kSnapshotFormatVersion; any change to the encoded bytes must bump
// that version (lint_wire_protocol.py pins it against README).
//
// Deserialization throws util::SnapshotError on truncated, corrupt, or
// version-mismatched input — loaders report and fall back, they never crash.
#pragma once

#include <cstdint>
#include <vector>

#include "evo/engine.h"
#include "util/snapshot_io.h"

namespace ecad::evo {

/// Magic prefix of every serialized EngineSnapshot ("ECSN", little-endian).
inline constexpr std::uint32_t kEngineSnapshotMagic = 0x4e534345u;

/// Genome / result / candidate codecs are exposed so other snapshot formats
/// (e.g. the core checkpoint file, which wraps an EngineSnapshot) can reuse
/// the exact same byte layout.
void write_genome(util::SnapshotWriter& writer, const Genome& genome);
Genome read_genome(util::SnapshotReader& reader);
void write_eval_result(util::SnapshotWriter& writer, const EvalResult& result);
EvalResult read_eval_result(util::SnapshotReader& reader);
void write_candidate(util::SnapshotWriter& writer, const Candidate& candidate);
Candidate read_candidate(util::SnapshotReader& reader);

/// EngineSnapshot -> bytes (magic + version + payload).
std::vector<std::uint8_t> serialize_engine_snapshot(const EngineSnapshot& snapshot);

/// Bytes -> EngineSnapshot.  Throws util::SnapshotError on any malformed
/// input, including trailing garbage.
EngineSnapshot deserialize_engine_snapshot(const std::vector<std::uint8_t>& bytes);

/// Embedded form without the end-of-buffer check, for snapshots nested
/// inside larger files (core checkpoint files append their own fields).
void write_engine_snapshot(util::SnapshotWriter& writer, const EngineSnapshot& snapshot);
EngineSnapshot read_engine_snapshot(util::SnapshotReader& reader);

}  // namespace ecad::evo
