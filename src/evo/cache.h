// Candidate evaluation cache.
//
// Paper Table III note: "potential NNA/HW candidates are first analyzed for
// similarities to previous evaluations and duplicates are not evaluated
// twice."  Keys are canonical genome strings; thread-safe because the master
// evaluates offspring batches in parallel.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "evo/fitness.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::evo {

class EvalCache {
 public:
  /// Returns the cached result (and counts a hit), or nullopt (a miss).
  std::optional<EvalResult> lookup(const std::string& key) ECAD_EXCLUDES(mutex_);

  /// Insert/overwrite a result.
  void store(const std::string& key, const EvalResult& result) ECAD_EXCLUDES(mutex_);

  /// True if present, without counting a hit against this instance's
  /// hits()/misses() tallies (the process-wide evo.cache_* metrics do count
  /// it: the breeding loops probe with contains, so it is real traffic).
  bool contains(const std::string& key) const ECAD_EXCLUDES(mutex_);

  std::size_t size() const ECAD_EXCLUDES(mutex_);
  std::size_t hits() const ECAD_EXCLUDES(mutex_);
  std::size_t misses() const ECAD_EXCLUDES(mutex_);

  /// Checkpoint restore: overwrite the hit/miss tallies so a resumed search
  /// reports the same dedup stats an uninterrupted run would.  Entries are
  /// replayed separately via store().
  void restore_stats(std::size_t hits, std::size_t misses) ECAD_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, EvalResult> entries_ ECAD_GUARDED_BY(mutex_);
  std::size_t hits_ ECAD_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ ECAD_GUARDED_BY(mutex_) = 0;
};

}  // namespace ecad::evo
