// Candidate evaluation cache.
//
// Paper Table III note: "potential NNA/HW candidates are first analyzed for
// similarities to previous evaluations and duplicates are not evaluated
// twice."  Keys are canonical genome strings; thread-safe because the master
// evaluates offspring batches in parallel.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "evo/fitness.h"

namespace ecad::evo {

class EvalCache {
 public:
  /// Returns the cached result (and counts a hit), or nullopt (a miss).
  std::optional<EvalResult> lookup(const std::string& key);

  /// Insert/overwrite a result.
  void store(const std::string& key, const EvalResult& result);

  /// True if present, without counting a hit.
  bool contains(const std::string& key) const;

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, EvalResult> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ecad::evo
