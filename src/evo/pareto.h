// Pareto-frontier extraction over evaluation results.
//
// Paper §III-B: "the Pareto frontiers that result after parsing the
// evolutionary design space define what the optimal solution is" — Table IV
// reports two frontier points per dataset.
#pragma once

#include <cstddef>
#include <vector>

#include "evo/fitness.h"

namespace ecad::evo {

/// True when `a` dominates `b`: >= on every metric (respecting direction)
/// and strictly better on at least one.  Latency/power/parameters minimize;
/// everything else maximizes.
bool dominates(const EvalResult& a, const EvalResult& b, const std::vector<Metric>& metrics);

/// Indices of the non-dominated subset, in input order.
std::vector<std::size_t> pareto_front(const std::vector<EvalResult>& results,
                                      const std::vector<Metric>& metrics);

/// Non-dominated sort: front 0 is the Pareto set, front 1 is the Pareto set
/// after removing front 0, and so on.  Returns per-candidate front index.
std::vector<std::size_t> nondominated_rank(const std::vector<EvalResult>& results,
                                           const std::vector<Metric>& metrics);

}  // namespace ecad::evo
