// Co-design genome: NNA traits ⊕ hardware traits.
//
// Paper §III-A: "The parameters we considered during our searches included
// number of layers, layer size, activation function, and bias" — plus the
// §III-C grid variables (rows, columns, interleaving, vector width) for the
// hardware half.  GPU-only searches freeze the hardware half ("GPUs
// accelerate each solution in the same way", §IV-B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hwmodel/grid.h"
#include "nn/activation.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace ecad::evo {

/// The evolvable NNA half.
struct NnaTraits {
  std::vector<std::size_t> hidden;  // hidden layer widths
  nn::Activation activation = nn::Activation::ReLU;
  bool use_bias = true;

  /// Expand to a concrete MLP spec for a dataset schema.
  nn::MlpSpec to_mlp_spec(std::size_t input_dim, std::size_t output_dim) const;

  friend bool operator==(const NnaTraits& a, const NnaTraits& b) {
    return a.hidden == b.hidden && a.activation == b.activation && a.use_bias == b.use_bias;
  }
  friend bool operator!=(const NnaTraits& a, const NnaTraits& b) { return !(a == b); }
};

struct Genome {
  NnaTraits nna;
  hw::GridConfig grid;

  /// Canonical key used for caching/dedup (paper Table III note: duplicates
  /// "are not evaluated twice").
  std::string key() const;

  friend bool operator==(const Genome& a, const Genome& b) {
    return a.nna == b.nna && a.grid == b.grid;
  }
  friend bool operator!=(const Genome& a, const Genome& b) { return !(a == b); }
};

/// Bounds of the joint search space.
struct SearchSpace {
  std::size_t min_hidden_layers = 1;
  std::size_t max_hidden_layers = 4;
  std::vector<std::size_t> width_choices = {4, 8, 16, 32, 64, 128, 256, 512};
  std::vector<nn::Activation> activations = {nn::Activation::ReLU, nn::Activation::Sigmoid,
                                             nn::Activation::Tanh, nn::Activation::LeakyReLU,
                                             nn::Activation::Elu};
  bool allow_no_bias = true;
  hw::GridBounds grid;
  /// When false the hardware half is never mutated (GPU / accuracy-only runs).
  bool search_hardware = true;

  /// Throws std::invalid_argument for empty choice lists / inverted bounds.
  void validate() const;
};

/// Uniformly random genome inside the space.
Genome random_genome(const SearchSpace& space, util::Rng& rng);

/// Apply `count` random point mutations (>=1).  Mutations always stay within
/// the space's bounds.
Genome mutate(const Genome& genome, const SearchSpace& space, util::Rng& rng,
              std::size_t count = 1);

/// Per-trait uniform crossover; hidden layers are spliced at random cut
/// points so offspring depth can differ from both parents.
Genome crossover(const Genome& a, const Genome& b, const SearchSpace& space, util::Rng& rng);

}  // namespace ecad::evo
