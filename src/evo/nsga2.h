// NSGA-II style multi-objective selection: non-dominated sorting with
// crowding-distance tie-breaks.
//
// The paper extracts Pareto frontiers from scalarized steady-state searches
// (§III-B, Table IV); this module implements the standard generational
// multi-objective alternative so users can search the frontier directly
// rather than rely on a weighted scalarization.
#pragma once

#include "evo/engine.h"
#include "evo/pareto.h"

namespace ecad::evo {

/// Crowding distance per candidate within one front (Deb et al. 2002):
/// boundary points get +inf, interior points the normalized cuboid size.
std::vector<double> crowding_distance(const std::vector<EvalResult>& results,
                                      const std::vector<std::size_t>& front_members,
                                      const std::vector<Metric>& metrics);

/// Select `count` candidates by (rank, -crowding) — the NSGA-II environmental
/// selection.  Returns indices into `candidates`, best first.
std::vector<std::size_t> nsga2_select(const std::vector<Candidate>& candidates,
                                      const std::vector<Metric>& metrics, std::size_t count);

struct Nsga2Config {
  std::size_t population_size = 16;
  std::size_t generations = 8;
  double crossover_probability = 0.8;
  double mutation_strength = 1.5;
};

struct Nsga2Result {
  std::vector<Candidate> front;    // final non-dominated set, accuracy-sorted
  std::vector<Candidate> history;  // all unique evaluated candidates
  RunStats stats;
};

/// Generational NSGA-II over the co-design space.  Objectives are metrics to
/// *optimize jointly* (orientation follows pareto.h: latency/power/parameters
/// minimize, the rest maximize).
Nsga2Result nsga2_search(const SearchSpace& space, const Nsga2Config& config,
                         const std::vector<Metric>& metrics,
                         const EvolutionEngine::Evaluator& evaluate, util::Rng& rng,
                         util::ThreadPool& pool);

}  // namespace ecad::evo
