// Alternative search strategies: random search and stochastic hill climbing.
//
// The paper's related work (§II) surveys NAS strategies — "random search,
// evolutionary algorithms, Reinforcement Learning, Bayesian optimization" —
// and cites evidence that EAs beat random search [4].  These baselines share
// the engine's Evaluator/Fitness contract so the ablation bench can compare
// them on identical budgets (bench/ablation_search_strategies).
#pragma once

#include "evo/engine.h"

namespace ecad::evo {

/// Uniform random sampling (with dedup) under the same evaluation budget.
EvolutionResult random_search(const SearchSpace& space, std::size_t max_evaluations,
                              const EvolutionEngine::Evaluator& evaluate,
                              const EvolutionEngine::Fitness& fitness, util::Rng& rng,
                              util::ThreadPool& pool);

struct HillClimbConfig {
  std::size_t max_evaluations = 100;
  /// Neighbours proposed per step; the best replaces the incumbent if it
  /// improves.
  std::size_t neighbours_per_step = 4;
  /// Point mutations per neighbour.
  std::size_t mutation_count = 1;
  /// Consecutive non-improving steps before a random restart.
  std::size_t restart_patience = 5;
};

/// Stochastic hill climbing with random restarts.
EvolutionResult hill_climb(const SearchSpace& space, const HillClimbConfig& config,
                           const EvolutionEngine::Evaluator& evaluate,
                           const EvolutionEngine::Fitness& fitness, util::Rng& rng,
                           util::ThreadPool& pool);

}  // namespace ecad::evo
