#include "evo/strategies.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace ecad::evo {

namespace {

Candidate evaluate_one(const Genome& genome, const EvolutionEngine::Evaluator& evaluate,
                       const EvolutionEngine::Fitness& fitness) {
  Candidate candidate;
  candidate.genome = genome;
  util::Stopwatch watch;
  candidate.result = evaluate(genome);
  candidate.result.eval_seconds = watch.elapsed_seconds();
  candidate.fitness = fitness(candidate.result);
  return candidate;
}

void finalize(EvolutionResult& out, const util::Stopwatch& wall) {
  out.stats.models_evaluated = out.history.size();
  for (const Candidate& candidate : out.history) {
    out.stats.total_eval_seconds += candidate.result.eval_seconds;
  }
  out.stats.avg_eval_seconds =
      out.history.empty() ? 0.0
                          : out.stats.total_eval_seconds /
                                static_cast<double>(out.history.size());
  out.stats.wall_seconds = wall.elapsed_seconds();
  out.best = out.history.front();
  for (const Candidate& candidate : out.history) {
    if (candidate.fitness > out.best.fitness) out.best = candidate;
  }
  out.population = out.history;
  std::sort(out.population.begin(), out.population.end(),
            [](const Candidate& a, const Candidate& b) { return a.fitness > b.fitness; });
  if (out.population.size() > 16) out.population.resize(16);
}

}  // namespace

EvolutionResult random_search(const SearchSpace& space, std::size_t max_evaluations,
                              const EvolutionEngine::Evaluator& evaluate,
                              const EvolutionEngine::Fitness& fitness, util::Rng& rng,
                              util::ThreadPool& pool) {
  space.validate();
  util::Stopwatch wall;
  EvolutionResult out;
  EvalCache cache;

  while (out.history.size() < max_evaluations) {
    // Draw a batch of unseen genomes.
    std::vector<Genome> batch;
    const std::size_t want =
        std::min(std::max<std::size_t>(1, pool.size()), max_evaluations - out.history.size());
    std::size_t attempts = 0;
    while (batch.size() < want && attempts < want * 50) {
      Genome genome = random_genome(space, rng);
      ++attempts;
      if (cache.contains(genome.key())) {
        ++out.stats.duplicates_skipped;
        continue;
      }
      cache.store(genome.key(), EvalResult{});
      batch.push_back(std::move(genome));
    }
    if (batch.empty()) break;  // space exhausted

    std::vector<Candidate> evaluated(batch.size());
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      evaluated[i] = evaluate_one(batch[i], evaluate, fitness);
    });
    for (Candidate& candidate : evaluated) out.history.push_back(std::move(candidate));
  }
  finalize(out, wall);
  return out;
}

EvolutionResult hill_climb(const SearchSpace& space, const HillClimbConfig& config,
                           const EvolutionEngine::Evaluator& evaluate,
                           const EvolutionEngine::Fitness& fitness, util::Rng& rng,
                           util::ThreadPool& pool) {
  space.validate();
  if (config.neighbours_per_step == 0) {
    throw std::invalid_argument("hill_climb: neighbours_per_step must be > 0");
  }
  util::Stopwatch wall;
  EvolutionResult out;
  EvalCache cache;

  auto fresh_random = [&]() -> std::optional<Genome> {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Genome genome = random_genome(space, rng);
      if (!cache.contains(genome.key())) return genome;
    }
    return std::nullopt;
  };

  std::optional<Genome> seed = fresh_random();
  if (!seed) return out;
  cache.store(seed->key(), EvalResult{});
  Candidate incumbent = evaluate_one(*seed, evaluate, fitness);
  out.history.push_back(incumbent);

  std::size_t stale = 0;
  while (out.history.size() < config.max_evaluations) {
    // Propose unseen neighbours of the incumbent.
    std::vector<Genome> neighbours;
    std::size_t attempts = 0;
    const std::size_t want = std::min(config.neighbours_per_step,
                                      config.max_evaluations - out.history.size());
    while (neighbours.size() < want && attempts < want * 30) {
      Genome neighbour = mutate(incumbent.genome, space, rng, config.mutation_count);
      ++attempts;
      if (cache.contains(neighbour.key())) continue;
      cache.store(neighbour.key(), EvalResult{});
      neighbours.push_back(std::move(neighbour));
    }
    if (neighbours.empty()) {
      // Local neighbourhood exhausted: restart.
      std::optional<Genome> restart = fresh_random();
      if (!restart) break;
      cache.store(restart->key(), EvalResult{});
      incumbent = evaluate_one(*restart, evaluate, fitness);
      out.history.push_back(incumbent);
      stale = 0;
      continue;
    }

    std::vector<Candidate> evaluated(neighbours.size());
    pool.parallel_for(neighbours.size(), [&](std::size_t i) {
      evaluated[i] = evaluate_one(neighbours[i], evaluate, fitness);
    });

    bool improved = false;
    for (Candidate& candidate : evaluated) {
      if (candidate.fitness > incumbent.fitness) {
        incumbent = candidate;
        improved = true;
      }
      out.history.push_back(std::move(candidate));
    }
    stale = improved ? 0 : stale + 1;
    if (stale >= config.restart_patience && out.history.size() < config.max_evaluations) {
      if (std::optional<Genome> restart = fresh_random()) {
        cache.store(restart->key(), EvalResult{});
        incumbent = evaluate_one(*restart, evaluate, fitness);
        out.history.push_back(incumbent);
        stale = 0;
      }
    }
  }
  finalize(out, wall);
  return out;
}

}  // namespace ecad::evo
