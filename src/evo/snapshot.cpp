#include "evo/snapshot.h"

#include <stdexcept>
#include <string>

#include "nn/activation.h"

namespace ecad::evo {

using util::SnapshotError;
using util::SnapshotReader;
using util::SnapshotWriter;

namespace {

// Field order mirrors the net wire codecs (activation travels by canonical
// name, grid dimensions as u64) so the two formats stay reviewable side by
// side, but the bytes are independent: snapshots carry their own version.

nn::Activation activation_from_name_checked(const std::string& name) {
  try {
    return nn::activation_from_name(name);
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(std::string("snapshot: ") + e.what());
  }
}

void write_candidate_vector(SnapshotWriter& writer, const std::vector<Candidate>& candidates) {
  if (candidates.size() > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: candidate list exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(candidates.size()));
  for (const Candidate& candidate : candidates) write_candidate(writer, candidate);
}

std::vector<Candidate> read_candidate_vector(SnapshotReader& reader) {
  const std::uint32_t count = reader.get_u32();
  if (count > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: candidate list length exceeds the limit");
  }
  std::vector<Candidate> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(read_candidate(reader));
  return out;
}

}  // namespace

void write_genome(SnapshotWriter& writer, const Genome& genome) {
  writer.put_size_vector(genome.nna.hidden);
  writer.put_string(std::string(nn::to_string(genome.nna.activation)));
  writer.put_bool(genome.nna.use_bias);
  writer.put_u64(genome.grid.rows);
  writer.put_u64(genome.grid.cols);
  writer.put_u64(genome.grid.vec_width);
  writer.put_u64(genome.grid.interleave_m);
  writer.put_u64(genome.grid.interleave_n);
}

Genome read_genome(SnapshotReader& reader) {
  Genome genome;
  genome.nna.hidden = reader.get_size_vector();
  genome.nna.activation = activation_from_name_checked(reader.get_string());
  genome.nna.use_bias = reader.get_bool();
  genome.grid.rows = static_cast<std::size_t>(reader.get_u64());
  genome.grid.cols = static_cast<std::size_t>(reader.get_u64());
  genome.grid.vec_width = static_cast<std::size_t>(reader.get_u64());
  genome.grid.interleave_m = static_cast<std::size_t>(reader.get_u64());
  genome.grid.interleave_n = static_cast<std::size_t>(reader.get_u64());
  return genome;
}

void write_eval_result(SnapshotWriter& writer, const EvalResult& result) {
  writer.put_f64(result.accuracy);
  writer.put_f64(result.outputs_per_second);
  writer.put_f64(result.latency_seconds);
  writer.put_f64(result.potential_gflops);
  writer.put_f64(result.effective_gflops);
  writer.put_f64(result.hw_efficiency);
  writer.put_f64(result.power_watts);
  writer.put_f64(result.fmax_mhz);
  writer.put_f64(result.parameters);
  writer.put_f64(result.flops_per_sample);
  writer.put_f64(result.eval_seconds);
  writer.put_bool(result.feasible);
}

EvalResult read_eval_result(SnapshotReader& reader) {
  EvalResult result;
  result.accuracy = reader.get_f64();
  result.outputs_per_second = reader.get_f64();
  result.latency_seconds = reader.get_f64();
  result.potential_gflops = reader.get_f64();
  result.effective_gflops = reader.get_f64();
  result.hw_efficiency = reader.get_f64();
  result.power_watts = reader.get_f64();
  result.fmax_mhz = reader.get_f64();
  result.parameters = reader.get_f64();
  result.flops_per_sample = reader.get_f64();
  result.eval_seconds = reader.get_f64();
  result.feasible = reader.get_bool();
  return result;
}

void write_candidate(SnapshotWriter& writer, const Candidate& candidate) {
  write_genome(writer, candidate.genome);
  write_eval_result(writer, candidate.result);
  writer.put_f64(candidate.fitness);
}

Candidate read_candidate(SnapshotReader& reader) {
  Candidate candidate;
  candidate.genome = read_genome(reader);
  candidate.result = read_eval_result(reader);
  candidate.fitness = reader.get_f64();
  return candidate;
}

void write_engine_snapshot(SnapshotWriter& writer, const EngineSnapshot& snapshot) {
  writer.put_u32(kEngineSnapshotMagic);
  writer.put_u32(util::kSnapshotFormatVersion);
  writer.put_string(snapshot.rng_state);
  writer.put_bool(snapshot.overlap);
  writer.put_u64(snapshot.generation);
  writer.put_u64(snapshot.submitted);
  write_candidate_vector(writer, snapshot.population);
  write_candidate_vector(writer, snapshot.history);
  if (snapshot.pending.size() > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: pending batch list exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(snapshot.pending.size()));
  for (const std::vector<Genome>& batch : snapshot.pending) {
    if (batch.size() > util::kMaxSnapshotVectorElems) {
      throw SnapshotError("snapshot: pending batch exceeds the limit");
    }
    writer.put_u32(static_cast<std::uint32_t>(batch.size()));
    for (const Genome& genome : batch) write_genome(writer, genome);
  }
  writer.put_u64(snapshot.models_evaluated);
  writer.put_u64(snapshot.duplicates_skipped);
  writer.put_u64(snapshot.overlapped_batches);
  writer.put_f64(snapshot.total_eval_seconds);
  writer.put_u64(snapshot.cache_hits);
  writer.put_u64(snapshot.cache_misses);
}

EngineSnapshot read_engine_snapshot(SnapshotReader& reader) {
  const std::uint32_t magic = reader.get_u32();
  if (magic != kEngineSnapshotMagic) {
    throw SnapshotError("snapshot: bad magic (not an engine snapshot)");
  }
  const std::uint32_t version = reader.get_u32();
  if (version != util::kSnapshotFormatVersion) {
    throw SnapshotError("snapshot: format version " + std::to_string(version) +
                        " is not supported (expected " +
                        std::to_string(util::kSnapshotFormatVersion) + ")");
  }
  EngineSnapshot snapshot;
  snapshot.rng_state = reader.get_string();
  snapshot.overlap = reader.get_bool();
  snapshot.generation = reader.get_u64();
  snapshot.submitted = reader.get_u64();
  snapshot.population = read_candidate_vector(reader);
  snapshot.history = read_candidate_vector(reader);
  const std::uint32_t batch_count = reader.get_u32();
  if (batch_count > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: pending batch list length exceeds the limit");
  }
  snapshot.pending.reserve(batch_count);
  for (std::uint32_t i = 0; i < batch_count; ++i) {
    const std::uint32_t batch_size = reader.get_u32();
    if (batch_size > util::kMaxSnapshotVectorElems) {
      throw SnapshotError("snapshot: pending batch length exceeds the limit");
    }
    std::vector<Genome> batch;
    batch.reserve(batch_size);
    for (std::uint32_t j = 0; j < batch_size; ++j) batch.push_back(read_genome(reader));
    snapshot.pending.push_back(std::move(batch));
  }
  snapshot.models_evaluated = reader.get_u64();
  snapshot.duplicates_skipped = reader.get_u64();
  snapshot.overlapped_batches = reader.get_u64();
  snapshot.total_eval_seconds = reader.get_f64();
  snapshot.cache_hits = reader.get_u64();
  snapshot.cache_misses = reader.get_u64();
  return snapshot;
}

std::vector<std::uint8_t> serialize_engine_snapshot(const EngineSnapshot& snapshot) {
  SnapshotWriter writer;
  write_engine_snapshot(writer, snapshot);
  return writer.take();
}

EngineSnapshot deserialize_engine_snapshot(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader reader(bytes);
  EngineSnapshot snapshot = read_engine_snapshot(reader);
  reader.expect_end();
  return snapshot;
}

}  // namespace ecad::evo
