#include "evo/fitness.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/string_util.h"

namespace ecad::evo {

std::string_view to_string(Metric metric) {
  switch (metric) {
    case Metric::Accuracy: return "accuracy";
    case Metric::Throughput: return "throughput";
    case Metric::Latency: return "latency";
    case Metric::Efficiency: return "efficiency";
    case Metric::EffectiveGflops: return "effective_gflops";
    case Metric::Power: return "power";
    case Metric::Parameters: return "parameters";
  }
  return "?";
}

Metric metric_from_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "accuracy") return Metric::Accuracy;
  if (lower == "throughput" || lower == "outputs_per_second") return Metric::Throughput;
  if (lower == "latency") return Metric::Latency;
  if (lower == "efficiency") return Metric::Efficiency;
  if (lower == "effective_gflops") return Metric::EffectiveGflops;
  if (lower == "power") return Metric::Power;
  if (lower == "parameters" || lower == "params") return Metric::Parameters;
  throw std::invalid_argument("metric_from_name: unknown metric '" + std::string(name) + "'");
}

double metric_value(const EvalResult& result, Metric metric) {
  switch (metric) {
    case Metric::Accuracy: return result.accuracy;
    case Metric::Throughput: return result.outputs_per_second;
    case Metric::Latency: return result.latency_seconds;
    case Metric::Efficiency: return result.hw_efficiency;
    case Metric::EffectiveGflops: return result.effective_gflops;
    case Metric::Power: return result.power_watts;
    case Metric::Parameters: return result.parameters;
  }
  return 0.0;
}

double scalarize(const EvalResult& result, const std::vector<Objective>& objectives) {
  if (!result.feasible) return -std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const Objective& objective : objectives) {
    double value = metric_value(result, objective.metric);
    if (objective.log_scale) value = std::log10(std::max(value, 1e-12));
    total += objective.weight * (objective.maximize ? value : -value);
  }
  return total;
}

void FitnessRegistry::register_fn(std::string name, Fn fn) {
  fns_[std::move(name)] = std::move(fn);
}

bool FitnessRegistry::has(std::string_view name) const { return fns_.find(name) != fns_.end(); }

const FitnessRegistry::Fn& FitnessRegistry::get(std::string_view name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    throw std::out_of_range("FitnessRegistry: unknown fitness '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> FitnessRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, _] : fns_) out.push_back(name);
  return out;
}

FitnessRegistry FitnessRegistry::with_builtins() {
  FitnessRegistry registry;
  registry.register_fn("accuracy", [](const EvalResult& r) {
    return scalarize(r, {{Metric::Accuracy, 1.0, true, false}});
  });
  registry.register_fn("throughput", [](const EvalResult& r) {
    return scalarize(r, {{Metric::Throughput, 1.0, true, true}});
  });
  // The paper's joint objective: accuracy dominates, throughput breaks ties
  // across iso-accuracy designs (log-scaled so 10x throughput ~ 0.05 acc).
  registry.register_fn("accuracy_x_throughput", [](const EvalResult& r) {
    return scalarize(r, {{Metric::Accuracy, 1.0, true, false},
                         {Metric::Throughput, 0.05, true, true}});
  });
  registry.register_fn("efficiency", [](const EvalResult& r) {
    return scalarize(r, {{Metric::Efficiency, 1.0, true, false}});
  });
  registry.register_fn("low_latency", [](const EvalResult& r) {
    return scalarize(r, {{Metric::Latency, 1.0, false, true}});
  });
  return registry;
}

}  // namespace ecad::evo
