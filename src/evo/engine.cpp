#include "evo/engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace ecad::evo {

namespace {

// Legacy per-genome evaluators become one-item-per-task batch evaluators.
// No try/catch: parallel_for already rethrows the first exception in index
// order, which is exactly the pre-batching contract.
EvolutionEngine::BatchEvaluator wrap_per_genome(EvolutionEngine::Evaluator evaluate) {
  return [evaluate = std::move(evaluate)](const std::vector<Genome>& genomes,
                                          util::ThreadPool& pool) {
    std::vector<EvalOutcome> outcomes(genomes.size());
    pool.parallel_for(genomes.size(), [&](std::size_t i) {
      util::Stopwatch watch;
      outcomes[i].result = evaluate(genomes[i]);
      outcomes[i].result.eval_seconds = watch.elapsed_seconds();
      outcomes[i].ok = true;
    });
    return outcomes;
  };
}

}  // namespace

EvolutionEngine::EvolutionEngine(SearchSpace space, EvolutionConfig config, Evaluator evaluate,
                                 Fitness fitness)
    : EvolutionEngine(std::move(space), config, wrap_per_genome(std::move(evaluate)),
                      std::move(fitness)) {}

EvolutionEngine::EvolutionEngine(SearchSpace space, EvolutionConfig config,
                                 BatchEvaluator evaluate, Fitness fitness)
    : space_(std::move(space)),
      config_(config),
      evaluate_(std::move(evaluate)),
      fitness_(std::move(fitness)) {
  space_.validate();
  if (config_.population_size < 2) {
    throw std::invalid_argument("EvolutionEngine: population_size must be >= 2");
  }
  if (config_.max_evaluations < config_.population_size) {
    throw std::invalid_argument("EvolutionEngine: budget smaller than the population");
  }
  if (config_.tournament_size == 0) {
    throw std::invalid_argument("EvolutionEngine: tournament_size must be >= 1");
  }
}

std::vector<Candidate> EvolutionEngine::evaluate_generation(const std::vector<Genome>& genomes,
                                                            util::ThreadPool& pool) {
  std::vector<EvalOutcome> outcomes = evaluate_(genomes, pool);
  if (outcomes.size() != genomes.size()) {
    throw std::runtime_error("EvolutionEngine: batch evaluator returned " +
                             std::to_string(outcomes.size()) + " outcomes for " +
                             std::to_string(genomes.size()) + " genomes");
  }
  for (const EvalOutcome& outcome : outcomes) {
    if (!outcome.ok) throw std::runtime_error(outcome.error);
  }
  std::vector<Candidate> candidates(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    Candidate& candidate = candidates[i];
    candidate.genome = genomes[i];
    candidate.result = outcomes[i].result;
    candidate.fitness = fitness_(candidate.result);
    cache_.store(candidate.genome.key(), candidate.result);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.models_evaluated += genomes.size();
    for (const Candidate& candidate : candidates) {
      stats_.total_eval_seconds += candidate.result.eval_seconds;
    }
  }
  return candidates;
}

std::size_t EvolutionEngine::tournament_best(const std::vector<Candidate>& population,
                                             util::Rng& rng) const {
  std::size_t best = rng.next_index(population.size());
  for (std::size_t round = 1; round < config_.tournament_size; ++round) {
    const std::size_t challenger = rng.next_index(population.size());
    if (population[challenger].fitness > population[best].fitness) best = challenger;
  }
  return best;
}

std::size_t EvolutionEngine::tournament_worst(const std::vector<Candidate>& population,
                                              util::Rng& rng) const {
  std::size_t worst = rng.next_index(population.size());
  for (std::size_t round = 1; round < config_.tournament_size; ++round) {
    const std::size_t challenger = rng.next_index(population.size());
    if (population[challenger].fitness < population[worst].fitness) worst = challenger;
  }
  return worst;
}

EvolutionResult EvolutionEngine::run(util::Rng& rng, util::ThreadPool& pool) {
  util::Stopwatch wall;
  EvolutionResult out;

  // --- Initial population: unique random genomes, evaluated in parallel. ---
  std::vector<Genome> seeds;
  seeds.reserve(config_.population_size);
  std::size_t attempts = 0;
  while (seeds.size() < config_.population_size &&
         attempts < config_.population_size * 50) {
    Genome genome = random_genome(space_, rng);
    ++attempts;
    const std::string key = genome.key();
    const bool duplicate =
        std::any_of(seeds.begin(), seeds.end(),
                    [&key](const Genome& g) { return g.key() == key; });
    if (!duplicate) seeds.push_back(std::move(genome));
  }

  std::vector<Candidate> population = evaluate_generation(seeds, pool);
  out.history = population;

  // --- Steady-state loop: batched offspring generation + evaluation. ---
  const std::size_t batch =
      config_.batch_size == 0 ? std::max<std::size_t>(1, pool.size()) : config_.batch_size;

  while (stats_.models_evaluated < config_.max_evaluations) {
    const std::size_t remaining = config_.max_evaluations - stats_.models_evaluated;
    const std::size_t this_batch = std::min(batch, remaining);

    // Generate offspring serially (cheap; keeps RNG deterministic).
    std::vector<Genome> offspring;
    offspring.reserve(this_batch);
    for (std::size_t i = 0; i < this_batch; ++i) {
      Genome child;
      bool fresh = false;
      for (std::size_t attempt = 0; attempt < config_.dedup_attempts && !fresh; ++attempt) {
        const Candidate& parent_a = population[tournament_best(population, rng)];
        if (rng.next_bool(config_.crossover_probability)) {
          const Candidate& parent_b = population[tournament_best(population, rng)];
          child = crossover(parent_a.genome, parent_b.genome, space_, rng);
        } else {
          child = parent_a.genome;
        }
        // 1 + Poisson-ish extra mutations.
        std::size_t mutations = 1;
        double extra = config_.mutation_strength - 1.0;
        while (extra > 0.0 && rng.next_bool(std::min(1.0, extra))) {
          ++mutations;
          extra -= 1.0;
        }
        child = mutate(child, space_, rng, mutations);
        fresh = !cache_.contains(child.key());
      }
      if (!fresh) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.duplicates_skipped;
        continue;  // all attempts hit known genomes; skip this slot
      }
      // Reserve the key so the same batch can't contain twins.
      cache_.store(child.key(), EvalResult{});
      offspring.push_back(std::move(child));
    }
    if (offspring.empty()) {
      // Search space locally exhausted around the population; inject a
      // random immigrant to keep progress.
      Genome immigrant = random_genome(space_, rng);
      if (cache_.contains(immigrant.key())) break;
      offspring.push_back(std::move(immigrant));
    }

    std::vector<Candidate> evaluated = evaluate_generation(offspring, pool);

    for (Candidate& candidate : evaluated) {
      out.history.push_back(candidate);
      const std::size_t victim = tournament_worst(population, rng);
      if (candidate.fitness > population[victim].fitness) {
        population[victim] = std::move(candidate);
      }
    }
  }

  std::sort(population.begin(), population.end(),
            [](const Candidate& a, const Candidate& b) { return a.fitness > b.fitness; });
  out.population = std::move(population);
  out.best = out.history.front();
  for (const Candidate& candidate : out.history) {
    if (candidate.fitness > out.best.fitness) out.best = candidate;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wall_seconds = wall.elapsed_seconds();
    stats_.avg_eval_seconds = stats_.models_evaluated == 0
                                  ? 0.0
                                  : stats_.total_eval_seconds /
                                        static_cast<double>(stats_.models_evaluated);
    out.stats = stats_;
  }
  util::Log(util::LogLevel::Info, "evo")
      << "search done: " << out.stats.models_evaluated << " models, best fitness "
      << out.best.fitness << " (" << out.best.genome.key() << ")";
  return out;
}

}  // namespace ecad::evo
