#include "evo/engine.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace ecad::evo {

namespace {

// Legacy per-genome evaluators become one-item-per-task batch evaluators.
// No try/catch: parallel_for already rethrows the first exception in index
// order, which is exactly the pre-batching contract.
EvolutionEngine::BatchEvaluator wrap_per_genome(EvolutionEngine::Evaluator evaluate) {
  return [evaluate = std::move(evaluate)](const std::vector<Genome>& genomes,
                                          util::ThreadPool& pool) {
    std::vector<EvalOutcome> outcomes(genomes.size());
    pool.parallel_for(genomes.size(), [&](std::size_t i) {
      util::Stopwatch watch;
      outcomes[i].result = evaluate(genomes[i]);
      outcomes[i].result.eval_seconds = watch.elapsed_seconds();
      outcomes[i].ok = true;
    });
    return outcomes;
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// AsyncBatchDispatcher
// ---------------------------------------------------------------------------

AsyncBatchDispatcher::Ticket AsyncBatchDispatcher::submit(std::vector<Genome> genomes) {
  util::MutexLock lock(mutex_);
  const Ticket ticket = next_ticket_++;
  // One dedicated thread per in-flight batch (the engine bounds how many):
  // the evaluation may block on the network for a long time, and parking it
  // on the shared pool would steal a thread the evaluator itself needs.
  futures_.emplace(ticket,
                   std::async(std::launch::async, [this, genomes = std::move(genomes)] {
                     return evaluate_(genomes, pool_);
                   }));
  return ticket;
}

bool AsyncBatchDispatcher::poll(Ticket ticket) const {
  util::MutexLock lock(mutex_);
  const auto it = futures_.find(ticket);
  if (it == futures_.end()) return false;
  return it->second.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

std::vector<EvalOutcome> AsyncBatchDispatcher::wait(Ticket ticket) {
  std::future<std::vector<EvalOutcome>> future;
  {
    util::MutexLock lock(mutex_);
    const auto it = futures_.find(ticket);
    if (it == futures_.end()) {
      throw std::invalid_argument("AsyncBatchDispatcher: unknown ticket " +
                                  std::to_string(ticket));
    }
    future = std::move(it->second);
    futures_.erase(it);
  }
  return future.get();
}

std::size_t AsyncBatchDispatcher::in_flight() const {
  util::MutexLock lock(mutex_);
  return futures_.size();
}

// ---------------------------------------------------------------------------
// EvolutionEngine
// ---------------------------------------------------------------------------

EvolutionEngine::EvolutionEngine(SearchSpace space, EvolutionConfig config, Evaluator evaluate,
                                 Fitness fitness)
    : EvolutionEngine(std::move(space), config, wrap_per_genome(std::move(evaluate)),
                      std::move(fitness)) {}

EvolutionEngine::EvolutionEngine(SearchSpace space, EvolutionConfig config,
                                 BatchEvaluator evaluate, Fitness fitness)
    : space_(std::move(space)),
      config_(config),
      evaluate_(std::move(evaluate)),
      fitness_(std::move(fitness)) {
  space_.validate();
  if (config_.population_size < 2) {
    throw std::invalid_argument("EvolutionEngine: population_size must be >= 2");
  }
  if (config_.max_evaluations < config_.population_size) {
    throw std::invalid_argument("EvolutionEngine: budget smaller than the population");
  }
  if (config_.tournament_size == 0) {
    throw std::invalid_argument("EvolutionEngine: tournament_size must be >= 1");
  }
  if (config_.overlap_generations && config_.max_inflight_batches == 0) {
    throw std::invalid_argument("EvolutionEngine: max_inflight_batches must be >= 1");
  }
}

std::vector<Candidate> EvolutionEngine::fold_outcomes(const std::vector<Genome>& genomes,
                                                      std::vector<EvalOutcome> outcomes) {
  if (outcomes.size() != genomes.size()) {
    throw std::runtime_error("EvolutionEngine: batch evaluator returned " +
                             std::to_string(outcomes.size()) + " outcomes for " +
                             std::to_string(genomes.size()) + " genomes");
  }
  for (const EvalOutcome& outcome : outcomes) {
    if (!outcome.ok) throw std::runtime_error(outcome.error);
  }
  std::vector<Candidate> candidates(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    Candidate& candidate = candidates[i];
    candidate.genome = genomes[i];
    candidate.result = outcomes[i].result;
    candidate.fitness = fitness_(candidate.result);
    cache_.store(candidate.genome.key(), candidate.result);
  }
  {
    util::MutexLock lock(stats_mutex_);
    stats_.models_evaluated += genomes.size();
    for (const Candidate& candidate : candidates) {
      stats_.total_eval_seconds += candidate.result.eval_seconds;
    }
  }
  return candidates;
}

std::vector<Candidate> EvolutionEngine::evaluate_generation(const std::vector<Genome>& genomes,
                                                            util::ThreadPool& pool) {
  return fold_outcomes(genomes, evaluate_(genomes, pool));
}

std::size_t EvolutionEngine::models_evaluated() const {
  util::MutexLock lock(stats_mutex_);
  return stats_.models_evaluated;
}

bool EvolutionEngine::notify_progress(std::size_t generation,
                                      const std::vector<Candidate>& population,
                                      const std::vector<Candidate>& history) {
  if (!observer_) return true;
  GenerationProgress progress;
  progress.generation = generation;
  {
    util::MutexLock lock(stats_mutex_);
    progress.models_evaluated = stats_.models_evaluated;
    progress.duplicates_skipped = stats_.duplicates_skipped;
  }
  progress.population = &population;
  progress.history = &history;
  return observer_(progress);
}

std::size_t EvolutionEngine::tournament_best(const std::vector<Candidate>& population,
                                             util::Rng& rng) const {
  std::size_t best = rng.next_index(population.size());
  for (std::size_t round = 1; round < config_.tournament_size; ++round) {
    const std::size_t challenger = rng.next_index(population.size());
    if (population[challenger].fitness > population[best].fitness) best = challenger;
  }
  return best;
}

std::size_t EvolutionEngine::tournament_worst(const std::vector<Candidate>& population,
                                              util::Rng& rng) const {
  std::size_t worst = rng.next_index(population.size());
  for (std::size_t round = 1; round < config_.tournament_size; ++round) {
    const std::size_t challenger = rng.next_index(population.size());
    if (population[challenger].fitness < population[worst].fitness) worst = challenger;
  }
  return worst;
}

std::vector<Genome> EvolutionEngine::breed_offspring(const std::vector<Candidate>& population,
                                                     std::size_t count, util::Rng& rng) {
  std::vector<Genome> offspring;
  offspring.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Genome child;
    bool fresh = false;
    for (std::size_t attempt = 0; attempt < config_.dedup_attempts && !fresh; ++attempt) {
      const Candidate& parent_a = population[tournament_best(population, rng)];
      if (rng.next_bool(config_.crossover_probability)) {
        const Candidate& parent_b = population[tournament_best(population, rng)];
        child = crossover(parent_a.genome, parent_b.genome, space_, rng);
      } else {
        child = parent_a.genome;
      }
      // 1 + Poisson-ish extra mutations.
      std::size_t mutations = 1;
      double extra = config_.mutation_strength - 1.0;
      while (extra > 0.0 && rng.next_bool(std::min(1.0, extra))) {
        ++mutations;
        extra -= 1.0;
      }
      child = mutate(child, space_, rng, mutations);
      fresh = !cache_.contains(child.key());
    }
    if (!fresh) {
      util::MutexLock lock(stats_mutex_);
      ++stats_.duplicates_skipped;
      continue;  // all attempts hit known genomes; skip this slot
    }
    // Reserve the key so no later batch (in flight or not) can contain twins.
    cache_.store(child.key(), EvalResult{});
    offspring.push_back(std::move(child));
  }
  if (offspring.empty()) {
    // Search space locally exhausted around the population; inject a random
    // immigrant to keep progress.  A duplicate immigrant means even random
    // sampling cannot escape the evaluated neighborhood: stop the search
    // (signalled by the empty vector).
    Genome immigrant = random_genome(space_, rng);
    if (cache_.contains(immigrant.key())) return offspring;
    cache_.store(immigrant.key(), EvalResult{});
    offspring.push_back(std::move(immigrant));
  }
  return offspring;
}

void EvolutionEngine::replace_into(std::vector<Candidate> evaluated,
                                   std::vector<Candidate>& population,
                                   std::vector<Candidate>& history, util::Rng& rng) {
  for (Candidate& candidate : evaluated) {
    history.push_back(candidate);
    const std::size_t victim = tournament_worst(population, rng);
    if (candidate.fitness > population[victim].fitness) {
      population[victim] = std::move(candidate);
    }
  }
}

EvolutionResult EvolutionEngine::finalize(std::vector<Candidate> population,
                                          std::vector<Candidate> history, double wall_seconds) {
  EvolutionResult out;
  std::sort(population.begin(), population.end(),
            [](const Candidate& a, const Candidate& b) { return a.fitness > b.fitness; });
  out.population = std::move(population);
  out.history = std::move(history);
  out.best = out.history.front();
  for (const Candidate& candidate : out.history) {
    if (candidate.fitness > out.best.fitness) out.best = candidate;
  }
  {
    util::MutexLock lock(stats_mutex_);
    stats_.wall_seconds = wall_seconds;
    stats_.avg_eval_seconds = stats_.models_evaluated == 0
                                  ? 0.0
                                  : stats_.total_eval_seconds /
                                        static_cast<double>(stats_.models_evaluated);
    out.stats = stats_;
  }
  util::Log(util::LogLevel::Info, "evo")
      << "search done: " << out.stats.models_evaluated << " models, best fitness "
      << out.best.fitness << " (" << out.best.genome.key() << ")";
  return out;
}

EvolutionResult EvolutionEngine::run(util::Rng& rng, util::ThreadPool& pool) {
  util::Stopwatch wall;

  // --- Initial population: unique random genomes, evaluated in parallel.
  // Always synchronous, even in overlapped mode — breeding needs a fully
  // scored population before any pipelining can start. ---
  std::vector<Genome> seeds;
  seeds.reserve(config_.population_size);
  std::size_t attempts = 0;
  while (seeds.size() < config_.population_size &&
         attempts < config_.population_size * 50) {
    Genome genome = random_genome(space_, rng);
    ++attempts;
    const std::string key = genome.key();
    const bool duplicate =
        std::any_of(seeds.begin(), seeds.end(),
                    [&key](const Genome& g) { return g.key() == key; });
    if (!duplicate) seeds.push_back(std::move(genome));
  }
  std::vector<Candidate> population = [&] {
    util::TraceSpan span("evo", "generation 0");
    return evaluate_generation(seeds, pool);
  }();

  std::vector<Candidate> history = population;
  EvolutionResult out =
      config_.overlap_generations
          ? run_overlapped(rng, pool, std::move(population), std::move(history), 0, {},
                           models_evaluated(), /*resumed=*/false)
          : run_sequential(rng, pool, std::move(population), std::move(history), 0,
                           /*resumed=*/false);
  out.stats.wall_seconds = wall.elapsed_seconds();
  {
    util::MutexLock lock(stats_mutex_);
    stats_.wall_seconds = out.stats.wall_seconds;
  }
  return out;
}

EvolutionResult EvolutionEngine::resume(const EngineSnapshot& snapshot, util::Rng& rng,
                                        util::ThreadPool& pool) {
  util::Stopwatch wall;
  if (snapshot.population.empty()) {
    throw std::invalid_argument("EvolutionEngine: snapshot has an empty population");
  }
  if (snapshot.history.size() < snapshot.population.size()) {
    throw std::invalid_argument(
        "EvolutionEngine: snapshot history is smaller than its population");
  }
  if (snapshot.overlap != config_.overlap_generations) {
    throw std::invalid_argument(
        "EvolutionEngine: snapshot mode does not match the engine config "
        "(overlap_generations mismatch)");
  }
  if (!snapshot.pending.empty() && !config_.overlap_generations) {
    throw std::invalid_argument("EvolutionEngine: sequential snapshot has in-flight batches");
  }
  rng.deserialize(snapshot.rng_state);

  // Rebuild the dedup cache exactly as the original process had it: settled
  // results from the history, reservation placeholders for batches that were
  // still in flight (their keys must stay claimed so resumed breeding cannot
  // produce twins).
  for (const Candidate& candidate : snapshot.history) {
    cache_.store(candidate.genome.key(), candidate.result);
  }
  for (const std::vector<Genome>& batch : snapshot.pending) {
    for (const Genome& genome : batch) cache_.store(genome.key(), EvalResult{});
  }
  cache_.restore_stats(static_cast<std::size_t>(snapshot.cache_hits),
                       static_cast<std::size_t>(snapshot.cache_misses));
  {
    util::MutexLock lock(stats_mutex_);
    stats_.models_evaluated = static_cast<std::size_t>(snapshot.models_evaluated);
    stats_.duplicates_skipped = static_cast<std::size_t>(snapshot.duplicates_skipped);
    stats_.overlapped_batches = static_cast<std::size_t>(snapshot.overlapped_batches);
    stats_.total_eval_seconds = snapshot.total_eval_seconds;
  }

  util::Log(util::LogLevel::Info, "evo")
      << "resuming search at generation " << snapshot.generation << " ("
      << snapshot.models_evaluated << " models evaluated, " << snapshot.pending.size()
      << " batches in flight)";

  EvolutionResult out =
      config_.overlap_generations
          ? run_overlapped(rng, pool, snapshot.population, snapshot.history,
                           static_cast<std::size_t>(snapshot.generation), snapshot.pending,
                           static_cast<std::size_t>(snapshot.submitted), /*resumed=*/true)
          : run_sequential(rng, pool, snapshot.population, snapshot.history,
                           static_cast<std::size_t>(snapshot.generation), /*resumed=*/true);
  out.stats.wall_seconds = wall.elapsed_seconds();
  {
    util::MutexLock lock(stats_mutex_);
    stats_.wall_seconds = out.stats.wall_seconds;
  }
  return out;
}

void EvolutionEngine::emit_checkpoint(const util::Rng& rng, std::size_t generation,
                                      std::size_t submitted,
                                      const std::vector<Candidate>& population,
                                      const std::vector<Candidate>& history,
                                      std::vector<std::vector<Genome>> pending) {
  if (!checkpoint_) return;
  EngineSnapshot snapshot;
  snapshot.rng_state = rng.serialize();
  snapshot.overlap = config_.overlap_generations;
  snapshot.generation = generation;
  snapshot.submitted = submitted;
  snapshot.population = population;
  snapshot.history = history;
  snapshot.pending = std::move(pending);
  {
    util::MutexLock lock(stats_mutex_);
    snapshot.models_evaluated = stats_.models_evaluated;
    snapshot.duplicates_skipped = stats_.duplicates_skipped;
    snapshot.overlapped_batches = stats_.overlapped_batches;
    snapshot.total_eval_seconds = stats_.total_eval_seconds;
  }
  snapshot.cache_hits = cache_.hits();
  snapshot.cache_misses = cache_.misses();
  checkpoint_(snapshot);
}

EvolutionResult EvolutionEngine::run_sequential(util::Rng& rng, util::ThreadPool& pool,
                                                std::vector<Candidate> population,
                                                std::vector<Candidate> history,
                                                std::size_t start_generation, bool resumed) {
  util::Stopwatch wall;

  const std::size_t batch =
      config_.batch_size == 0 ? std::max<std::size_t>(1, pool.size()) : config_.batch_size;

  std::size_t generation = start_generation;
  bool keep_going = true;
  if (!resumed) {
    keep_going = notify_progress(generation, population, history);
    emit_checkpoint(rng, generation, models_evaluated(), population, history, {});
  }

  while (keep_going) {
    // The budget check was an unlocked read of a stats_mutex_-guarded field
    // until the thread-safety analysis flagged it; the locked accessor also
    // keeps it sound if batch evaluators ever update stats concurrently.
    const std::size_t evaluated_so_far = models_evaluated();
    if (evaluated_so_far >= config_.max_evaluations) break;
    const std::size_t this_batch = std::min(batch, config_.max_evaluations - evaluated_so_far);

    // Generate offspring serially (cheap; keeps RNG deterministic).
    std::vector<Genome> offspring = breed_offspring(population, this_batch, rng);
    if (offspring.empty()) break;

    util::TraceSpan gen_span("evo", "generation " + std::to_string(generation + 1));
    std::vector<Candidate> evaluated = evaluate_generation(offspring, pool);
    replace_into(std::move(evaluated), population, history, rng);
    keep_going = notify_progress(++generation, population, history);
    emit_checkpoint(rng, generation, models_evaluated(), population, history, {});
  }

  return finalize(std::move(population), std::move(history), wall.elapsed_seconds());
}

EvolutionResult EvolutionEngine::run_overlapped(util::Rng& rng, util::ThreadPool& pool,
                                                std::vector<Candidate> population,
                                                std::vector<Candidate> history,
                                                std::size_t start_generation,
                                                std::vector<std::vector<Genome>> pending,
                                                std::size_t submitted_start, bool resumed) {
  util::Stopwatch wall;

  const std::size_t batch =
      config_.batch_size == 0 ? std::max<std::size_t>(1, pool.size()) : config_.batch_size;
  const std::size_t max_inflight = std::max<std::size_t>(1, config_.max_inflight_batches);

  AsyncBatchDispatcher dispatcher(evaluate_, pool);
  struct InFlight {
    AsyncBatchDispatcher::Ticket ticket = 0;
    std::vector<Genome> genomes;
  };
  std::deque<InFlight> inflight;

  // Resume: re-dispatch the batches the dead process had in flight, in the
  // original submission order, before anything new is bred.  Their genomes
  // were bred before the snapshot (the RNG already reflects them) and their
  // cache keys are reserved, so the continuation interleaves exactly like
  // the uninterrupted run.
  for (std::vector<Genome>& genomes : pending) {
    InFlight entry;
    entry.genomes = genomes;
    entry.ticket = dispatcher.submit(std::move(genomes));
    inflight.push_back(std::move(entry));
  }

  // Budget accounting runs on *submitted* genomes: every submitted batch is
  // eventually folded, so models_evaluated catches up exactly, and breeding
  // ahead can never overshoot max_evaluations.
  std::size_t submitted = submitted_start;

  std::size_t generation = start_generation;
  bool stopped = false;
  if (!resumed) {
    stopped = !notify_progress(generation, population, history);
    emit_checkpoint(rng, generation, submitted, population, history, {});
  }

  // Checkpoints are only taken at folds forced by a full pipeline (and at
  // generation 0): there the uninterrupted continuation is exactly "re-enter
  // the main loop", which is what resume() does.  Folds in the final drain
  // happen after a breeding decision the snapshot would not capture, so they
  // are not persisted — resume restarts from the last main-loop boundary and
  // deterministically re-does the tail.
  bool persist_checkpoints = true;

  // Fold the oldest in-flight batch — always in submission order, at fixed
  // points in the control flow, so the RNG consumption (and therefore the
  // whole trajectory) is independent of which batch finished first.  A false
  // observer answer stops *breeding*; batches already on the wire still fold
  // below, so a drain always completes its in-flight generations.
  const auto fold_oldest = [&] {
    util::TraceSpan span("evo", "fold generation " + std::to_string(generation + 1));
    InFlight oldest = std::move(inflight.front());
    inflight.pop_front();
    std::vector<Candidate> evaluated =
        fold_outcomes(oldest.genomes, dispatcher.wait(oldest.ticket));
    replace_into(std::move(evaluated), population, history, rng);
    if (!notify_progress(++generation, population, history)) stopped = true;
    if (persist_checkpoints && checkpoint_) {
      std::vector<std::vector<Genome>> pending_now;
      pending_now.reserve(inflight.size());
      for (const InFlight& entry : inflight) pending_now.push_back(entry.genomes);
      emit_checkpoint(rng, generation, submitted, population, history, std::move(pending_now));
    }
  };

  while (true) {
    // Pipeline full: block on the oldest batch before breeding again.
    while (inflight.size() >= max_inflight) fold_oldest();
    if (stopped || submitted >= config_.max_evaluations) break;
    const std::size_t this_batch = std::min(batch, config_.max_evaluations - submitted);

    // Parents are the population as of the last fold — already scored; the
    // tail of the previous generation may still be in flight right now.
    std::vector<Genome> offspring = breed_offspring(population, this_batch, rng);
    if (offspring.empty()) break;
    submitted += offspring.size();
    if (!inflight.empty()) {
      util::MutexLock lock(stats_mutex_);
      ++stats_.overlapped_batches;
    }
    InFlight entry;
    entry.genomes = offspring;  // keep a copy: outcomes are folded by index
    entry.ticket = dispatcher.submit(std::move(offspring));
    inflight.push_back(std::move(entry));
  }
  persist_checkpoints = false;
  while (!inflight.empty()) fold_oldest();

  return finalize(std::move(population), std::move(history), wall.elapsed_seconds());
}

}  // namespace ecad::evo
