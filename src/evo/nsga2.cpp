#include "evo/nsga2.h"

#include <algorithm>
#include <limits>

#include "evo/cache.h"
#include "util/stopwatch.h"

namespace ecad::evo {

std::vector<double> crowding_distance(const std::vector<EvalResult>& results,
                                      const std::vector<std::size_t>& front_members,
                                      const std::vector<Metric>& metrics) {
  std::vector<double> distance(results.size(), 0.0);
  if (front_members.size() <= 2) {
    for (std::size_t index : front_members) {
      distance[index] = std::numeric_limits<double>::infinity();
    }
    return distance;
  }
  for (Metric metric : metrics) {
    std::vector<std::size_t> sorted = front_members;
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return metric_value(results[a], metric) < metric_value(results[b], metric);
    });
    const double lo = metric_value(results[sorted.front()], metric);
    const double hi = metric_value(results[sorted.back()], metric);
    distance[sorted.front()] = std::numeric_limits<double>::infinity();
    distance[sorted.back()] = std::numeric_limits<double>::infinity();
    const double range = hi - lo;
    if (range <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < sorted.size(); ++i) {
      distance[sorted[i]] += (metric_value(results[sorted[i + 1]], metric) -
                              metric_value(results[sorted[i - 1]], metric)) /
                             range;
    }
  }
  return distance;
}

std::vector<std::size_t> nsga2_select(const std::vector<Candidate>& candidates,
                                      const std::vector<Metric>& metrics, std::size_t count) {
  std::vector<EvalResult> results;
  results.reserve(candidates.size());
  for (const Candidate& candidate : candidates) results.push_back(candidate.result);

  const std::vector<std::size_t> rank = nondominated_rank(results, metrics);

  // Group by front.
  std::size_t max_rank = 0;
  for (std::size_t r : rank) max_rank = std::max(max_rank, r);
  std::vector<std::vector<std::size_t>> fronts(max_rank + 1);
  for (std::size_t i = 0; i < rank.size(); ++i) fronts[rank[i]].push_back(i);

  std::vector<std::size_t> selected;
  for (const auto& front : fronts) {
    if (selected.size() >= count) break;
    if (selected.size() + front.size() <= count) {
      selected.insert(selected.end(), front.begin(), front.end());
      continue;
    }
    // Partial front: order by crowding distance (descending).
    const std::vector<double> distance = crowding_distance(results, front, metrics);
    std::vector<std::size_t> ordered = front;
    std::sort(ordered.begin(), ordered.end(),
              [&distance](std::size_t a, std::size_t b) { return distance[a] > distance[b]; });
    for (std::size_t index : ordered) {
      if (selected.size() >= count) break;
      selected.push_back(index);
    }
  }
  return selected;
}

Nsga2Result nsga2_search(const SearchSpace& space, const Nsga2Config& config,
                         const std::vector<Metric>& metrics,
                         const EvolutionEngine::Evaluator& evaluate, util::Rng& rng,
                         util::ThreadPool& pool) {
  space.validate();
  if (config.population_size < 2) {
    throw std::invalid_argument("nsga2_search: population_size must be >= 2");
  }
  if (metrics.empty()) throw std::invalid_argument("nsga2_search: no objectives");

  util::Stopwatch wall;
  Nsga2Result out;
  EvalCache cache;

  auto evaluate_batch = [&](std::vector<Genome> genomes) {
    std::vector<Candidate> evaluated(genomes.size());
    pool.parallel_for(genomes.size(), [&](std::size_t i) {
      Candidate candidate;
      candidate.genome = genomes[i];
      util::Stopwatch watch;
      candidate.result = evaluate(genomes[i]);
      candidate.result.eval_seconds = watch.elapsed_seconds();
      evaluated[i] = std::move(candidate);
    });
    for (const Candidate& candidate : evaluated) {
      cache.store(candidate.genome.key(), candidate.result);
      out.history.push_back(candidate);
      out.stats.total_eval_seconds += candidate.result.eval_seconds;
      ++out.stats.models_evaluated;
    }
    return evaluated;
  };

  // Initial population.
  std::vector<Genome> seeds;
  std::size_t attempts = 0;
  while (seeds.size() < config.population_size && attempts < config.population_size * 50) {
    Genome genome = random_genome(space, rng);
    ++attempts;
    if (cache.contains(genome.key())) continue;
    cache.store(genome.key(), EvalResult{});
    seeds.push_back(std::move(genome));
  }
  std::vector<Candidate> population = evaluate_batch(std::move(seeds));

  for (std::size_t generation = 0; generation < config.generations; ++generation) {
    // Offspring: binary tournaments on (rank, crowding) via nsga2_select order.
    const std::vector<std::size_t> order =
        nsga2_select(population, metrics, population.size());
    auto pick_parent = [&]() -> const Candidate& {
      const std::size_t a = rng.next_index(order.size());
      const std::size_t b = rng.next_index(order.size());
      // Lower position in `order` = better (rank, crowding).
      return population[order[std::min(a, b)]];
    };

    std::vector<Genome> offspring;
    std::size_t tries = 0;
    while (offspring.size() < config.population_size &&
           tries < config.population_size * 30) {
      ++tries;
      Genome child;
      if (rng.next_bool(config.crossover_probability)) {
        child = crossover(pick_parent().genome, pick_parent().genome, space, rng);
      } else {
        child = pick_parent().genome;
      }
      std::size_t mutations = 1;
      double extra = config.mutation_strength - 1.0;
      while (extra > 0.0 && rng.next_bool(std::min(1.0, extra))) {
        ++mutations;
        extra -= 1.0;
      }
      child = mutate(child, space, rng, mutations);
      if (cache.contains(child.key())) {
        ++out.stats.duplicates_skipped;
        continue;
      }
      cache.store(child.key(), EvalResult{});
      offspring.push_back(std::move(child));
    }
    if (offspring.empty()) break;

    std::vector<Candidate> children = evaluate_batch(std::move(offspring));
    // Environmental selection over parents + children.
    std::vector<Candidate> combined = population;
    combined.insert(combined.end(), children.begin(), children.end());
    std::vector<Candidate> next;
    next.reserve(config.population_size);
    for (std::size_t index : nsga2_select(combined, metrics, config.population_size)) {
      next.push_back(combined[index]);
    }
    population = std::move(next);
  }

  // Final front from the full history (maximal coverage, like the paper's
  // post-hoc frontier extraction).
  std::vector<EvalResult> all_results;
  all_results.reserve(out.history.size());
  for (const Candidate& candidate : out.history) all_results.push_back(candidate.result);
  for (std::size_t index : pareto_front(all_results, metrics)) {
    out.front.push_back(out.history[index]);
  }
  std::sort(out.front.begin(), out.front.end(), [](const Candidate& a, const Candidate& b) {
    return a.result.accuracy > b.result.accuracy;
  });

  out.stats.avg_eval_seconds = out.stats.models_evaluated == 0
                                   ? 0.0
                                   : out.stats.total_eval_seconds /
                                         static_cast<double>(out.stats.models_evaluated);
  out.stats.wall_seconds = wall.elapsed_seconds();
  return out;
}

}  // namespace ecad::evo
