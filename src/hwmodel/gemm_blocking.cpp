#include "hwmodel/gemm_blocking.h"

#include <stdexcept>

namespace ecad::hw {

std::vector<GemmDims> mlp_to_gemms(const nn::MlpSpec& spec, std::size_t batch) {
  spec.validate();
  if (batch == 0) throw std::invalid_argument("mlp_to_gemms: batch must be > 0");
  const auto dims = spec.layer_dims();
  std::vector<GemmDims> gemms;
  gemms.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    gemms.push_back({batch, dims[l], dims[l + 1]});
  }
  return gemms;
}

Blocking block_gemm(const GemmDims& gemm, const GridConfig& grid) {
  grid.validate();
  if (gemm.m == 0 || gemm.k == 0 || gemm.n == 0) {
    throw std::invalid_argument("block_gemm: degenerate GEMM dims");
  }
  Blocking blocking;
  const std::size_t bm = grid.block_m();
  const std::size_t bn = grid.block_n();
  blocking.blocks_m = (gemm.m + bm - 1) / bm;
  blocking.blocks_n = (gemm.n + bn - 1) / bn;
  blocking.total_blocks = blocking.blocks_m * blocking.blocks_n;

  // K is processed vec_width elements per cycle per lane; the array retires
  // one bm x bn block in (bm/rows)*(bn/cols)*(K/vec) = im*in*ceil(K/vec) cycles.
  const std::size_t k_steps = (gemm.k + grid.vec_width - 1) / grid.vec_width;
  blocking.cycles_per_block = grid.interleave_m * grid.interleave_n * k_steps;

  // DRAM traffic per block: A-slab (bm x K) + B-slab (K x bn) + C writeback.
  blocking.bytes_per_block = 4 * (bm * gemm.k + gemm.k * bn + bm * bn);

  // Padding waste: edge blocks compute on zero-padded lanes.
  const double real = static_cast<double>(gemm.flops());
  const double padded = static_cast<double>(2 * blocking.blocks_m * bm * blocking.blocks_n * bn *
                                            (k_steps * grid.vec_width));
  blocking.utilization = padded == 0.0 ? 0.0 : real / padded;
  return blocking;
}

}  // namespace ecad::hw
