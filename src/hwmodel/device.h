// Hardware device descriptors.
//
// Paper §III-C: the hardware-database worker's configuration "includes the
// name of the FPGA, the relevant primitive logic details such as DSP and
// SRAM count, target clock frequency, the type of global memory (DRAM) to be
// used, and its speed and rate".  GPU descriptors capture the §IV simulation
// workers (Quadro M5000, Titan X, Radeon VII).
#pragma once

#include <cstddef>
#include <string>

namespace ecad::hw {

/// DDR memory subsystem: `banks` independent channels.
struct DdrSpec {
  std::size_t banks = 1;
  double bandwidth_per_bank_gbs = 19.2;  // DDR4-2400 x64: paper's dev kit bank

  double total_bandwidth_gbs() const { return static_cast<double>(banks) * bandwidth_per_bank_gbs; }
  double total_bandwidth_bytes_per_s() const { return total_bandwidth_gbs() * 1e9; }
};

struct FpgaDevice {
  std::string name;
  std::size_t dsp_count = 0;     // hardened FP32 MAC blocks
  std::size_t m20k_count = 0;    // 20-kbit SRAM blocks
  std::size_t alm_count = 0;     // adaptive logic modules
  double clock_mhz = 250.0;      // achieved OpenCL overlay frequency
  DdrSpec ddr;

  double clock_hz() const { return clock_mhz * 1e6; }

  /// Marketed roofline: every DSP does one FP32 MAC (2 FLOPs) per cycle.
  /// Arria 10 GX 1150 @ 250 MHz -> 1518*2*250e6 = 759 GFLOP/s (paper §IV).
  double peak_gflops() const {
    return static_cast<double>(dsp_count) * 2.0 * clock_mhz / 1e3;
  }
};

struct GpuDevice {
  std::string name;
  double peak_tflops = 0.0;        // FP32 marketed peak
  double bandwidth_gbs = 0.0;      // global memory bandwidth
  std::size_t sm_count = 0;        // streaming multiprocessors / CUs
  double kernel_overhead_s = 80e-6;  // per-kernel dispatch cost (TF runtime)
  double board_power_w = 150.0;

  double peak_flops() const { return peak_tflops * 1e12; }
};

/// Paper presets (§IV). `ddr_banks` configures the FPGA memory subsystem
/// (1, 2, or 4 banks — Fig. 3 sweeps this).
FpgaDevice arria10_gx1150(std::size_t ddr_banks = 1);
FpgaDevice stratix10_2800(std::size_t ddr_banks = 4);

GpuDevice quadro_m5000();
GpuDevice titan_x();
GpuDevice radeon_vii();

}  // namespace ecad::hw
