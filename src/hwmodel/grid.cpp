#include "hwmodel/grid.h"

#include <sstream>
#include <stdexcept>

namespace ecad::hw {

std::string GridConfig::to_string() const {
  std::ostringstream out;
  out << rows << 'x' << cols << 'x' << vec_width << " im" << interleave_m << " in"
      << interleave_n;
  return out.str();
}

void GridConfig::validate() const {
  if (rows == 0 || cols == 0 || vec_width == 0 || interleave_m == 0 || interleave_n == 0) {
    throw std::invalid_argument("GridConfig: all fields must be > 0");
  }
}

std::vector<GridConfig> enumerate_grids(const GridBounds& bounds, const FpgaDevice& device) {
  std::vector<GridConfig> grids;
  for (std::size_t rows : bounds.row_choices) {
    for (std::size_t cols : bounds.col_choices) {
      for (std::size_t vec : bounds.vec_choices) {
        for (std::size_t im : bounds.interleave_choices) {
          for (std::size_t in : bounds.interleave_choices) {
            GridConfig grid{rows, cols, vec, im, in};
            if (grid.fits(device)) grids.push_back(grid);
          }
        }
      }
    }
  }
  return grids;
}

}  // namespace ecad::hw
