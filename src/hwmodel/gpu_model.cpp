#include "hwmodel/gpu_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecad::hw {

GpuPerfReport evaluate_gpu(const nn::MlpSpec& spec, std::size_t batch, const GpuDevice& device,
                           const GpuModelOptions& options) {
  return evaluate_gpu_gemms(mlp_to_gemms(spec, batch), device, options);
}

GpuPerfReport evaluate_gpu_gemms(const std::vector<GemmDims>& gemms, const GpuDevice& device,
                                 const GpuModelOptions& options) {
  if (gemms.empty()) throw std::invalid_argument("evaluate_gpu: no GEMMs");
  if (device.peak_flops() <= 0.0) throw std::invalid_argument("evaluate_gpu: zero-peak device");

  GpuPerfReport report;
  report.peak_gflops = device.peak_flops() / 1e9;

  double total_time = 0.0;
  double total_real_flops = 0.0;

  for (const GemmDims& gemm : gemms) {
    GpuLayerReport layer;
    layer.dims = gemm;

    const std::size_t tiles_m = (gemm.m + options.tile_m - 1) / options.tile_m;
    const std::size_t tiles_n = (gemm.n + options.tile_n - 1) / options.tile_n;
    const std::size_t tiles = tiles_m * tiles_n;

    // Wave quantization: the device runs ceil(tiles/SMs) waves; the last
    // (or only) wave may be partially filled.
    const std::size_t waves = (tiles + device.sm_count - 1) / device.sm_count;
    layer.occupancy = static_cast<double>(tiles) /
                      (static_cast<double>(waves) * static_cast<double>(device.sm_count));

    // K-depth pipeline ramp: short dot products never saturate the MACs.
    const double k_eff = static_cast<double>(gemm.k) /
                         (static_cast<double>(gemm.k) + options.k_ramp);

    // Padded FLOPs (partial tiles are zero-filled).
    const double padded_flops =
        2.0 * static_cast<double>(tiles_m * options.tile_m) * static_cast<double>(gemm.k) *
        static_cast<double>(tiles_n * options.tile_n);

    const double rate = device.peak_flops() * layer.occupancy * k_eff;
    layer.compute_seconds = padded_flops / rate;
    layer.memory_seconds =
        static_cast<double>(gemm.dram_bytes()) / (device.bandwidth_gbs * 1e9);
    layer.bandwidth_bound = layer.memory_seconds > layer.compute_seconds;

    // GEMM + bias + activation arrive as separate runtime ops in the traces.
    layer.time_seconds =
        std::max(layer.compute_seconds, layer.memory_seconds) + device.kernel_overhead_s;

    total_time += layer.time_seconds;
    total_real_flops += static_cast<double>(gemm.flops());
    report.layers.push_back(layer);
  }

  report.total_time_seconds = total_time;
  report.effective_gflops = total_real_flops / total_time / 1e9;
  report.outputs_per_second = static_cast<double>(gemms.front().m) / total_time;
  report.latency_seconds = total_time;
  report.efficiency = report.effective_gflops / report.peak_gflops;
  return report;
}

}  // namespace ecad::hw
