// GPU simulation-worker model.
//
// Paper §III-B/IV: GPU candidates run the same GEMM sequence on a *fixed*
// architecture; profiling showed effective utilization far below peak for
// MLP-sized GEMMs (0.3% on the MNIST winner) and throughput largely
// insensitive to how neurons are distributed across layers.  The model
// reproduces both effects from: (1) tile/wave quantization against the SM
// count, (2) zero-padding of partial tiles, (3) a K-depth pipeline ramp, and
// (4) per-kernel launch overhead of the runtime (TensorFlow traces).
#pragma once

#include <vector>

#include "hwmodel/device.h"
#include "hwmodel/gemm_blocking.h"
#include "nn/mlp.h"

namespace ecad::hw {

struct GpuLayerReport {
  GemmDims dims;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double time_seconds = 0.0;  // max(compute, memory) + launch overhead
  double occupancy = 0.0;     // wave-quantized SM fill fraction
  bool bandwidth_bound = false;
};

struct GpuPerfReport {
  double peak_gflops = 0.0;       // marketed device peak
  double effective_gflops = 0.0;  // real FLOPs / total time
  double total_time_seconds = 0.0;
  double outputs_per_second = 0.0;
  double latency_seconds = 0.0;   // == total time (results land after the run)
  double efficiency = 0.0;        // effective / peak (paper Fig. 4)
  std::vector<GpuLayerReport> layers;
};

struct GpuModelOptions {
  /// cuBLAS-style output tile.
  std::size_t tile_m = 64;
  std::size_t tile_n = 64;
  /// K-depth at which the MAC pipelines reach full rate.
  double k_ramp = 192.0;
};

GpuPerfReport evaluate_gpu(const nn::MlpSpec& spec, std::size_t batch, const GpuDevice& device,
                           const GpuModelOptions& options = {});

GpuPerfReport evaluate_gpu_gemms(const std::vector<GemmDims>& gemms, const GpuDevice& device,
                                 const GpuModelOptions& options = {});

}  // namespace ecad::hw
