#include "hwmodel/resource_model.h"

#include <algorithm>
#include <cmath>

namespace ecad::hw {

namespace {

// Small deterministic jitter in [-1, 1] from the grid shape, standing in for
// placement/routing seed noise across Quartus compiles.
double placement_jitter(const GridConfig& grid) {
  std::size_t h = grid.rows * 0x9e3779b9u;
  h ^= grid.cols * 0x85ebca6bu + (h << 6) + (h >> 2);
  h ^= grid.vec_width * 0xc2b2ae35u + (h << 6) + (h >> 2);
  h ^= grid.interleave_m * 0x27d4eb2fu + (h << 6) + (h >> 2);
  h ^= grid.interleave_n * 0x165667b1u + (h << 6) + (h >> 2);
  return static_cast<double>(h % 2001) / 1000.0 - 1.0;
}

}  // namespace

PhysicalReport estimate_physical(const GridConfig& grid, const FpgaDevice& device,
                                 const ResourceModelOptions& options) {
  grid.validate();
  PhysicalReport report;

  report.dsp_used = grid.dsp_usage();

  // M20K: double-buffered A caches (per PE row) and B caches (per PE column),
  // each `cache_words` FP32 deep per interleave way, plus C accumulators.
  const std::size_t m20k_bytes = 2560;  // 20 kbit
  const std::size_t a_cache_bytes =
      2 * grid.rows * grid.interleave_m * options.cache_words * grid.vec_width * 4;
  const std::size_t b_cache_bytes =
      2 * grid.cols * grid.interleave_n * options.cache_words * grid.vec_width * 4;
  const std::size_t c_accum_bytes = grid.block_m() * grid.block_n() * 4;
  report.m20k_used = options.bsp_m20ks +
                     (a_cache_bytes + b_cache_bytes + c_accum_bytes + m20k_bytes - 1) / m20k_bytes;

  // ALM: shell + per-PE control/steering logic + interleave addressing.
  report.alm_used = options.bsp_alms +
                    grid.rows * grid.cols *
                        (options.alms_per_pe_base + options.alms_per_lane * grid.vec_width) +
                    (grid.block_m() + grid.block_n()) * 25;

  report.dsp_fraction = static_cast<double>(report.dsp_used) / static_cast<double>(device.dsp_count);
  report.m20k_fraction =
      static_cast<double>(report.m20k_used) / static_cast<double>(device.m20k_count);
  report.alm_fraction =
      static_cast<double>(report.alm_used) / static_cast<double>(device.alm_count);
  report.fits =
      report.dsp_fraction <= 1.0 && report.m20k_fraction <= 1.0 && report.alm_fraction <= 1.0;

  // Fmax: congestion derating grows with logic utilization; ±12 MHz of
  // placement jitter.  Calibrated so mid-size Arria 10 overlays average the
  // paper's 250 MHz.
  const bool is_stratix = device.name.find("Stratix") != std::string::npos;
  const double base_fmax =
      is_stratix ? options.base_fmax_mhz_stratix10 : options.base_fmax_mhz_arria10;
  const double congestion = std::min(1.0, std::max({report.alm_fraction, report.dsp_fraction,
                                                    report.m20k_fraction}));
  double fmax = base_fmax * (1.0 - 0.22 * congestion * congestion - 0.12 * congestion) +
                12.0 * placement_jitter(grid);
  report.fmax_mhz = std::max(80.0, fmax);

  // Power: static + DSP dynamic + fabric toggling (chip power, not board —
  // the paper notes FPGA numbers are chip power).  Calibrated to the
  // 22.5 / 27 / 31.9 W (min/avg/max) band reported for Arria 10.
  const double clock_scale = device.clock_mhz / 250.0;
  const double static_w = is_stratix ? 32.0 : 22.1;
  const double dsp_w = 9.9 * report.dsp_fraction * clock_scale;
  const double fabric_w = 4.4 * report.alm_fraction * clock_scale;
  const double sram_w = 2.6 * report.m20k_fraction * clock_scale;
  report.power_watts = static_w + dsp_w + fabric_w + sram_w + 0.35 * placement_jitter(grid);
  return report;
}

}  // namespace ecad::hw
