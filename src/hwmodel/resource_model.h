// Physical worker: synthesis-level estimates — resource utilization, clock
// frequency, and power.
//
// Paper §III-B: "the physical worker aims to provide the fitness of the
// hardware design itself through metrics such as power, logic utilization,
// and operation frequency. In the case of Intel FPGAs, the physical worker
// responds with ALM, M20K, and DSP utilization, power estimations, and clock
// frequency (Fmax)."  The model is calibrated to the paper's §IV report for
// Arria 10 compiles: Fmax averaging 250 MHz and power in the 22.5-31.9 W
// band with a 27 W mean.
#pragma once

#include "hwmodel/device.h"
#include "hwmodel/grid.h"

namespace ecad::hw {

struct PhysicalReport {
  std::size_t dsp_used = 0;
  std::size_t m20k_used = 0;
  std::size_t alm_used = 0;
  double dsp_fraction = 0.0;
  double m20k_fraction = 0.0;
  double alm_fraction = 0.0;
  double fmax_mhz = 0.0;
  double power_watts = 0.0;
  bool fits = false;  // all three resource budgets respected
};

struct ResourceModelOptions {
  /// Static board support package (OpenCL shell) cost.
  std::size_t bsp_alms = 60000;
  std::size_t bsp_m20ks = 400;
  /// Per-PE logic: control + accumulator + vector lane muxing.
  std::size_t alms_per_pe_base = 350;
  std::size_t alms_per_lane = 18;
  /// Depth (in FP32 words) of each interleave cache line.
  std::size_t cache_words = 256;
  /// Fmax of a tiny kernel before congestion derating.
  double base_fmax_mhz_arria10 = 290.0;
  double base_fmax_mhz_stratix10 = 470.0;
};

/// Estimate synthesis results for `grid` on `device`.
PhysicalReport estimate_physical(const GridConfig& grid, const FpgaDevice& device,
                                 const ResourceModelOptions& options = {});

}  // namespace ecad::hw
