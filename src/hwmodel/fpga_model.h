// Analytical FPGA performance model — the paper's *hardware database worker*.
//
// §III-C: "Our model returns values we deemed fundamental, including
// potential and effective performance, total time, outputs per second, and
// latency. ... we can calculate the baseline performance by determining how
// many DSP blocks are doing work. ... Using the DRAM specs from the
// configuration, we can determine the ratio of how much bandwidth is
// available to how much we need. Cycles per block of data divided into the
// size of a block in bytes are used to calculate bandwidth needs. ... the
// grid configuration is used to break the ANN up into a series of blocked
// matrix multiplications."
#pragma once

#include <vector>

#include "hwmodel/device.h"
#include "hwmodel/gemm_blocking.h"
#include "hwmodel/grid.h"
#include "nn/mlp.h"

namespace ecad::hw {

struct FpgaLayerReport {
  GemmDims dims;
  Blocking blocking;
  double compute_seconds = 0.0;   // grid-bound time for all blocks
  double memory_seconds = 0.0;    // DRAM-bound time for all blocks
  double time_seconds = 0.0;      // max of the two + fixed overheads
  double bandwidth_need_gbs = 0.0;  // demand while computing one block
  bool bandwidth_bound = false;
};

struct FpgaPerfReport {
  double potential_gflops = 0.0;  // grid roofline (DSPs doing work x clock)
  double effective_gflops = 0.0;  // real FLOPs / total time
  double total_time_seconds = 0.0;  // one "run": batch enters DRAM -> results in DRAM
  double outputs_per_second = 0.0;
  double latency_seconds = 0.0;   // run start -> first result row in DRAM
  double efficiency = 0.0;        // effective / potential (paper Fig. 3/4)
  bool any_bandwidth_bound = false;
  std::vector<FpgaLayerReport> layers;
};

struct FpgaModelOptions {
  /// Per-kernel (per-layer) launch + pipeline drain overhead, seconds.
  double layer_overhead_seconds = 2e-6;
  /// Achievable fraction of theoretical DRAM bandwidth (row activation,
  /// refresh, bus turnaround).
  double dram_efficiency = 0.85;
};

/// Evaluate one NNA/HW co-design candidate.  Throws std::invalid_argument if
/// the grid does not fit the device's DSP budget or dims are degenerate.
FpgaPerfReport evaluate_fpga(const nn::MlpSpec& spec, std::size_t batch, const GridConfig& grid,
                             const FpgaDevice& device, const FpgaModelOptions& options = {});

/// Same evaluation from a pre-decomposed GEMM sequence.
FpgaPerfReport evaluate_fpga_gemms(const std::vector<GemmDims>& gemms, const GridConfig& grid,
                                   const FpgaDevice& device, const FpgaModelOptions& options = {});

}  // namespace ecad::hw
