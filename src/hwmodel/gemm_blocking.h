// MLP → blocked-GEMM decomposition (paper §III-D "MLP Mapping to Hardware").
//
// "GEMM nomenclature can be used to describe the three key dimensions that
// make up the problem size for MLP layers. ... M is the number of inputs
// that are processed at once (batch). ... N is the number of neurons that
// also defines a subsequent layer k. Lastly, the size of the dataset defines
// the first layer k."
#pragma once

#include <cstddef>
#include <vector>

#include "hwmodel/grid.h"
#include "nn/mlp.h"

namespace ecad::hw {

struct GemmDims {
  std::size_t m = 0;  // batch
  std::size_t k = 0;  // input width of the layer
  std::size_t n = 0;  // neurons (output width)

  std::size_t flops() const { return 2 * m * k * n; }
  /// Bytes touched in DRAM assuming A streams in, B (weights) streams in,
  /// C streams out, FP32.
  std::size_t dram_bytes() const { return 4 * (m * k + k * n + m * n); }
};

/// The per-layer GEMM sequence of an MLP at a given batch size.
std::vector<GemmDims> mlp_to_gemms(const nn::MlpSpec& spec, std::size_t batch);

/// Blocking of one GEMM onto a grid.
struct Blocking {
  std::size_t blocks_m = 0;       // ceil(m / block_m)
  std::size_t blocks_n = 0;       // ceil(n / block_n)
  std::size_t total_blocks = 0;   // blocks_m * blocks_n
  std::size_t cycles_per_block = 0;
  std::size_t bytes_per_block = 0;
  /// Fraction of computed MACs that are real work (1.0 = no padding waste).
  double utilization = 1.0;
};

/// Decompose `gemm` onto `grid`. Edge blocks are padded to full block size,
/// which is where shape-mismatch inefficiency comes from.
Blocking block_gemm(const GemmDims& gemm, const GridConfig& grid);

}  // namespace ecad::hw
