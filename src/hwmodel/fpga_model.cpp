#include "hwmodel/fpga_model.h"

#include <algorithm>
#include <stdexcept>

namespace ecad::hw {

FpgaPerfReport evaluate_fpga(const nn::MlpSpec& spec, std::size_t batch, const GridConfig& grid,
                             const FpgaDevice& device, const FpgaModelOptions& options) {
  return evaluate_fpga_gemms(mlp_to_gemms(spec, batch), grid, device, options);
}

FpgaPerfReport evaluate_fpga_gemms(const std::vector<GemmDims>& gemms, const GridConfig& grid,
                                   const FpgaDevice& device, const FpgaModelOptions& options) {
  grid.validate();
  if (!grid.fits(device)) {
    throw std::invalid_argument("evaluate_fpga: grid needs " + std::to_string(grid.dsp_usage()) +
                                " DSPs, device has " + std::to_string(device.dsp_count));
  }
  if (gemms.empty()) throw std::invalid_argument("evaluate_fpga: no GEMMs");

  FpgaPerfReport report;
  report.potential_gflops = grid.potential_gflops(device);

  const double clock_hz = device.clock_hz();
  const double bandwidth =
      device.ddr.total_bandwidth_bytes_per_s() * options.dram_efficiency;

  double total_time = 0.0;
  double total_real_flops = 0.0;
  double latency = 0.0;

  for (const GemmDims& gemm : gemms) {
    FpgaLayerReport layer;
    layer.dims = gemm;
    layer.blocking = block_gemm(gemm, grid);

    const double block_compute_s =
        static_cast<double>(layer.blocking.cycles_per_block) / clock_hz;
    const double block_memory_s =
        static_cast<double>(layer.blocking.bytes_per_block) / bandwidth;

    layer.bandwidth_need_gbs =
        static_cast<double>(layer.blocking.bytes_per_block) / block_compute_s / 1e9;
    layer.bandwidth_bound = block_memory_s > block_compute_s;

    // Double buffering overlaps the next block's loads with the current
    // block's compute, so the steady-state block time is the max of the two.
    const double block_time = std::max(block_compute_s, block_memory_s);
    const double blocks = static_cast<double>(layer.blocking.total_blocks);

    layer.compute_seconds = block_compute_s * blocks;
    layer.memory_seconds = block_memory_s * blocks;
    // First block cannot overlap its own load (pipeline fill).
    layer.time_seconds = block_time * blocks + block_memory_s + options.layer_overhead_seconds;

    total_time += layer.time_seconds;
    total_real_flops += static_cast<double>(gemm.flops());
    // First result row of this layer: one block through the grid.
    latency += block_compute_s + block_memory_s + options.layer_overhead_seconds;

    report.any_bandwidth_bound = report.any_bandwidth_bound || layer.bandwidth_bound;
    report.layers.push_back(layer);
  }

  report.total_time_seconds = total_time;
  report.effective_gflops = total_real_flops / total_time / 1e9;
  report.outputs_per_second = static_cast<double>(gemms.front().m) / total_time;
  report.latency_seconds = latency;
  report.efficiency =
      report.potential_gflops <= 0.0 ? 0.0 : report.effective_gflops / report.potential_gflops;
  return report;
}

}  // namespace ecad::hw
