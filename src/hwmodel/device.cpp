#include "hwmodel/device.h"

namespace ecad::hw {

FpgaDevice arria10_gx1150(std::size_t ddr_banks) {
  FpgaDevice device;
  device.name = "Arria 10 GX 1150";
  device.dsp_count = 1518;
  device.m20k_count = 2713;
  device.alm_count = 427200;
  device.clock_mhz = 250.0;  // "250 MHz was, on average, the frequency the
                             //  OpenCL design achieved" (§IV)
  device.ddr.banks = ddr_banks;
  device.ddr.bandwidth_per_bank_gbs = 19.2;
  return device;
}

FpgaDevice stratix10_2800(std::size_t ddr_banks) {
  FpgaDevice device;
  device.name = "Stratix 10 2800";
  device.dsp_count = 5760;
  device.m20k_count = 11721;
  device.alm_count = 933120;
  device.clock_mhz = 400.0;  // paper searched S10 at 400 MHz (4.6 TFLOP/s roofline)
  device.ddr.banks = ddr_banks;
  device.ddr.bandwidth_per_bank_gbs = 19.2;
  return device;
}

GpuDevice quadro_m5000() {
  GpuDevice device;
  device.name = "Quadro M5000";
  device.peak_tflops = 4.3;
  device.bandwidth_gbs = 211.0;
  device.sm_count = 16;
  device.board_power_w = 150.0;
  return device;
}

GpuDevice titan_x() {
  GpuDevice device;
  device.name = "Titan X";
  device.peak_tflops = 12.0;
  device.bandwidth_gbs = 480.0;
  device.sm_count = 28;
  device.board_power_w = 250.0;
  return device;
}

GpuDevice radeon_vii() {
  GpuDevice device;
  device.name = "Radeon VII";
  device.peak_tflops = 13.44;
  device.bandwidth_gbs = 1000.0;
  device.sm_count = 60;
  device.board_power_w = 295.0;
  return device;
}

}  // namespace ecad::hw
