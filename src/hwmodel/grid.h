// Systolic-grid overlay configuration — the "HW traits" half of a genome.
//
// Paper §III-C: "the design we used is based on a 2D systolic array
// architecture ... The variables are the number of rows and columns, double
// buffer cache sizes for each dimension, called interleaving, and the vector
// width of each processing element (PE)."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hwmodel/device.h"

namespace ecad::hw {

struct GridConfig {
  std::size_t rows = 8;          // PE rows (M dimension)
  std::size_t cols = 8;          // PE columns (N dimension)
  std::size_t vec_width = 8;     // MACs per PE per cycle (K dimension)
  std::size_t interleave_m = 4;  // double-buffer depth along M, per PE row
  std::size_t interleave_n = 4;  // double-buffer depth along N, per PE column

  /// DSPs consumed: one FP32 MAC per lane.
  std::size_t dsp_usage() const { return rows * cols * vec_width; }

  /// C-block footprint computed per grid pass.
  std::size_t block_m() const { return rows * interleave_m; }
  std::size_t block_n() const { return cols * interleave_n; }

  /// MACs retired per clock by the whole array.
  std::size_t macs_per_cycle() const { return rows * cols * vec_width; }

  /// Grid roofline on a device (GFLOP/s at the device clock), before
  /// bandwidth derating — the paper's "potential performance".
  double potential_gflops(const FpgaDevice& device) const {
    return static_cast<double>(macs_per_cycle()) * 2.0 * device.clock_mhz / 1e3;
  }

  /// True when the configuration fits the device's DSP budget.
  bool fits(const FpgaDevice& device) const { return dsp_usage() <= device.dsp_count; }

  /// "8x8x8 im4 in4" style id, used by the candidate cache.
  std::string to_string() const;

  /// Throws std::invalid_argument for zero-sized fields.
  void validate() const;

  friend bool operator==(const GridConfig& a, const GridConfig& b) {
    return a.rows == b.rows && a.cols == b.cols && a.vec_width == b.vec_width &&
           a.interleave_m == b.interleave_m && a.interleave_n == b.interleave_n;
  }
  friend bool operator!=(const GridConfig& a, const GridConfig& b) { return !(a == b); }
};

/// Bounds of the hardware search space (mutations stay inside these).
struct GridBounds {
  std::vector<std::size_t> row_choices = {2, 4, 8, 16, 32};
  std::vector<std::size_t> col_choices = {2, 4, 8, 16, 32};
  std::vector<std::size_t> vec_choices = {4, 8, 16};
  std::vector<std::size_t> interleave_choices = {1, 2, 4, 8, 16, 32};
};

/// All in-bounds configurations that fit `device` (exhaustive enumeration,
/// used by tests and the bandwidth-sweep bench).
std::vector<GridConfig> enumerate_grids(const GridBounds& bounds, const FpgaDevice& device);

}  // namespace ecad::hw
