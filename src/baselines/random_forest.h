// Bagged random forest over CART trees — stands in for mlr.classif.ranger,
// the "Top Method" for credit-g and bioresponse in Table I.
#pragma once

#include <memory>
#include <vector>

#include "baselines/decision_tree.h"

namespace ecad::baselines {

struct RandomForestOptions {
  std::size_t num_trees = 50;
  DecisionTreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  /// If 0, max_features defaults to sqrt(num_features) per tree.
  std::size_t max_features = 0;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {}) : options_(options) {}

  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "RandomForest(ranger)"; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

}  // namespace ecad::baselines
