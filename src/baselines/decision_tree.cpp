#include "baselines/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecad::baselines {

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

void DecisionTree::fit(const data::Dataset& train, util::Rng& rng) {
  if (train.num_samples() == 0) throw std::invalid_argument("DecisionTree: empty dataset");
  nodes_.clear();
  train_ = &train;
  num_classes_ = train.num_classes;
  std::vector<std::size_t> all(train.num_samples());
  std::iota(all.begin(), all.end(), 0);
  build(all, 0, rng);
  train_ = nullptr;
}

int DecisionTree::build(const std::vector<std::size_t>& samples, std::size_t depth,
                        util::Rng& rng) {
  const data::Dataset& train = *train_;

  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t s : samples) ++counts[static_cast<std::size_t>(train.labels[s])];
  const int majority = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const double node_gini = gini(counts, samples.size());

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_index)].label = majority;

  const bool stop = depth >= options_.max_depth || samples.size() < options_.min_samples_split ||
                    node_gini <= 1e-12;
  if (stop) return node_index;

  // Candidate features: all, or a random subset (random forest mode).
  const std::size_t num_features = train.num_features();
  std::vector<std::size_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  std::size_t feature_count = num_features;
  if (options_.max_features > 0 && options_.max_features < num_features) {
    rng.shuffle(features);
    feature_count = options_.max_features;
  }

  double best_score = node_gini;  // must strictly improve
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<float> values(samples.size());
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t feature = features[fi];
    for (std::size_t i = 0; i < samples.size(); ++i) {
      values[i] = train.features.at(samples[i], feature);
    }
    // Quantile-cut thresholds over a sorted copy.
    std::vector<float> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front() == sorted.back()) continue;

    const std::size_t cuts = std::min<std::size_t>(options_.max_thresholds, sorted.size() - 1);
    float previous_threshold = std::numeric_limits<float>::quiet_NaN();
    for (std::size_t cut = 1; cut <= cuts; ++cut) {
      const std::size_t pos = cut * (sorted.size() - 1) / (cuts + 1) + 1;
      const float threshold = 0.5f * (sorted[pos - 1] + sorted[pos]);
      if (threshold == previous_threshold) continue;
      previous_threshold = threshold;

      std::vector<std::size_t> left_counts(num_classes_, 0), right_counts(num_classes_, 0);
      std::size_t left_total = 0;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const std::size_t label = static_cast<std::size_t>(train.labels[samples[i]]);
        if (values[i] <= threshold) {
          ++left_counts[label];
          ++left_total;
        } else {
          ++right_counts[label];
        }
      }
      const std::size_t right_total = samples.size() - left_total;
      if (left_total < options_.min_samples_leaf || right_total < options_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (gini(left_counts, left_total) * static_cast<double>(left_total) +
           gini(right_counts, right_total) * static_cast<double>(right_total)) /
          static_cast<double>(samples.size());
      if (weighted + 1e-12 < best_score) {
        best_score = weighted;
        best_feature = static_cast<int>(feature);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left_samples, right_samples;
  for (std::size_t s : samples) {
    if (train.features.at(s, static_cast<std::size_t>(best_feature)) <= best_threshold) {
      left_samples.push_back(s);
    } else {
      right_samples.push_back(s);
    }
  }
  if (left_samples.empty() || right_samples.empty()) return node_index;

  const int left = build(left_samples, depth + 1, rng);
  const int right = build(right_samples, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

int DecisionTree::predict_one(ecad::span<const float> row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: predict before fit");
  std::size_t index = 0;
  for (;;) {
    const Node& node = nodes_[index];
    if (node.feature < 0) return node.label;
    const float value = row[static_cast<std::size_t>(node.feature)];
    index = static_cast<std::size_t>(value <= node.threshold ? node.left : node.right);
  }
}

std::vector<int> DecisionTree::predict(const linalg::Matrix& features) const {
  std::vector<int> out(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) out[r] = predict_one(features.row(r));
  return out;
}

std::size_t DecisionTree::depth() const {
  // Depth via iterative DFS over the index-linked nodes.
  if (nodes_.empty()) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (node.feature >= 0) {
      stack.push_back({static_cast<std::size_t>(node.left), depth + 1});
      stack.push_back({static_cast<std::size_t>(node.right), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace ecad::baselines
