#include "baselines/random_forest.h"

#include <cmath>
#include <stdexcept>

namespace ecad::baselines {

void RandomForest::fit(const data::Dataset& train, util::Rng& rng) {
  if (train.num_samples() == 0) throw std::invalid_argument("RandomForest: empty dataset");
  if (options_.num_trees == 0) throw std::invalid_argument("RandomForest: need >= 1 tree");
  num_classes_ = train.num_classes;
  trees_.clear();
  trees_.reserve(options_.num_trees);

  DecisionTreeOptions tree_options = options_.tree;
  tree_options.max_features =
      options_.max_features > 0
          ? options_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::sqrt(static_cast<double>(train.num_features()))));

  const std::size_t bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(train.num_samples()) * options_.subsample));
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    std::vector<std::size_t> bag(bag_size);
    for (std::size_t& index : bag) index = rng.next_index(train.num_samples());
    const data::Dataset sample = train.subset(bag);
    DecisionTree tree(tree_options);
    tree.fit(sample, rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<int> RandomForest::predict(const linalg::Matrix& features) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: predict before fit");
  std::vector<int> out(features.rows());
  std::vector<std::size_t> votes(num_classes_);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    std::fill(votes.begin(), votes.end(), 0);
    for (const DecisionTree& tree : trees_) {
      ++votes[static_cast<std::size_t>(tree.predict_one(features.row(r)))];
    }
    out[r] = static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return out;
}

}  // namespace ecad::baselines
