#include "baselines/classifier.h"

#include <functional>

#include "data/preprocess.h"
#include "data/splits.h"
#include "nn/metrics.h"

namespace ecad::baselines {

double kfold_accuracy(const std::function<std::unique_ptr<Classifier>()>& factory,
                      const data::Dataset& pool, std::size_t k, util::Rng& rng) {
  const auto folds = data::stratified_kfold(pool, k, rng);
  double total = 0.0;
  for (const auto& fold : folds) {
    data::TrainTestSplit split = data::materialize_fold(pool, fold);
    data::standardize_together(split.train, {&split.test});
    auto classifier = factory();
    classifier->fit(split.train, rng);
    total += nn::accuracy(classifier->predict(split.test.features), split.test.labels);
  }
  return folds.empty() ? 0.0 : total / static_cast<double>(folds.size());
}

double holdout_accuracy(Classifier& classifier, const data::TrainTestSplit& split,
                        util::Rng& rng) {
  classifier.fit(split.train, rng);
  return nn::accuracy(classifier.predict(split.test.features), split.test.labels);
}

}  // namespace ecad::baselines
