// Linear SVM with hinge loss, one-vs-rest for multiclass — stands in for
// sklearn's SVC in Tables I/II (phishing, fashion-mnist top methods).
#pragma once

#include "baselines/classifier.h"
#include "linalg/matrix.h"

namespace ecad::baselines {

struct LinearSvcOptions {
  std::size_t epochs = 40;
  double learning_rate = 0.05;
  /// L2 regularization strength (lambda in the Pegasos formulation).
  double l2 = 1e-4;
};

class LinearSvc final : public Classifier {
 public:
  explicit LinearSvc(LinearSvcOptions options = {}) : options_(options) {}

  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "SVC(linear,ovr)"; }

 private:
  LinearSvcOptions options_;
  linalg::Matrix weights_;  // d x c (one column per one-vs-rest machine)
  linalg::Matrix bias_;     // 1 x c
};

}  // namespace ecad::baselines
