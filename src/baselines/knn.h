// k-nearest-neighbour classifier (exact, Euclidean).
#pragma once

#include "baselines/classifier.h"

namespace ecad::baselines {

struct KnnOptions {
  std::size_t k = 5;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnOptions options = {}) : options_(options) {}

  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "KNeighborsClassifier"; }

 private:
  KnnOptions options_;
  data::Dataset train_;
};

}  // namespace ecad::baselines
