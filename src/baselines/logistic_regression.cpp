#include "baselines/logistic_regression.h"

#include <numeric>
#include <stdexcept>

#include "linalg/gemm.h"
#include "linalg/vector_ops.h"
#include "nn/activation.h"

namespace ecad::baselines {

void LogisticRegression::fit(const data::Dataset& train, util::Rng& rng) {
  if (train.num_samples() == 0) throw std::invalid_argument("LogisticRegression: empty dataset");
  const std::size_t d = train.num_features();
  const std::size_t c = train.num_classes;
  weights_.reshape_discard(d, c);
  bias_.reshape_discard(1, c);

  std::vector<std::size_t> order(train.num_samples());
  std::iota(order.begin(), order.end(), 0);

  linalg::Matrix batch_x, logits, proba, grad_w(d, c);
  std::vector<int> batch_y;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t begin = 0; begin < order.size(); begin += options_.batch_size) {
      const std::size_t end = std::min(begin + options_.batch_size, order.size());
      const std::size_t batch = end - begin;
      batch_x.reshape_discard(batch, d);
      batch_y.resize(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t src = order[begin + i];
        std::copy(train.features.row(src).begin(), train.features.row(src).end(),
                  batch_x.row(i).begin());
        batch_y[i] = train.labels[src];
      }
      linalg::affine(batch_x, weights_, bias_, logits);
      nn::softmax_rows(logits, proba);
      // proba -= onehot; scaled by 1/batch.
      const float inv = 1.0f / static_cast<float>(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        proba.at(i, static_cast<std::size_t>(batch_y[i])) -= 1.0f;
      }
      linalg::scale_inplace(proba.data(), inv);
      linalg::gemm_at(batch_x, proba, grad_w);

      const float lr = static_cast<float>(options_.learning_rate);
      const float l2 = static_cast<float>(options_.l2);
      for (std::size_t i = 0; i < weights_.size(); ++i) {
        weights_.data()[i] -= lr * (grad_w.data()[i] + l2 * weights_.data()[i]);
      }
      for (std::size_t j = 0; j < c; ++j) {
        float g = 0.0f;
        for (std::size_t i = 0; i < batch; ++i) g += proba.at(i, j);
        bias_.at(0, j) -= lr * g;
      }
    }
  }
}

std::vector<int> LogisticRegression::predict(const linalg::Matrix& features) const {
  if (weights_.empty()) throw std::logic_error("LogisticRegression: predict before fit");
  linalg::Matrix logits;
  linalg::affine(features, weights_, bias_, logits);
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    out[r] = static_cast<int>(linalg::argmax(logits.row(r)));
  }
  return out;
}

}  // namespace ecad::baselines
