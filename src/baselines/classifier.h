// Common interface for the classical baseline classifiers the paper's
// Tables I/II compare against (sklearn's DecisionTreeClassifier, SVC,
// MLPClassifier defaults, mlr's ranger random forest, ...).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/splits.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace ecad::baselines {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fit on a dataset. Throws std::invalid_argument on degenerate input.
  virtual void fit(const data::Dataset& train, util::Rng& rng) = 0;

  /// Predict class ids for each row. Requires fit() first.
  virtual std::vector<int> predict(const linalg::Matrix& features) const = 0;

  virtual std::string name() const = 0;
};

/// 10-fold (or k-fold) cross-validated accuracy of a classifier factory.
/// A fresh classifier is built per fold via `factory`.
double kfold_accuracy(const std::function<std::unique_ptr<Classifier>()>& factory,
                      const data::Dataset& pool, std::size_t k, util::Rng& rng);

/// Train-once/test-once accuracy on a pre-split dataset.
double holdout_accuracy(Classifier& classifier, const data::TrainTestSplit& split,
                        util::Rng& rng);

}  // namespace ecad::baselines
