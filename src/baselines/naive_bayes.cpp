#include "baselines/naive_bayes.h"

#include <cmath>
#include <stdexcept>

namespace ecad::baselines {

void GaussianNaiveBayes::fit(const data::Dataset& train, util::Rng&) {
  if (train.num_samples() == 0) throw std::invalid_argument("GaussianNB: empty dataset");
  const std::size_t c = train.num_classes;
  const std::size_t d = train.num_features();
  mean_.reshape_discard(c, d);
  variance_.reshape_discard(c, d);
  log_prior_.assign(c, 0.0);

  const auto counts = train.class_counts();
  for (std::size_t r = 0; r < train.num_samples(); ++r) {
    const std::size_t label = static_cast<std::size_t>(train.labels[r]);
    for (std::size_t f = 0; f < d; ++f) mean_.at(label, f) += train.features.at(r, f);
  }
  for (std::size_t cls = 0; cls < c; ++cls) {
    const float n = static_cast<float>(std::max<std::size_t>(1, counts[cls]));
    for (std::size_t f = 0; f < d; ++f) mean_.at(cls, f) /= n;
  }
  for (std::size_t r = 0; r < train.num_samples(); ++r) {
    const std::size_t label = static_cast<std::size_t>(train.labels[r]);
    for (std::size_t f = 0; f < d; ++f) {
      const float dv = train.features.at(r, f) - mean_.at(label, f);
      variance_.at(label, f) += dv * dv;
    }
  }
  for (std::size_t cls = 0; cls < c; ++cls) {
    const float n = static_cast<float>(std::max<std::size_t>(1, counts[cls]));
    for (std::size_t f = 0; f < d; ++f) {
      variance_.at(cls, f) = std::max(variance_.at(cls, f) / n, 1e-6f);
    }
    log_prior_[cls] = std::log(
        std::max(1e-12, static_cast<double>(counts[cls]) /
                            static_cast<double>(train.num_samples())));
  }
}

std::vector<int> GaussianNaiveBayes::predict(const linalg::Matrix& features) const {
  if (mean_.empty()) throw std::logic_error("GaussianNB: predict before fit");
  const std::size_t c = mean_.rows();
  const std::size_t d = mean_.cols();
  std::vector<int> out(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    double best_score = -std::numeric_limits<double>::infinity();
    int best_class = 0;
    for (std::size_t cls = 0; cls < c; ++cls) {
      double score = log_prior_[cls];
      for (std::size_t f = 0; f < d; ++f) {
        const double var = variance_.at(cls, f);
        const double diff = features.at(r, f) - mean_.at(cls, f);
        score += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
      }
      if (score > best_score) {
        best_score = score;
        best_class = static_cast<int>(cls);
      }
    }
    out[r] = best_class;
  }
  return out;
}

}  // namespace ecad::baselines
