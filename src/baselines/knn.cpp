#include "baselines/knn.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace ecad::baselines {

void Knn::fit(const data::Dataset& train, util::Rng&) {
  if (train.num_samples() == 0) throw std::invalid_argument("Knn: empty dataset");
  if (options_.k == 0) throw std::invalid_argument("Knn: k must be > 0");
  train_ = train;
}

std::vector<int> Knn::predict(const linalg::Matrix& features) const {
  if (train_.num_samples() == 0) throw std::logic_error("Knn: predict before fit");
  const std::size_t k = std::min(options_.k, train_.num_samples());
  std::vector<int> out(features.rows());
  std::vector<std::pair<float, int>> distances(train_.num_samples());
  std::vector<std::size_t> votes(train_.num_classes);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto query = features.row(r);
    for (std::size_t t = 0; t < train_.num_samples(); ++t) {
      distances[t] = {linalg::squared_distance(query, train_.features.row(t)), train_.labels[t]};
    }
    std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                      distances.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; });
    std::fill(votes.begin(), votes.end(), 0);
    for (std::size_t i = 0; i < k; ++i) ++votes[static_cast<std::size_t>(distances[i].second)];
    out[r] = static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return out;
}

}  // namespace ecad::baselines
