#include "baselines/linear_svc.h"

#include <numeric>
#include <stdexcept>

#include "linalg/gemm.h"
#include "linalg/vector_ops.h"

namespace ecad::baselines {

void LinearSvc::fit(const data::Dataset& train, util::Rng& rng) {
  if (train.num_samples() == 0) throw std::invalid_argument("LinearSvc: empty dataset");
  const std::size_t d = train.num_features();
  const std::size_t c = train.num_classes;
  weights_.reshape_discard(d, c);
  bias_.reshape_discard(1, c);

  std::vector<std::size_t> order(train.num_samples());
  std::iota(order.begin(), order.end(), 0);

  // Pegasos-style SGD: one sample at a time, per-machine hinge subgradient.
  std::size_t step = 1;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t index : order) {
      const float lr =
          static_cast<float>(options_.learning_rate / (1.0 + options_.l2 * static_cast<double>(step)));
      const auto row = train.features.row(index);
      for (std::size_t machine = 0; machine < c; ++machine) {
        const float target =
            train.labels[index] == static_cast<int>(machine) ? 1.0f : -1.0f;
        float score = bias_.at(0, machine);
        for (std::size_t f = 0; f < d; ++f) score += weights_.at(f, machine) * row[f];
        // L2 shrink.
        const float shrink = 1.0f - lr * static_cast<float>(options_.l2);
        for (std::size_t f = 0; f < d; ++f) weights_.at(f, machine) *= shrink;
        if (target * score < 1.0f) {  // margin violation -> hinge subgradient
          for (std::size_t f = 0; f < d; ++f) weights_.at(f, machine) += lr * target * row[f];
          bias_.at(0, machine) += lr * target;
        }
      }
      ++step;
    }
  }
}

std::vector<int> LinearSvc::predict(const linalg::Matrix& features) const {
  if (weights_.empty()) throw std::logic_error("LinearSvc: predict before fit");
  linalg::Matrix scores;
  linalg::affine(features, weights_, bias_, scores);
  std::vector<int> out(scores.rows());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    out[r] = static_cast<int>(linalg::argmax(scores.row(r)));
  }
  return out;
}

}  // namespace ecad::baselines
