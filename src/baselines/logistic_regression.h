// Multinomial logistic regression trained with minibatch SGD — the linear
// reference point among the baselines.
#pragma once

#include "baselines/classifier.h"
#include "linalg/matrix.h"

namespace ecad::baselines {

struct LogisticRegressionOptions {
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {}) : options_(options) {}

  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "LogisticRegression"; }

  const linalg::Matrix& weights() const { return weights_; }

 private:
  LogisticRegressionOptions options_;
  linalg::Matrix weights_;  // d x c
  linalg::Matrix bias_;     // 1 x c
};

}  // namespace ecad::baselines
