// CART-style decision tree (Gini impurity, axis-aligned splits) — stands in
// for sklearn's DecisionTreeClassifier in Table I.
#pragma once

#include <cstddef>
#include "util/span.h"
#include <vector>

#include "baselines/classifier.h"

namespace ecad::baselines {

struct DecisionTreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split; 0 = all, otherwise a random subset of
  /// this size (used by RandomForest for decorrelation).
  std::size_t max_features = 0;
  /// Candidate thresholds per feature (quantile cuts); bounds split search
  /// cost on wide datasets like bioresponse (1776 features).
  std::size_t max_thresholds = 16;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {}) : options_(options) {}

  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "DecisionTreeClassifier"; }

  /// Predict a single sample.
  int predict_one(ecad::span<const float> row) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Leaf when feature == -1.
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;   // indices into nodes_
    int right = -1;
    int label = 0;   // majority label (leaves)
  };

  int build(const std::vector<std::size_t>& samples, std::size_t depth, util::Rng& rng);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  const data::Dataset* train_ = nullptr;  // valid only during fit()
  std::size_t num_classes_ = 0;
};

}  // namespace ecad::baselines
