// Gaussian naive Bayes: per-class feature means/variances + log priors.
#pragma once

#include "baselines/classifier.h"
#include "linalg/matrix.h"

namespace ecad::baselines {

class GaussianNaiveBayes final : public Classifier {
 public:
  void fit(const data::Dataset& train, util::Rng& rng) override;
  std::vector<int> predict(const linalg::Matrix& features) const override;
  std::string name() const override { return "GaussianNB"; }

 private:
  linalg::Matrix mean_;      // c x d
  linalg::Matrix variance_;  // c x d (floored)
  std::vector<double> log_prior_;
};

}  // namespace ecad::baselines
