#include "core/search_scheduler.h"

#include <algorithm>
#include <limits>

#include "evo/pareto.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace ecad::core {

// ---------------------------------------------------------------------------
// FairShareGate

void FairShareGate::add(std::uint64_t id, double weight, std::uint64_t remaining) {
  util::MutexLock lock(mutex_);
  Entry entry;
  entry.weight = weight > 0.0 ? weight : 1.0;
  entry.pass = virtual_time_;  // no credit for time spent unregistered
  entry.remaining = remaining;
  entries_[id] = entry;
}

void FairShareGate::remove(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  entries_.erase(id);
  // Wake everyone: a blocked acquire(id) must notice its entry vanished,
  // and removing a low-pass waiter may promote another search to "next".
  cv_.notify_all();
}

void FairShareGate::set_remaining(std::uint64_t id, std::uint64_t remaining) {
  util::MutexLock lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.remaining = remaining;
}

bool FairShareGate::acquire(std::uint64_t id, std::size_t items) {
  // How long dispatches sit waiting for a slot — the contention signal the
  // autoscaling direction needs.  The cv wait releases the mutex, so the
  // stopwatch spans exactly the blocked time plus lock overhead.
  static util::Histogram& wait_hist = util::metrics().histogram("scheduler.gate_wait_seconds");
  static util::Gauge& pass_gauge = util::metrics().gauge("scheduler.gate_pass");
  util::Stopwatch waited;
  util::MutexLock lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  // Catch up to the global virtual time: a search that sat out several
  // rounds (breeding, folding, or just created) must not have banked an
  // arbitrarily low pass, or it would monopolize the gate until it
  // "repaid" time it never contended for.
  it->second.pass = std::max(it->second.pass, virtual_time_);
  it->second.waiting = true;
  for (;;) {
    it = entries_.find(id);
    if (it == entries_.end()) return false;  // removed while waiting (cancel/drain)
    if (in_use_ < slots_ && next_waiting_locked() == id) break;
    cv_.wait(mutex_);
  }
  Entry& entry = it->second;
  entry.waiting = false;
  virtual_time_ = entry.pass;
  entry.pass += static_cast<double>(items) / entry.weight;
  ++entry.grants;
  ++in_use_;
  wait_hist.observe(waited.elapsed_seconds());
  pass_gauge.set(virtual_time_);
  return true;
}

void FairShareGate::release() {
  util::MutexLock lock(mutex_);
  if (in_use_ > 0) --in_use_;
  cv_.notify_all();
}

std::uint64_t FairShareGate::grants(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.grants;
}

std::uint64_t FairShareGate::next_waiting_locked() const {
  std::uint64_t chosen = 0;
  const Entry* best = nullptr;
  for (const auto& [id, entry] : entries_) {
    if (!entry.waiting) continue;
    const bool wins = best == nullptr || entry.pass < best->pass ||
                      (entry.pass == best->pass && entry.remaining < best->remaining);
    if (wins) {
      best = &entry;
      chosen = id;
    }
  }
  return chosen;  // map order makes "lowest id" the implicit final tiebreak
}

// ---------------------------------------------------------------------------
// SearchScheduler

const char* to_string(SearchState state) {
  switch (state) {
    case SearchState::Queued: return "queued";
    case SearchState::Running: return "running";
    case SearchState::Completed: return "completed";
    case SearchState::Canceled: return "canceled";
    case SearchState::Failed: return "failed";
  }
  return "unknown";
}

SearchScheduler::SearchScheduler(const Worker& worker, SearchSchedulerOptions options)
    : worker_(worker),
      options_(options),
      registry_(evo::FitnessRegistry::with_builtins()),
      gate_(options.dispatch_slots) {
  if (options_.max_concurrent_searches == 0) options_.max_concurrent_searches = 1;
  if (options_.checkpoint.enabled()) {
    ensure_checkpoint_dir(options_.checkpoint.dir);
    journal_ = std::make_unique<SubmissionJournal>(
        SubmissionJournal::journal_path(options_.checkpoint.dir));
  }
  runners_.reserve(options_.max_concurrent_searches);
  for (std::size_t i = 0; i < options_.max_concurrent_searches; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

SearchScheduler::~SearchScheduler() {
  drain();
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& runner : runners_) runner.join();
}

std::uint64_t SearchScheduler::submit(SearchRequest request, ProgressFn on_progress,
                                      DoneFn on_done) {
  registry_.get(request.fitness);  // unknown fitness fails fast, pre-queue
  auto search = std::make_shared<Search>();
  search->request = std::move(request);
  search->on_progress = std::move(on_progress);
  search->on_done = std::move(on_done);
  return enqueue(std::move(search), /*journal=*/true);
}

std::uint64_t SearchScheduler::resume_submit(const ResumableSearch& resumable,
                                             ProgressFn on_progress, DoneFn on_done) {
  registry_.get(resumable.request.fitness);
  auto search = std::make_shared<Search>();
  search->id = resumable.search_id;
  search->request = resumable.request;
  search->on_progress = std::move(on_progress);
  search->on_done = std::move(on_done);
  if (resumable.has_snapshot) {
    search->resume_from = std::make_shared<evo::EngineSnapshot>(resumable.snapshot);
  }
  // Already journaled by the process that accepted it.
  return enqueue(std::move(search), /*journal=*/false);
}

std::uint64_t SearchScheduler::enqueue(std::shared_ptr<Search> search, bool journal) {
  std::uint64_t id = 0;
  std::uint64_t budget = search->request.evolution.max_evaluations;
  if (search->resume_from) {
    const std::uint64_t spent = search->resume_from->models_evaluated;
    budget = budget > spent ? budget - spent : 0;
  }
  {
    util::MutexLock lock(mutex_);
    if (draining_) throw std::runtime_error("scheduler is draining; rejecting new searches");
    if (search->id != 0) {
      // Resumed search: keep its original id, never reuse it for new work.
      id = search->id;
      if (searches_.count(id) != 0) {
        throw std::runtime_error("search id " + std::to_string(id) + " is already registered");
      }
      next_id_ = std::max(next_id_, id + 1);
    } else {
      id = next_id_++;
      search->id = id;
    }
    // Journal before the id escapes this process: once submit() returns (and
    // the SearchAccepted frame goes out), a daemon kill must not lose the
    // accepted search.  The append is durable (fsync) and under the mutex,
    // so journal order matches id order.
    if (journal && journal_) journal_->append(id, search->request);
    searches_.emplace(id, search);
    // Equal stride weights: fairness is per-batch round-robin, with the
    // remaining-budget tiebreak deciding turn order within a round.  The
    // gate must learn the id before the search is poppable: a runner that
    // reaches acquire() first would read "unregistered" as "canceled".
    gate_.add(id, 1.0, budget);
    queue_.push_back(std::move(search));
  }
  work_cv_.notify_one();
  return id;
}

bool SearchScheduler::cancel(std::uint64_t id, const std::string& reason) {
  std::shared_ptr<Search> search;
  {
    util::MutexLock lock(mutex_);
    auto it = searches_.find(id);
    if (it == searches_.end()) return false;
    search = it->second;
    if (search->state != SearchState::Queued && search->state != SearchState::Running) {
      return false;  // already terminal
    }
    search->cancel_reason = reason;
  }
  search->cancel_requested.store(true, std::memory_order_release);
  // Deregistering unblocks a dispatcher waiting in acquire() (it returns
  // false -> SearchCanceled) and guarantees nothing new is admitted.
  gate_.remove(id);
  util::Log(util::LogLevel::Info, "core")
      << "search " << id << " cancel requested" << (reason.empty() ? "" : (": " + reason));
  return true;
}

void SearchScheduler::drain() {
  {
    util::MutexLock lock(mutex_);
    if (!draining_) {
      draining_ = true;
      util::Log(util::LogLevel::Info, "core")
          << "scheduler draining: " << queue_.size() << " queued, " << running_
          << " running searches";
    }
  }
  wait_idle();
}

void SearchScheduler::wait_idle() {
  util::MutexLock lock(mutex_);
  while (running_ > 0 || !queue_.empty()) idle_cv_.wait(mutex_);
}

std::size_t SearchScheduler::active_searches() const {
  util::MutexLock lock(mutex_);
  return queue_.size() + running_;
}

SearchState SearchScheduler::state_of(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  auto it = searches_.find(id);
  return it == searches_.end() ? SearchState::Failed : it->second->state;
}

bool SearchScheduler::draining() const {
  util::MutexLock lock(mutex_);
  return draining_;
}

std::string SearchScheduler::cancel_reason_for(Search& search) {
  util::MutexLock lock(mutex_);
  return search.cancel_reason.empty() ? std::string("canceled") : search.cancel_reason;
}

void SearchScheduler::runner_loop() {
  for (;;) {
    std::shared_ptr<Search> search;
    {
      util::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping, nothing left to run
      search = queue_.front();
      queue_.pop_front();
      search->state = SearchState::Running;
      ++running_;
    }
    static util::Gauge& active_gauge = util::metrics().gauge("scheduler.searches_active");
    active_gauge.add(1.0);
    SearchOutcome outcome = run_one(*search);
    active_gauge.add(-1.0);
    {
      util::MutexLock lock(mutex_);
      search->state = outcome.state;
    }
    // The done-callback runs before running_ drops so drain() returning
    // implies every terminal frame has been handed to its connection.
    if (search->on_done) search->on_done(outcome);
    {
      util::MutexLock lock(mutex_);
      --running_;
      idle_cv_.notify_all();
    }
  }
}

SearchOutcome SearchScheduler::run_one(Search& search) {
  util::TraceSpan span("core", "search " + std::to_string(search.id));
  SearchOutcome outcome;
  outcome.search_id = search.id;
  std::unique_ptr<CheckpointWriter> writer;
  if (options_.checkpoint.enabled()) {
    writer = std::make_unique<CheckpointWriter>(options_.checkpoint.dir, search.id,
                                                search.request, options_.checkpoint.every);
  }
  // Terminal bookkeeping: everything except a drain-cancel drops the .done
  // marker (a drained search is exactly what --resume must pick back up; a
  // client cancel, completion, or failure must never be re-admitted).
  const auto seal_unless_drain_resumable = [&] {
    if (!writer) return;
    const bool drain_resumable =
        outcome.state == SearchState::Canceled &&
        !search.cancel_requested.load(std::memory_order_acquire);
    if (!drain_resumable) writer->mark_done();
  };
  try {
    if (search.cancel_requested.load(std::memory_order_acquire)) {
      gate_.remove(search.id);
      outcome.state = SearchState::Canceled;
      outcome.message = cancel_reason_for(search);
      seal_unless_drain_resumable();
      return outcome;
    }
    if (draining()) {  // was queued when the drain started
      gate_.remove(search.id);
      outcome.state = SearchState::Canceled;
      outcome.message = "daemon draining";
      seal_unless_drain_resumable();
      return outcome;
    }
    const auto& fitness = registry_.get(search.request.fitness);
    // The exact Master::search evaluator — the full EvalPipeline (dedup ->
    // fleet cache -> dispatch) — with the fair-share gate in front: one
    // Grant per generation batch, held for the batch's whole worker
    // round-trip.  Tenants share one Worker, so they share its fleet cache:
    // a genome one tenant evaluated settles from cache for every other.
    const evo::EvolutionEngine::BatchEvaluator inner = make_search_evaluator(worker_);
    const std::uint64_t id = search.id;
    evo::EvolutionEngine engine(
        search.request.space, search.request.evolution,
        [this, id, &inner](const std::vector<evo::Genome>& genomes, util::ThreadPool& pool) {
          FairShareGate::Grant grant(gate_, id, genomes.size());
          return inner(genomes, pool);
        },
        fitness);
    bool stopped_early = false;
    engine.set_progress_observer([this, &search, &stopped_early](
                                     const evo::GenerationProgress& progress) {
      gate_.set_remaining(search.id,
                          search.request.evolution.max_evaluations > progress.models_evaluated
                              ? search.request.evolution.max_evaluations - progress.models_evaluated
                              : 0);
      emit_progress(search, static_cast<std::uint32_t>(progress.generation), *progress.population,
                    *progress.history, progress.models_evaluated);
      const bool keep = !search.cancel_requested.load(std::memory_order_acquire) && !draining();
      if (!keep) stopped_early = true;
      return keep;
    });
    if (writer) {
      engine.set_checkpoint_sink(
          [&writer](const evo::EngineSnapshot& snapshot) { writer->write(snapshot); });
    }
    util::Rng rng(search.request.seed);
    util::ThreadPool pool(search.request.threads);
    evo::EvolutionResult result = search.resume_from ? engine.resume(*search.resume_from, rng, pool)
                                                     : engine.run(rng, pool);
    gate_.remove(search.id);
    if (search.cancel_requested.load(std::memory_order_acquire)) {
      outcome.state = SearchState::Canceled;
      outcome.message = cancel_reason_for(search);
    } else if (stopped_early &&
               result.stats.models_evaluated < search.request.evolution.max_evaluations) {
      outcome.state = SearchState::Canceled;
      outcome.message = "daemon draining";
    } else {
      outcome.state = SearchState::Completed;
      outcome.result = std::move(result);
    }
  } catch (const SearchCanceled&) {
    gate_.remove(search.id);
    outcome.state = SearchState::Canceled;
    outcome.message = search.cancel_requested.load(std::memory_order_acquire)
                          ? cancel_reason_for(search)
                          : "daemon draining";
  } catch (const std::exception& e) {
    gate_.remove(search.id);
    outcome.state = SearchState::Failed;
    outcome.message = e.what();
  }
  seal_unless_drain_resumable();
  util::Log(util::LogLevel::Info, "core")
      << "search " << search.id << ' ' << to_string(outcome.state)
      << (outcome.message.empty() ? "" : (": " + outcome.message));
  return outcome;
}

void SearchScheduler::emit_progress(Search& search, std::uint32_t generation,
                                    const std::vector<evo::Candidate>& population,
                                    const std::vector<evo::Candidate>& history,
                                    std::size_t models_evaluated) {
  const std::string label = std::to_string(search.id);
  util::metrics()
      .gauge(util::labeled_metric("scheduler.generation", "search", label))
      .set(static_cast<double>(generation));
  util::metrics()
      .gauge(util::labeled_metric("scheduler.models_evaluated", "search", label))
      .set(static_cast<double>(models_evaluated));
  if (!search.on_progress) return;
  SearchProgressInfo info;
  info.search_id = search.id;
  info.generation = generation;
  info.models_evaluated = models_evaluated;
  info.max_evaluations = search.request.evolution.max_evaluations;
  std::vector<evo::EvalResult> results;
  results.reserve(population.size());
  for (const evo::Candidate& candidate : population) results.push_back(candidate.result);
  const std::vector<evo::Metric> metrics = {evo::Metric::Accuracy, evo::Metric::Throughput};
  info.pareto_front_size = static_cast<std::uint32_t>(evo::pareto_front(results, metrics).size());
  double best = -std::numeric_limits<double>::infinity();
  for (const evo::Candidate& candidate : history) best = std::max(best, candidate.fitness);
  info.best_fitness = best;
  search.on_progress(info);
}

}  // namespace ecad::core
