#include "core/worker.h"

#include <functional>

#include "core/eval_pipeline.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace ecad::core {

evo::EvalOutcome evaluate_outcome(const Worker& worker, const evo::Genome& genome) {
  // Counted here — the single funnel every evaluation passes through,
  // whether dispatched by the local Master, a WorkerServer pool task, or a
  // scheduler tenant — so evals_completed_total is ground truth for the
  // stats consistency checks in the smoke scripts.
  static util::Counter& completed = util::metrics().counter("core.evals_completed_total");
  static util::Counter& failed = util::metrics().counter("core.evals_failed_total");
  static util::Histogram& latency = util::metrics().histogram("core.eval_seconds");
  evo::EvalOutcome outcome;
  util::Stopwatch watch;
  try {
    outcome.result = worker.evaluate(genome);
    outcome.result.eval_seconds = watch.elapsed_seconds();
    outcome.ok = true;
    completed.add(1);
    latency.observe(outcome.result.eval_seconds);
  } catch (const std::exception& e) {
    outcome.error = e.what();
    failed.add(1);
  } catch (...) {
    outcome.error = "unknown evaluation error";
    failed.add(1);
  }
  return outcome;
}

std::vector<evo::EvalOutcome> Worker::evaluate_batch(const std::vector<evo::Genome>& genomes,
                                                     util::ThreadPool& pool) const {
  std::vector<evo::EvalOutcome> outcomes(genomes.size());
  pool.parallel_for(genomes.size(),
                    [&](std::size_t i) { outcomes[i] = evaluate_outcome(*this, genomes[i]); });
  return outcomes;
}

std::vector<evo::EvalOutcome> evaluate_batch_deduped(const Worker& worker,
                                                     const std::vector<evo::Genome>& genomes,
                                                     util::ThreadPool& pool) {
  EvalPipelineOptions options;
  options.fleet_cache = false;
  return EvalPipeline(worker, options).evaluate(genomes, pool);
}

namespace {

// Deterministic per-genome training seed: identical genomes always train the
// same way, so cached results are exactly reproducible.
std::uint64_t genome_seed(std::uint64_t base, const evo::Genome& genome) {
  return base ^ std::hash<std::string>{}(genome.key());
}

}  // namespace

AccuracyWorker::AccuracyWorker(const data::TrainTestSplit& split, nn::TrainOptions options,
                               std::uint64_t seed)
    : split_(split), options_(options), seed_(seed) {}

evo::EvalResult AccuracyWorker::evaluate_accuracy(const evo::Genome& genome) const {
  evo::EvalResult result;
  const nn::MlpSpec spec =
      genome.nna.to_mlp_spec(split_.train.num_features(), split_.train.num_classes);
  spec.validate();
  result.parameters = static_cast<double>(spec.num_parameters());
  result.flops_per_sample = static_cast<double>(spec.flops_per_sample());

  util::Rng rng(genome_seed(seed_, genome));
  nn::Mlp mlp(spec, rng);
  nn::train(mlp, split_.train, /*validation=*/nullptr, options_, rng);
  result.accuracy = nn::evaluate_accuracy(mlp, split_.test);
  return result;
}

evo::EvalResult AccuracyWorker::evaluate(const evo::Genome& genome) const {
  return evaluate_accuracy(genome);
}

FpgaHardwareDatabaseWorker::FpgaHardwareDatabaseWorker(const data::TrainTestSplit& split,
                                                       nn::TrainOptions options,
                                                       std::uint64_t seed, hw::FpgaDevice device,
                                                       std::size_t batch)
    : AccuracyWorker(split, options, seed), device_(std::move(device)), batch_(batch) {}

evo::EvalResult FpgaHardwareDatabaseWorker::evaluate(const evo::Genome& genome) const {
  // Infeasible grids are not trained at all — fail fast, as the paper's
  // engine discards configurations that cannot map to the device.
  if (!genome.grid.fits(device_)) {
    evo::EvalResult result;
    result.feasible = false;
    return result;
  }
  evo::EvalResult result = evaluate_accuracy(genome);
  const nn::MlpSpec spec =
      genome.nna.to_mlp_spec(split_.train.num_features(), split_.train.num_classes);
  const hw::FpgaPerfReport perf = hw::evaluate_fpga(spec, batch_, genome.grid, device_);
  result.outputs_per_second = perf.outputs_per_second;
  result.latency_seconds = perf.latency_seconds;
  result.potential_gflops = perf.potential_gflops;
  result.effective_gflops = perf.effective_gflops;
  result.hw_efficiency = perf.efficiency;

  const hw::PhysicalReport physical = hw::estimate_physical(genome.grid, device_);
  result.power_watts = physical.power_watts;
  result.fmax_mhz = physical.fmax_mhz;
  result.feasible = physical.fits;
  return result;
}

GpuSimulationWorker::GpuSimulationWorker(const data::TrainTestSplit& split,
                                         nn::TrainOptions options, std::uint64_t seed,
                                         hw::GpuDevice device, std::size_t batch)
    : AccuracyWorker(split, options, seed), device_(std::move(device)), batch_(batch) {}

evo::EvalResult GpuSimulationWorker::evaluate(const evo::Genome& genome) const {
  evo::EvalResult result = evaluate_accuracy(genome);
  const nn::MlpSpec spec =
      genome.nna.to_mlp_spec(split_.train.num_features(), split_.train.num_classes);
  const hw::GpuPerfReport perf = hw::evaluate_gpu(spec, batch_, device_);
  result.outputs_per_second = perf.outputs_per_second;
  result.latency_seconds = perf.latency_seconds;
  result.potential_gflops = perf.peak_gflops;
  result.effective_gflops = perf.effective_gflops;
  result.hw_efficiency = perf.efficiency;
  result.power_watts = device_.board_power_w * 0.33;  // paper: ~50 W on a 150 W device
  return result;
}

evo::EvalResult PhysicalWorker::evaluate(const evo::Genome& genome) const {
  const hw::PhysicalReport physical = report(genome.grid);
  evo::EvalResult result;
  result.power_watts = physical.power_watts;
  result.fmax_mhz = physical.fmax_mhz;
  result.feasible = physical.fits;
  result.hw_efficiency = 0.0;
  return result;
}

hw::PhysicalReport PhysicalWorker::report(const hw::GridConfig& grid) const {
  return hw::estimate_physical(grid, device_);
}

}  // namespace ecad::core
