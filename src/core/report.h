// Result emission: search histories to CSV (for re-plotting the paper's
// figures) and summary rows for the bench tables.
#pragma once

#include <string>
#include <vector>

#include "evo/engine.h"
#include "util/csv.h"

namespace ecad::core {

/// One row per evaluated candidate: genome, accuracy, throughput, latency,
/// efficiency, power, parameters.
util::CsvTable history_to_csv(const std::vector<evo::Candidate>& history);

/// Write the history CSV next to a bench run.
void write_history(const std::vector<evo::Candidate>& history, const std::string& path);

/// The candidate with maximum accuracy.
const evo::Candidate& best_by_accuracy(const std::vector<evo::Candidate>& history);

/// The candidate with maximum throughput among those with accuracy within
/// `accuracy_slack` of the best (Table IV's "second row" selection).
const evo::Candidate& best_throughput_within(const std::vector<evo::Candidate>& history,
                                             double accuracy_slack);

}  // namespace ecad::core
