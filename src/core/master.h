// The ECAD Master process (paper §III-A): "The Master process orchestrates
// the evaluation process by distributing the co-design population and by
// evaluating the results. Result evaluation is done using user defined
// fitness functions."
#pragma once

#include <memory>
#include <string>

#include "core/worker.h"
#include "evo/engine.h"
#include "evo/pareto.h"
#include "util/thread_pool.h"

namespace ecad::core {

struct SearchRequest {
  evo::SearchSpace space;
  evo::EvolutionConfig evolution;
  /// Name in the fitness registry ("accuracy", "accuracy_x_throughput", ...).
  std::string fitness = "accuracy";
  std::uint64_t seed = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// Crash-safety knobs shared by Master::search and the scheduler (see
/// core/checkpoint.h for the on-disk format).
struct CheckpointOptions {
  /// Directory for search_<id>.ckpt files; empty disables checkpointing.
  std::string dir;
  /// Persist every Nth generation boundary (1 = all; boundary 0 always
  /// persists).  Larger values trade re-done work after a crash for less
  /// fsync traffic on short generations.
  std::size_t every = 1;

  bool enabled() const { return !dir.empty(); }
};

/// The batch evaluator every search dispatches through: generation-sized
/// chunks flow through a full EvalPipeline (dedup -> fleet cache ->
/// dispatch; see core/eval_pipeline.h), and failed slots are annotated with
/// the worker name + genome key so a remote failure names its candidate.
/// Shared by Master::search and the search-as-a-service scheduler so a
/// submitted search reproduces the standalone one bit for bit.  `worker` is
/// borrowed and must outlive the returned evaluator.
evo::EvolutionEngine::BatchEvaluator make_search_evaluator(const Worker& worker);

class Master {
 public:
  /// Custom fitness functions may be registered before running searches.
  Master() : registry_(evo::FitnessRegistry::with_builtins()) {}

  evo::FitnessRegistry& registry() { return registry_; }

  /// Run one evolutionary search with `worker` as the evaluation backend.
  /// Throws std::out_of_range for unknown fitness names.
  evo::EvolutionResult search(const Worker& worker, const SearchRequest& request) const;

  /// Same search, checkpointing engine state under `checkpoint.dir` (search
  /// id 1, the one-shot convention) so a killed process can resume_search().
  evo::EvolutionResult search(const Worker& worker, const SearchRequest& request,
                              const CheckpointOptions& checkpoint) const;

  /// Continue the one-shot search persisted under `checkpoint.dir`.  Loads
  /// the newest resumable checkpoint (lowest search id), restores the
  /// request embedded in it (`loaded_request`, optional out), and runs to
  /// completion — bit-identical to the uninterrupted run.  Checkpointing
  /// continues during the resumed run.  Throws std::runtime_error when the
  /// directory holds nothing resumable.
  evo::EvolutionResult resume_search(const Worker& worker, const CheckpointOptions& checkpoint,
                                     SearchRequest* loaded_request = nullptr) const;

  /// Pareto front of a search history over the given metrics (Table IV,
  /// Figs. 2/4 post-processing).
  static std::vector<evo::Candidate> pareto_candidates(
      const std::vector<evo::Candidate>& history, const std::vector<evo::Metric>& metrics);

 private:
  evo::FitnessRegistry registry_;
};

}  // namespace ecad::core
