// The ECAD Master process (paper §III-A): "The Master process orchestrates
// the evaluation process by distributing the co-design population and by
// evaluating the results. Result evaluation is done using user defined
// fitness functions."
#pragma once

#include <memory>
#include <string>

#include "core/worker.h"
#include "evo/engine.h"
#include "evo/pareto.h"
#include "util/thread_pool.h"

namespace ecad::core {

struct SearchRequest {
  evo::SearchSpace space;
  evo::EvolutionConfig evolution;
  /// Name in the fitness registry ("accuracy", "accuracy_x_throughput", ...).
  std::string fitness = "accuracy";
  std::uint64_t seed = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// The batch evaluator every search dispatches through: generation-sized
/// chunks flow through a full EvalPipeline (dedup -> fleet cache ->
/// dispatch; see core/eval_pipeline.h), and failed slots are annotated with
/// the worker name + genome key so a remote failure names its candidate.
/// Shared by Master::search and the search-as-a-service scheduler so a
/// submitted search reproduces the standalone one bit for bit.  `worker` is
/// borrowed and must outlive the returned evaluator.
evo::EvolutionEngine::BatchEvaluator make_search_evaluator(const Worker& worker);

class Master {
 public:
  /// Custom fitness functions may be registered before running searches.
  Master() : registry_(evo::FitnessRegistry::with_builtins()) {}

  evo::FitnessRegistry& registry() { return registry_; }

  /// Run one evolutionary search with `worker` as the evaluation backend.
  /// Throws std::out_of_range for unknown fitness names.
  evo::EvolutionResult search(const Worker& worker, const SearchRequest& request) const;

  /// Pareto front of a search history over the given metrics (Table IV,
  /// Figs. 2/4 post-processing).
  static std::vector<evo::Candidate> pareto_candidates(
      const std::vector<evo::Candidate>& history, const std::vector<evo::Metric>& metrics);

 private:
  evo::FitnessRegistry registry_;
};

}  // namespace ecad::core
