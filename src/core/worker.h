// ECAD workers (paper §III-B): "The evolutionary search has three workers at
// its disposal to assess the fitness of various hardware platforms":
//
//  * simulation workers    — run candidates on instruction-set hardware
//                            (here: the GPU occupancy model + MLP training);
//  * hardware database     — analytical overlay models for FPGAs;
//  * physical workers      — synthesis-level resource/power/Fmax estimates.
//
// Every worker maps a Genome to an EvalResult; the Master dispatches these
// from its thread pool, so workers must be const-callable and thread-safe.
#pragma once

#include <memory>
#include <string>

#include "data/splits.h"
#include "evo/fitness.h"
#include "evo/genome.h"
#include "hwmodel/device.h"
#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/resource_model.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ecad::core {

class FleetEvalCache;  // core/eval_pipeline.h

class Worker {
 public:
  virtual ~Worker() = default;
  virtual std::string name() const = 0;
  /// Evaluate one candidate. Must be thread-safe.
  virtual evo::EvalResult evaluate(const evo::Genome& genome) const = 0;

  /// Evaluate a whole generation-sized chunk, one outcome slot per genome in
  /// input order.  The default fans the items across `pool` via evaluate(),
  /// catching each item's exception into its error slot (one poisoned genome
  /// fails its slot, never the batch).  net::RemoteWorker overrides this to
  /// ship the chunk across the wire in EvalBatchRequest frames.
  virtual std::vector<evo::EvalOutcome> evaluate_batch(const std::vector<evo::Genome>& genomes,
                                                       util::ThreadPool& pool) const;

  /// Fleet-wide content-addressed result cache for this worker's
  /// evaluations, or nullptr (the default) when none is available.
  /// EvalPipeline consults it between dedup and dispatch; net::RemoteWorker
  /// overrides this to expose the wire-protocol v6 cache tier.  The returned
  /// pointer is borrowed and must stay valid for the worker's lifetime.
  virtual const FleetEvalCache* fleet_cache() const { return nullptr; }
};

/// Evaluate one genome into an outcome slot: result + wall-clock
/// eval_seconds on success, the exception message in the error slot on
/// failure.  Shared by the default batch fan-out and the WorkerServer's
/// batch executor so the two layers' slot semantics cannot diverge.
evo::EvalOutcome evaluate_outcome(const Worker& worker, const evo::Genome& genome);

/// Batch dispatch with intra-batch dedup: genomes sharing a canonical key
/// are collapsed to one evaluation before the worker (possibly a remote
/// fleet) sees the chunk, and the single outcome is fanned back to every
/// slot that asked for it.  Workers are deterministic per genome, so the
/// fan-out is exact — duplicate slots hold bit-identical results.
///
/// Compatibility shim: this is EvalPipeline (core/eval_pipeline.h) with the
/// fleet-cache stage disabled, kept for callers that want dedup semantics
/// without wiring up pipeline options.  New code should compose an
/// EvalPipeline directly.
std::vector<evo::EvalOutcome> evaluate_batch_deduped(const Worker& worker,
                                                     const std::vector<evo::Genome>& genomes,
                                                     util::ThreadPool& pool);

/// Accuracy-only worker: trains the candidate MLP on the split and measures
/// test accuracy.  Used directly for Table I/II accuracy searches.
class AccuracyWorker : public Worker {
 public:
  /// `split` must outlive the worker.  `seed` makes training deterministic
  /// per genome (genome key hashed into the stream).
  AccuracyWorker(const data::TrainTestSplit& split, nn::TrainOptions options,
                 std::uint64_t seed);

  std::string name() const override { return "accuracy"; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

 protected:
  /// Train + fill the accuracy/parameter fields; shared with subclasses.
  evo::EvalResult evaluate_accuracy(const evo::Genome& genome) const;

  const data::TrainTestSplit& split_;
  nn::TrainOptions options_;
  std::uint64_t seed_;
};

/// Hardware database worker: accuracy + analytical FPGA overlay performance
/// + physical (resource/power/Fmax) estimates for the same grid.
class FpgaHardwareDatabaseWorker final : public AccuracyWorker {
 public:
  FpgaHardwareDatabaseWorker(const data::TrainTestSplit& split, nn::TrainOptions options,
                             std::uint64_t seed, hw::FpgaDevice device, std::size_t batch = 256);

  std::string name() const override { return "hw-db:" + device_.name; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

  const hw::FpgaDevice& device() const { return device_; }

 private:
  hw::FpgaDevice device_;
  std::size_t batch_;
};

/// Simulation worker for GPUs: accuracy + the occupancy/roofline GPU model.
/// The hardware half of the genome is ignored (fixed architecture).
class GpuSimulationWorker final : public AccuracyWorker {
 public:
  GpuSimulationWorker(const data::TrainTestSplit& split, nn::TrainOptions options,
                      std::uint64_t seed, hw::GpuDevice device, std::size_t batch = 512);

  std::string name() const override { return "sim:" + device_.name; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

 private:
  hw::GpuDevice device_;
  std::size_t batch_;
};

/// Physical worker: synthesis estimates only — no training, so it is cheap
/// enough to sweep (paper §IV power/Fmax statistics).
class PhysicalWorker final : public Worker {
 public:
  explicit PhysicalWorker(hw::FpgaDevice device) : device_(std::move(device)) {}

  std::string name() const override { return "physical:" + device_.name; }
  evo::EvalResult evaluate(const evo::Genome& genome) const override;

  hw::PhysicalReport report(const hw::GridConfig& grid) const;

 private:
  hw::FpgaDevice device_;
};

}  // namespace ecad::core
