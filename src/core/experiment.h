// Config-file driven experiments: the paper's flow starts from "a
// configuration file ... contain[ing] information on (a) the general NNA
// structure ..., (b) Hardware target ..., (c) optimization targets" (§III).
//
// INI schema (all keys optional unless noted):
//   [dataset]    benchmark = credit-g | har | phishing | bioresponse |
//                            mnist | fashion-mnist            (required)
//                sample_scale = 1.0         seed = 1
//   [nna]        min_layers = 1             max_layers = 4
//                widths = 4,8,...,512       allow_no_bias = true
//   [hardware]   target = arria10 | stratix10 | m5000 | titanx | radeon7
//                ddr_banks = 1              batch = 256
//   [train]      epochs = 20  batch_size = 32  learning_rate = 1e-3
//   [search]     fitness = accuracy_x_throughput
//                population = 16  evaluations = 60  seed = 7  threads = 0
#pragma once

#include <string>

#include "core/master.h"
#include "data/benchmarks.h"
#include "util/config.h"

namespace ecad::core {

struct ExperimentSetup {
  data::Benchmark benchmark;
  data::TrainTestSplit split;
  SearchRequest request;
  nn::TrainOptions train_options;
  std::string hardware_target;  // normalized name
  std::size_t batch = 256;
  std::size_t ddr_banks = 1;
  std::uint64_t data_seed = 1;
};

/// Parse + materialize an experiment from a config.  Throws
/// std::invalid_argument / std::out_of_range on schema errors.
ExperimentSetup setup_from_config(const util::Config& config);

/// Build the worker named by `setup.hardware_target` ("accuracy" when the
/// config requested no hardware).  The returned worker references
/// `setup.split`; keep `setup` alive while using it.
std::unique_ptr<Worker> make_worker(const ExperimentSetup& setup);

struct ExperimentOutcome {
  evo::EvolutionResult result;
  std::string worker_name;
};

/// One-call runner: setup -> worker -> master search.
ExperimentOutcome run_experiment(const util::Config& config);

}  // namespace ecad::core
