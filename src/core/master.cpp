#include "core/master.h"

#include <stdexcept>

#include "core/eval_pipeline.h"

namespace ecad::core {

evo::EvolutionEngine::BatchEvaluator make_search_evaluator(const Worker& worker) {
  // Failed slots are annotated with the worker name + genome key: the engine
  // throws the first one, and without the key a remote- or training-failure
  // is undiagnosable ("which of the 64 candidates was it?").
  return [&worker, pipeline = EvalPipeline(worker)](const std::vector<evo::Genome>& genomes,
                                                    util::ThreadPool& pool) {
    std::vector<evo::EvalOutcome> outcomes = pipeline.evaluate(genomes, pool);
    for (std::size_t i = 0; i < outcomes.size() && i < genomes.size(); ++i) {
      if (!outcomes[i].ok) {
        outcomes[i].error = "worker '" + worker.name() + "' failed on genome " + genomes[i].key() +
                            ": " + outcomes[i].error;
      }
    }
    return outcomes;
  };
}

evo::EvolutionResult Master::search(const Worker& worker, const SearchRequest& request) const {
  const auto& fitness = registry_.get(request.fitness);
  evo::EvolutionEngine engine(request.space, request.evolution, make_search_evaluator(worker),
                              fitness);
  util::Rng rng(request.seed);
  util::ThreadPool pool(request.threads);
  return engine.run(rng, pool);
}

std::vector<evo::Candidate> Master::pareto_candidates(const std::vector<evo::Candidate>& history,
                                                      const std::vector<evo::Metric>& metrics) {
  std::vector<evo::EvalResult> results;
  results.reserve(history.size());
  for (const auto& candidate : history) results.push_back(candidate.result);
  std::vector<evo::Candidate> front;
  for (std::size_t index : evo::pareto_front(results, metrics)) {
    front.push_back(history[index]);
  }
  // Highest accuracy first — the order Table IV lists its two rows.
  std::sort(front.begin(), front.end(), [](const evo::Candidate& a, const evo::Candidate& b) {
    return a.result.accuracy > b.result.accuracy;
  });
  return front;
}

}  // namespace ecad::core
