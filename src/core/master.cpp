#include "core/master.h"

#include <stdexcept>

namespace ecad::core {

evo::EvolutionResult Master::search(const Worker& worker, const SearchRequest& request) const {
  const auto& fitness = registry_.get(request.fitness);
  // Annotate worker failures with the offending genome: the pool rethrows the
  // first exception of a batch, but without the genome key a remote- or
  // training-failure is undiagnosable ("which of the 64 candidates was it?").
  evo::EvolutionEngine engine(
      request.space, request.evolution,
      [&worker](const evo::Genome& genome) {
        try {
          return worker.evaluate(genome);
        } catch (const std::exception& e) {
          throw std::runtime_error("worker '" + worker.name() + "' failed on genome " +
                                   genome.key() + ": " + e.what());
        }
      },
      fitness);
  util::Rng rng(request.seed);
  util::ThreadPool pool(request.threads);
  return engine.run(rng, pool);
}

std::vector<evo::Candidate> Master::pareto_candidates(const std::vector<evo::Candidate>& history,
                                                      const std::vector<evo::Metric>& metrics) {
  std::vector<evo::EvalResult> results;
  results.reserve(history.size());
  for (const auto& candidate : history) results.push_back(candidate.result);
  std::vector<evo::Candidate> front;
  for (std::size_t index : evo::pareto_front(results, metrics)) {
    front.push_back(history[index]);
  }
  // Highest accuracy first — the order Table IV lists its two rows.
  std::sort(front.begin(), front.end(), [](const evo::Candidate& a, const evo::Candidate& b) {
    return a.result.accuracy > b.result.accuracy;
  });
  return front;
}

}  // namespace ecad::core
