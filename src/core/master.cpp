#include "core/master.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/eval_pipeline.h"
#include "util/logging.h"

namespace ecad::core {

evo::EvolutionEngine::BatchEvaluator make_search_evaluator(const Worker& worker) {
  // Failed slots are annotated with the worker name + genome key: the engine
  // throws the first one, and without the key a remote- or training-failure
  // is undiagnosable ("which of the 64 candidates was it?").
  return [&worker, pipeline = EvalPipeline(worker)](const std::vector<evo::Genome>& genomes,
                                                    util::ThreadPool& pool) {
    std::vector<evo::EvalOutcome> outcomes = pipeline.evaluate(genomes, pool);
    for (std::size_t i = 0; i < outcomes.size() && i < genomes.size(); ++i) {
      if (!outcomes[i].ok) {
        outcomes[i].error = "worker '" + worker.name() + "' failed on genome " + genomes[i].key() +
                            ": " + outcomes[i].error;
      }
    }
    return outcomes;
  };
}

evo::EvolutionResult Master::search(const Worker& worker, const SearchRequest& request) const {
  return search(worker, request, CheckpointOptions{});
}

// One-shot searches checkpoint as search id 1 — the same layout the
// scheduler uses for tenant 1, so resume_search and the service scan share
// one format.
static constexpr std::uint64_t kOneShotSearchId = 1;

evo::EvolutionResult Master::search(const Worker& worker, const SearchRequest& request,
                                    const CheckpointOptions& checkpoint) const {
  const auto& fitness = registry_.get(request.fitness);
  evo::EvolutionEngine engine(request.space, request.evolution, make_search_evaluator(worker),
                              fitness);
  std::unique_ptr<CheckpointWriter> writer;
  if (checkpoint.enabled()) {
    ensure_checkpoint_dir(checkpoint.dir);
    writer = std::make_unique<CheckpointWriter>(checkpoint.dir, kOneShotSearchId, request,
                                                checkpoint.every);
    engine.set_checkpoint_sink(
        [&writer](const evo::EngineSnapshot& snapshot) { writer->write(snapshot); });
  }
  util::Rng rng(request.seed);
  util::ThreadPool pool(request.threads);
  evo::EvolutionResult result = engine.run(rng, pool);
  if (writer) writer->mark_done();
  return result;
}

evo::EvolutionResult Master::resume_search(const Worker& worker,
                                           const CheckpointOptions& checkpoint,
                                           SearchRequest* loaded_request) const {
  std::vector<ResumableSearch> resumable = scan_checkpoint_dir(checkpoint.dir);
  // Lowest id wins: one-shot runs only ever write id 1, and a directory with
  // several tenants resumes deterministically.
  auto it = std::find_if(resumable.begin(), resumable.end(),
                         [](const ResumableSearch& entry) { return entry.has_snapshot; });
  if (it == resumable.end()) {
    throw std::runtime_error("no resumable checkpoint under '" + checkpoint.dir + "'");
  }
  const ResumableSearch& entry = *it;
  if (loaded_request != nullptr) *loaded_request = entry.request;
  util::Log(util::LogLevel::Info, "core")
      << "resuming search " << entry.search_id << " from '" << checkpoint.dir << "' at generation "
      << entry.snapshot.generation;

  const auto& fitness = registry_.get(entry.request.fitness);
  evo::EvolutionEngine engine(entry.request.space, entry.request.evolution,
                              make_search_evaluator(worker), fitness);
  CheckpointWriter writer(checkpoint.dir, entry.search_id, entry.request, checkpoint.every);
  engine.set_checkpoint_sink(
      [&writer](const evo::EngineSnapshot& snapshot) { writer.write(snapshot); });
  util::Rng rng(entry.request.seed);
  util::ThreadPool pool(entry.request.threads);
  evo::EvolutionResult result = engine.resume(entry.snapshot, rng, pool);
  writer.mark_done();
  return result;
}

std::vector<evo::Candidate> Master::pareto_candidates(const std::vector<evo::Candidate>& history,
                                                      const std::vector<evo::Metric>& metrics) {
  std::vector<evo::EvalResult> results;
  results.reserve(history.size());
  for (const auto& candidate : history) results.push_back(candidate.result);
  std::vector<evo::Candidate> front;
  for (std::size_t index : evo::pareto_front(results, metrics)) {
    front.push_back(history[index]);
  }
  // Highest accuracy first — the order Table IV lists its two rows.
  std::sort(front.begin(), front.end(), [](const evo::Candidate& a, const evo::Candidate& b) {
    return a.result.accuracy > b.result.accuracy;
  });
  return front;
}

}  // namespace ecad::core
