#include "core/eval_pipeline.h"

#include <cstddef>
#include <string>
#include <unordered_map>

#include "util/metrics.h"

namespace ecad::core {

EvalPipeline::EvalPipeline(const Worker& worker, EvalPipelineOptions options)
    : worker_(worker), options_(options) {}

std::vector<evo::EvalOutcome> EvalPipeline::evaluate(const std::vector<evo::Genome>& genomes,
                                                     util::ThreadPool& pool) const {
  // Stage 1: dedup.  Slot index -> position in the unique chunk (first
  // occurrence wins), exactly the evaluate_batch_deduped mapping.
  std::vector<std::size_t> slot_to_unique(genomes.size());
  std::vector<evo::Genome> unique;
  unique.reserve(genomes.size());
  if (options_.dedup) {
    std::unordered_map<std::string, std::size_t> first_by_key;
    first_by_key.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      const auto [it, inserted] = first_by_key.emplace(genomes[i].key(), unique.size());
      if (inserted) unique.push_back(genomes[i]);
      slot_to_unique[i] = it->second;
    }
  } else {
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      unique.push_back(genomes[i]);
      slot_to_unique[i] = i;
    }
  }

  const FleetEvalCache* cache = options_.fleet_cache ? worker_.fleet_cache() : nullptr;

  // Fast path: both upstream stages are inert, so the pipeline *is* the
  // worker's batch call — bit-identical to the pre-pipeline dispatch.
  if (cache == nullptr && unique.size() == genomes.size()) {
    return worker_.evaluate_batch(genomes, pool);
  }

  if (unique.size() != genomes.size()) {
    static util::Counter& collapsed = util::metrics().counter("core.dedup_collapsed_total");
    collapsed.add(genomes.size() - unique.size());
  }

  // Stage 2: fleet cache.  Hits settle their slot (ok = true); everything
  // still unsettled afterwards is a miss bound for dispatch.
  std::vector<evo::EvalOutcome> unique_outcomes(unique.size());
  if (cache != nullptr) cache->fleet_lookup(unique, unique_outcomes);

  // Stage 3: dispatch the misses, then publish fresh successes.  Cache hits
  // are deliberately NOT re-stored — they are already fleet-wide facts.
  std::vector<std::size_t> miss_slots;
  std::vector<evo::Genome> misses;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (!unique_outcomes[i].ok) {
      miss_slots.push_back(i);
      misses.push_back(unique[i]);
    }
  }
  if (!misses.empty()) {
    std::vector<evo::EvalOutcome> dispatched = worker_.evaluate_batch(misses, pool);
    if (dispatched.size() != misses.size()) {
      // Propagate a malformed backend answer verbatim; the engine's size
      // check is the layer that reports it.
      return dispatched;
    }
    if (cache != nullptr) cache->fleet_store(misses, dispatched);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      unique_outcomes[miss_slots[i]] = std::move(dispatched[i]);
    }
  }

  if (unique.size() == genomes.size()) return unique_outcomes;
  std::vector<evo::EvalOutcome> outcomes(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    outcomes[i] = unique_outcomes[slot_to_unique[i]];
  }
  return outcomes;
}

}  // namespace ecad::core
