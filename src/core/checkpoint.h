// Crash-safe persistence for searches: per-search checkpoint files, a
// persistent submission journal, and the directory scan `--resume` runs.
//
// On-disk layout under a checkpoint dir:
//   search_<id>.ckpt  — atomic snapshot (magic + format version + search id
//                       + SearchRequest + evo::EngineSnapshot), rewritten at
//                       generation boundaries via tmp+fsync+rename, so a
//                       reader only ever sees a complete snapshot.
//   search_<id>.done  — terminal marker: the search completed (or failed, or
//                       was canceled by its client) and must not be resumed.
//   journal.bin       — append-only submission journal: every accepted
//                       SubmitSearch is recorded before it is acknowledged,
//                       so queued-but-unstarted searches survive a daemon
//                       kill.  Torn tails (a crash mid-append) are ignored.
//
// All codecs ride util::kSnapshotFormatVersion; loaders throw
// util::SnapshotError on malformed bytes and the scan degrades per-search
// (a corrupt checkpoint falls back to the journaled request) instead of
// refusing to start the daemon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/master.h"
#include "evo/snapshot.h"
#include "util/snapshot_io.h"

namespace ecad::core {

/// Magic prefix of a checkpoint file ("ECCK") and a journal file ("ECJL").
inline constexpr std::uint32_t kCheckpointMagic = 0x4b434345u;
inline constexpr std::uint32_t kJournalMagic = 0x4c4a4345u;

/// SearchRequest codec (field order mirrors the wire's SubmitSearch payload
/// so the two stay reviewable side by side).
void write_search_request_snapshot(util::SnapshotWriter& writer, const SearchRequest& request);
SearchRequest read_search_request_snapshot(util::SnapshotReader& reader);

/// One resumable search on disk.
struct SearchCheckpoint {
  std::uint64_t search_id = 0;
  SearchRequest request;
  evo::EngineSnapshot snapshot;
};

std::vector<std::uint8_t> serialize_checkpoint(const SearchCheckpoint& checkpoint);
/// Throws util::SnapshotError on malformed/truncated/version-mismatched bytes.
SearchCheckpoint deserialize_checkpoint(const std::vector<std::uint8_t>& bytes);

std::string checkpoint_path(const std::string& dir, std::uint64_t search_id);
std::string done_marker_path(const std::string& dir, std::uint64_t search_id);

/// Create `dir` if missing (parents not created). Throws util::SnapshotError
/// when the directory cannot be created or is not writable.
void ensure_checkpoint_dir(const std::string& dir);

/// Per-search checkpoint sink: persists every `every`-th engine snapshot
/// atomically (crash label "checkpoint", so ECAD_CRASH_AFTER can kill the
/// process at the torn-tmp or post-rename instant), and drops the terminal
/// marker when the search finishes.
class CheckpointWriter {
 public:
  /// `every` == N persists every Nth boundary (minimum 1).
  CheckpointWriter(std::string dir, std::uint64_t search_id, SearchRequest request,
                   std::size_t every = 1);

  /// Maybe-persist one engine snapshot (throttled by `every`).
  void write(const evo::EngineSnapshot& snapshot);

  /// Terminal: write search_<id>.done and remove the checkpoint so a resume
  /// scan skips this search forever.
  void mark_done();

 private:
  std::string dir_;
  std::uint64_t search_id_ = 0;
  SearchRequest request_;
  std::size_t every_ = 1;
  std::size_t boundaries_seen_ = 0;
};

/// Append-only journal of accepted submissions.  The writer fsyncs each
/// entry before submit() acknowledges, so an accepted search is never lost;
/// load() stops silently at a torn tail (crash mid-append).
class SubmissionJournal {
 public:
  struct Entry {
    std::uint64_t search_id = 0;
    SearchRequest request;
  };

  /// Opens (creates) `path` for appending. Throws util::SnapshotError.
  explicit SubmissionJournal(std::string path);
  ~SubmissionJournal();

  SubmissionJournal(const SubmissionJournal&) = delete;
  SubmissionJournal& operator=(const SubmissionJournal&) = delete;

  /// Durably append one accepted submission.
  void append(std::uint64_t search_id, const SearchRequest& request);

  /// Read every complete entry; a missing file yields {}.  Malformed entries
  /// after a valid prefix (torn tail) are ignored.
  static std::vector<Entry> load(const std::string& path);

  static std::string journal_path(const std::string& dir);

 private:
  std::string path_;
  int fd_ = -1;
};

/// One search the resume scan decided to re-admit.
struct ResumableSearch {
  std::uint64_t search_id = 0;
  SearchRequest request;
  /// True: `snapshot` holds mid-search state to resume from.  False: the
  /// search was journaled but never checkpointed (queued or just started) —
  /// re-admit it from scratch.
  bool has_snapshot = false;
  evo::EngineSnapshot snapshot;
};

/// Scan a checkpoint dir for unfinished searches: pair journal entries with
/// checkpoint files, skip anything with a .done marker, report corrupt
/// checkpoints (falling back to the journaled request when available), and
/// return the survivors **sorted by search id** so FairShareGate
/// re-admission order is deterministic regardless of directory-entry order.
std::vector<ResumableSearch> scan_checkpoint_dir(const std::string& dir);

}  // namespace ecad::core
