// Multi-tenant search scheduling for the resident master daemon (the
// "search-as-a-service" half of the paper's master process): N concurrent
// EvolutionEngine instances share one evaluation backend, with fair-share
// batch interleaving, per-search cancellation, and a graceful drain that
// lets in-flight generations finish before the daemon exits.
//
// Fairness model: every evaluation batch must pass through the
// FairShareGate before it reaches the worker fleet.  The gate implements
// stride scheduling — each search carries a weight and a "pass" (virtual
// time); when a dispatch slot frees up, the waiting search with the lowest
// pass wins, and its pass advances by items/weight.  With equal weights
// this degenerates to round-robin over *batches*, so two 24-evaluation
// searches interleave with a 10k-evaluation search instead of queuing
// behind it; ties in pass are broken toward the search with the least
// remaining budget, so the round order favors searches that are nearly
// done (they release their runner soonest).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/master.h"
#include "core/worker.h"
#include "util/mutex.h"
#include "util/thread_safety.h"

namespace ecad::core {

/// Thrown out of a gated batch evaluator when the search's gate entry
/// vanished mid-wait (cancellation or drain removed it).  The scheduler
/// catches it and turns the search into a Canceled outcome; nothing else
/// should swallow it.
class SearchCanceled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Stride-scheduling admission gate for evaluation batches.  At most
/// `slots` batches are in flight at once; among waiting searches the one
/// with the lowest pass (then least remaining budget, then lowest id) is
/// admitted next.  Identifier 0 is reserved as "nobody".
class FairShareGate {
 public:
  explicit FairShareGate(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

  /// Register a search.  `weight` scales its share of dispatch slots
  /// (2.0 = twice the batches of a weight-1 peer under contention);
  /// `remaining` seeds the tiebreak (typically the evaluation budget).
  void add(std::uint64_t id, double weight, std::uint64_t remaining) ECAD_EXCLUDES(mutex_);
  /// Deregister.  Wakes any acquire() blocked on `id`, which then returns
  /// false — this is how cancellation interrupts a waiting dispatcher.
  /// Removing an unknown id is a no-op.
  void remove(std::uint64_t id) ECAD_EXCLUDES(mutex_);
  /// Update the remaining-budget tiebreak (called at generation
  /// boundaries as the search consumes its budget).
  void set_remaining(std::uint64_t id, std::uint64_t remaining) ECAD_EXCLUDES(mutex_);

  /// Block until a slot is free and `id` is the scheduled-next waiter,
  /// then charge `items` against its pass.  Returns false (without a
  /// slot) when `id` is not, or no longer, registered.  Pair every true
  /// return with exactly one release().
  bool acquire(std::uint64_t id, std::size_t items) ECAD_EXCLUDES(mutex_);
  /// Return a slot taken by a successful acquire().
  void release() ECAD_EXCLUDES(mutex_);

  /// Batches granted to `id` so far (0 for unknown ids).  Test hook.
  std::uint64_t grants(std::uint64_t id) const ECAD_EXCLUDES(mutex_);

  /// RAII slot: acquires on construction (throwing SearchCanceled when the
  /// search was deregistered), releases on destruction.
  class Grant {
   public:
    Grant(FairShareGate& gate, std::uint64_t id, std::size_t items) : gate_(gate) {
      if (!gate_.acquire(id, items)) {
        throw SearchCanceled("search " + std::to_string(id) +
                             " canceled while awaiting a dispatch slot");
      }
    }
    ~Grant() { gate_.release(); }
    Grant(const Grant&) = delete;
    Grant& operator=(const Grant&) = delete;

   private:
    FairShareGate& gate_;
  };

 private:
  struct Entry {
    double weight = 1.0;
    double pass = 0.0;             // stride virtual time; lowest runs next
    std::uint64_t remaining = 0;   // budget left (tiebreak only)
    std::uint64_t grants = 0;      // batches admitted so far
    bool waiting = false;          // blocked in acquire() right now
  };

  /// Waiting entry with the lowest (pass, remaining, id); 0 when none wait.
  std::uint64_t next_waiting_locked() const ECAD_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::map<std::uint64_t, Entry> entries_ ECAD_GUARDED_BY(mutex_);
  std::size_t slots_;
  std::size_t in_use_ ECAD_GUARDED_BY(mutex_) = 0;
  /// Global virtual time: late entrants (and searches that sat idle
  /// between generations) resume here instead of replaying banked credit.
  double virtual_time_ ECAD_GUARDED_BY(mutex_) = 0.0;
};

enum class SearchState : std::uint8_t { Queued, Running, Completed, Canceled, Failed };

const char* to_string(SearchState state);

/// One generation boundary of a running search, as streamed to its client.
struct SearchProgressInfo {
  std::uint64_t search_id = 0;
  std::uint32_t generation = 0;
  std::uint64_t models_evaluated = 0;
  std::uint64_t max_evaluations = 0;
  /// Accuracy/throughput-nondominated subset of the current population
  /// (the axes of the paper's Fig. 2 trade-off curve).
  std::uint32_t pareto_front_size = 0;
  /// Best fitness over the whole history so far.
  double best_fitness = 0.0;
};

/// Terminal record of a search.  `result` is populated only for Completed;
/// Canceled/Failed carry the reason in `message`.
struct SearchOutcome {
  std::uint64_t search_id = 0;
  SearchState state = SearchState::Failed;
  evo::EvolutionResult result;
  std::string message;
};

struct SearchSchedulerOptions {
  /// Searches running concurrently (each on its own runner thread); the
  /// rest queue FIFO.
  std::size_t max_concurrent_searches = 2;
  /// Evaluation batches in flight across all searches (FairShareGate
  /// slots).  With slots < runners, searches contend and the stride
  /// discipline decides who dispatches next.
  std::size_t dispatch_slots = 2;
  /// Crash safety (see core/checkpoint.h): with a directory set, every
  /// accepted submission is journaled durably before it is acknowledged,
  /// each running search checkpoints its engine at generation boundaries,
  /// and terminal searches drop .done markers.  resume_submit() re-admits
  /// what a dead daemon left behind.
  CheckpointOptions checkpoint;
};

/// Runs submitted searches over one shared evaluation backend.  Each
/// search reproduces Master::search exactly — same evaluator, same
/// fitness registry defaults, fresh Rng(seed) and ThreadPool(threads) —
/// except every evaluation batch first passes the FairShareGate, and a
/// progress observer streams generation boundaries (which never perturbs
/// the trajectory).  Callbacks fire on runner threads; they must not call
/// back into the scheduler except for cancel().
class SearchScheduler {
 public:
  using ProgressFn = std::function<void(const SearchProgressInfo&)>;
  using DoneFn = std::function<void(const SearchOutcome&)>;

  /// `worker` is borrowed and must outlive the scheduler.
  explicit SearchScheduler(const Worker& worker, SearchSchedulerOptions options = {});
  /// Drains (see drain()) and joins the runners.
  ~SearchScheduler();

  SearchScheduler(const SearchScheduler&) = delete;
  SearchScheduler& operator=(const SearchScheduler&) = delete;

  /// Custom fitness functions may be registered before submitting.
  evo::FitnessRegistry& registry() { return registry_; }

  /// Enqueue a search; returns its id (ids start at 1).  Throws
  /// std::out_of_range for unknown fitness names and std::runtime_error
  /// once draining.  `on_progress` fires per generation boundary,
  /// `on_done` exactly once; either may be null.
  std::uint64_t submit(SearchRequest request, ProgressFn on_progress, DoneFn on_done)
      ECAD_EXCLUDES(mutex_);

  /// Re-admit a search found by scan_checkpoint_dir() under its original id
  /// (future submits allocate past it).  With a snapshot the engine resumes
  /// mid-trajectory; without one the search restarts from scratch.  The
  /// submission is NOT re-journaled (its entry already exists).  Call before
  /// serving new submissions, in scan order, so FairShareGate admission
  /// order is deterministic.
  std::uint64_t resume_submit(const ResumableSearch& resumable, ProgressFn on_progress,
                              DoneFn on_done) ECAD_EXCLUDES(mutex_);

  /// Request cancellation.  A queued search dies before dispatching
  /// anything; a running one stops at its next generation boundary (or
  /// when its next batch hits the gate), folds batches already in flight,
  /// and reports Canceled.  False when `id` is unknown or already done.
  bool cancel(std::uint64_t id, const std::string& reason) ECAD_EXCLUDES(mutex_);

  /// Graceful shutdown: stop admitting, cancel everything still queued
  /// ("daemon draining"), let running searches finish their in-flight
  /// generations, and return once every done-callback has fired.
  void drain() ECAD_EXCLUDES(mutex_);

  /// Block until no search is queued or running (drain not required).
  void wait_idle() ECAD_EXCLUDES(mutex_);

  /// Queued + running searches.
  std::size_t active_searches() const ECAD_EXCLUDES(mutex_);

  /// State of a search, or Failed for unknown ids (ids are never reused,
  /// so callers that hold a real id can distinguish).
  SearchState state_of(std::uint64_t id) const ECAD_EXCLUDES(mutex_);

  /// Test hook: the admission gate, for inspecting grant counts.
  const FairShareGate& gate() const { return gate_; }

 private:
  struct Search {
    std::uint64_t id = 0;
    SearchRequest request;
    ProgressFn on_progress;
    DoneFn on_done;
    /// Set on resume_submit: mid-search state to continue from.
    std::shared_ptr<evo::EngineSnapshot> resume_from;
    std::atomic<bool> cancel_requested{false};
    // Guarded by the scheduler's mutex_ (not annotatable from a nested
    // struct; every access site takes the lock).
    SearchState state = SearchState::Queued;
    std::string cancel_reason;
  };

  void runner_loop() ECAD_EXCLUDES(mutex_);
  SearchOutcome run_one(Search& search) ECAD_EXCLUDES(mutex_);
  /// Shared admission tail of submit()/resume_submit().
  std::uint64_t enqueue(std::shared_ptr<Search> search, bool journal) ECAD_EXCLUDES(mutex_);
  void emit_progress(Search& search, std::uint32_t generation,
                     const std::vector<evo::Candidate>& population,
                     const std::vector<evo::Candidate>& history, std::size_t models_evaluated);
  std::string cancel_reason_for(Search& search) ECAD_EXCLUDES(mutex_);
  bool draining() const ECAD_EXCLUDES(mutex_);

  const Worker& worker_;
  SearchSchedulerOptions options_;
  evo::FitnessRegistry registry_;
  FairShareGate gate_;
  mutable util::Mutex mutex_;
  util::CondVar work_cv_;  // runners: queue gained an item, or stopping
  util::CondVar idle_cv_;  // drain/wait_idle: a search finished
  /// Created in the constructor when checkpointing is on; append-only after
  /// that, with its own internal synchronization point being the scheduler
  /// mutex_ (appends happen under it in enqueue()).
  std::unique_ptr<SubmissionJournal> journal_;
  std::deque<std::shared_ptr<Search>> queue_ ECAD_GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::shared_ptr<Search>> searches_ ECAD_GUARDED_BY(mutex_);
  std::uint64_t next_id_ ECAD_GUARDED_BY(mutex_) = 1;
  std::size_t running_ ECAD_GUARDED_BY(mutex_) = 0;
  bool draining_ ECAD_GUARDED_BY(mutex_) = false;
  bool stopping_ ECAD_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> runners_;
};

}  // namespace ecad::core
