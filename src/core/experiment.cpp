#include "core/experiment.h"

#include <stdexcept>

#include "util/string_util.h"

namespace ecad::core {

namespace {

std::vector<std::size_t> to_sizes(const std::vector<long long>& values, const char* what) {
  std::vector<std::size_t> out;
  out.reserve(values.size());
  for (long long v : values) {
    if (v <= 0) throw std::invalid_argument(std::string(what) + ": values must be positive");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

}  // namespace

ExperimentSetup setup_from_config(const util::Config& config) {
  const std::string benchmark_name = config.get("dataset", "benchmark");
  const double sample_scale = config.get_double("dataset", "sample_scale", 1.0);

  ExperimentSetup setup{.benchmark = data::benchmark_from_name(benchmark_name),
                        .split = {},
                        .request = {},
                        .train_options = {},
                        .hardware_target = "",
                        .batch = 0,
                        .ddr_banks = 1,
                        .data_seed = 1};
  setup.data_seed = static_cast<std::uint64_t>(config.get_int("dataset", "seed", 1));
  setup.split = data::load_benchmark_split(setup.benchmark, sample_scale, setup.data_seed);

  // NNA search space.
  evo::SearchSpace& space = setup.request.space;
  space.min_hidden_layers = static_cast<std::size_t>(config.get_int("nna", "min_layers", 1));
  space.max_hidden_layers = static_cast<std::size_t>(config.get_int("nna", "max_layers", 4));
  if (config.has("nna", "widths")) {
    space.width_choices = to_sizes(config.get_int_list("nna", "widths", {}), "nna.widths");
  }
  space.allow_no_bias = config.get_bool("nna", "allow_no_bias", true);

  // Hardware target.
  setup.hardware_target = util::to_lower(config.get_string("hardware", "target", "accuracy"));
  setup.ddr_banks = static_cast<std::size_t>(config.get_int("hardware", "ddr_banks", 1));
  const bool is_fpga = setup.hardware_target == "arria10" || setup.hardware_target == "stratix10";
  setup.batch =
      static_cast<std::size_t>(config.get_int("hardware", "batch", is_fpga ? 256 : 512));
  space.search_hardware = is_fpga;

  // Trainer.
  setup.train_options.epochs = static_cast<std::size_t>(config.get_int("train", "epochs", 20));
  setup.train_options.batch_size =
      static_cast<std::size_t>(config.get_int("train", "batch_size", 32));
  setup.train_options.optimizer.learning_rate =
      config.get_double("train", "learning_rate", 1e-3);

  // Evolution.
  setup.request.fitness = config.get_string("search", "fitness", "accuracy");
  setup.request.evolution.population_size =
      static_cast<std::size_t>(config.get_int("search", "population", 16));
  setup.request.evolution.max_evaluations =
      static_cast<std::size_t>(config.get_int("search", "evaluations", 60));
  setup.request.seed = static_cast<std::uint64_t>(config.get_int("search", "seed", 7));
  setup.request.threads = static_cast<std::size_t>(config.get_int("search", "threads", 0));
  return setup;
}

std::unique_ptr<Worker> make_worker(const ExperimentSetup& setup) {
  const std::uint64_t seed = setup.data_seed * 7919 + 13;
  const std::string& target = setup.hardware_target;
  if (target == "accuracy" || target.empty()) {
    return std::make_unique<AccuracyWorker>(setup.split, setup.train_options, seed);
  }
  if (target == "arria10") {
    return std::make_unique<FpgaHardwareDatabaseWorker>(
        setup.split, setup.train_options, seed, hw::arria10_gx1150(setup.ddr_banks), setup.batch);
  }
  if (target == "stratix10") {
    return std::make_unique<FpgaHardwareDatabaseWorker>(
        setup.split, setup.train_options, seed, hw::stratix10_2800(setup.ddr_banks), setup.batch);
  }
  if (target == "m5000") {
    return std::make_unique<GpuSimulationWorker>(setup.split, setup.train_options, seed,
                                                 hw::quadro_m5000(), setup.batch);
  }
  if (target == "titanx") {
    return std::make_unique<GpuSimulationWorker>(setup.split, setup.train_options, seed,
                                                 hw::titan_x(), setup.batch);
  }
  if (target == "radeon7") {
    return std::make_unique<GpuSimulationWorker>(setup.split, setup.train_options, seed,
                                                 hw::radeon_vii(), setup.batch);
  }
  throw std::invalid_argument("make_worker: unknown hardware target '" + target + "'");
}

ExperimentOutcome run_experiment(const util::Config& config) {
  ExperimentSetup setup = setup_from_config(config);
  const std::unique_ptr<Worker> worker = make_worker(setup);
  Master master;
  ExperimentOutcome outcome{master.search(*worker, setup.request), worker->name()};
  return outcome;
}

}  // namespace ecad::core
