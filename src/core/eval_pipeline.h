// The one evaluation path every search dispatches through.
//
// Historically each caller composed its own stack out of Worker::evaluate,
// Worker::evaluate_batch and evaluate_batch_deduped; adding the fleet-wide
// result cache would have meant a fourth entry point and three more call
// sites to keep in sync.  EvalPipeline collapses them into a single staged
// pipeline:
//
//   dedup        — genomes sharing a canonical key collapse to one slot
//                  before anything downstream sees the chunk;
//   fleet cache  — slots whose (eval config, genome) result is already known
//                  fleet-wide are settled without an evaluation;
//   dispatch     — whatever is left goes to Worker::evaluate_batch (the
//                  local pool fan-out, or RemoteWorker's wire shards), and
//                  fresh successes are published back to the fleet cache.
//
// When both upstream stages are inert (no duplicates, no cache) the pipeline
// is Worker::evaluate_batch called verbatim — bit-identical to the legacy
// path, which is what lets Master::search, the SearchScheduler and
// make_search_evaluator all migrate onto it without changing a single
// search's output.
#pragma once

#include <vector>

#include "core/worker.h"
#include "evo/fitness.h"
#include "evo/genome.h"
#include "util/thread_pool.h"

namespace ecad::core {

/// Hook to a fleet-wide content-addressed result cache.  core stays below
/// net in the layer diagram, so the pipeline sees only this interface;
/// net::RemoteWorker implements it over CacheLookup/CacheStore frames and
/// hands it out via Worker::fleet_cache().  Implementations must be
/// thread-safe (pipelines run concurrently across scheduler tenants).
class FleetEvalCache {
 public:
  virtual ~FleetEvalCache() = default;

  /// Settle every slot whose result the fleet already holds: a hit writes
  /// `outcomes[i].result` and sets `outcomes[i].ok = true`.  Slots left with
  /// `ok == false` are misses and proceed to dispatch.  `outcomes` arrives
  /// sized like `genomes` with every slot unsettled.
  virtual void fleet_lookup(const std::vector<evo::Genome>& genomes,
                            std::vector<evo::EvalOutcome>& outcomes) const = 0;

  /// Publish freshly dispatched outcomes.  Implementations cache only
  /// `ok` slots — a failure is not a content-addressable fact about a
  /// genome.  Best-effort and fire-and-forget: a lost store costs a future
  /// re-evaluation, never correctness.
  virtual void fleet_store(const std::vector<evo::Genome>& genomes,
                           const std::vector<evo::EvalOutcome>& outcomes) const = 0;
};

struct EvalPipelineOptions {
  /// Collapse duplicate genome keys within a chunk before cache + dispatch.
  bool dedup = true;
  /// Consult Worker::fleet_cache() (when the worker exposes one) before
  /// dispatching, and publish fresh successes back to it.
  bool fleet_cache = true;
};

class EvalPipeline {
 public:
  /// `worker` is borrowed and must outlive the pipeline.
  explicit EvalPipeline(const Worker& worker, EvalPipelineOptions options = {});

  /// Run one generation-sized chunk through dedup -> fleet cache ->
  /// dispatch.  Returns one outcome slot per genome in input order, exactly
  /// like Worker::evaluate_batch.
  std::vector<evo::EvalOutcome> evaluate(const std::vector<evo::Genome>& genomes,
                                         util::ThreadPool& pool) const;

 private:
  const Worker& worker_;
  EvalPipelineOptions options_;
};

}  // namespace ecad::core
