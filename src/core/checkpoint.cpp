#include "core/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "nn/activation.h"
#include "util/logging.h"

namespace ecad::core {

using util::SnapshotError;
using util::SnapshotReader;
using util::SnapshotWriter;

// ---------------------------------------------------------------------------
// SearchRequest codec
// ---------------------------------------------------------------------------

void write_search_request_snapshot(SnapshotWriter& writer, const SearchRequest& request) {
  const evo::SearchSpace& space = request.space;
  writer.put_u64(space.min_hidden_layers);
  writer.put_u64(space.max_hidden_layers);
  writer.put_size_vector(space.width_choices);
  if (space.activations.size() > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: activation list exceeds the limit");
  }
  writer.put_u32(static_cast<std::uint32_t>(space.activations.size()));
  for (nn::Activation activation : space.activations) {
    writer.put_string(std::string(nn::to_string(activation)));
  }
  writer.put_bool(space.allow_no_bias);
  writer.put_size_vector(space.grid.row_choices);
  writer.put_size_vector(space.grid.col_choices);
  writer.put_size_vector(space.grid.vec_choices);
  writer.put_size_vector(space.grid.interleave_choices);
  writer.put_bool(space.search_hardware);

  const evo::EvolutionConfig& evolution = request.evolution;
  writer.put_u64(evolution.population_size);
  writer.put_u64(evolution.max_evaluations);
  writer.put_u64(evolution.tournament_size);
  writer.put_f64(evolution.crossover_probability);
  writer.put_f64(evolution.mutation_strength);
  writer.put_u64(evolution.dedup_attempts);
  writer.put_u64(evolution.batch_size);
  writer.put_bool(evolution.overlap_generations);
  writer.put_u64(evolution.max_inflight_batches);

  writer.put_string(request.fitness);
  writer.put_u64(request.seed);
  writer.put_u64(request.threads);
}

SearchRequest read_search_request_snapshot(SnapshotReader& reader) {
  SearchRequest request;
  evo::SearchSpace& space = request.space;
  space.min_hidden_layers = static_cast<std::size_t>(reader.get_u64());
  space.max_hidden_layers = static_cast<std::size_t>(reader.get_u64());
  space.width_choices = reader.get_size_vector();
  const std::uint32_t activation_count = reader.get_u32();
  if (activation_count > util::kMaxSnapshotVectorElems) {
    throw SnapshotError("snapshot: activation list length exceeds the limit");
  }
  space.activations.clear();
  space.activations.reserve(activation_count);
  for (std::uint32_t i = 0; i < activation_count; ++i) {
    try {
      space.activations.push_back(nn::activation_from_name(reader.get_string()));
    } catch (const std::invalid_argument& e) {
      throw SnapshotError(std::string("snapshot: ") + e.what());
    }
  }
  space.allow_no_bias = reader.get_bool();
  space.grid.row_choices = reader.get_size_vector();
  space.grid.col_choices = reader.get_size_vector();
  space.grid.vec_choices = reader.get_size_vector();
  space.grid.interleave_choices = reader.get_size_vector();
  space.search_hardware = reader.get_bool();

  evo::EvolutionConfig& evolution = request.evolution;
  evolution.population_size = static_cast<std::size_t>(reader.get_u64());
  evolution.max_evaluations = static_cast<std::size_t>(reader.get_u64());
  evolution.tournament_size = static_cast<std::size_t>(reader.get_u64());
  evolution.crossover_probability = reader.get_f64();
  evolution.mutation_strength = reader.get_f64();
  evolution.dedup_attempts = static_cast<std::size_t>(reader.get_u64());
  evolution.batch_size = static_cast<std::size_t>(reader.get_u64());
  evolution.overlap_generations = reader.get_bool();
  evolution.max_inflight_batches = static_cast<std::size_t>(reader.get_u64());

  request.fitness = reader.get_string();
  request.seed = reader.get_u64();
  request.threads = static_cast<std::size_t>(reader.get_u64());
  return request;
}

// ---------------------------------------------------------------------------
// Checkpoint file codec + paths
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> serialize_checkpoint(const SearchCheckpoint& checkpoint) {
  SnapshotWriter writer;
  writer.put_u32(kCheckpointMagic);
  writer.put_u32(util::kSnapshotFormatVersion);
  writer.put_u64(checkpoint.search_id);
  write_search_request_snapshot(writer, checkpoint.request);
  evo::write_engine_snapshot(writer, checkpoint.snapshot);
  return writer.take();
}

SearchCheckpoint deserialize_checkpoint(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader reader(bytes);
  if (reader.get_u32() != kCheckpointMagic) {
    throw SnapshotError("snapshot: bad magic (not a search checkpoint)");
  }
  const std::uint32_t version = reader.get_u32();
  if (version != util::kSnapshotFormatVersion) {
    throw SnapshotError("snapshot: checkpoint format version " + std::to_string(version) +
                        " is not supported (expected " +
                        std::to_string(util::kSnapshotFormatVersion) + ")");
  }
  SearchCheckpoint checkpoint;
  checkpoint.search_id = reader.get_u64();
  checkpoint.request = read_search_request_snapshot(reader);
  checkpoint.snapshot = evo::read_engine_snapshot(reader);
  reader.expect_end();
  return checkpoint;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t search_id) {
  return dir + "/search_" + std::to_string(search_id) + ".ckpt";
}

std::string done_marker_path(const std::string& dir, std::uint64_t search_id) {
  return dir + "/search_" + std::to_string(search_id) + ".done";
}

void ensure_checkpoint_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw SnapshotError("snapshot: cannot create checkpoint dir '" + dir +
                        "': " + std::strerror(errno));
  }
  if (::access(dir.c_str(), W_OK) != 0) {
    throw SnapshotError("snapshot: checkpoint dir '" + dir + "' is not writable");
  }
}

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::string dir, std::uint64_t search_id,
                                   SearchRequest request, std::size_t every)
    : dir_(std::move(dir)),
      search_id_(search_id),
      request_(std::move(request)),
      every_(every == 0 ? 1 : every) {}

void CheckpointWriter::write(const evo::EngineSnapshot& snapshot) {
  // Boundary 0 (the scored initial population) always persists: it is the
  // cheapest point to save and the one that rescues the most work (the whole
  // initial evaluation) after an early kill.
  const std::size_t boundary = boundaries_seen_++;
  if (boundary != 0 && boundary % every_ != 0) return;
  SearchCheckpoint checkpoint;
  checkpoint.search_id = search_id_;
  checkpoint.request = request_;
  checkpoint.snapshot = snapshot;
  util::write_file_atomic(checkpoint_path(dir_, search_id_), serialize_checkpoint(checkpoint),
                          "checkpoint");
}

void CheckpointWriter::mark_done() {
  // Marker first, checkpoint unlink second: if the process dies between the
  // two, the stale checkpoint is masked by the marker instead of resurrecting
  // a finished search.
  util::write_file_atomic(done_marker_path(dir_, search_id_), {});
  ::unlink(checkpoint_path(dir_, search_id_).c_str());
}

// ---------------------------------------------------------------------------
// SubmissionJournal
// ---------------------------------------------------------------------------

std::string SubmissionJournal::journal_path(const std::string& dir) {
  return dir + "/journal.bin";
}

SubmissionJournal::SubmissionJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw SnapshotError("snapshot: cannot open journal '" + path_ +
                        "': " + std::strerror(errno));
  }
}

SubmissionJournal::~SubmissionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SubmissionJournal::append(std::uint64_t search_id, const SearchRequest& request) {
  SnapshotWriter payload;
  payload.put_u64(search_id);
  write_search_request_snapshot(payload, request);

  SnapshotWriter entry;
  entry.put_u32(kJournalMagic);
  entry.put_u32(static_cast<std::uint32_t>(payload.bytes().size()));
  const std::vector<std::uint8_t>& body = payload.bytes();
  std::vector<std::uint8_t> bytes = entry.take();
  bytes.insert(bytes.end(), body.begin(), body.end());

  const std::uint8_t* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t wrote = ::write(fd_, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw SnapshotError("snapshot: journal append failed: " + std::string(std::strerror(errno)));
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd_) != 0) {
    throw SnapshotError("snapshot: journal fsync failed: " + std::string(std::strerror(errno)));
  }
}

std::vector<SubmissionJournal::Entry> SubmissionJournal::load(const std::string& path) {
  std::vector<Entry> entries;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const SnapshotError&) {
    return entries;  // no journal yet
  }
  SnapshotReader reader(bytes);
  while (reader.remaining() > 0) {
    // A torn tail — the crash happened mid-append — is expected and simply
    // ends the replay; anything complete before it is kept.
    try {
      if (reader.get_u32() != kJournalMagic) break;
      const std::uint32_t length = reader.get_u32();
      if (length > reader.remaining()) break;  // torn payload
      const std::size_t before = reader.remaining();
      Entry entry;
      entry.search_id = reader.get_u64();
      entry.request = read_search_request_snapshot(reader);
      if (before - reader.remaining() != length) break;  // misaligned entry
      entries.push_back(std::move(entry));
    } catch (const SnapshotError&) {
      break;
    }
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Resume scan
// ---------------------------------------------------------------------------

namespace {

bool file_exists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

/// Parse "search_<id>.ckpt" -> id; 0 when the name does not match.
std::uint64_t checkpoint_id_from_name(const std::string& name) {
  const std::string prefix = "search_";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return 0;
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) return 0;
  try {
    return std::stoull(digits);
  } catch (const std::exception&) {
    return 0;
  }
}

}  // namespace

std::vector<ResumableSearch> scan_checkpoint_dir(const std::string& dir) {
  // Journal first: it names every accepted search, including ones that never
  // reached their first checkpoint.
  std::map<std::uint64_t, SearchRequest> journaled;
  for (SubmissionJournal::Entry& entry : SubmissionJournal::load(SubmissionJournal::journal_path(dir))) {
    journaled[entry.search_id] = std::move(entry.request);
  }

  std::vector<std::uint64_t> checkpoint_ids;
  DIR* handle = ::opendir(dir.c_str());
  if (handle != nullptr) {
    while (dirent* entry = ::readdir(handle)) {
      const std::uint64_t id = checkpoint_id_from_name(entry->d_name);
      if (id != 0) checkpoint_ids.push_back(id);
    }
    ::closedir(handle);
  }

  // Union of both sources, deduplicated; the sort (not directory-entry
  // order!) makes FairShareGate re-admission deterministic.
  std::vector<std::uint64_t> ids = checkpoint_ids;
  for (const auto& [id, request] : journaled) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<ResumableSearch> out;
  for (std::uint64_t id : ids) {
    if (file_exists(done_marker_path(dir, id))) continue;  // finished in a past life
    ResumableSearch resumable;
    resumable.search_id = id;
    const std::string path = checkpoint_path(dir, id);
    bool have_request = false;
    if (file_exists(path)) {
      try {
        SearchCheckpoint checkpoint = deserialize_checkpoint(util::read_file_bytes(path));
        if (checkpoint.search_id != id) {
          throw SnapshotError("snapshot: checkpoint names search " +
                              std::to_string(checkpoint.search_id) + " but the file is for " +
                              std::to_string(id));
        }
        resumable.request = std::move(checkpoint.request);
        resumable.snapshot = std::move(checkpoint.snapshot);
        resumable.has_snapshot = true;
        have_request = true;
      } catch (const SnapshotError& e) {
        util::Log(util::LogLevel::Warn, "core")
            << "ignoring unusable checkpoint '" << path << "': " << e.what();
      }
    }
    if (!have_request) {
      auto it = journaled.find(id);
      if (it == journaled.end()) continue;  // corrupt checkpoint, no journal entry
      resumable.request = it->second;
      resumable.has_snapshot = false;
    }
    out.push_back(std::move(resumable));
  }
  return out;
}

}  // namespace ecad::core
