#include "core/report.h"

#include <stdexcept>

#include "util/string_util.h"

namespace ecad::core {

util::CsvTable history_to_csv(const std::vector<evo::Candidate>& history) {
  util::CsvTable table;
  table.header = {"genome",     "accuracy",   "outputs_per_s", "latency_s", "efficiency",
                  "eff_gflops", "pot_gflops", "power_w",       "fmax_mhz",  "parameters",
                  "fitness",    "feasible"};
  for (const auto& candidate : history) {
    const evo::EvalResult& r = candidate.result;
    table.rows.push_back({candidate.genome.key(), util::format_fixed(r.accuracy, 4),
                          util::format_scientific(r.outputs_per_second),
                          util::format_scientific(r.latency_seconds),
                          util::format_fixed(r.hw_efficiency, 4),
                          util::format_fixed(r.effective_gflops, 2),
                          util::format_fixed(r.potential_gflops, 2),
                          util::format_fixed(r.power_watts, 2),
                          util::format_fixed(r.fmax_mhz, 1),
                          std::to_string(static_cast<long long>(r.parameters)),
                          util::format_fixed(candidate.fitness, 5), r.feasible ? "1" : "0"});
  }
  return table;
}

void write_history(const std::vector<evo::Candidate>& history, const std::string& path) {
  util::write_csv_file(path, history_to_csv(history));
}

const evo::Candidate& best_by_accuracy(const std::vector<evo::Candidate>& history) {
  if (history.empty()) throw std::invalid_argument("best_by_accuracy: empty history");
  const evo::Candidate* best = nullptr;
  for (const auto& candidate : history) {
    if (!candidate.result.feasible) continue;
    if (best == nullptr || candidate.result.accuracy > best->result.accuracy) {
      best = &candidate;
    }
  }
  // All infeasible: fall back to the first entry rather than failing.
  return best != nullptr ? *best : history.front();
}

const evo::Candidate& best_throughput_within(const std::vector<evo::Candidate>& history,
                                             double accuracy_slack) {
  const evo::Candidate& top = best_by_accuracy(history);
  const double floor = top.result.accuracy - accuracy_slack;
  const evo::Candidate* best = &top;
  for (const auto& candidate : history) {
    if (!candidate.result.feasible || candidate.result.accuracy < floor) continue;
    if (candidate.result.outputs_per_second > best->result.outputs_per_second) {
      best = &candidate;
    }
  }
  return *best;
}

}  // namespace ecad::core
