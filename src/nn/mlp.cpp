#include "nn/mlp.h"

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "linalg/gemm.h"
#include "linalg/vector_ops.h"
#include "nn/initializer.h"

namespace ecad::nn {

std::vector<std::size_t> MlpSpec::layer_dims() const {
  std::vector<std::size_t> dims;
  dims.reserve(hidden.size() + 2);
  dims.push_back(input_dim);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(output_dim);
  return dims;
}

std::size_t MlpSpec::num_parameters() const {
  const auto dims = layer_dims();
  std::size_t count = 0;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    count += dims[l] * dims[l + 1];
    if (use_bias) count += dims[l + 1];
  }
  return count;
}

std::size_t MlpSpec::flops_per_sample() const {
  const auto dims = layer_dims();
  std::size_t flops = 0;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    flops += 2 * dims[l] * dims[l + 1];
    if (use_bias) flops += dims[l + 1];
  }
  return flops;
}

std::size_t MlpSpec::total_hidden_neurons() const {
  std::size_t total = 0;
  for (std::size_t width : hidden) total += width;
  return total;
}

std::string MlpSpec::to_string() const {
  std::ostringstream out;
  out << input_dim;
  for (std::size_t width : hidden) out << '-' << width;
  out << '-' << output_dim << ' ' << nn::to_string(activation) << (use_bias ? " bias" : " nobias");
  return out.str();
}

void MlpSpec::validate() const {
  if (input_dim == 0) throw std::invalid_argument("MlpSpec: input_dim must be > 0");
  if (output_dim == 0) throw std::invalid_argument("MlpSpec: output_dim must be > 0");
  for (std::size_t width : hidden) {
    if (width == 0) throw std::invalid_argument("MlpSpec: hidden width must be > 0");
  }
}

std::uint64_t Mlp::next_weights_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Mlp::Mlp(MlpSpec spec, util::Rng& rng)
    : spec_(std::move(spec)), weights_version_(next_weights_version()) {
  spec_.validate();
  const auto dims = spec_.layer_dims();
  const InitScheme scheme = default_init_for(spec_.activation);
  weights_.reserve(dims.size() - 1);
  biases_.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    linalg::Matrix w(dims[l], dims[l + 1]);
    initialize_weights(w, scheme, rng);
    weights_.push_back(std::move(w));
    biases_.push_back(spec_.use_bias ? linalg::Matrix(1, dims[l + 1]) : linalg::Matrix());
  }
}

linalg::Matrix Mlp::forward(const linalg::Matrix& input) const {
  ForwardCache cache;
  return forward_cached(input, cache);
}

namespace {

bool packed_backend_active() {
  return linalg::active_gemm_kernel() == linalg::GemmKernel::Packed;
}

}  // namespace

const linalg::Matrix& Mlp::forward_cached(const linalg::Matrix& input, ForwardCache& cache) const {
  if (input.cols() != spec_.input_dim) {
    throw std::invalid_argument("Mlp::forward: input width " + std::to_string(input.cols()) +
                                " != " + std::to_string(spec_.input_dim));
  }
  const std::size_t layers = weights_.size();
  cache.pre.resize(layers);
  cache.post.resize(layers);
  const bool packed = packed_backend_active();
  if (packed && cache.packed_w_version != weights_version_) {
    cache.packed_w.resize(layers);
    for (std::size_t l = 0; l < layers; ++l) cache.packed_w[l].pack(weights_[l]);
    cache.packed_w_version = weights_version_;
  }
  const linalg::Matrix* current = &input;
  for (std::size_t l = 0; l < layers; ++l) {
    if (packed) {
      linalg::Matrix& y = cache.pre[l];
      if (y.rows() != current->rows() || y.cols() != weights_[l].cols()) {
        y.reshape_discard(current->rows(), weights_[l].cols());
      }
      linalg::gemm_prepacked(*current, cache.packed_w[l], y);
      linalg::add_bias_rows(y, biases_[l]);
    } else {
      linalg::affine(*current, weights_[l], biases_[l], cache.pre[l]);
    }
    const bool is_output = (l + 1 == layers);
    if (is_output) {
      cache.post[l] = cache.pre[l];  // logits: linear output layer
    } else {
      apply_activation(spec_.activation, cache.pre[l], cache.post[l]);
    }
    current = &cache.post[l];
  }
  return cache.post.back();
}

linalg::Matrix Mlp::predict_proba(const linalg::Matrix& input) const {
  linalg::Matrix logits = forward(input);
  linalg::Matrix proba;
  softmax_rows(logits, proba);
  return proba;
}

std::vector<int> Mlp::predict(const linalg::Matrix& input) const {
  const linalg::Matrix logits = forward(input);
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    out[r] = static_cast<int>(linalg::argmax(logits.row(r)));
  }
  return out;
}

void Mlp::backward(const linalg::Matrix& input, ForwardCache& cache,
                   const linalg::Matrix& logit_grad, std::vector<linalg::Matrix>& grad_w,
                   std::vector<linalg::Matrix>& grad_b) const {
  const std::size_t layers = weights_.size();
  if (cache.pre.size() != layers) throw std::invalid_argument("Mlp::backward: stale cache");
  grad_w.resize(layers);
  grad_b.resize(layers);
  const bool packed = packed_backend_active();
  if (packed && layers > 1 && cache.packed_wt_version != weights_version_) {
    // δ·Wᵀ panels for layers 1..L-1 (layer 0 never propagates further back).
    cache.packed_wt.resize(layers);
    for (std::size_t l = 1; l < layers; ++l) {
      cache.packed_wt[l].pack(weights_[l], /*transpose=*/true);
    }
    cache.packed_wt_version = weights_version_;
  }

  linalg::Matrix delta = logit_grad;  // gradient at current layer's pre-activation
  for (std::size_t l = layers; l-- > 0;) {
    const linalg::Matrix& a_prev = (l == 0) ? input : cache.post[l - 1];
    // dW_l = a_prevᵀ · delta
    if (grad_w[l].rows() != weights_[l].rows() || grad_w[l].cols() != weights_[l].cols()) {
      grad_w[l].reshape_discard(weights_[l].rows(), weights_[l].cols());
    }
    linalg::gemm_at(a_prev, delta, grad_w[l]);
    // db_l = column sums of delta
    if (spec_.use_bias) {
      if (grad_b[l].rows() != 1 || grad_b[l].cols() != delta.cols()) {
        grad_b[l].reshape_discard(1, delta.cols());
      } else {
        grad_b[l].fill(0.0f);
      }
      for (std::size_t r = 0; r < delta.rows(); ++r) {
        linalg::add_inplace(grad_b[l].row(0), delta.row(r));
      }
    }
    if (l == 0) break;
    // delta_prev = (delta · W_lᵀ) ⊙ f'(z_{l-1})
    linalg::Matrix next_delta(delta.rows(), weights_[l].rows());
    if (packed) {
      linalg::gemm_prepacked(delta, cache.packed_wt[l], next_delta);
    } else {
      linalg::gemm_bt(delta, weights_[l], next_delta);
    }
    apply_activation_gradient(spec_.activation, cache.pre[l - 1], next_delta);
    delta = std::move(next_delta);
  }
}

}  // namespace ecad::nn
