// Weight initialization schemes, selected per-activation (He for rectifiers,
// Xavier/Glorot for saturating activations).
#pragma once

#include "linalg/matrix.h"
#include "nn/activation.h"
#include "util/rng.h"

namespace ecad::nn {

enum class InitScheme { Xavier, He, Uniform };

/// The conventional scheme for a given activation.
InitScheme default_init_for(Activation activation);

/// Initialize a fan_in x fan_out weight matrix in place.
void initialize_weights(linalg::Matrix& weights, InitScheme scheme, util::Rng& rng);

}  // namespace ecad::nn
