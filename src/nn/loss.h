// Training losses.  Classification uses softmax cross-entropy over logits;
// MSE is provided for regression-style workloads and tests.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace ecad::nn {

/// Mean softmax cross-entropy of `logits` against integer labels.
double cross_entropy_loss(const linalg::Matrix& logits, const std::vector<int>& labels);

/// d(mean CE)/d(logits) = (softmax(logits) - onehot) / batch.
/// Writes into `grad` (resized as needed) and returns the loss.
double cross_entropy_loss_grad(const linalg::Matrix& logits, const std::vector<int>& labels,
                               linalg::Matrix& grad);

/// Mean squared error against a dense target matrix.
double mse_loss(const linalg::Matrix& predictions, const linalg::Matrix& targets);

/// d(mean MSE)/d(pred) = 2(pred - target)/N. Returns the loss.
double mse_loss_grad(const linalg::Matrix& predictions, const linalg::Matrix& targets,
                     linalg::Matrix& grad);

}  // namespace ecad::nn
