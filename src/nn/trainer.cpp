#include "nn/trainer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "linalg/vector_ops.h"
#include "nn/loss.h"
#include "nn/metrics.h"

namespace ecad::nn {

namespace {

// Copy the rows `indices[begin, end)` into a batch matrix + label vector.
void gather_batch(const data::Dataset& dataset, const std::vector<std::size_t>& indices,
                  std::size_t begin, std::size_t end, linalg::Matrix& batch_x,
                  std::vector<int>& batch_y) {
  const std::size_t batch = end - begin;
  if (batch_x.rows() != batch || batch_x.cols() != dataset.num_features()) {
    batch_x.reshape_discard(batch, dataset.num_features());
  }
  batch_y.resize(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t src = indices[begin + i];
    std::copy(dataset.features.row(src).begin(), dataset.features.row(src).end(),
              batch_x.row(i).begin());
    batch_y[i] = dataset.labels[src];
  }
}

}  // namespace

TrainResult train(Mlp& mlp, const data::Dataset& train_set, const data::Dataset* validation,
                  const TrainOptions& options, util::Rng& rng) {
  if (train_set.num_features() != mlp.spec().input_dim) {
    throw std::invalid_argument("train: dataset width != MLP input_dim");
  }
  if (train_set.num_classes > mlp.spec().output_dim) {
    throw std::invalid_argument("train: dataset classes exceed MLP output_dim");
  }
  if (options.batch_size == 0) throw std::invalid_argument("train: batch_size must be > 0");

  TrainResult result;
  const std::size_t n = train_set.num_samples();
  if (n == 0) return result;

  // Slots: weight and bias per layer.
  const std::size_t layers = mlp.num_layers();
  auto optimizer = make_optimizer(options.optimizer, layers * 2);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  linalg::Matrix batch_x;
  std::vector<int> batch_y;
  Mlp::ForwardCache cache;
  linalg::Matrix logit_grad;
  std::vector<linalg::Matrix> grad_w, grad_b;

  double best_val = -1.0;
  std::size_t stale_epochs = 0;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle_each_epoch) rng.shuffle(order);

    double loss_sum = 0.0;
    std::size_t loss_batches = 0;
    std::size_t correct = 0;

    for (std::size_t begin = 0; begin < n; begin += options.batch_size) {
      const std::size_t end = std::min(begin + options.batch_size, n);
      gather_batch(train_set, order, begin, end, batch_x, batch_y);

      const linalg::Matrix& logits = mlp.forward_cached(batch_x, cache);
      loss_sum += cross_entropy_loss_grad(logits, batch_y, logit_grad);
      ++loss_batches;
      for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (static_cast<int>(linalg::argmax(logits.row(r))) == batch_y[r]) ++correct;
      }

      mlp.backward(batch_x, cache, logit_grad, grad_w, grad_b);
      for (std::size_t l = 0; l < layers; ++l) {
        optimizer->step(l * 2, mlp.weights(l).data(), grad_w[l].data(), /*decay=*/true);
        if (mlp.spec().use_bias) {
          optimizer->step(l * 2 + 1, mlp.bias(l).data(), grad_b[l].data(), /*decay=*/false);
        }
      }
      optimizer->advance();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_batches == 0 ? 0.0 : loss_sum / static_cast<double>(loss_batches);
    stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(n);
    if (validation != nullptr && validation->num_samples() > 0) {
      // Shares the training cache: the weight panels packed by the last
      // minibatch are reused for the whole validation forward pass.
      stats.validation_accuracy = evaluate_accuracy(mlp, *validation, cache);
    }
    result.history.push_back(stats);
    result.final_train_loss = stats.train_loss;
    result.epochs_run = epoch + 1;

    if (validation != nullptr && options.early_stop_patience > 0) {
      if (stats.validation_accuracy > best_val + options.early_stop_min_delta) {
        best_val = stats.validation_accuracy;
        stale_epochs = 0;
      } else if (++stale_epochs >= options.early_stop_patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  result.best_validation_accuracy = std::max(0.0, best_val);
  return result;
}

double evaluate_accuracy(const Mlp& mlp, const data::Dataset& dataset) {
  Mlp::ForwardCache cache;
  return evaluate_accuracy(mlp, dataset, cache);
}

double evaluate_accuracy(const Mlp& mlp, const data::Dataset& dataset,
                         Mlp::ForwardCache& cache) {
  if (dataset.num_samples() == 0) return 0.0;
  const linalg::Matrix& logits = mlp.forward_cached(dataset.features, cache);
  std::vector<int> predictions(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    predictions[r] = static_cast<int>(linalg::argmax(logits.row(r)));
  }
  return accuracy(predictions, dataset.labels);
}

}  // namespace ecad::nn
