// Multilayer perceptron: the NNA family the paper's co-design searches over.
//
// Topology is a chain of dense layers; hidden layers share one activation
// (an evolvable trait), the output layer is linear (logits) and the trainer
// pairs it with softmax cross-entropy — the same convention as sklearn's
// MLPClassifier, the paper's baseline (Tables I/II).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "nn/activation.h"
#include "util/rng.h"

namespace ecad::nn {

/// Structural description of an MLP — the "NNA traits" half of a genome.
struct MlpSpec {
  std::size_t input_dim = 0;
  std::size_t output_dim = 0;          // number of classes (logit width)
  std::vector<std::size_t> hidden;     // widths of hidden layers, may be empty
  Activation activation = Activation::ReLU;
  bool use_bias = true;

  /// Full layer width sequence: input, hidden..., output.
  std::vector<std::size_t> layer_dims() const;

  /// Trainable parameter count.
  std::size_t num_parameters() const;

  /// FLOPs for a single-sample forward pass (2·k·n per GEMM, + n per bias).
  std::size_t flops_per_sample() const;

  /// Total neurons across hidden layers (paper Fig. 2 discussion correlates
  /// neuron count with throughput).
  std::size_t total_hidden_neurons() const;

  /// Human-readable "784-256-128-10 relu bias" string.
  std::string to_string() const;

  /// Throws std::invalid_argument if dimensions are degenerate.
  void validate() const;

  friend bool operator==(const MlpSpec& a, const MlpSpec& b) {
    return a.input_dim == b.input_dim && a.output_dim == b.output_dim &&
           a.hidden == b.hidden && a.activation == b.activation &&
           a.use_bias == b.use_bias;
  }
  friend bool operator!=(const MlpSpec& a, const MlpSpec& b) { return !(a == b); }
};

/// A trainable MLP instance (weights + topology).
class Mlp {
 public:
  /// Builds and initializes weights (He/Xavier per activation).
  Mlp(MlpSpec spec, util::Rng& rng);

  const MlpSpec& spec() const { return spec_; }
  std::size_t num_layers() const { return weights_.size(); }

  linalg::Matrix& weights(std::size_t layer) { return weights_[layer]; }
  const linalg::Matrix& weights(std::size_t layer) const { return weights_[layer]; }
  linalg::Matrix& bias(std::size_t layer) { return biases_[layer]; }
  const linalg::Matrix& bias(std::size_t layer) const { return biases_[layer]; }

  /// Forward pass: returns logits (batch x output_dim).
  linalg::Matrix forward(const linalg::Matrix& input) const;

  /// Class-probability output (softmax over logits).
  linalg::Matrix predict_proba(const linalg::Matrix& input) const;

  /// Hard class predictions.
  std::vector<int> predict(const linalg::Matrix& input) const;

  /// Forward caching pre-activations/activations for a following backward().
  /// Returns logits. The caller owns the cache object.
  struct ForwardCache {
    std::vector<linalg::Matrix> pre;   // z_l per layer
    std::vector<linalg::Matrix> post;  // a_l per layer (post[last] == logits)
  };
  linalg::Matrix forward_cached(const linalg::Matrix& input, ForwardCache& cache) const;

  /// Backward pass from d(loss)/d(logits).  `input` must be the batch passed
  /// to forward_cached.  Gradients are written into `grad_w`/`grad_b`
  /// (resized as needed).
  void backward(const linalg::Matrix& input, const ForwardCache& cache,
                const linalg::Matrix& logit_grad, std::vector<linalg::Matrix>& grad_w,
                std::vector<linalg::Matrix>& grad_b) const;

 private:
  MlpSpec spec_;
  std::vector<linalg::Matrix> weights_;  // layer l: dims[l] x dims[l+1]
  std::vector<linalg::Matrix> biases_;   // layer l: 1 x dims[l+1] (empty if !use_bias)
};

}  // namespace ecad::nn
