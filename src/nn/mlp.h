// Multilayer perceptron: the NNA family the paper's co-design searches over.
//
// Topology is a chain of dense layers; hidden layers share one activation
// (an evolvable trait), the output layer is linear (logits) and the trainer
// pairs it with softmax cross-entropy — the same convention as sklearn's
// MLPClassifier, the paper's baseline (Tables I/II).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/gemm_packed.h"
#include "linalg/matrix.h"
#include "nn/activation.h"
#include "util/rng.h"

namespace ecad::nn {

/// Structural description of an MLP — the "NNA traits" half of a genome.
struct MlpSpec {
  std::size_t input_dim = 0;
  std::size_t output_dim = 0;          // number of classes (logit width)
  std::vector<std::size_t> hidden;     // widths of hidden layers, may be empty
  Activation activation = Activation::ReLU;
  bool use_bias = true;

  /// Full layer width sequence: input, hidden..., output.
  std::vector<std::size_t> layer_dims() const;

  /// Trainable parameter count.
  std::size_t num_parameters() const;

  /// FLOPs for a single-sample forward pass (2·k·n per GEMM, + n per bias).
  std::size_t flops_per_sample() const;

  /// Total neurons across hidden layers (paper Fig. 2 discussion correlates
  /// neuron count with throughput).
  std::size_t total_hidden_neurons() const;

  /// Human-readable "784-256-128-10 relu bias" string.
  std::string to_string() const;

  /// Throws std::invalid_argument if dimensions are degenerate.
  void validate() const;

  friend bool operator==(const MlpSpec& a, const MlpSpec& b) {
    return a.input_dim == b.input_dim && a.output_dim == b.output_dim &&
           a.hidden == b.hidden && a.activation == b.activation &&
           a.use_bias == b.use_bias;
  }
  friend bool operator!=(const MlpSpec& a, const MlpSpec& b) { return !(a == b); }
};

/// A trainable MLP instance (weights + topology).
class Mlp {
 public:
  /// Builds and initializes weights (He/Xavier per activation).
  Mlp(MlpSpec spec, util::Rng& rng);

  const MlpSpec& spec() const { return spec_; }
  std::size_t num_layers() const { return weights_.size(); }

  /// Mutable access bumps the weights version so caches of packed weight
  /// panels (see ForwardCache) know to repack on the next pass. Callers that
  /// retain the reference and mutate through it later must re-call weights()
  /// before the next forward_cached() on a long-lived cache, or the cache
  /// will serve panels packed from the pre-mutation values.
  linalg::Matrix& weights(std::size_t layer) {
    weights_version_ = next_weights_version();
    return weights_[layer];
  }
  const linalg::Matrix& weights(std::size_t layer) const { return weights_[layer]; }

  /// Identifies the current weight values. Values are unique across all Mlp
  /// instances in the process (drawn from one global counter), so a
  /// ForwardCache can never mistake one model's packed panels for
  /// another's; a copied Mlp intentionally shares its source's version
  /// until either is mutated (their weights are identical).
  std::uint64_t weights_version() const { return weights_version_; }
  linalg::Matrix& bias(std::size_t layer) { return biases_[layer]; }
  const linalg::Matrix& bias(std::size_t layer) const { return biases_[layer]; }

  /// Forward pass: returns logits (batch x output_dim).
  linalg::Matrix forward(const linalg::Matrix& input) const;

  /// Class-probability output (softmax over logits).
  linalg::Matrix predict_proba(const linalg::Matrix& input) const;

  /// Hard class predictions.
  std::vector<int> predict(const linalg::Matrix& input) const;

  /// Forward caching pre-activations/activations for a following backward().
  /// Returns a reference to the logits held by the cache. The caller owns
  /// the cache object; keeping one alive across minibatches reuses both the
  /// activation buffers and the packed weight panels (the panels are only
  /// repacked when the weights version changes, so evaluation loops pack
  /// once and training repacks once per optimizer step — never reallocating).
  struct ForwardCache {
    std::vector<linalg::Matrix> pre;   // z_l per layer
    std::vector<linalg::Matrix> post;  // a_l per layer (post[last] == logits)
    // Packed weight panels for the Packed GEMM backend: W per layer for the
    // forward products, Wᵀ per layer for backprop's δ·Wᵀ. Versions track the
    // Mlp::weights_version() they were packed at.
    std::vector<linalg::PackedB> packed_w;
    std::vector<linalg::PackedB> packed_wt;
    std::uint64_t packed_w_version = 0;
    std::uint64_t packed_wt_version = 0;
  };
  const linalg::Matrix& forward_cached(const linalg::Matrix& input, ForwardCache& cache) const;

  /// Backward pass from d(loss)/d(logits).  `input` must be the batch passed
  /// to forward_cached.  Gradients are written into `grad_w`/`grad_b`
  /// (resized as needed).  `cache` is non-const so the backward pass can
  /// reuse (and lazily refresh) the packed Wᵀ panels it stores.
  void backward(const linalg::Matrix& input, ForwardCache& cache,
                const linalg::Matrix& logit_grad, std::vector<linalg::Matrix>& grad_w,
                std::vector<linalg::Matrix>& grad_b) const;

 private:
  static std::uint64_t next_weights_version();

  MlpSpec spec_;
  std::vector<linalg::Matrix> weights_;  // layer l: dims[l] x dims[l+1]
  std::vector<linalg::Matrix> biases_;   // layer l: 1 x dims[l+1] (empty if !use_bias)
  std::uint64_t weights_version_ = 0;    // set in ctor and by mutable weights()
};

}  // namespace ecad::nn
