// First-order optimizers over flat parameter/gradient pairs.
//
// The trainer walks every (weight, bias) matrix of the MLP and hands each to
// the optimizer as a slot; optimizers keep per-slot state (momentum/Adam
// moments) keyed by slot index so topology never changes mid-training.
#pragma once

#include <cstddef>
#include <memory>
#include "util/span.h"
#include <string_view>
#include <vector>

namespace ecad::nn {

enum class OptimizerKind { Sgd, Momentum, Adam };

std::string_view to_string(OptimizerKind kind);
OptimizerKind optimizer_from_name(std::string_view name);

struct OptimizerOptions {
  OptimizerKind kind = OptimizerKind::Adam;
  double learning_rate = 1e-3;
  double momentum = 0.9;        // Momentum only
  double beta1 = 0.9;           // Adam
  double beta2 = 0.999;         // Adam
  double epsilon = 1e-8;        // Adam
  double weight_decay = 0.0;    // L2 (applied to weights, not biases)
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update to parameter slot `slot`.  `decay` toggles weight decay
  /// (off for bias slots).
  virtual void step(std::size_t slot, ecad::span<float> params, ecad::span<const float> grads,
                    bool decay) = 0;

  /// Advance the global step counter (per minibatch, for Adam bias correction).
  virtual void advance() {}
};

/// Factory. The number of slots must be declared up front.
std::unique_ptr<Optimizer> make_optimizer(const OptimizerOptions& options, std::size_t num_slots);

}  // namespace ecad::nn
