// Activation functions — one of the NNA traits the evolutionary search
// mutates (paper §III-A: "number of layers, layer size, activation function,
// and bias").
#pragma once

#include <string>
#include <string_view>

#include "linalg/matrix.h"

namespace ecad::nn {

enum class Activation { ReLU, Sigmoid, Tanh, LeakyReLU, Elu, Identity };

/// All activations the search space may select for hidden layers.
inline constexpr Activation kSearchableActivations[] = {
    Activation::ReLU, Activation::Sigmoid, Activation::Tanh, Activation::LeakyReLU,
    Activation::Elu};

std::string_view to_string(Activation activation);

/// Parse "relu", "sigmoid", ... Throws std::invalid_argument.
Activation activation_from_name(std::string_view name);

/// y = f(z), elementwise.  `y` may alias `z`.
void apply_activation(Activation activation, const linalg::Matrix& z, linalg::Matrix& y);

/// delta *= f'(z), elementwise, given the *pre-activation* z.
void apply_activation_gradient(Activation activation, const linalg::Matrix& z,
                               linalg::Matrix& delta);

/// Scalar forward, used by tests as the oracle.
float activate_scalar(Activation activation, float z);

/// Row-wise softmax (numerically stabilized). `y` may alias `z`.
void softmax_rows(const linalg::Matrix& z, linalg::Matrix& y);

}  // namespace ecad::nn
