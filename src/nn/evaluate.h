// Protocol-level evaluators: the OpenML-style 10-fold protocol (Table I) and
// the pre-split 1-fold protocol (Table II).
#pragma once

#include "data/benchmarks.h"
#include "data/splits.h"
#include "nn/mlp.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace ecad::nn {

struct KFoldResult {
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  std::vector<double> fold_accuracies;
};

/// Train/evaluate `spec` across k stratified folds.  The input pool is
/// standardized per fold (fit on the fold's train split only — no leakage).
KFoldResult kfold_evaluate(const MlpSpec& spec, const data::Dataset& pool, std::size_t k,
                           const TrainOptions& options, util::Rng& rng);

/// Train once on `split.train` and report `split.test` accuracy.
double holdout_evaluate(const MlpSpec& spec, const data::TrainTestSplit& split,
                        const TrainOptions& options, util::Rng& rng);

}  // namespace ecad::nn
