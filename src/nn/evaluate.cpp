#include "nn/evaluate.h"

#include <cmath>

#include "data/preprocess.h"

namespace ecad::nn {

KFoldResult kfold_evaluate(const MlpSpec& spec, const data::Dataset& pool, std::size_t k,
                           const TrainOptions& options, util::Rng& rng) {
  KFoldResult result;
  const auto folds = data::stratified_kfold(pool, k, rng);
  for (const auto& fold : folds) {
    data::TrainTestSplit split = data::materialize_fold(pool, fold);
    data::standardize_together(split.train, {&split.test});
    Mlp mlp(spec, rng);
    train(mlp, split.train, /*validation=*/nullptr, options, rng);
    result.fold_accuracies.push_back(evaluate_accuracy(mlp, split.test));
  }
  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  const double n = static_cast<double>(result.fold_accuracies.size());
  result.mean_accuracy = n == 0 ? 0.0 : sum / n;
  double var = 0.0;
  for (double a : result.fold_accuracies) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy = n == 0 ? 0.0 : std::sqrt(var / n);
  return result;
}

double holdout_evaluate(const MlpSpec& spec, const data::TrainTestSplit& split,
                        const TrainOptions& options, util::Rng& rng) {
  Mlp mlp(spec, rng);
  train(mlp, split.train, /*validation=*/nullptr, options, rng);
  return evaluate_accuracy(mlp, split.test);
}

}  // namespace ecad::nn
