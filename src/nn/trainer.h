// Minibatch trainer: softmax cross-entropy + configurable optimizer with
// optional validation-based early stopping.  This is the "Worker" compute
// that dominates ECAD evaluation time (paper Table III).
#pragma once

#include <optional>
#include <vector>

#include "data/dataset.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace ecad::nn {

struct TrainOptions {
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  OptimizerOptions optimizer;

  /// Stop after `patience` epochs without validation improvement; 0 disables.
  std::size_t early_stop_patience = 5;
  /// Minimum accuracy delta that counts as improvement.
  double early_stop_min_delta = 1e-4;

  bool shuffle_each_epoch = true;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double validation_accuracy = 0.0;  // NaN-free: 0 when no validation set
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_train_loss = 0.0;
  double best_validation_accuracy = 0.0;
  std::size_t epochs_run = 0;
  bool early_stopped = false;
};

/// Train `mlp` in place.  `validation` (optional) drives early stopping.
/// Throws std::invalid_argument on schema mismatch with the MLP spec.
TrainResult train(Mlp& mlp, const data::Dataset& train_set, const data::Dataset* validation,
                  const TrainOptions& options, util::Rng& rng);

/// Convenience: accuracy of `mlp` on a dataset.
double evaluate_accuracy(const Mlp& mlp, const data::Dataset& dataset);

/// Same, but forwards through a caller-owned cache so repeated evaluations
/// (per-epoch validation, batched inference) reuse activation buffers and
/// packed weight panels instead of repacking per call.
double evaluate_accuracy(const Mlp& mlp, const data::Dataset& dataset,
                         Mlp::ForwardCache& cache);

}  // namespace ecad::nn
