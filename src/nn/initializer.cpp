#include "nn/initializer.h"

#include <cmath>

namespace ecad::nn {

InitScheme default_init_for(Activation activation) {
  switch (activation) {
    case Activation::ReLU:
    case Activation::LeakyReLU:
    case Activation::Elu:
      return InitScheme::He;
    case Activation::Sigmoid:
    case Activation::Tanh:
    case Activation::Identity:
      return InitScheme::Xavier;
  }
  return InitScheme::Xavier;
}

void initialize_weights(linalg::Matrix& weights, InitScheme scheme, util::Rng& rng) {
  const double fan_in = static_cast<double>(weights.rows());
  const double fan_out = static_cast<double>(weights.cols());
  switch (scheme) {
    case InitScheme::Xavier: {
      const double limit = std::sqrt(6.0 / (fan_in + fan_out));
      for (float& w : weights.data()) w = static_cast<float>(rng.next_double(-limit, limit));
      break;
    }
    case InitScheme::He: {
      const double stddev = std::sqrt(2.0 / std::max(1.0, fan_in));
      for (float& w : weights.data()) w = static_cast<float>(rng.next_gaussian(0.0, stddev));
      break;
    }
    case InitScheme::Uniform: {
      for (float& w : weights.data()) w = static_cast<float>(rng.next_double(-0.05, 0.05));
      break;
    }
  }
}

}  // namespace ecad::nn
