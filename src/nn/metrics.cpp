#include "nn/metrics.h"

#include <stdexcept>

namespace ecad::nn {

double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

std::vector<std::size_t> confusion_matrix(const std::vector<int>& predictions,
                                          const std::vector<int>& labels,
                                          std::size_t num_classes) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  std::vector<std::size_t> matrix(num_classes * num_classes, 0);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const int truth = labels[i];
    const int pred = predictions[i];
    if (truth < 0 || static_cast<std::size_t>(truth) >= num_classes || pred < 0 ||
        static_cast<std::size_t>(pred) >= num_classes) {
      throw std::invalid_argument("confusion_matrix: label out of range");
    }
    ++matrix[static_cast<std::size_t>(truth) * num_classes + static_cast<std::size_t>(pred)];
  }
  return matrix;
}

std::vector<ClassMetrics> per_class_metrics(const std::vector<std::size_t>& confusion,
                                            std::size_t num_classes) {
  if (confusion.size() != num_classes * num_classes) {
    throw std::invalid_argument("per_class_metrics: matrix size mismatch");
  }
  std::vector<ClassMetrics> out(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::size_t tp = confusion[c * num_classes + c];
    std::size_t fp = 0, fn = 0;
    for (std::size_t other = 0; other < num_classes; ++other) {
      if (other == c) continue;
      fp += confusion[other * num_classes + c];
      fn += confusion[c * num_classes + other];
    }
    ClassMetrics& m = out[c];
    m.precision = (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
    m.recall = (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
    m.f1 = (m.precision + m.recall) == 0.0
               ? 0.0
               : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return out;
}

double macro_f1(const std::vector<int>& predictions, const std::vector<int>& labels,
                std::size_t num_classes) {
  if (num_classes == 0) return 0.0;
  const auto metrics = per_class_metrics(confusion_matrix(predictions, labels, num_classes),
                                         num_classes);
  double total = 0.0;
  for (const auto& m : metrics) total += m.f1;
  return total / static_cast<double>(num_classes);
}

}  // namespace ecad::nn
