#include "nn/activation.h"

#include <cmath>
#include <stdexcept>

#include "util/string_util.h"

namespace ecad::nn {

namespace {
constexpr float kLeakySlope = 0.01f;
}

std::string_view to_string(Activation activation) {
  switch (activation) {
    case Activation::ReLU: return "relu";
    case Activation::Sigmoid: return "sigmoid";
    case Activation::Tanh: return "tanh";
    case Activation::LeakyReLU: return "leaky_relu";
    case Activation::Elu: return "elu";
    case Activation::Identity: return "identity";
  }
  return "?";
}

Activation activation_from_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "relu") return Activation::ReLU;
  if (lower == "sigmoid" || lower == "logistic") return Activation::Sigmoid;
  if (lower == "tanh") return Activation::Tanh;
  if (lower == "leaky_relu" || lower == "leakyrelu") return Activation::LeakyReLU;
  if (lower == "elu") return Activation::Elu;
  if (lower == "identity" || lower == "linear" || lower == "none") return Activation::Identity;
  throw std::invalid_argument("activation_from_name: unknown activation '" + std::string(name) +
                              "'");
}

float activate_scalar(Activation activation, float z) {
  switch (activation) {
    case Activation::ReLU: return z > 0.0f ? z : 0.0f;
    case Activation::Sigmoid: return 1.0f / (1.0f + std::exp(-z));
    case Activation::Tanh: return std::tanh(z);
    case Activation::LeakyReLU: return z > 0.0f ? z : kLeakySlope * z;
    case Activation::Elu: return z > 0.0f ? z : std::expm1(z);
    case Activation::Identity: return z;
  }
  return z;
}

void apply_activation(Activation activation, const linalg::Matrix& z, linalg::Matrix& y) {
  if (&y != &z) y.reshape_discard(z.rows(), z.cols());
  const float* in = z.raw();
  float* out = y.raw();
  const std::size_t n = z.size();
  switch (activation) {
    case Activation::ReLU:
      for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-in[i]));
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < n; ++i) out[i] = std::tanh(in[i]);
      break;
    case Activation::LeakyReLU:
      for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : kLeakySlope * in[i];
      break;
    case Activation::Elu:
      for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0.0f ? in[i] : std::expm1(in[i]);
      break;
    case Activation::Identity:
      if (&y != &z) std::copy(in, in + n, out);
      break;
  }
}

void apply_activation_gradient(Activation activation, const linalg::Matrix& z,
                               linalg::Matrix& delta) {
  if (delta.rows() != z.rows() || delta.cols() != z.cols()) {
    throw std::invalid_argument("apply_activation_gradient: shape mismatch");
  }
  const float* pre = z.raw();
  float* d = delta.raw();
  const std::size_t n = z.size();
  switch (activation) {
    case Activation::ReLU:
      for (std::size_t i = 0; i < n; ++i) {
        if (pre[i] <= 0.0f) d[i] = 0.0f;
      }
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < n; ++i) {
        const float s = 1.0f / (1.0f + std::exp(-pre[i]));
        d[i] *= s * (1.0f - s);
      }
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < n; ++i) {
        const float t = std::tanh(pre[i]);
        d[i] *= 1.0f - t * t;
      }
      break;
    case Activation::LeakyReLU:
      for (std::size_t i = 0; i < n; ++i) {
        if (pre[i] <= 0.0f) d[i] *= kLeakySlope;
      }
      break;
    case Activation::Elu:
      for (std::size_t i = 0; i < n; ++i) {
        if (pre[i] <= 0.0f) d[i] *= std::exp(pre[i]);
      }
      break;
    case Activation::Identity:
      break;
  }
}

void softmax_rows(const linalg::Matrix& z, linalg::Matrix& y) {
  if (&y != &z) y.reshape_discard(z.rows(), z.cols());
  const std::size_t cols = z.cols();
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const float* in = z.raw() + r * cols;
    float* out = y.raw() + r * cols;
    float max_v = in[0];
    for (std::size_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_v);
      total += out[c];
    }
    const float inv = 1.0f / total;
    for (std::size_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

}  // namespace ecad::nn
