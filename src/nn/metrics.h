// Classification metrics used by fitness evaluation and the result tables.
#pragma once

#include <cstddef>
#include <vector>

namespace ecad::nn {

/// Fraction of matching labels. Empty input returns 0. Throws on size mismatch.
double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels);

/// num_classes x num_classes row-major confusion matrix; rows = truth.
std::vector<std::size_t> confusion_matrix(const std::vector<int>& predictions,
                                          const std::vector<int>& labels,
                                          std::size_t num_classes);

struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Per-class precision/recall/F1 from a confusion matrix.
std::vector<ClassMetrics> per_class_metrics(const std::vector<std::size_t>& confusion,
                                            std::size_t num_classes);

/// Unweighted mean of per-class F1.
double macro_f1(const std::vector<int>& predictions, const std::vector<int>& labels,
                std::size_t num_classes);

}  // namespace ecad::nn
