#include "nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ecad::nn {

namespace {
constexpr const char* kMagic = "ecad-mlp-v1";

void write_matrix(std::ostream& out, const linalg::Matrix& matrix) {
  out << matrix.rows() << ' ' << matrix.cols();
  for (float v : matrix.data()) out << ' ' << v;
  out << '\n';
}

linalg::Matrix read_matrix(std::istream& in) {
  std::size_t rows = 0, cols = 0;
  if (!(in >> rows >> cols)) throw std::invalid_argument("load_mlp: bad matrix header");
  linalg::Matrix matrix(rows, cols);
  for (float& v : matrix.data()) {
    if (!(in >> v)) throw std::invalid_argument("load_mlp: truncated matrix data");
  }
  return matrix;
}

}  // namespace

void save_mlp(const Mlp& mlp, std::ostream& out) {
  const MlpSpec& spec = mlp.spec();
  out << kMagic << '\n';
  out << spec.input_dim << ' ' << spec.output_dim << ' ' << spec.hidden.size();
  for (std::size_t width : spec.hidden) out << ' ' << width;
  out << '\n';
  out << to_string(spec.activation) << ' ' << (spec.use_bias ? 1 : 0) << '\n';
  out << std::setprecision(9);
  for (std::size_t l = 0; l < mlp.num_layers(); ++l) {
    write_matrix(out, mlp.weights(l));
    if (spec.use_bias) write_matrix(out, mlp.bias(l));
  }
}

void save_mlp_file(const Mlp& mlp, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_mlp_file: cannot open " + path);
  save_mlp(mlp, file);
  if (!file) throw std::runtime_error("save_mlp_file: write failed for " + path);
}

Mlp load_mlp(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::invalid_argument("load_mlp: bad magic (expected " + std::string(kMagic) + ")");
  }
  MlpSpec spec;
  std::size_t hidden_count = 0;
  if (!(in >> spec.input_dim >> spec.output_dim >> hidden_count)) {
    throw std::invalid_argument("load_mlp: bad spec line");
  }
  spec.hidden.resize(hidden_count);
  for (std::size_t& width : spec.hidden) {
    if (!(in >> width)) throw std::invalid_argument("load_mlp: truncated hidden widths");
  }
  std::string activation_name;
  int use_bias = 0;
  if (!(in >> activation_name >> use_bias)) {
    throw std::invalid_argument("load_mlp: bad activation line");
  }
  spec.activation = activation_from_name(activation_name);
  spec.use_bias = use_bias != 0;
  spec.validate();

  util::Rng rng(0);  // weights are overwritten below
  Mlp mlp(spec, rng);
  for (std::size_t l = 0; l < mlp.num_layers(); ++l) {
    linalg::Matrix weights = read_matrix(in);
    if (weights.rows() != mlp.weights(l).rows() || weights.cols() != mlp.weights(l).cols()) {
      throw std::invalid_argument("load_mlp: weight shape mismatch at layer " +
                                  std::to_string(l));
    }
    mlp.weights(l) = std::move(weights);
    if (spec.use_bias) {
      linalg::Matrix bias = read_matrix(in);
      if (bias.rows() != 1 || bias.cols() != mlp.bias(l).cols()) {
        throw std::invalid_argument("load_mlp: bias shape mismatch at layer " +
                                    std::to_string(l));
      }
      mlp.bias(l) = std::move(bias);
    }
  }
  return mlp;
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_mlp_file: cannot open " + path);
  return load_mlp(file);
}

}  // namespace ecad::nn
