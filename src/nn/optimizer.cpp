#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/string_util.h"

namespace ecad::nn {

std::string_view to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::Sgd: return "sgd";
    case OptimizerKind::Momentum: return "momentum";
    case OptimizerKind::Adam: return "adam";
  }
  return "?";
}

OptimizerKind optimizer_from_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "sgd") return OptimizerKind::Sgd;
  if (lower == "momentum") return OptimizerKind::Momentum;
  if (lower == "adam") return OptimizerKind::Adam;
  throw std::invalid_argument("optimizer_from_name: unknown optimizer '" + std::string(name) +
                              "'");
}

namespace {

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(const OptimizerOptions& options) : options_(options) {}

  void step(std::size_t, ecad::span<float> params, ecad::span<const float> grads,
            bool decay) override {
    const float lr = static_cast<float>(options_.learning_rate);
    const float wd = decay ? static_cast<float>(options_.weight_decay) : 0.0f;
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= lr * (grads[i] + wd * params[i]);
    }
  }

 private:
  OptimizerOptions options_;
};

class MomentumOptimizer final : public Optimizer {
 public:
  MomentumOptimizer(const OptimizerOptions& options, std::size_t num_slots)
      : options_(options), velocity_(num_slots) {}

  void step(std::size_t slot, ecad::span<float> params, ecad::span<const float> grads,
            bool decay) override {
    auto& v = velocity_.at(slot);
    if (v.size() != params.size()) v.assign(params.size(), 0.0f);
    const float lr = static_cast<float>(options_.learning_rate);
    const float mu = static_cast<float>(options_.momentum);
    const float wd = decay ? static_cast<float>(options_.weight_decay) : 0.0f;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float g = grads[i] + wd * params[i];
      v[i] = mu * v[i] - lr * g;
      params[i] += v[i];
    }
  }

 private:
  OptimizerOptions options_;
  std::vector<std::vector<float>> velocity_;
};

class AdamOptimizer final : public Optimizer {
 public:
  AdamOptimizer(const OptimizerOptions& options, std::size_t num_slots)
      : options_(options), m_(num_slots), v_(num_slots) {}

  void step(std::size_t slot, ecad::span<float> params, ecad::span<const float> grads,
            bool decay) override {
    auto& m = m_.at(slot);
    auto& v = v_.at(slot);
    if (m.size() != params.size()) {
      m.assign(params.size(), 0.0f);
      v.assign(params.size(), 0.0f);
    }
    const double b1 = options_.beta1;
    const double b2 = options_.beta2;
    const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
    const float lr = static_cast<float>(options_.learning_rate);
    const float eps = static_cast<float>(options_.epsilon);
    const float wd = decay ? static_cast<float>(options_.weight_decay) : 0.0f;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float g = grads[i] + wd * params[i];
      m[i] = static_cast<float>(b1) * m[i] + static_cast<float>(1.0 - b1) * g;
      v[i] = static_cast<float>(b2) * v[i] + static_cast<float>(1.0 - b2) * g * g;
      const float m_hat = m[i] / static_cast<float>(bias1);
      const float v_hat = v[i] / static_cast<float>(bias2);
      params[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }

  void advance() override { ++t_; }

 private:
  OptimizerOptions options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 1;
};

}  // namespace

std::unique_ptr<Optimizer> make_optimizer(const OptimizerOptions& options, std::size_t num_slots) {
  switch (options.kind) {
    case OptimizerKind::Sgd: return std::make_unique<SgdOptimizer>(options);
    case OptimizerKind::Momentum: return std::make_unique<MomentumOptimizer>(options, num_slots);
    case OptimizerKind::Adam: return std::make_unique<AdamOptimizer>(options, num_slots);
  }
  throw std::logic_error("make_optimizer: unknown kind");
}

}  // namespace ecad::nn
