#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "nn/activation.h"

namespace ecad::nn {

namespace {
void check_labels(const linalg::Matrix& logits, const std::vector<int>& labels) {
  if (logits.rows() != labels.size()) {
    throw std::invalid_argument("cross_entropy: batch size mismatch");
  }
  for (int label : labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= logits.cols()) {
      throw std::invalid_argument("cross_entropy: label out of range");
    }
  }
}
}  // namespace

double cross_entropy_loss(const linalg::Matrix& logits, const std::vector<int>& labels) {
  check_labels(logits, labels);
  linalg::Matrix proba;
  softmax_rows(logits, proba);
  double total = 0.0;
  for (std::size_t r = 0; r < proba.rows(); ++r) {
    const float p = proba.at(r, static_cast<std::size_t>(labels[r]));
    total += -std::log(std::max(p, 1e-12f));
  }
  return total / static_cast<double>(std::max<std::size_t>(1, labels.size()));
}

double cross_entropy_loss_grad(const linalg::Matrix& logits, const std::vector<int>& labels,
                               linalg::Matrix& grad) {
  check_labels(logits, labels);
  softmax_rows(logits, grad);  // grad = softmax(logits)
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(std::max<std::size_t>(1, labels.size()));
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const std::size_t label = static_cast<std::size_t>(labels[r]);
    total += -std::log(std::max(grad.at(r, label), 1e-12f));
    grad.at(r, label) -= 1.0f;
    for (std::size_t c = 0; c < grad.cols(); ++c) grad.at(r, c) *= inv_batch;
  }
  return total / static_cast<double>(std::max<std::size_t>(1, labels.size()));
}

double mse_loss(const linalg::Matrix& predictions, const linalg::Matrix& targets) {
  if (predictions.rows() != targets.rows() || predictions.cols() != targets.cols()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions.data()[i] - targets.data()[i];
    total += d * d;
  }
  return total / static_cast<double>(std::max<std::size_t>(1, predictions.size()));
}

double mse_loss_grad(const linalg::Matrix& predictions, const linalg::Matrix& targets,
                     linalg::Matrix& grad) {
  const double loss = mse_loss(predictions, targets);
  grad.reshape_discard(predictions.rows(), predictions.cols());
  const float scale = 2.0f / static_cast<float>(std::max<std::size_t>(1, predictions.size()));
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    grad.data()[i] = scale * (predictions.data()[i] - targets.data()[i]);
  }
  return loss;
}

}  // namespace ecad::nn
