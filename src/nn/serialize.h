// MLP model serialization: a versioned text format so co-design winners can
// be exported from a search and reloaded for deployment or inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.h"

namespace ecad::nn {

/// Serialize spec + weights. Format: header line, spec lines, then one line
/// of whitespace-separated floats per weight/bias matrix (row-major).
void save_mlp(const Mlp& mlp, std::ostream& out);
void save_mlp_file(const Mlp& mlp, const std::string& path);

/// Reload; throws std::invalid_argument on format errors,
/// std::runtime_error on I/O failure.
Mlp load_mlp(std::istream& in);
Mlp load_mlp_file(const std::string& path);

}  // namespace ecad::nn
