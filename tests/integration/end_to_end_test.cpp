// Integration tests: the full ECAD flow — benchmark surrogate -> worker ->
// steady-state search -> Pareto extraction — exercising the same paths the
// paper's experiments use, at miniature budgets.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/master.h"
#include "core/report.h"
#include "core/worker.h"
#include "data/benchmarks.h"
#include "util/logging.h"

namespace ecad {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  static core::SearchRequest tiny_request(bool search_hardware, const std::string& fitness) {
    core::SearchRequest request;
    request.space.search_hardware = search_hardware;
    request.space.width_choices = {8, 16, 32};
    request.space.max_hidden_layers = 2;
    request.evolution.population_size = 5;
    request.evolution.max_evaluations = 15;
    request.fitness = fitness;
    request.threads = 1;
    request.seed = 3;
    return request;
  }
};

TEST_F(EndToEndTest, AccuracySearchBeatsMajorityClass) {
  const auto split = data::load_benchmark_split(data::Benchmark::CreditG, 0.5, 7);
  nn::TrainOptions train;
  train.epochs = 10;
  const core::AccuracyWorker worker(split, train, 11);
  core::Master master;
  const auto outcome = master.search(worker, tiny_request(false, "accuracy"));
  EXPECT_GT(outcome.best.result.accuracy, split.test.majority_fraction());
}

TEST_F(EndToEndTest, JointSearchProducesFeasibleFpgaDesigns) {
  const auto split = data::load_benchmark_split(data::Benchmark::Phishing, 0.3, 9);
  nn::TrainOptions train;
  train.epochs = 6;
  const core::FpgaHardwareDatabaseWorker worker(split, train, 13, hw::arria10_gx1150(1), 256);
  core::Master master;
  const auto outcome = master.search(worker, tiny_request(true, "accuracy_x_throughput"));

  const auto& best = outcome.best;
  EXPECT_TRUE(best.result.feasible);
  EXPECT_GT(best.result.accuracy, 0.6);
  EXPECT_GT(best.result.outputs_per_second, 0.0);
  EXPECT_LE(best.result.hw_efficiency, 1.0);
  EXPECT_TRUE(best.genome.grid.fits(hw::arria10_gx1150(1)));
}

TEST_F(EndToEndTest, FpgaEfficiencyExceedsGpuEfficiencyAtSimilarAccuracy) {
  // The paper's Fig. 4 headline shape: FPGA ~41.5% vs GPU ~0.3%.
  const auto split = data::load_benchmark_split(data::Benchmark::Phishing, 0.3, 21);
  nn::TrainOptions train;
  train.epochs = 6;
  core::Master master;

  const core::FpgaHardwareDatabaseWorker fpga(split, train, 23, hw::stratix10_2800(4), 256);
  const auto fpga_outcome = master.search(fpga, tiny_request(true, "accuracy_x_throughput"));

  const core::GpuSimulationWorker gpu(split, train, 23, hw::titan_x(), 512);
  const auto gpu_outcome = master.search(gpu, tiny_request(false, "accuracy_x_throughput"));

  const auto& fpga_best = core::best_by_accuracy(fpga_outcome.history);
  const auto& gpu_best = core::best_by_accuracy(gpu_outcome.history);
  EXPECT_GT(fpga_best.result.hw_efficiency, gpu_best.result.hw_efficiency * 3.0);
}

TEST_F(EndToEndTest, ThroughputSearchSacrificesLittleAccuracyForBigSpeedups) {
  // Fig. 2a shape: within ~1 accuracy point there are configs spanning a
  // wide throughput range; the report helper should find a faster config.
  const auto split = data::load_benchmark_split(data::Benchmark::CreditG, 0.5, 31);
  nn::TrainOptions train;
  train.epochs = 8;
  const core::FpgaHardwareDatabaseWorker worker(split, train, 33, hw::arria10_gx1150(1), 256);
  core::Master master;
  auto request = tiny_request(true, "accuracy_x_throughput");
  request.evolution.max_evaluations = 25;
  const auto outcome = master.search(worker, request);

  const auto& top = core::best_by_accuracy(outcome.history);
  const auto& fast = core::best_throughput_within(outcome.history, 0.02);
  EXPECT_GE(fast.result.outputs_per_second, top.result.outputs_per_second);
  EXPECT_GE(fast.result.accuracy, top.result.accuracy - 0.02);
}

TEST_F(EndToEndTest, ParetoFrontFromRealSearchIsMutuallyNonDominated) {
  const auto split = data::load_benchmark_split(data::Benchmark::CreditG, 0.4, 41);
  nn::TrainOptions train;
  train.epochs = 6;
  const core::FpgaHardwareDatabaseWorker worker(split, train, 43, hw::arria10_gx1150(1), 256);
  core::Master master;
  const auto outcome = master.search(worker, tiny_request(true, "accuracy_x_throughput"));

  const std::vector<evo::Metric> metrics = {evo::Metric::Accuracy, evo::Metric::Throughput};
  const auto front = core::Master::pareto_candidates(outcome.history, metrics);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(evo::dominates(front[j].result, front[i].result, metrics));
    }
  }
}

TEST_F(EndToEndTest, CacheStatisticsReported) {
  const auto split = data::load_benchmark_split(data::Benchmark::CreditG, 0.3, 51);
  nn::TrainOptions train;
  train.epochs = 4;
  const core::AccuracyWorker worker(split, train, 53);
  core::Master master;
  // Tiny space forces duplicate offspring -> duplicates_skipped should rise.
  core::SearchRequest request = tiny_request(false, "accuracy");
  request.space.width_choices = {8};
  request.space.max_hidden_layers = 1;
  request.space.activations = {nn::Activation::ReLU};
  request.space.allow_no_bias = false;
  request.evolution.max_evaluations = 6;
  const auto outcome = master.search(worker, request);
  // The space has exactly 1 NNA configuration; after evaluating it the
  // engine can only skip duplicates or stop.
  EXPECT_LE(outcome.stats.models_evaluated, 3u);
}

}  // namespace
}  // namespace ecad
