#include "nn/evaluate.h"

#include "data/preprocess.h"

#include <gtest/gtest.h>

namespace ecad::nn {
namespace {

data::Dataset easy_pool(std::size_t n = 200) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 5;
  spec.num_classes = 2;
  spec.latent_dim = 3;
  spec.clusters_per_class = 1;
  spec.cluster_separation = 5.0;
  util::Rng rng(15);
  return data::generate_synthetic(spec, rng);
}

TEST(KFoldEvaluate, ProducesOneAccuracyPerFold) {
  MlpSpec spec;
  spec.input_dim = 5;
  spec.output_dim = 2;
  spec.hidden = {16};
  TrainOptions options;
  options.epochs = 30;
  options.optimizer.learning_rate = 5e-3;
  util::Rng rng(1);
  const KFoldResult result = kfold_evaluate(spec, easy_pool(), 5, options, rng);
  EXPECT_EQ(result.fold_accuracies.size(), 5u);
  EXPECT_GT(result.mean_accuracy, 0.9);
  EXPECT_GE(result.stddev_accuracy, 0.0);
  for (double accuracy : result.fold_accuracies) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
}

TEST(KFoldEvaluate, MeanMatchesFolds) {
  MlpSpec spec;
  spec.input_dim = 5;
  spec.output_dim = 2;
  spec.hidden = {4};
  TrainOptions options;
  options.epochs = 5;
  util::Rng rng(2);
  const KFoldResult result = kfold_evaluate(spec, easy_pool(100), 4, options, rng);
  double sum = 0.0;
  for (double accuracy : result.fold_accuracies) sum += accuracy;
  EXPECT_NEAR(result.mean_accuracy, sum / 4.0, 1e-12);
}

TEST(HoldoutEvaluate, TrainsAndScores) {
  const data::Dataset pool = easy_pool();
  util::Rng split_rng(3);
  data::TrainTestSplit split = data::stratified_split(pool, 0.3, split_rng);
  data::standardize_together(split.train, {&split.test});
  MlpSpec spec;
  spec.input_dim = 5;
  spec.output_dim = 2;
  spec.hidden = {16};
  TrainOptions options;
  options.epochs = 30;
  options.optimizer.learning_rate = 5e-3;
  util::Rng rng(4);
  EXPECT_GT(holdout_evaluate(spec, split, options, rng), 0.9);
}

}  // namespace
}  // namespace ecad::nn
