#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "data/preprocess.h"
#include "data/synthetic.h"

namespace ecad::nn {
namespace {

data::Dataset blobs(std::size_t n, std::uint64_t seed = 3) {
  data::SyntheticSpec spec;
  spec.num_samples = n;
  spec.num_features = 6;
  spec.num_classes = 3;
  spec.latent_dim = 4;
  spec.clusters_per_class = 1;
  spec.cluster_separation = 5.0;
  util::Rng rng(seed);
  data::Dataset dataset = data::generate_synthetic(spec, rng);
  data::standardize_together(dataset, {});
  return dataset;
}

// XOR: not linearly separable — requires the hidden layer to work.
data::Dataset xor_dataset() {
  data::Dataset dataset;
  dataset.name = "xor";
  dataset.num_classes = 2;
  dataset.features.reshape_discard(200, 2);
  util::Rng rng(7);
  for (std::size_t i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.next_double(-1.0, 1.0));
    const float y = static_cast<float>(rng.next_double(-1.0, 1.0));
    dataset.features.at(i, 0) = x;
    dataset.features.at(i, 1) = y;
    dataset.labels.push_back((x > 0.0f) != (y > 0.0f) ? 1 : 0);
  }
  return dataset;
}

TEST(Trainer, LearnsLinearlySeparableBlobs) {
  const data::Dataset dataset = blobs(300);
  MlpSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  spec.hidden = {16};
  util::Rng rng(1);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 30;
  const TrainResult result = train(mlp, dataset, nullptr, options, rng);
  EXPECT_GT(evaluate_accuracy(mlp, dataset), 0.95);
  EXPECT_EQ(result.history.size(), result.epochs_run);
  EXPECT_LT(result.history.back().train_loss, result.history.front().train_loss);
}

TEST(Trainer, LearnsXorWithHiddenLayer) {
  const data::Dataset dataset = xor_dataset();
  MlpSpec spec;
  spec.input_dim = 2;
  spec.output_dim = 2;
  spec.hidden = {16};
  util::Rng rng(2);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 120;
  options.optimizer.learning_rate = 5e-3;
  train(mlp, dataset, nullptr, options, rng);
  EXPECT_GT(evaluate_accuracy(mlp, dataset), 0.9);
}

TEST(Trainer, LinearModelCannotLearnXor) {
  const data::Dataset dataset = xor_dataset();
  MlpSpec spec;
  spec.input_dim = 2;
  spec.output_dim = 2;  // no hidden layer: logistic regression
  util::Rng rng(2);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 60;
  train(mlp, dataset, nullptr, options, rng);
  EXPECT_LT(evaluate_accuracy(mlp, dataset), 0.75);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  // Train/validation must come from the same distribution: generate one pool
  // and slice it.
  const data::Dataset pool = blobs(300, 3);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < pool.num_samples(); ++i) {
    (i < 200 ? train_idx : val_idx).push_back(i);
  }
  const data::Dataset train_set = pool.subset(train_idx);
  const data::Dataset validation = pool.subset(val_idx);
  MlpSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  spec.hidden = {16};
  util::Rng rng(5);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 200;  // far more than needed; patience should cut it
  options.early_stop_patience = 3;
  const TrainResult result = train(mlp, train_set, &validation, options, rng);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.epochs_run, 200u);
  EXPECT_GT(result.best_validation_accuracy, 0.9);
}

TEST(Trainer, ZeroPatienceDisablesEarlyStopping) {
  const data::Dataset train_set = blobs(100);
  const data::Dataset validation = blobs(50, 8);
  MlpSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  spec.hidden = {8};
  util::Rng rng(6);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 12;
  options.early_stop_patience = 0;
  const TrainResult result = train(mlp, train_set, &validation, options, rng);
  EXPECT_FALSE(result.early_stopped);
  EXPECT_EQ(result.epochs_run, 12u);
}

TEST(Trainer, ValidatesSchema) {
  const data::Dataset dataset = blobs(50);
  MlpSpec spec;
  spec.input_dim = 99;  // wrong width
  spec.output_dim = 3;
  util::Rng rng(1);
  Mlp mlp(spec, rng);
  EXPECT_THROW(train(mlp, dataset, nullptr, TrainOptions{}, rng), std::invalid_argument);

  MlpSpec narrow;
  narrow.input_dim = 6;
  narrow.output_dim = 2;  // fewer outputs than classes
  Mlp narrow_mlp(narrow, rng);
  EXPECT_THROW(train(narrow_mlp, dataset, nullptr, TrainOptions{}, rng), std::invalid_argument);

  MlpSpec ok;
  ok.input_dim = 6;
  ok.output_dim = 3;
  Mlp ok_mlp(ok, rng);
  TrainOptions bad_batch;
  bad_batch.batch_size = 0;
  EXPECT_THROW(train(ok_mlp, dataset, nullptr, bad_batch, rng), std::invalid_argument);
}

TEST(Trainer, BatchLargerThanDatasetStillWorks) {
  const data::Dataset dataset = blobs(20);
  MlpSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  spec.hidden = {8};
  util::Rng rng(4);
  Mlp mlp(spec, rng);
  TrainOptions options;
  options.epochs = 80;  // one gradient step per epoch at this batch size
  options.batch_size = 512;
  train(mlp, dataset, nullptr, options, rng);
  EXPECT_GT(evaluate_accuracy(mlp, dataset), 0.8);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const data::Dataset dataset = blobs(100);
  MlpSpec spec;
  spec.input_dim = 6;
  spec.output_dim = 3;
  spec.hidden = {8};
  TrainOptions options;
  options.epochs = 5;

  util::Rng rng1(77), rng2(77);
  Mlp a(spec, rng1), b(spec, rng2);
  const TrainResult ra = train(a, dataset, nullptr, options, rng1);
  const TrainResult rb = train(b, dataset, nullptr, options, rng2);
  EXPECT_DOUBLE_EQ(ra.final_train_loss, rb.final_train_loss);
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_EQ(a.weights(l), b.weights(l));
  }
}

}  // namespace
}  // namespace ecad::nn
