#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace ecad::nn {
namespace {

Mlp make_model(bool use_bias = true) {
  MlpSpec spec;
  spec.input_dim = 7;
  spec.output_dim = 3;
  spec.hidden = {12, 5};
  spec.activation = Activation::Elu;
  spec.use_bias = use_bias;
  util::Rng rng(33);
  return Mlp(spec, rng);
}

TEST(Serialize, RoundTripPreservesSpecAndWeights) {
  const Mlp original = make_model();
  std::stringstream stream;
  save_mlp(original, stream);
  const Mlp restored = load_mlp(stream);

  EXPECT_EQ(restored.spec(), original.spec());
  for (std::size_t l = 0; l < original.num_layers(); ++l) {
    EXPECT_TRUE(restored.weights(l).approx_equal(original.weights(l), 1e-6f)) << "layer " << l;
    EXPECT_TRUE(restored.bias(l).approx_equal(original.bias(l), 1e-6f)) << "layer " << l;
  }
}

TEST(Serialize, RoundTripPreservesPredictions) {
  const Mlp original = make_model();
  util::Rng rng(5);
  const linalg::Matrix input = linalg::Matrix::random_uniform(10, 7, rng);
  std::stringstream stream;
  save_mlp(original, stream);
  const Mlp restored = load_mlp(stream);
  EXPECT_TRUE(restored.forward(input).approx_equal(original.forward(input), 1e-4f));
}

TEST(Serialize, NoBiasModelsRoundTrip) {
  const Mlp original = make_model(/*use_bias=*/false);
  std::stringstream stream;
  save_mlp(original, stream);
  const Mlp restored = load_mlp(stream);
  EXPECT_FALSE(restored.spec().use_bias);
  util::Rng rng(6);
  const linalg::Matrix input = linalg::Matrix::random_uniform(4, 7, rng);
  EXPECT_TRUE(restored.forward(input).approx_equal(original.forward(input), 1e-4f));
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecad_mlp_test.txt").string();
  const Mlp original = make_model();
  save_mlp_file(original, path);
  const Mlp restored = load_mlp_file(path);
  EXPECT_EQ(restored.spec(), original.spec());
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream stream("not-a-model 1 2 3");
  EXPECT_THROW(load_mlp(stream), std::invalid_argument);
}

TEST(Serialize, TruncatedDataThrows) {
  const Mlp original = make_model();
  std::stringstream stream;
  save_mlp(original, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_mlp(truncated), std::invalid_argument);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_mlp_file("/no/such/model.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ecad::nn
