#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ecad::nn {
namespace {

TEST(Optimizer, NamesRoundTrip) {
  for (OptimizerKind kind : {OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adam}) {
    EXPECT_EQ(optimizer_from_name(to_string(kind)), kind);
  }
  EXPECT_THROW(optimizer_from_name("lbfgs"), std::invalid_argument);
}

TEST(Sgd, SingleStepIsLrTimesGrad) {
  OptimizerOptions options;
  options.kind = OptimizerKind::Sgd;
  options.learning_rate = 0.1;
  auto optimizer = make_optimizer(options, 1);
  std::vector<float> params{1.0f};
  const std::vector<float> grads{2.0f};
  optimizer->step(0, params, grads, /*decay=*/false);
  EXPECT_NEAR(params[0], 1.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(Sgd, WeightDecayAppliesOnlyWhenRequested) {
  OptimizerOptions options;
  options.kind = OptimizerKind::Sgd;
  options.learning_rate = 0.1;
  options.weight_decay = 1.0;
  auto optimizer = make_optimizer(options, 2);
  std::vector<float> decayed{1.0f}, undecayed{1.0f};
  const std::vector<float> zero_grad{0.0f};
  optimizer->step(0, decayed, zero_grad, true);
  optimizer->step(1, undecayed, zero_grad, false);
  EXPECT_LT(decayed[0], 1.0f);
  EXPECT_FLOAT_EQ(undecayed[0], 1.0f);
}

// Every optimizer must minimize the convex quadratic f(x) = ||x - t||².
class OptimizerConvergenceTest : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  OptimizerOptions options;
  options.kind = GetParam();
  options.learning_rate = options.kind == OptimizerKind::Adam ? 0.05 : 0.1;
  auto optimizer = make_optimizer(options, 1);

  std::vector<float> x{5.0f, -3.0f};
  const std::vector<float> target{1.0f, 2.0f};
  for (int step = 0; step < 500; ++step) {
    std::vector<float> grads(2);
    for (int i = 0; i < 2; ++i) grads[static_cast<std::size_t>(i)] = 2.0f * (x[static_cast<std::size_t>(i)] - target[static_cast<std::size_t>(i)]);
    optimizer->step(0, x, grads, false);
    optimizer->advance();
  }
  EXPECT_NEAR(x[0], 1.0f, 0.05f);
  EXPECT_NEAR(x[1], 2.0f, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::Sgd, OptimizerKind::Momentum,
                                           OptimizerKind::Adam),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Momentum, AcceleratesInConsistentDirection) {
  OptimizerOptions sgd_options;
  sgd_options.kind = OptimizerKind::Sgd;
  sgd_options.learning_rate = 0.01;
  OptimizerOptions momentum_options = sgd_options;
  momentum_options.kind = OptimizerKind::Momentum;
  momentum_options.momentum = 0.9;

  auto sgd = make_optimizer(sgd_options, 1);
  auto momentum = make_optimizer(momentum_options, 1);
  std::vector<float> x_sgd{0.0f}, x_momentum{0.0f};
  const std::vector<float> grad{-1.0f};  // constant downhill
  for (int i = 0; i < 20; ++i) {
    sgd->step(0, x_sgd, grad, false);
    momentum->step(0, x_momentum, grad, false);
  }
  EXPECT_GT(x_momentum[0], x_sgd[0] * 2.0f);
}

TEST(Adam, StepMagnitudeBoundedByLearningRate) {
  OptimizerOptions options;
  options.kind = OptimizerKind::Adam;
  options.learning_rate = 0.001;
  auto optimizer = make_optimizer(options, 1);
  std::vector<float> x{0.0f};
  // Huge gradient: Adam normalizes, so the first step ~ lr.
  optimizer->step(0, x, std::vector<float>{1e6f}, false);
  EXPECT_NEAR(std::fabs(x[0]), 0.001f, 2e-4f);
}

TEST(Adam, PerSlotStateIsIndependent) {
  OptimizerOptions options;
  options.kind = OptimizerKind::Adam;
  options.learning_rate = 0.01;
  auto optimizer = make_optimizer(options, 2);
  std::vector<float> a{0.0f}, b{0.0f};
  optimizer->step(0, a, std::vector<float>{1.0f}, false);
  // Slot 1 never saw a gradient; its state must start fresh.
  optimizer->step(1, b, std::vector<float>{1.0f}, false);
  EXPECT_NEAR(a[0], b[0], 1e-6f);
}

}  // namespace
}  // namespace ecad::nn
