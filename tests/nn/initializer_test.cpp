#include "nn/initializer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::nn {
namespace {

TEST(Initializer, DefaultSchemeFollowsActivation) {
  EXPECT_EQ(default_init_for(Activation::ReLU), InitScheme::He);
  EXPECT_EQ(default_init_for(Activation::LeakyReLU), InitScheme::He);
  EXPECT_EQ(default_init_for(Activation::Elu), InitScheme::He);
  EXPECT_EQ(default_init_for(Activation::Sigmoid), InitScheme::Xavier);
  EXPECT_EQ(default_init_for(Activation::Tanh), InitScheme::Xavier);
}

TEST(Initializer, XavierStaysWithinLimit) {
  linalg::Matrix w(64, 32);
  util::Rng rng(1);
  initialize_weights(w, InitScheme::Xavier, rng);
  const double limit = std::sqrt(6.0 / (64.0 + 32.0));
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Initializer, HeVarianceScalesWithFanIn) {
  util::Rng rng(2);
  linalg::Matrix w(400, 50);
  initialize_weights(w, InitScheme::He, rng);
  double sum_sq = 0.0;
  for (float v : w.data()) sum_sq += static_cast<double>(v) * v;
  const double variance = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(variance, 2.0 / 400.0, 2.0 / 400.0 * 0.2);
}

TEST(Initializer, UniformSmallRange) {
  util::Rng rng(3);
  linalg::Matrix w(10, 10);
  initialize_weights(w, InitScheme::Uniform, rng);
  for (float v : w.data()) {
    EXPECT_GE(v, -0.05f);
    EXPECT_LE(v, 0.05f);
  }
}

TEST(Initializer, NotAllZero) {
  util::Rng rng(4);
  linalg::Matrix w(8, 8);
  initialize_weights(w, InitScheme::He, rng);
  double sum_abs = 0.0;
  for (float v : w.data()) sum_abs += std::fabs(v);
  EXPECT_GT(sum_abs, 0.0);
}

}  // namespace
}  // namespace ecad::nn
