#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::nn {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const linalg::Matrix logits(4, 3, 0.0f);
  const double loss = cross_entropy_loss(logits, {0, 1, 2, 0});
  EXPECT_NEAR(loss, std::log(3.0), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectPredictionNearZero) {
  linalg::Matrix logits(1, 2);
  logits.at(0, 0) = 20.0f;
  logits.at(0, 1) = -20.0f;
  EXPECT_NEAR(cross_entropy_loss(logits, {0}), 0.0, 1e-5);
  EXPECT_GT(cross_entropy_loss(logits, {1}), 10.0);
}

TEST(CrossEntropy, SizeAndRangeValidation) {
  const linalg::Matrix logits(2, 3);
  EXPECT_THROW(cross_entropy_loss(logits, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss(logits, {0, -1}), std::invalid_argument);
}

TEST(CrossEntropyGrad, MatchesFiniteDifference) {
  util::Rng rng(5);
  linalg::Matrix logits = linalg::Matrix::random_uniform(3, 4, rng, -2.0f, 2.0f);
  const std::vector<int> labels = {1, 3, 0};
  linalg::Matrix grad;
  const double loss = cross_entropy_loss_grad(logits, labels, grad);
  EXPECT_NEAR(loss, cross_entropy_loss(logits, labels), 1e-6);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.data()[i];
    logits.data()[i] = saved + eps;
    const double up = cross_entropy_loss(logits, labels);
    logits.data()[i] = saved - eps;
    const double down = cross_entropy_loss(logits, labels);
    logits.data()[i] = saved;
    EXPECT_NEAR(grad.data()[i], (up - down) / (2.0 * eps), 1e-3);
  }
}

TEST(CrossEntropyGrad, RowsSumToZero) {
  // softmax minus one-hot sums to zero across classes in every row.
  util::Rng rng(7);
  const linalg::Matrix logits = linalg::Matrix::random_uniform(5, 6, rng);
  linalg::Matrix grad;
  cross_entropy_loss_grad(logits, {0, 1, 2, 3, 4}, grad);
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < grad.cols(); ++c) total += grad.at(r, c);
    EXPECT_NEAR(total, 0.0f, 1e-6f);
  }
}

TEST(Mse, ZeroForIdenticalInputs) {
  const linalg::Matrix a{{1.0f, 2.0f}};
  EXPECT_DOUBLE_EQ(mse_loss(a, a), 0.0);
}

TEST(Mse, KnownValue) {
  const linalg::Matrix pred{{1.0f, 2.0f}};
  const linalg::Matrix target{{0.0f, 4.0f}};
  EXPECT_NEAR(mse_loss(pred, target), (1.0 + 4.0) / 2.0, 1e-6);
}

TEST(Mse, ShapeMismatchThrows) {
  EXPECT_THROW(mse_loss(linalg::Matrix(1, 2), linalg::Matrix(2, 1)), std::invalid_argument);
}

TEST(MseGrad, MatchesFiniteDifference) {
  util::Rng rng(9);
  linalg::Matrix pred = linalg::Matrix::random_uniform(2, 3, rng);
  const linalg::Matrix target = linalg::Matrix::random_uniform(2, 3, rng);
  linalg::Matrix grad;
  mse_loss_grad(pred, target, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float saved = pred.data()[i];
    pred.data()[i] = saved + eps;
    const double up = mse_loss(pred, target);
    pred.data()[i] = saved - eps;
    const double down = mse_loss(pred, target);
    pred.data()[i] = saved;
    EXPECT_NEAR(grad.data()[i], (up - down) / (2.0 * eps), 1e-3);
  }
}

}  // namespace
}  // namespace ecad::nn
