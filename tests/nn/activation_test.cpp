#include "nn/activation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::nn {
namespace {

TEST(Activation, NamesRoundTrip) {
  for (Activation activation :
       {Activation::ReLU, Activation::Sigmoid, Activation::Tanh, Activation::LeakyReLU,
        Activation::Elu, Activation::Identity}) {
    EXPECT_EQ(activation_from_name(to_string(activation)), activation);
  }
  EXPECT_EQ(activation_from_name("logistic"), Activation::Sigmoid);
  EXPECT_EQ(activation_from_name("linear"), Activation::Identity);
  EXPECT_THROW(activation_from_name("swish"), std::invalid_argument);
}

TEST(Activation, ScalarValues) {
  EXPECT_FLOAT_EQ(activate_scalar(Activation::ReLU, -2.0f), 0.0f);
  EXPECT_FLOAT_EQ(activate_scalar(Activation::ReLU, 3.0f), 3.0f);
  EXPECT_NEAR(activate_scalar(Activation::Sigmoid, 0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(activate_scalar(Activation::Tanh, 100.0f), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(activate_scalar(Activation::LeakyReLU, -1.0f), -0.01f);
  EXPECT_NEAR(activate_scalar(Activation::Elu, -100.0f), -1.0f, 1e-5);
  EXPECT_FLOAT_EQ(activate_scalar(Activation::Identity, -7.5f), -7.5f);
}

class ActivationParamTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationParamTest, MatrixApplyMatchesScalar) {
  const Activation activation = GetParam();
  util::Rng rng(3);
  const linalg::Matrix z = linalg::Matrix::random_uniform(4, 5, rng, -3.0f, 3.0f);
  linalg::Matrix y;
  apply_activation(activation, z, y);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(y.data()[i], activate_scalar(activation, z.data()[i]), 1e-6f);
  }
}

TEST_P(ActivationParamTest, InPlaceApplyAllowed) {
  const Activation activation = GetParam();
  util::Rng rng(5);
  linalg::Matrix z = linalg::Matrix::random_uniform(3, 3, rng, -2.0f, 2.0f);
  const linalg::Matrix original = z;
  apply_activation(activation, z, z);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_NEAR(z.data()[i], activate_scalar(activation, original.data()[i]), 1e-6f);
  }
}

TEST_P(ActivationParamTest, GradientMatchesFiniteDifference) {
  const Activation activation = GetParam();
  util::Rng rng(7);
  // Avoid the ReLU kink at exactly 0 by sampling away from it.
  linalg::Matrix z(1, 16);
  for (std::size_t i = 0; i < z.size(); ++i) {
    float v = static_cast<float>(rng.next_double(-2.0, 2.0));
    if (std::fabs(v) < 0.05f) v = 0.1f;
    z.data()[i] = v;
  }
  linalg::Matrix delta(1, 16, 1.0f);
  apply_activation_gradient(activation, z, delta);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const float fd = (activate_scalar(activation, z.data()[i] + eps) -
                      activate_scalar(activation, z.data()[i] - eps)) /
                     (2.0f * eps);
    EXPECT_NEAR(delta.data()[i], fd, 5e-3f) << to_string(activation) << " at z=" << z.data()[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationParamTest,
                         ::testing::Values(Activation::ReLU, Activation::Sigmoid,
                                           Activation::Tanh, Activation::LeakyReLU,
                                           Activation::Elu, Activation::Identity),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(9);
  const linalg::Matrix z = linalg::Matrix::random_uniform(6, 10, rng, -5.0f, 5.0f);
  linalg::Matrix y;
  softmax_rows(z, y);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < y.cols(); ++c) {
      EXPECT_GT(y.at(r, c), 0.0f);
      total += y.at(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const linalg::Matrix z{{1000.0f, 1001.0f}};
  linalg::Matrix y;
  softmax_rows(z, y);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1), 1.0f, 1e-5f);
  EXPECT_GT(y.at(0, 1), y.at(0, 0));
}

TEST(Softmax, ShiftInvariance) {
  const linalg::Matrix a{{1.0f, 2.0f, 3.0f}};
  const linalg::Matrix b{{11.0f, 12.0f, 13.0f}};
  linalg::Matrix ya, yb;
  softmax_rows(a, ya);
  softmax_rows(b, yb);
  EXPECT_TRUE(ya.approx_equal(yb, 1e-5f));
}

}  // namespace
}  // namespace ecad::nn
