#include "nn/metrics.h"

#include <gtest/gtest.h>

namespace ecad::nn {
namespace {

TEST(Accuracy, Fraction) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy({2}, {2}), 1.0);
}

TEST(Accuracy, SizeMismatchThrows) {
  EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
}

TEST(ConfusionMatrix, CountsTruthByPrediction) {
  // truth:      0 0 1 1 1
  // prediction: 0 1 1 1 0
  const auto matrix = confusion_matrix({0, 1, 1, 1, 0}, {0, 0, 1, 1, 1}, 2);
  EXPECT_EQ(matrix[0 * 2 + 0], 1u);  // truth 0 pred 0
  EXPECT_EQ(matrix[0 * 2 + 1], 1u);  // truth 0 pred 1
  EXPECT_EQ(matrix[1 * 2 + 0], 1u);  // truth 1 pred 0
  EXPECT_EQ(matrix[1 * 2 + 1], 2u);  // truth 1 pred 1
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  EXPECT_THROW(confusion_matrix({5}, {0}, 2), std::invalid_argument);
  EXPECT_THROW(confusion_matrix({0}, {-1}, 2), std::invalid_argument);
}

TEST(PerClassMetrics, PerfectPrediction) {
  const auto matrix = confusion_matrix({0, 1, 2}, {0, 1, 2}, 3);
  const auto metrics = per_class_metrics(matrix, 3);
  for (const auto& m : metrics) {
    EXPECT_DOUBLE_EQ(m.precision, 1.0);
    EXPECT_DOUBLE_EQ(m.recall, 1.0);
    EXPECT_DOUBLE_EQ(m.f1, 1.0);
  }
}

TEST(PerClassMetrics, KnownValues) {
  // truth:      0 0 1 1 1 ; prediction: 0 1 1 1 0
  const auto matrix = confusion_matrix({0, 1, 1, 1, 0}, {0, 0, 1, 1, 1}, 2);
  const auto metrics = per_class_metrics(matrix, 2);
  EXPECT_DOUBLE_EQ(metrics[0].precision, 0.5);  // tp=1, fp=1
  EXPECT_DOUBLE_EQ(metrics[0].recall, 0.5);     // tp=1, fn=1
  EXPECT_NEAR(metrics[1].precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics[1].recall, 2.0 / 3.0, 1e-12);
}

TEST(PerClassMetrics, AbsentClassYieldsZeroNotNaN) {
  const auto matrix = confusion_matrix({0, 0}, {0, 0}, 2);
  const auto metrics = per_class_metrics(matrix, 2);
  EXPECT_DOUBLE_EQ(metrics[1].precision, 0.0);
  EXPECT_DOUBLE_EQ(metrics[1].recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics[1].f1, 0.0);
}

TEST(MacroF1, AveragesPerClassF1) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(macro_f1({}, {}, 0), 0.0);
}

TEST(MacroF1, PenalizesMissedClass) {
  const double f1 = macro_f1({0, 0, 0, 0}, {0, 0, 1, 1}, 2);
  EXPECT_LT(f1, 0.5);
  EXPECT_GT(f1, 0.0);
}

}  // namespace
}  // namespace ecad::nn
