#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace ecad::nn {
namespace {

MlpSpec small_spec() {
  MlpSpec spec;
  spec.input_dim = 4;
  spec.output_dim = 3;
  spec.hidden = {8, 6};
  spec.activation = Activation::Tanh;
  return spec;
}

TEST(MlpSpec, LayerDims) {
  EXPECT_EQ(small_spec().layer_dims(), (std::vector<std::size_t>{4, 8, 6, 3}));
  MlpSpec shallow;
  shallow.input_dim = 5;
  shallow.output_dim = 2;
  EXPECT_EQ(shallow.layer_dims(), (std::vector<std::size_t>{5, 2}));
}

TEST(MlpSpec, ParameterCount) {
  // (4*8+8) + (8*6+6) + (6*3+3) = 40 + 54 + 21 = 115
  EXPECT_EQ(small_spec().num_parameters(), 115u);
  MlpSpec no_bias = small_spec();
  no_bias.use_bias = false;
  EXPECT_EQ(no_bias.num_parameters(), 32u + 48u + 18u);
}

TEST(MlpSpec, FlopsPerSample) {
  // 2*(4*8) + 8 + 2*(8*6) + 6 + 2*(6*3) + 3 = 64+8+96+6+36+3 = 213
  EXPECT_EQ(small_spec().flops_per_sample(), 213u);
}

TEST(MlpSpec, TotalHiddenNeurons) { EXPECT_EQ(small_spec().total_hidden_neurons(), 14u); }

TEST(MlpSpec, ToStringFormat) {
  EXPECT_EQ(small_spec().to_string(), "4-8-6-3 tanh bias");
}

TEST(MlpSpec, ValidateRejectsDegenerate) {
  MlpSpec spec = small_spec();
  spec.input_dim = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.output_dim = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.hidden = {8, 0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Mlp, ForwardShape) {
  util::Rng rng(1);
  const Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(5, 4, rng);
  const linalg::Matrix logits = mlp.forward(input);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(Mlp, ForwardWrongWidthThrows) {
  util::Rng rng(1);
  const Mlp mlp(small_spec(), rng);
  EXPECT_THROW(mlp.forward(linalg::Matrix(2, 7)), std::invalid_argument);
}

TEST(Mlp, PredictProbaRowsSumToOne) {
  util::Rng rng(2);
  const Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(4, 4, rng);
  const linalg::Matrix proba = mlp.predict_proba(input);
  for (std::size_t r = 0; r < proba.rows(); ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < proba.cols(); ++c) total += proba.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Mlp, PredictIsArgmaxOfLogits) {
  util::Rng rng(3);
  const Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(6, 4, rng);
  const linalg::Matrix logits = mlp.forward(input);
  const std::vector<int> predictions = mlp.predict(input);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    int best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits.at(r, c) > logits.at(r, static_cast<std::size_t>(best))) {
        best = static_cast<int>(c);
      }
    }
    EXPECT_EQ(predictions[r], best);
  }
}

TEST(Mlp, DeterministicConstructionPerSeed) {
  util::Rng rng1(9), rng2(9);
  const Mlp a(small_spec(), rng1), b(small_spec(), rng2);
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_EQ(a.weights(l), b.weights(l));
  }
}

TEST(Mlp, ForwardCachedReusesPackedPanelsAcrossCalls) {
  util::Rng rng(21);
  const Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(5, 4, rng);
  Mlp::ForwardCache cache;
  const linalg::Matrix first = mlp.forward_cached(input, cache);
  const std::uint64_t packed_at = cache.packed_w_version;
  EXPECT_EQ(packed_at, mlp.weights_version());
  const linalg::Matrix second = mlp.forward_cached(input, cache);
  EXPECT_EQ(cache.packed_w_version, packed_at);  // no repack while frozen
  EXPECT_TRUE(second.approx_equal(first));
  EXPECT_TRUE(second.approx_equal(mlp.forward(input), 1e-5f));
}

TEST(Mlp, WeightMutationInvalidatesPackedPanels) {
  util::Rng rng(23);
  Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(5, 4, rng);
  Mlp::ForwardCache cache;
  const linalg::Matrix before = mlp.forward_cached(input, cache);
  const std::uint64_t version_before = mlp.weights_version();
  mlp.weights(0).at(0, 0) += 0.5f;  // mutable access bumps the version
  EXPECT_GT(mlp.weights_version(), version_before);
  const linalg::Matrix after = mlp.forward_cached(input, cache);
  // The cached panels must have been repacked with the new weights: the
  // result matches a pack-free-from-scratch forward, not the stale one.
  EXPECT_TRUE(after.approx_equal(mlp.forward(input), 1e-5f));
  EXPECT_FALSE(after.approx_equal(before, 1e-7f));
}

TEST(Mlp, SharedCacheNeverServesAnotherModelsPanels) {
  // Weight versions are globally unique, so reusing one ForwardCache across
  // two models (same shapes, different weights) must repack, not alias.
  util::Rng rng1(31), rng2(37);
  const Mlp m1(small_spec(), rng1), m2(small_spec(), rng2);
  util::Rng data_rng(41);
  const linalg::Matrix input = linalg::Matrix::random_uniform(5, 4, data_rng);
  Mlp::ForwardCache cache;
  const linalg::Matrix out1 = m1.forward_cached(input, cache);
  const linalg::Matrix out2 = m2.forward_cached(input, cache);
  EXPECT_TRUE(out2.approx_equal(m2.forward(input), 1e-5f));
  EXPECT_FALSE(out2.approx_equal(out1, 1e-6f));
  // Swinging back to the first model must repack again.
  EXPECT_TRUE(m1.forward_cached(input, cache).approx_equal(out1, 1e-6f));
}

TEST(Mlp, ForwardAgreesAcrossGemmBackends) {
  util::Rng rng(25);
  const Mlp mlp(small_spec(), rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(6, 4, rng);
  const linalg::GemmKernel previous = linalg::active_gemm_kernel();
  linalg::set_gemm_kernel(linalg::GemmKernel::Naive);
  const linalg::Matrix oracle = mlp.forward(input);
  for (const linalg::GemmKernel kernel :
       {linalg::GemmKernel::Packed, linalg::GemmKernel::Blocked}) {
    linalg::set_gemm_kernel(kernel);
    EXPECT_TRUE(mlp.forward(input).approx_equal(oracle, 1e-4f))
        << linalg::to_string(kernel);
  }
  linalg::set_gemm_kernel(previous);
}

// The critical correctness test: analytic backprop gradients must match
// central finite differences of the loss for every parameter, across
// activations and bias settings.
class MlpGradientTest : public ::testing::TestWithParam<std::tuple<Activation, bool>> {};

TEST_P(MlpGradientTest, BackpropMatchesFiniteDifference) {
  const auto [activation, use_bias] = GetParam();
  MlpSpec spec;
  spec.input_dim = 3;
  spec.output_dim = 2;
  spec.hidden = {5, 4};
  spec.activation = activation;
  spec.use_bias = use_bias;

  util::Rng rng(17);
  Mlp mlp(spec, rng);
  const linalg::Matrix input = linalg::Matrix::random_uniform(4, 3, rng);
  const std::vector<int> labels = {0, 1, 1, 0};

  Mlp::ForwardCache cache;
  const linalg::Matrix logits = mlp.forward_cached(input, cache);
  linalg::Matrix logit_grad;
  cross_entropy_loss_grad(logits, labels, logit_grad);
  std::vector<linalg::Matrix> grad_w, grad_b;
  mlp.backward(input, cache, logit_grad, grad_w, grad_b);

  auto loss_at = [&]() {
    return cross_entropy_loss(mlp.forward(input), labels);
  };

  const float eps = 1e-2f;
  for (std::size_t l = 0; l < mlp.num_layers(); ++l) {
    // Sample a few weights per layer to keep the test fast.
    for (std::size_t idx : {std::size_t{0}, mlp.weights(l).size() / 2,
                            mlp.weights(l).size() - 1}) {
      float& w = mlp.weights(l).data()[idx];
      const float saved = w;
      w = saved + eps;
      const double up = loss_at();
      w = saved - eps;
      const double down = loss_at();
      w = saved;
      const double fd = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grad_w[l].data()[idx], fd, 2e-2)
          << "layer " << l << " weight " << idx << " act " << to_string(activation);
    }
    if (use_bias) {
      float& b = mlp.bias(l).data()[0];
      const float saved = b;
      b = saved + eps;
      const double up = loss_at();
      b = saved - eps;
      const double down = loss_at();
      b = saved;
      EXPECT_NEAR(grad_b[l].data()[0], (up - down) / (2.0 * eps), 2e-2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsAndBias, MlpGradientTest,
    ::testing::Combine(::testing::Values(Activation::ReLU, Activation::Sigmoid, Activation::Tanh,
                                         Activation::LeakyReLU, Activation::Elu),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_bias" : "_nobias");
    });

}  // namespace
}  // namespace ecad::nn
