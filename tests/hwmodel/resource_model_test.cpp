#include "hwmodel/resource_model.h"

#include <gtest/gtest.h>

#include "hwmodel/grid.h"

namespace ecad::hw {
namespace {

TEST(ResourceModel, DspCountIsExact) {
  const GridConfig grid{8, 4, 8, 2, 2};
  const auto report = estimate_physical(grid, arria10_gx1150());
  EXPECT_EQ(report.dsp_used, 256u);
}

TEST(ResourceModel, FractionsConsistentWithCounts) {
  const FpgaDevice a10 = arria10_gx1150();
  const auto report = estimate_physical(GridConfig{8, 8, 8, 4, 4}, a10);
  EXPECT_NEAR(report.dsp_fraction,
              static_cast<double>(report.dsp_used) / static_cast<double>(a10.dsp_count), 1e-12);
  EXPECT_NEAR(report.alm_fraction,
              static_cast<double>(report.alm_used) / static_cast<double>(a10.alm_count), 1e-12);
  EXPECT_NEAR(report.m20k_fraction,
              static_cast<double>(report.m20k_used) / static_cast<double>(a10.m20k_count),
              1e-12);
}

TEST(ResourceModel, BiggerGridsUseMoreResources) {
  const FpgaDevice a10 = arria10_gx1150();
  const auto small = estimate_physical(GridConfig{2, 2, 4, 1, 1}, a10);
  const auto large = estimate_physical(GridConfig{16, 8, 8, 8, 8}, a10);
  EXPECT_LT(small.dsp_used, large.dsp_used);
  EXPECT_LT(small.alm_used, large.alm_used);
  EXPECT_LT(small.m20k_used, large.m20k_used);
  EXPECT_LT(small.power_watts, large.power_watts);
}

TEST(ResourceModel, FitsFlagsOversizedGrids) {
  const FpgaDevice a10 = arria10_gx1150();
  EXPECT_TRUE(estimate_physical(GridConfig{8, 8, 8, 4, 4}, a10).fits);
  EXPECT_FALSE(estimate_physical(GridConfig{32, 32, 16, 4, 4}, a10).fits);  // DSP blowout
}

TEST(ResourceModel, PowerBandMatchesPaper) {
  // Paper §IV: Arria 10 compiles measured 22.5 W min, 27 W avg, 31.89 W max.
  const FpgaDevice a10 = arria10_gx1150();
  double pmin = 1e9, pmax = 0.0, psum = 0.0;
  std::size_t n = 0;
  for (const auto& grid : enumerate_grids(GridBounds{}, a10)) {
    const auto report = estimate_physical(grid, a10);
    if (!report.fits) continue;
    pmin = std::min(pmin, report.power_watts);
    pmax = std::max(pmax, report.power_watts);
    psum += report.power_watts;
    ++n;
  }
  ASSERT_GT(n, 100u);
  EXPECT_NEAR(pmin, 22.5, 1.5);
  EXPECT_NEAR(psum / static_cast<double>(n), 27.0, 1.5);
  EXPECT_NEAR(pmax, 31.9, 2.0);
}

TEST(ResourceModel, FmaxAveragesNearPaper250) {
  const FpgaDevice a10 = arria10_gx1150();
  double fsum = 0.0;
  std::size_t n = 0;
  for (const auto& grid : enumerate_grids(GridBounds{}, a10)) {
    const auto report = estimate_physical(grid, a10);
    if (!report.fits) continue;
    fsum += report.fmax_mhz;
    ++n;
  }
  EXPECT_NEAR(fsum / static_cast<double>(n), 250.0, 15.0);
}

TEST(ResourceModel, CongestionDegradesFmax) {
  const FpgaDevice a10 = arria10_gx1150();
  const auto small = estimate_physical(GridConfig{2, 2, 4, 1, 1}, a10);
  const auto large = estimate_physical(GridConfig{16, 8, 8, 16, 16}, a10);
  EXPECT_GT(small.fmax_mhz, large.fmax_mhz);
}

TEST(ResourceModel, DeterministicPerGrid) {
  const GridConfig grid{8, 8, 8, 4, 4};
  const auto a = estimate_physical(grid, arria10_gx1150());
  const auto b = estimate_physical(grid, arria10_gx1150());
  EXPECT_DOUBLE_EQ(a.power_watts, b.power_watts);
  EXPECT_DOUBLE_EQ(a.fmax_mhz, b.fmax_mhz);
}

TEST(ResourceModel, StratixRunsHotterAndFaster) {
  const GridConfig grid{16, 16, 8, 4, 4};
  const auto s10 = estimate_physical(grid, stratix10_2800());
  const GridConfig a10_grid{16, 8, 8, 4, 4};
  const auto a10 = estimate_physical(a10_grid, arria10_gx1150());
  EXPECT_GT(s10.power_watts, a10.power_watts);
  EXPECT_GT(s10.fmax_mhz, a10.fmax_mhz);
}

}  // namespace
}  // namespace ecad::hw
