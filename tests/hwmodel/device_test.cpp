#include "hwmodel/device.h"

#include <gtest/gtest.h>

namespace ecad::hw {
namespace {

TEST(DdrSpec, BandwidthAggregatesBanks) {
  DdrSpec ddr{.banks = 4, .bandwidth_per_bank_gbs = 19.2};
  EXPECT_DOUBLE_EQ(ddr.total_bandwidth_gbs(), 76.8);
  EXPECT_DOUBLE_EQ(ddr.total_bandwidth_bytes_per_s(), 76.8e9);
}

TEST(Arria10, MatchesPaperConstants) {
  const FpgaDevice device = arria10_gx1150(1);
  EXPECT_EQ(device.dsp_count, 1518u);
  EXPECT_DOUBLE_EQ(device.clock_mhz, 250.0);
  // Paper §IV: "a peak throughput of 759 GFLOP/s FP32".
  EXPECT_NEAR(device.peak_gflops(), 759.0, 1e-9);
  // Paper: dev kit has a single DDR4 bank at 19.2 GB/s.
  EXPECT_DOUBLE_EQ(device.ddr.total_bandwidth_gbs(), 19.2);
}

TEST(Arria10, BankConfigurationsFromPaper) {
  // Paper §IV: "2 and 4 DDR banks providing 38.4 and 76.8 GB/s".
  EXPECT_DOUBLE_EQ(arria10_gx1150(2).ddr.total_bandwidth_gbs(), 38.4);
  EXPECT_DOUBLE_EQ(arria10_gx1150(4).ddr.total_bandwidth_gbs(), 76.8);
}

TEST(Stratix10, MatchesPaperConstants) {
  const FpgaDevice device = stratix10_2800(4);
  EXPECT_EQ(device.dsp_count, 5760u);
  EXPECT_DOUBLE_EQ(device.clock_mhz, 400.0);
  // Paper §IV-D: "scaling back the roofline to 4.6 available TFLOP/s".
  EXPECT_NEAR(device.peak_gflops(), 4608.0, 1.0);
  EXPECT_EQ(device.ddr.banks, 4u);  // "All Stratix 10 models were run with 4 banks"
}

TEST(Gpus, MatchPaperSpecs) {
  EXPECT_DOUBLE_EQ(quadro_m5000().peak_tflops, 4.3);
  EXPECT_DOUBLE_EQ(quadro_m5000().bandwidth_gbs, 211.0);
  EXPECT_DOUBLE_EQ(titan_x().peak_tflops, 12.0);
  EXPECT_DOUBLE_EQ(radeon_vii().peak_tflops, 13.44);
  EXPECT_DOUBLE_EQ(radeon_vii().bandwidth_gbs, 1000.0);
}

TEST(Gpus, PeakFlopsConversion) {
  EXPECT_DOUBLE_EQ(titan_x().peak_flops(), 12.0e12);
}

TEST(Devices, S10RooflineAboutSixAboveA10) {
  // The paper motivates S10 as ~10x of A10 at full clock; at the searched
  // 400 MHz it is ~6x of the 759 GFLOP/s A10 roofline.
  EXPECT_NEAR(stratix10_2800().peak_gflops() / arria10_gx1150().peak_gflops(), 6.07, 0.1);
}

}  // namespace
}  // namespace ecad::hw
