#include "hwmodel/gemm_blocking.h"

#include <gtest/gtest.h>

namespace ecad::hw {
namespace {

TEST(MlpToGemms, OneGemmPerLayerWithChainedDims) {
  nn::MlpSpec spec;
  spec.input_dim = 784;
  spec.output_dim = 10;
  spec.hidden = {128, 64};
  const auto gemms = mlp_to_gemms(spec, 256);
  ASSERT_EQ(gemms.size(), 3u);
  // §III-D: M = batch; first-layer K = dataset width; N = neurons, and each
  // layer's N becomes the next layer's K.
  EXPECT_EQ(gemms[0].m, 256u);
  EXPECT_EQ(gemms[0].k, 784u);
  EXPECT_EQ(gemms[0].n, 128u);
  EXPECT_EQ(gemms[1].k, 128u);
  EXPECT_EQ(gemms[1].n, 64u);
  EXPECT_EQ(gemms[2].k, 64u);
  EXPECT_EQ(gemms[2].n, 10u);
}

TEST(MlpToGemms, ZeroBatchThrows) {
  nn::MlpSpec spec;
  spec.input_dim = 4;
  spec.output_dim = 2;
  EXPECT_THROW(mlp_to_gemms(spec, 0), std::invalid_argument);
}

TEST(GemmDims, FlopsAndBytes) {
  const GemmDims gemm{2, 3, 4};
  EXPECT_EQ(gemm.flops(), 48u);
  EXPECT_EQ(gemm.dram_bytes(), 4u * (6u + 12u + 8u));
}

TEST(BlockGemm, ExactFitHasFullUtilization) {
  const GridConfig grid{4, 4, 4, 2, 2};  // block 8x8
  const GemmDims gemm{16, 32, 16};       // 2x2 blocks, K multiple of vec
  const Blocking blocking = block_gemm(gemm, grid);
  EXPECT_EQ(blocking.blocks_m, 2u);
  EXPECT_EQ(blocking.blocks_n, 2u);
  EXPECT_EQ(blocking.total_blocks, 4u);
  EXPECT_DOUBLE_EQ(blocking.utilization, 1.0);
}

TEST(BlockGemm, PaddingReducesUtilization) {
  const GridConfig grid{8, 8, 8, 4, 4};  // block 32x32
  const GemmDims gemm{33, 64, 33};       // just over one block each way
  const Blocking blocking = block_gemm(gemm, grid);
  EXPECT_EQ(blocking.blocks_m, 2u);
  EXPECT_EQ(blocking.blocks_n, 2u);
  EXPECT_LT(blocking.utilization, 0.5);
  EXPECT_GT(blocking.utilization, 0.2);
}

TEST(BlockGemm, CyclesPerBlockFormula) {
  const GridConfig grid{4, 4, 8, 2, 3};
  const GemmDims gemm{100, 64, 100};
  const Blocking blocking = block_gemm(gemm, grid);
  // im * in * ceil(K / vec) = 2 * 3 * 8 = 48
  EXPECT_EQ(blocking.cycles_per_block, 48u);
}

TEST(BlockGemm, KNotMultipleOfVecRoundsUp) {
  const GridConfig grid{2, 2, 8, 1, 1};
  const GemmDims gemm{2, 20, 2};  // ceil(20/8) = 3
  EXPECT_EQ(block_gemm(gemm, grid).cycles_per_block, 3u);
}

TEST(BlockGemm, BytesPerBlockCountsSlabsAndWriteback) {
  const GridConfig grid{2, 2, 4, 2, 2};  // block 4x4
  const GemmDims gemm{8, 16, 8};
  const Blocking blocking = block_gemm(gemm, grid);
  // 4 * (bm*K + K*bn + bm*bn) = 4 * (64 + 64 + 16)
  EXPECT_EQ(blocking.bytes_per_block, 4u * 144u);
}

TEST(BlockGemm, SmallGemmOnBigGridWastesLanes) {
  const GridConfig grid{32, 32, 8, 8, 8};  // block 256x256
  const GemmDims gemm{16, 32, 4};          // tiny layer
  const Blocking blocking = block_gemm(gemm, grid);
  EXPECT_EQ(blocking.total_blocks, 1u);
  EXPECT_LT(blocking.utilization, 0.01);  // the paper's shape-mismatch penalty
}

TEST(BlockGemm, DegenerateDimsThrow) {
  const GridConfig grid{4, 4, 4, 1, 1};
  EXPECT_THROW(block_gemm(GemmDims{0, 4, 4}, grid), std::invalid_argument);
  EXPECT_THROW(block_gemm(GemmDims{4, 0, 4}, grid), std::invalid_argument);
  EXPECT_THROW(block_gemm(GemmDims{4, 4, 0}, grid), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::hw
