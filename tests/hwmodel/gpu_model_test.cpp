#include "hwmodel/gpu_model.h"

#include <gtest/gtest.h>

namespace ecad::hw {
namespace {

nn::MlpSpec tiny_net() {
  nn::MlpSpec spec;
  spec.input_dim = 20;
  spec.output_dim = 2;
  spec.hidden = {32};
  return spec;
}

nn::MlpSpec big_net() {
  nn::MlpSpec spec;
  spec.input_dim = 4096;
  spec.output_dim = 4096;
  spec.hidden = {4096, 4096};
  return spec;
}

TEST(GpuModel, EfficiencyBounded) {
  const auto report = evaluate_gpu(tiny_net(), 512, titan_x());
  EXPECT_GT(report.efficiency, 0.0);
  EXPECT_LE(report.efficiency, 1.0);
  EXPECT_LE(report.effective_gflops, report.peak_gflops);
}

TEST(GpuModel, TinyMlpSeverelyUnderutilizes) {
  // The paper's headline: 0.3% utilization on the MNIST winner.  Any small
  // MLP must land far below 5% of a 12 TFLOP/s device.
  const auto report = evaluate_gpu(tiny_net(), 512, titan_x());
  EXPECT_LT(report.efficiency, 0.05);
}

TEST(GpuModel, HugeGemmsApproachPeak) {
  const auto report = evaluate_gpu(big_net(), 4096, titan_x());
  EXPECT_GT(report.efficiency, 0.3);
}

TEST(GpuModel, ThroughputInsensitiveToNeuronDistribution) {
  // Paper Fig. 2b: "for GPU, there is roughly no relationship between the
  // number of neurons and the throughput" — redistributing neurons across
  // layers changes throughput far less than it changes FPGA mappings.
  nn::MlpSpec balanced;
  balanced.input_dim = 561;
  balanced.output_dim = 6;
  balanced.hidden = {64, 64};
  nn::MlpSpec lopsided = balanced;
  lopsided.hidden = {112, 16};

  const auto a = evaluate_gpu(balanced, 512, quadro_m5000());
  const auto b = evaluate_gpu(lopsided, 512, quadro_m5000());
  const double ratio = a.outputs_per_second / b.outputs_per_second;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(GpuModel, LaunchOverheadDominatesSmallNets) {
  // Halving an already-tiny net barely changes total time: launches dominate.
  nn::MlpSpec tiny = tiny_net();
  nn::MlpSpec tinier = tiny;
  tinier.hidden = {16};
  const auto a = evaluate_gpu(tiny, 512, titan_x());
  const auto b = evaluate_gpu(tinier, 512, titan_x());
  EXPECT_NEAR(a.total_time_seconds / b.total_time_seconds, 1.0, 0.15);
}

TEST(GpuModel, BiggerBatchRaisesThroughputOnSmallNets) {
  const auto small_batch = evaluate_gpu(tiny_net(), 64, titan_x());
  const auto big_batch = evaluate_gpu(tiny_net(), 2048, titan_x());
  EXPECT_GT(big_batch.outputs_per_second, small_batch.outputs_per_second * 2.0);
}

TEST(GpuModel, FasterDeviceWinsOnComputeBoundWork) {
  const auto m5000 = evaluate_gpu(big_net(), 2048, quadro_m5000());
  const auto tx = evaluate_gpu(big_net(), 2048, titan_x());
  EXPECT_GT(tx.outputs_per_second, m5000.outputs_per_second);
}

TEST(GpuModel, PerLayerTimesSumToTotal) {
  const auto report = evaluate_gpu(tiny_net(), 512, titan_x());
  ASSERT_EQ(report.layers.size(), 2u);
  double total = 0.0;
  for (const auto& layer : report.layers) total += layer.time_seconds;
  EXPECT_NEAR(total, report.total_time_seconds, 1e-12);
}

TEST(GpuModel, OccupancyIsWaveQuantized) {
  const auto report = evaluate_gpu(tiny_net(), 512, titan_x());
  for (const auto& layer : report.layers) {
    EXPECT_GT(layer.occupancy, 0.0);
    EXPECT_LE(layer.occupancy, 1.0);
  }
}

TEST(GpuModel, EmptyGemmsThrow) {
  EXPECT_THROW(evaluate_gpu_gemms({}, titan_x()), std::invalid_argument);
}

TEST(GpuModel, ZeroPeakDeviceThrows) {
  GpuDevice broken;
  broken.peak_tflops = 0.0;
  EXPECT_THROW(evaluate_gpu(tiny_net(), 64, broken), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::hw
