#include "hwmodel/fpga_model.h"

#include <gtest/gtest.h>

namespace ecad::hw {
namespace {

nn::MlpSpec mid_net() {
  nn::MlpSpec spec;
  spec.input_dim = 784;
  spec.output_dim = 10;
  spec.hidden = {256, 128};
  return spec;
}

TEST(FpgaModel, PotentialEqualsGridRoofline) {
  const GridConfig grid{8, 8, 8, 4, 4};
  const auto report = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(1));
  EXPECT_NEAR(report.potential_gflops, 256.0, 1e-9);
}

TEST(FpgaModel, EffectiveNeverExceedsPotential) {
  const FpgaDevice device = arria10_gx1150(4);
  for (const GridConfig& grid :
       {GridConfig{4, 4, 4, 2, 2}, GridConfig{8, 8, 8, 4, 4}, GridConfig{16, 8, 8, 8, 8}}) {
    const auto report = evaluate_fpga(mid_net(), 256, grid, device);
    EXPECT_LE(report.effective_gflops, report.potential_gflops * (1.0 + 1e-9))
        << grid.to_string();
    EXPECT_GE(report.efficiency, 0.0);
    EXPECT_LE(report.efficiency, 1.0 + 1e-9);
  }
}

TEST(FpgaModel, InfeasibleGridThrows) {
  const GridConfig too_big{32, 32, 16, 1, 1};
  EXPECT_THROW(evaluate_fpga(mid_net(), 256, too_big, arria10_gx1150()), std::invalid_argument);
}

TEST(FpgaModel, EmptyGemmListThrows) {
  EXPECT_THROW(evaluate_fpga_gemms({}, GridConfig{}, arria10_gx1150()), std::invalid_argument);
}

TEST(FpgaModel, MoreBandwidthNeverHurts) {
  const GridConfig grid{16, 8, 8, 4, 4};
  double previous = 0.0;
  for (std::size_t banks : {1, 2, 4}) {
    const auto report = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(banks));
    EXPECT_GE(report.outputs_per_second, previous);
    previous = report.outputs_per_second;
  }
}

TEST(FpgaModel, BandwidthBoundGridScalesNearLinearly) {
  // Wide grid with shallow interleave: every block is memory-dominated, so
  // quadrupling banks should get close to 4x (paper Fig. 3 "mostly linear").
  const GridConfig grid{16, 8, 8, 2, 2};
  const auto one = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(1));
  const auto four = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(4));
  ASSERT_TRUE(one.any_bandwidth_bound);
  EXPECT_GT(four.outputs_per_second / one.outputs_per_second, 2.5);
}

TEST(FpgaModel, ComputeBoundGridIgnoresExtraBanks) {
  // Tiny grid with deep interleave: compute dominates; banks change little.
  const GridConfig grid{2, 2, 4, 32, 32};
  const auto one = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(1));
  const auto four = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(4));
  EXPECT_LT(four.outputs_per_second / one.outputs_per_second, 1.3);
}

TEST(FpgaModel, InterleavingImprovesBandwidthBoundThroughput) {
  // Deeper interleave amortizes slab reloads (paper §III-C double buffering).
  const auto shallow = evaluate_fpga(mid_net(), 256, GridConfig{8, 8, 8, 1, 1},
                                     arria10_gx1150(1));
  const auto deep = evaluate_fpga(mid_net(), 256, GridConfig{8, 8, 8, 8, 8},
                                  arria10_gx1150(1));
  EXPECT_GT(deep.outputs_per_second, shallow.outputs_per_second);
}

TEST(FpgaModel, LatencyBelowTotalTimeAndPositive) {
  const auto report = evaluate_fpga(mid_net(), 256, GridConfig{8, 8, 8, 4, 4},
                                    arria10_gx1150(1));
  EXPECT_GT(report.latency_seconds, 0.0);
  EXPECT_LE(report.latency_seconds, report.total_time_seconds);
}

TEST(FpgaModel, ThroughputScalesWithBatchWhenComputeAmortized) {
  const GridConfig grid{8, 8, 8, 4, 4};
  const auto small = evaluate_fpga(mid_net(), 32, grid, arria10_gx1150(4));
  const auto big = evaluate_fpga(mid_net(), 512, grid, arria10_gx1150(4));
  EXPECT_GT(big.outputs_per_second, small.outputs_per_second * 0.9);
}

TEST(FpgaModel, PerLayerReportsAreConsistent) {
  const auto report = evaluate_fpga(mid_net(), 256, GridConfig{8, 8, 8, 4, 4},
                                    arria10_gx1150(1));
  ASSERT_EQ(report.layers.size(), 3u);
  double total = 0.0;
  for (const auto& layer : report.layers) {
    EXPECT_GT(layer.time_seconds, 0.0);
    EXPECT_GE(layer.time_seconds,
              std::max(layer.compute_seconds, layer.memory_seconds) / layer.blocking.total_blocks);
    total += layer.time_seconds;
  }
  EXPECT_NEAR(total, report.total_time_seconds, 1e-12);
}

TEST(FpgaModel, ShapeMismatchHurtsEfficiency) {
  // A network whose layers are much narrower than the block size wastes
  // lanes (paper Fig. 2a: neuron distribution greatly affects performance).
  nn::MlpSpec narrow;
  narrow.input_dim = 784;
  narrow.output_dim = 10;
  narrow.hidden = {8, 8};

  const GridConfig grid{16, 16, 4, 8, 8};  // block 128x128
  const auto narrow_report = evaluate_fpga(narrow, 256, grid, arria10_gx1150(4));
  const auto wide_report = evaluate_fpga(mid_net(), 256, grid, arria10_gx1150(4));
  EXPECT_LT(narrow_report.efficiency, wide_report.efficiency * 0.5);
}

TEST(FpgaModel, StratixOutperformsArriaOnBigNets) {
  const GridConfig a10_grid{16, 8, 8, 4, 4};
  const GridConfig s10_grid{16, 16, 8, 4, 4};
  const auto a10 = evaluate_fpga(mid_net(), 256, a10_grid, arria10_gx1150(1));
  const auto s10 = evaluate_fpga(mid_net(), 256, s10_grid, stratix10_2800(4));
  EXPECT_GT(s10.outputs_per_second, a10.outputs_per_second);
}

}  // namespace
}  // namespace ecad::hw
