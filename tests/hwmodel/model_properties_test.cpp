// Property sweeps over the analytical models: invariants that must hold for
// every (device, grid, network, batch) combination, checked with
// parameterized gtest across a grid of configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "hwmodel/fpga_model.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/resource_model.h"

namespace ecad::hw {
namespace {

struct NetCase {
  const char* name;
  nn::MlpSpec spec;
};

std::vector<NetCase> nets() {
  auto make = [](const char* name, std::size_t in, std::size_t out,
                 std::vector<std::size_t> hidden) {
    NetCase net;
    net.name = name;
    net.spec.input_dim = in;
    net.spec.output_dim = out;
    net.spec.hidden = std::move(hidden);
    return net;
  };
  return {make("credit_small", 20, 2, {32}),
          make("har_mid", 561, 6, {128, 64}),
          make("mnist_wide", 784, 10, {512, 256}),
          make("bio_deep", 1776, 2, {64, 64, 64}),
          make("tiny", 4, 2, {4})};
}

class FpgaPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

// param: (net index, grid index, batch)
const GridConfig kGrids[] = {
    {2, 2, 4, 1, 1}, {4, 4, 8, 2, 2}, {8, 8, 8, 4, 4}, {16, 8, 8, 8, 8}, {16, 16, 4, 8, 16}};

TEST_P(FpgaPropertyTest, InvariantsHold) {
  const auto [net_index, grid_index, batch] = GetParam();
  const nn::MlpSpec spec = nets()[static_cast<std::size_t>(net_index)].spec;
  const GridConfig& grid = kGrids[grid_index];
  for (std::size_t banks : {1, 4}) {
    const FpgaDevice device = arria10_gx1150(banks);
    if (!grid.fits(device)) continue;
    const FpgaPerfReport report = evaluate_fpga(spec, batch, grid, device);

    // Efficiency and performance bounds.
    EXPECT_GT(report.effective_gflops, 0.0);
    EXPECT_LE(report.effective_gflops, report.potential_gflops * (1.0 + 1e-9));
    EXPECT_GE(report.efficiency, 0.0);
    EXPECT_LE(report.efficiency, 1.0 + 1e-9);
    EXPECT_LE(report.potential_gflops, device.peak_gflops() + 1e-9);

    // Timing sanity.
    EXPECT_GT(report.total_time_seconds, 0.0);
    EXPECT_GT(report.latency_seconds, 0.0);
    EXPECT_LE(report.latency_seconds, report.total_time_seconds * (1.0 + 1e-9));
    EXPECT_NEAR(report.outputs_per_second,
                static_cast<double>(batch) / report.total_time_seconds,
                report.outputs_per_second * 1e-9);

    // Per-layer blocking covers the network exactly.
    ASSERT_EQ(report.layers.size(), spec.hidden.size() + 1);
    for (const auto& layer : report.layers) {
      EXPECT_GE(layer.blocking.utilization, 0.0);
      EXPECT_LE(layer.blocking.utilization, 1.0 + 1e-9);
      EXPECT_GE(layer.blocking.total_blocks, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FpgaPropertyTest,
                         ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 5),
                                            ::testing::Values(std::size_t{1}, std::size_t{64},
                                                              std::size_t{256})),
                         [](const auto& info) {
                           return nets()[static_cast<std::size_t>(std::get<0>(info.param))].name +
                                  std::string("_g") +
                                  std::to_string(std::get<1>(info.param)) + "_b" +
                                  std::to_string(std::get<2>(info.param));
                         });

class GpuPropertyTest : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(GpuPropertyTest, InvariantsHold) {
  const auto [net_index, batch] = GetParam();
  const nn::MlpSpec spec = nets()[static_cast<std::size_t>(net_index)].spec;
  for (const GpuDevice& device : {quadro_m5000(), titan_x(), radeon_vii()}) {
    const GpuPerfReport report = evaluate_gpu(spec, batch, device);
    EXPECT_GT(report.effective_gflops, 0.0);
    EXPECT_LE(report.effective_gflops, report.peak_gflops * (1.0 + 1e-9));
    EXPECT_GE(report.efficiency, 0.0);
    EXPECT_LE(report.efficiency, 1.0 + 1e-9);
    EXPECT_GT(report.total_time_seconds, 0.0);
    // Launch overhead floor: no run can beat layers x overhead.
    EXPECT_GE(report.total_time_seconds,
              static_cast<double>(report.layers.size()) * device.kernel_overhead_s * (1 - 1e-9));
    for (const auto& layer : report.layers) {
      EXPECT_GT(layer.occupancy, 0.0);
      EXPECT_LE(layer.occupancy, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GpuPropertyTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(std::size_t{1}, std::size_t{512},
                                                              std::size_t{4096})),
                         [](const auto& info) {
                           return nets()[static_cast<std::size_t>(std::get<0>(info.param))].name +
                                  std::string("_b") + std::to_string(std::get<1>(info.param));
                         });

class PhysicalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PhysicalPropertyTest, InvariantsHold) {
  const GridConfig& grid = kGrids[GetParam()];
  for (const FpgaDevice& device : {arria10_gx1150(1), stratix10_2800(4)}) {
    const PhysicalReport report = estimate_physical(grid, device);
    EXPECT_EQ(report.dsp_used, grid.dsp_usage());
    EXPECT_GT(report.alm_used, 0u);
    EXPECT_GT(report.m20k_used, 0u);
    EXPECT_GT(report.fmax_mhz, 50.0);
    EXPECT_LT(report.fmax_mhz, 600.0);
    EXPECT_GT(report.power_watts, 15.0);
    EXPECT_LT(report.power_watts, 60.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PhysicalPropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace ecad::hw
