#include "hwmodel/grid.h"

#include <gtest/gtest.h>

namespace ecad::hw {
namespace {

TEST(GridConfig, DerivedQuantities) {
  const GridConfig grid{8, 4, 8, 2, 3};
  EXPECT_EQ(grid.dsp_usage(), 8u * 4u * 8u);
  EXPECT_EQ(grid.block_m(), 16u);
  EXPECT_EQ(grid.block_n(), 12u);
  EXPECT_EQ(grid.macs_per_cycle(), 256u);
}

TEST(GridConfig, PotentialGflopsFormula) {
  // 8x8x8 = 512 MACs/cycle = 1024 FLOP/cycle; at 250 MHz -> 256 GFLOP/s.
  const GridConfig grid{8, 8, 8, 4, 4};
  EXPECT_NEAR(grid.potential_gflops(arria10_gx1150()), 256.0, 1e-9);
}

TEST(GridConfig, FullDeviceGridHitsPaperRoofline) {
  // A grid using all 1518 DSPs would hit the marketed 759 GFLOP/s; our
  // discrete choices get close (1024 DSPs -> 512 GFLOP/s).
  const FpgaDevice a10 = arria10_gx1150();
  GridConfig grid{16, 16, 4, 1, 1};  // 1024 DSPs
  EXPECT_TRUE(grid.fits(a10));
  EXPECT_LT(grid.potential_gflops(a10), a10.peak_gflops());
}

TEST(GridConfig, FitsChecksDspBudget) {
  const FpgaDevice a10 = arria10_gx1150();
  EXPECT_TRUE((GridConfig{8, 8, 8, 1, 1}).fits(a10));     // 512 DSPs
  EXPECT_FALSE((GridConfig{32, 32, 16, 1, 1}).fits(a10));  // 16384 DSPs
  EXPECT_FALSE((GridConfig{16, 16, 8, 1, 1}).fits(a10));   // 2048 > 1518
  EXPECT_TRUE((GridConfig{16, 16, 8, 1, 1}).fits(stratix10_2800()));
}

TEST(GridConfig, ToStringFormat) {
  EXPECT_EQ((GridConfig{8, 4, 16, 2, 1}).to_string(), "8x4x16 im2 in1");
}

TEST(GridConfig, ValidateRejectsZeroFields) {
  EXPECT_THROW((GridConfig{0, 4, 8, 1, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridConfig{4, 0, 8, 1, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridConfig{4, 4, 0, 1, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridConfig{4, 4, 8, 0, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((GridConfig{4, 4, 8, 1, 0}).validate(), std::invalid_argument);
  (GridConfig{4, 4, 8, 1, 1}).validate();  // must not throw
}

TEST(EnumerateGrids, AllResultsFitDevice) {
  const FpgaDevice a10 = arria10_gx1150();
  const auto grids = enumerate_grids(GridBounds{}, a10);
  EXPECT_GT(grids.size(), 100u);
  for (const auto& grid : grids) {
    EXPECT_TRUE(grid.fits(a10)) << grid.to_string();
  }
}

TEST(EnumerateGrids, LargerDeviceAdmitsMoreConfigs) {
  const auto a10_grids = enumerate_grids(GridBounds{}, arria10_gx1150());
  const auto s10_grids = enumerate_grids(GridBounds{}, stratix10_2800());
  EXPECT_GT(s10_grids.size(), a10_grids.size());
}

TEST(EnumerateGrids, RespectsCustomBounds) {
  GridBounds bounds;
  bounds.row_choices = {2};
  bounds.col_choices = {2};
  bounds.vec_choices = {4};
  bounds.interleave_choices = {1, 2};
  const auto grids = enumerate_grids(bounds, arria10_gx1150());
  EXPECT_EQ(grids.size(), 4u);  // 1*1*1*2*2
}

}  // namespace
}  // namespace ecad::hw
