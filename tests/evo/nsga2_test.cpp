#include "evo/nsga2.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ecad::evo {
namespace {

const std::vector<Metric> kMetrics = {Metric::Accuracy, Metric::Throughput};

EvalResult point(double accuracy, double throughput) {
  EvalResult result;
  result.accuracy = accuracy;
  result.outputs_per_second = throughput;
  return result;
}

Candidate candidate(double accuracy, double throughput) {
  Candidate c;
  c.result = point(accuracy, throughput);
  return c;
}

TEST(CrowdingDistance, BoundaryPointsAreInfinite) {
  const std::vector<EvalResult> results = {point(0.9, 1e4), point(0.8, 1e5), point(0.7, 1e6)};
  const std::vector<std::size_t> front = {0, 1, 2};
  const auto distance = crowding_distance(results, front, kMetrics);
  EXPECT_TRUE(std::isinf(distance[0]));
  EXPECT_TRUE(std::isinf(distance[2]));
  EXPECT_FALSE(std::isinf(distance[1]));
  EXPECT_GT(distance[1], 0.0);
}

TEST(CrowdingDistance, TwoPointFrontAllInfinite) {
  const std::vector<EvalResult> results = {point(0.9, 1e4), point(0.7, 1e6)};
  const auto distance = crowding_distance(results, {0, 1}, kMetrics);
  EXPECT_TRUE(std::isinf(distance[0]));
  EXPECT_TRUE(std::isinf(distance[1]));
}

TEST(CrowdingDistance, SparsePointsScoreHigherThanCrowded) {
  // Four interior points: one isolated, two adjacent.
  const std::vector<EvalResult> results = {
      point(0.90, 1e3), point(0.80, 2e3), point(0.79, 3e3), point(0.50, 9e3), point(0.30, 1e4)};
  const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  const auto distance = crowding_distance(results, front, kMetrics);
  EXPECT_GT(distance[3], distance[1]);
  EXPECT_GT(distance[3], distance[2]);
}

TEST(Nsga2Select, PrefersLowerRank) {
  const std::vector<Candidate> candidates = {
      candidate(0.9, 1e6),   // front 0
      candidate(0.5, 1e3),   // dominated
      candidate(0.8, 1e7),   // front 0
  };
  const auto selected = nsga2_select(candidates, kMetrics, 2);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_TRUE((selected[0] == 0 && selected[1] == 2) ||
              (selected[0] == 2 && selected[1] == 0));
}

TEST(Nsga2Select, PartialFrontUsesCrowding) {
  // Five-point front; select 3 -> must include both extremes.
  const std::vector<Candidate> candidates = {
      candidate(0.90, 1e3), candidate(0.85, 2e3), candidate(0.84, 2.1e3),
      candidate(0.83, 2.2e3), candidate(0.50, 1e6)};
  const auto selected = nsga2_select(candidates, kMetrics, 3);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_NE(std::find(selected.begin(), selected.end(), 0u), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), 4u), selected.end());
}

// Analytic bi-objective landscape with a real trade-off: accuracy grows with
// total neurons, throughput shrinks with them.
EvalResult tradeoff(const Genome& genome) {
  EvalResult result;
  const double neurons = static_cast<double>(genome.nna.to_mlp_spec(10, 2).total_hidden_neurons());
  result.accuracy = 1.0 - 1.0 / (1.0 + neurons / 64.0);
  result.outputs_per_second = 1e7 / (1.0 + neurons);
  return result;
}

TEST(Nsga2Search, FindsSpreadFrontier) {
  Nsga2Config config;
  config.population_size = 10;
  config.generations = 5;
  util::Rng rng(9);
  util::ThreadPool pool(1);
  const Nsga2Result result = nsga2_search(SearchSpace{}, config, kMetrics, tradeoff, rng, pool);

  ASSERT_GE(result.front.size(), 3u);  // a trade-off curve, not a single point
  // Front sorted by accuracy desc; throughput must then be ascending
  // (otherwise a point would be dominated).
  for (std::size_t i = 1; i < result.front.size(); ++i) {
    EXPECT_GE(result.front[i - 1].result.accuracy, result.front[i].result.accuracy);
    EXPECT_LE(result.front[i - 1].result.outputs_per_second,
              result.front[i].result.outputs_per_second);
  }
  // Mutually non-dominated.
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    for (std::size_t j = 0; j < result.front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(result.front[j].result, result.front[i].result, kMetrics));
    }
  }
}

TEST(Nsga2Search, ValidatesConfig) {
  util::Rng rng(1);
  util::ThreadPool pool(1);
  Nsga2Config bad;
  bad.population_size = 1;
  EXPECT_THROW(nsga2_search(SearchSpace{}, bad, kMetrics, tradeoff, rng, pool),
               std::invalid_argument);
  EXPECT_THROW(nsga2_search(SearchSpace{}, Nsga2Config{}, {}, tradeoff, rng, pool),
               std::invalid_argument);
}

TEST(Nsga2Search, HistoryHasUniqueGenomes) {
  Nsga2Config config;
  config.population_size = 8;
  config.generations = 4;
  util::Rng rng(11);
  util::ThreadPool pool(1);
  const Nsga2Result result = nsga2_search(SearchSpace{}, config, kMetrics, tradeoff, rng, pool);
  std::set<std::string> keys;
  for (const auto& c : result.front) keys.insert(c.genome.key());
  EXPECT_EQ(keys.size(), result.front.size());
  EXPECT_EQ(result.stats.models_evaluated, result.history.size());
}

}  // namespace
}  // namespace ecad::evo
