#include "evo/cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace ecad::evo {
namespace {

TEST(EvalCache, MissThenHit) {
  EvalCache cache;
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.misses(), 1u);

  EvalResult result;
  result.accuracy = 0.75;
  cache.store("a", result);
  const auto hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->accuracy, 0.75);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, ContainsDoesNotCountHits) {
  EvalCache cache;
  cache.store("k", EvalResult{});
  EXPECT_TRUE(cache.contains("k"));
  EXPECT_FALSE(cache.contains("other"));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(EvalCache, StoreOverwrites) {
  EvalCache cache;
  EvalResult first;
  first.accuracy = 0.1;
  cache.store("k", first);
  EvalResult second;
  second.accuracy = 0.9;
  cache.store("k", second);
  EXPECT_DOUBLE_EQ(cache.lookup("k")->accuracy, 0.9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, DuplicateStoresCountAsRaces) {
  // Two stores of the same key model two producers racing to evaluate one
  // genome; the second store is the wasted evaluation evo.cache_races_total
  // makes visible.  Distinct keys must not count.
  util::Counter& races = util::metrics().counter("evo.cache_races_total");
  const double before = races.value();
  EvalCache cache;
  cache.store("k", EvalResult{});
  cache.store("other", EvalResult{});
  EXPECT_DOUBLE_EQ(races.value(), before);
  cache.store("k", EvalResult{});
  EXPECT_DOUBLE_EQ(races.value(), before + 1.0);
  cache.store("k", EvalResult{});
  EXPECT_DOUBLE_EQ(races.value(), before + 2.0);
}

TEST(EvalCache, ConcurrentAccessIsSafe) {
  EvalCache cache;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "key" + std::to_string(i % 50);
        EvalResult result;
        result.accuracy = static_cast<double>(t);
        cache.store(key, result);
        cache.lookup(key);
        cache.contains(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 50u);
  EXPECT_EQ(cache.hits() + cache.misses(), 2000u);  // 4 threads x 500 lookups
}

TEST(EvalCache, StressParallelLookupStoreCountersStayConsistent) {
  // N threads hammer a shared key space with a lookup-miss → store → lookup
  // pattern. Whatever the interleaving, every lookup() must count exactly one
  // hit or one miss, and per-thread "store then lookup the same key" must hit
  // (store happens-before the same thread's next lookup under one mutex).
  EvalCache cache;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t num_threads = hw == 0 ? 4 : std::min(8u, std::max(4u, hw));
  constexpr int kIterations = 2000;
  constexpr int kKeySpace = 64;

  std::atomic<std::size_t> lookups{0};
  std::atomic<std::size_t> post_store_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string key = "g" + std::to_string((i * 7 + static_cast<int>(t)) % kKeySpace);
        if (!cache.lookup(key).has_value()) {
          EvalResult result;
          result.accuracy = static_cast<double>(t) / 10.0;
          cache.store(key, result);
        }
        lookups.fetch_add(1, std::memory_order_relaxed);
        // This thread stored-or-observed the key above, so this must hit.
        if (!cache.lookup(key).has_value()) {
          post_store_misses.fetch_add(1, std::memory_order_relaxed);
        }
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(post_store_misses.load(), 0u);
  // Every lookup counted exactly one hit or one miss — no lost updates.
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
  // Nothing is ever evicted, so each distinct key missed at least once and
  // the key space bounds the size.
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeySpace));
  EXPECT_GE(cache.misses(), static_cast<std::size_t>(kKeySpace));
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace ecad::evo
