#include "evo/cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ecad::evo {
namespace {

TEST(EvalCache, MissThenHit) {
  EvalCache cache;
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.misses(), 1u);

  EvalResult result;
  result.accuracy = 0.75;
  cache.store("a", result);
  const auto hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->accuracy, 0.75);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, ContainsDoesNotCountHits) {
  EvalCache cache;
  cache.store("k", EvalResult{});
  EXPECT_TRUE(cache.contains("k"));
  EXPECT_FALSE(cache.contains("other"));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(EvalCache, StoreOverwrites) {
  EvalCache cache;
  EvalResult first;
  first.accuracy = 0.1;
  cache.store("k", first);
  EvalResult second;
  second.accuracy = 0.9;
  cache.store("k", second);
  EXPECT_DOUBLE_EQ(cache.lookup("k")->accuracy, 0.9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, ConcurrentAccessIsSafe) {
  EvalCache cache;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "key" + std::to_string(i % 50);
        EvalResult result;
        result.accuracy = static_cast<double>(t);
        cache.store(key, result);
        cache.lookup(key);
        cache.contains(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 50u);
  EXPECT_EQ(cache.hits() + cache.misses(), 2000u);  // 4 threads x 500 lookups
}

}  // namespace
}  // namespace ecad::evo
