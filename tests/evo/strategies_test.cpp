#include "evo/strategies.h"

#include <gtest/gtest.h>

#include <set>

namespace ecad::evo {
namespace {

// Same synthetic landscape as engine_test: rewards 2x64 tanh on a 16-row grid.
EvalResult landscape(const Genome& genome) {
  EvalResult result;
  double score = 0.0;
  if (genome.nna.hidden.size() == 2) score += 0.3;
  for (std::size_t width : genome.nna.hidden) {
    if (width == 64) score += 0.2;
  }
  if (genome.nna.activation == nn::Activation::Tanh) score += 0.1;
  if (genome.grid.rows == 16) score += 0.2;
  result.accuracy = score;
  return result;
}

double fitness(const EvalResult& result) { return result.accuracy; }

TEST(RandomSearch, RespectsBudgetAndDedups) {
  util::Rng rng(1);
  util::ThreadPool pool(1);
  const EvolutionResult result = random_search(SearchSpace{}, 40, landscape, fitness, rng, pool);
  EXPECT_LE(result.history.size(), 40u);
  EXPECT_GE(result.history.size(), 35u);
  std::set<std::string> keys;
  for (const auto& candidate : result.history) keys.insert(candidate.genome.key());
  EXPECT_EQ(keys.size(), result.history.size());
}

TEST(RandomSearch, BestIsMaxOfHistory) {
  util::Rng rng(2);
  util::ThreadPool pool(2);
  const EvolutionResult result = random_search(SearchSpace{}, 30, landscape, fitness, rng, pool);
  double max_fitness = 0.0;
  for (const auto& candidate : result.history) {
    max_fitness = std::max(max_fitness, candidate.fitness);
  }
  EXPECT_DOUBLE_EQ(result.best.fitness, max_fitness);
}

TEST(RandomSearch, ExhaustsTinySpacesGracefully) {
  SearchSpace tiny;
  tiny.width_choices = {8};
  tiny.max_hidden_layers = 1;
  tiny.activations = {nn::Activation::ReLU};
  tiny.allow_no_bias = false;
  tiny.search_hardware = false;  // exactly one genome exists
  util::Rng rng(3);
  util::ThreadPool pool(1);
  const EvolutionResult result = random_search(tiny, 50, landscape, fitness, rng, pool);
  EXPECT_EQ(result.history.size(), 1u);
}

TEST(HillClimb, ImprovesOverItsOwnStart) {
  util::Rng rng(4);
  util::ThreadPool pool(1);
  HillClimbConfig config;
  config.max_evaluations = 60;
  const EvolutionResult result = hill_climb(SearchSpace{}, config, landscape, fitness, rng, pool);
  EXPECT_GE(result.best.fitness, result.history.front().fitness);
  EXPECT_GT(result.best.fitness, 0.3);
  EXPECT_LE(result.history.size(), 60u + config.neighbours_per_step);
}

TEST(HillClimb, NeverEvaluatesDuplicates) {
  util::Rng rng(5);
  util::ThreadPool pool(2);
  HillClimbConfig config;
  config.max_evaluations = 50;
  const EvolutionResult result = hill_climb(SearchSpace{}, config, landscape, fitness, rng, pool);
  std::set<std::string> keys;
  for (const auto& candidate : result.history) keys.insert(candidate.genome.key());
  EXPECT_EQ(keys.size(), result.history.size());
}

TEST(HillClimb, ZeroNeighboursThrows) {
  util::Rng rng(6);
  util::ThreadPool pool(1);
  HillClimbConfig config;
  config.neighbours_per_step = 0;
  EXPECT_THROW(hill_climb(SearchSpace{}, config, landscape, fitness, rng, pool),
               std::invalid_argument);
}

TEST(Strategies, StatsAreConsistent) {
  util::Rng rng(7);
  util::ThreadPool pool(1);
  const EvolutionResult result = random_search(SearchSpace{}, 20, landscape, fitness, rng, pool);
  EXPECT_EQ(result.stats.models_evaluated, result.history.size());
  EXPECT_NEAR(result.stats.avg_eval_seconds,
              result.stats.total_eval_seconds / static_cast<double>(result.history.size()),
              1e-12);
}

}  // namespace
}  // namespace ecad::evo
