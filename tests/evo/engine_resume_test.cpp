// Resume determinism contract (the crash-safety tentpole): an engine
// restored from a generation-boundary snapshot must finish with a trajectory
// bit-identical to the uninterrupted run — same candidates in the same
// evaluation order, same best, same counters.  The chaos smoke asserts this
// end-to-end across kill -9; these tests pin it at the engine layer where a
// violation is attributable.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "evo/engine.h"
#include "evo/snapshot.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ecad::evo {
namespace {

EvalResult landscape(const Genome& genome) {
  EvalResult result;
  double score = 0.0;
  if (genome.nna.hidden.size() == 2) score += 0.3;
  for (std::size_t width : genome.nna.hidden) {
    if (width == 64) score += 0.2;
  }
  if (genome.nna.activation == nn::Activation::Tanh) score += 0.1;
  if (genome.grid.rows == 16) score += 0.2;
  result.accuracy = score;
  return result;
}

double accuracy_fitness(const EvalResult& result) { return result.accuracy; }

EvolutionConfig small_config(bool overlap) {
  EvolutionConfig config;
  config.population_size = 8;
  config.max_evaluations = 48;
  config.batch_size = 4;
  config.overlap_generations = overlap;
  config.max_inflight_batches = 2;
  return config;
}

/// Everything the deterministic search record renders: candidate identity
/// and order, fitness, results, winner, counters.  eval_seconds is wall
/// clock and deliberately excluded.
void expect_same_record(const EvolutionResult& a, const EvolutionResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genome, b.history[i].genome) << "history[" << i << "]";
    EXPECT_EQ(a.history[i].fitness, b.history[i].fitness) << "history[" << i << "]";
    EXPECT_EQ(a.history[i].result.accuracy, b.history[i].result.accuracy);
    EXPECT_EQ(a.history[i].result.feasible, b.history[i].result.feasible);
  }
  EXPECT_EQ(a.best.genome, b.best.genome);
  EXPECT_EQ(a.best.fitness, b.best.fitness);
  ASSERT_EQ(a.population.size(), b.population.size());
  for (std::size_t i = 0; i < a.population.size(); ++i) {
    EXPECT_EQ(a.population[i].genome, b.population[i].genome) << "population[" << i << "]";
  }
  EXPECT_EQ(a.stats.models_evaluated, b.stats.models_evaluated);
  EXPECT_EQ(a.stats.duplicates_skipped, b.stats.duplicates_skipped);
}

EvolutionResult uninterrupted_run(bool overlap, std::uint64_t seed) {
  EvolutionEngine engine(SearchSpace{}, small_config(overlap), landscape, accuracy_fitness);
  util::Rng rng(seed);
  util::ThreadPool pool(2);
  return engine.run(rng, pool);
}

/// Run until the sink captures a mid-search snapshot (the `pick` predicate
/// chooses which boundary), then resume a *fresh* engine from a
/// serialize/deserialize round trip of it — exactly what a restarted
/// process would load from disk.
template <typename Pick>
EvolutionResult capture_and_resume(bool overlap, std::uint64_t seed, Pick pick) {
  std::optional<EngineSnapshot> captured;
  {
    EvolutionEngine engine(SearchSpace{}, small_config(overlap), landscape, accuracy_fitness);
    engine.set_checkpoint_sink([&](const EngineSnapshot& snapshot) {
      if (!captured.has_value() && pick(snapshot)) captured = snapshot;
    });
    util::Rng rng(seed);
    util::ThreadPool pool(2);
    (void)engine.run(rng, pool);
  }
  EXPECT_TRUE(captured.has_value()) << "no snapshot matched the pick predicate";
  if (!captured.has_value()) return EvolutionResult{};

  const EngineSnapshot reloaded =
      deserialize_engine_snapshot(serialize_engine_snapshot(*captured));
  EvolutionEngine resumed(SearchSpace{}, small_config(overlap), landscape, accuracy_fitness);
  util::Rng scratch_rng(seed + 1000);  // must be irrelevant: state comes from the snapshot
  util::ThreadPool pool(2);
  return resumed.resume(reloaded, scratch_rng, pool);
}

TEST(EngineResume, SequentialMidSearchResumeIsBitIdentical) {
  const EvolutionResult baseline = uninterrupted_run(false, 42);
  const EvolutionResult resumed = capture_and_resume(
      false, 42, [](const EngineSnapshot& snapshot) { return snapshot.generation == 3; });
  expect_same_record(baseline, resumed);
}

TEST(EngineResume, SequentialGenerationZeroResumeIsBitIdentical) {
  // Killed right after the initial population settled: the resumed run must
  // redo every generation and still land on the same record.
  const EvolutionResult baseline = uninterrupted_run(false, 7);
  const EvolutionResult resumed = capture_and_resume(
      false, 7, [](const EngineSnapshot& snapshot) { return snapshot.generation == 0; });
  expect_same_record(baseline, resumed);
}

TEST(EngineResume, SequentialEveryBoundaryResumesIdentically) {
  // The contract holds at *every* persisted boundary, not just a lucky one.
  const EvolutionResult baseline = uninterrupted_run(false, 11);
  for (std::uint64_t boundary = 0; boundary <= 6; boundary += 2) {
    const EvolutionResult resumed =
        capture_and_resume(false, 11, [boundary](const EngineSnapshot& snapshot) {
          return snapshot.generation == boundary;
        });
    expect_same_record(baseline, resumed);
  }
}

TEST(EngineResume, OverlappedResumeWithPendingBatchesIsBitIdentical) {
  const EvolutionResult baseline = uninterrupted_run(true, 42);
  // Prefer a snapshot with work in flight: resuming must re-submit those
  // exact batches before breeding anything new.
  const EvolutionResult resumed = capture_and_resume(
      true, 42, [](const EngineSnapshot& snapshot) { return !snapshot.pending.empty(); });
  expect_same_record(baseline, resumed);
}

TEST(EngineResume, OverlappedGenerationZeroResumeIsBitIdentical) {
  const EvolutionResult baseline = uninterrupted_run(true, 13);
  const EvolutionResult resumed = capture_and_resume(
      true, 13, [](const EngineSnapshot& snapshot) { return snapshot.generation == 0; });
  expect_same_record(baseline, resumed);
}

TEST(EngineResume, CheckpointsFireAtEverySequentialBoundary) {
  EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
  std::vector<std::uint64_t> boundaries;
  engine.set_checkpoint_sink(
      [&](const EngineSnapshot& snapshot) { boundaries.push_back(snapshot.generation); });
  util::Rng rng(3);
  util::ThreadPool pool(1);
  const EvolutionResult result = engine.run(rng, pool);
  ASSERT_FALSE(boundaries.empty());
  EXPECT_EQ(boundaries.front(), 0u);
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    EXPECT_EQ(boundaries[i], boundaries[i - 1] + 1) << "skipped a generation boundary";
  }
  EXPECT_GT(result.stats.models_evaluated, small_config(false).population_size);
}

TEST(EngineResume, SnapshotCarriesSettledOutcomesAndStats) {
  EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
  std::optional<EngineSnapshot> captured;
  engine.set_checkpoint_sink([&](const EngineSnapshot& snapshot) {
    if (snapshot.generation == 2) captured = snapshot;
  });
  util::Rng rng(21);
  util::ThreadPool pool(1);
  (void)engine.run(rng, pool);
  ASSERT_TRUE(captured.has_value());
  EXPECT_FALSE(captured->rng_state.empty());
  EXPECT_FALSE(captured->overlap);
  EXPECT_EQ(captured->population.size(), 8u);
  EXPECT_GE(captured->history.size(), captured->population.size());
  EXPECT_EQ(captured->models_evaluated, captured->history.size());
  EXPECT_TRUE(captured->pending.empty());
}

TEST(EngineResume, RejectsEmptyPopulation) {
  EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
  util::Rng rng(1);
  util::ThreadPool pool(1);
  EngineSnapshot snapshot;
  snapshot.rng_state = util::Rng(1).serialize();
  EXPECT_THROW(engine.resume(snapshot, rng, pool), std::invalid_argument);
}

TEST(EngineResume, RejectsOverlapModeMismatch) {
  std::optional<EngineSnapshot> captured;
  {
    EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
    engine.set_checkpoint_sink([&](const EngineSnapshot& snapshot) {
      if (!captured.has_value()) captured = snapshot;
    });
    util::Rng rng(5);
    util::ThreadPool pool(1);
    (void)engine.run(rng, pool);
  }
  ASSERT_TRUE(captured.has_value());
  EvolutionEngine overlapped(SearchSpace{}, small_config(true), landscape, accuracy_fitness);
  util::Rng rng(5);
  util::ThreadPool pool(1);
  EXPECT_THROW(overlapped.resume(*captured, rng, pool), std::invalid_argument);
}

TEST(EngineResume, RejectsCorruptRngState) {
  std::optional<EngineSnapshot> captured;
  {
    EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
    engine.set_checkpoint_sink([&](const EngineSnapshot& snapshot) {
      if (!captured.has_value()) captured = snapshot;
    });
    util::Rng rng(5);
    util::ThreadPool pool(1);
    (void)engine.run(rng, pool);
  }
  ASSERT_TRUE(captured.has_value());
  captured->rng_state = "not an mt19937_64 state";
  EvolutionEngine engine(SearchSpace{}, small_config(false), landscape, accuracy_fitness);
  util::Rng rng(5);
  util::ThreadPool pool(1);
  EXPECT_THROW(engine.resume(*captured, rng, pool), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::evo
