// TSan-targeted stress for AsyncBatchDispatcher: many threads hammering
// submit/poll/wait on one dispatcher, racing pool shutdown and dispatcher
// destruction.  These tests assert little beyond "the right results came
// back" — their value is running under -fsanitize=thread in CI, where any
// lock-discipline slip in the dispatcher or the pool becomes a hard failure.
#include "evo/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ecad::evo {
namespace {

std::vector<Genome> small_batch(std::uint64_t seed, std::size_t count = 2) {
  SearchSpace space;
  util::Rng rng(seed);
  std::vector<Genome> batch;
  for (std::size_t i = 0; i < count; ++i) batch.push_back(random_genome(space, rng));
  return batch;
}

// Evaluator that fans items across the shared pool (like the Master's real
// wiring) and tags each outcome so waiters can verify they got *their*
// batch back, not a neighbor's.
EvolutionEngine::BatchEvaluator tagging_evaluator(std::atomic<int>& evaluations) {
  return [&evaluations](const std::vector<Genome>& genomes, util::ThreadPool& pool) {
    std::vector<EvalOutcome> outcomes(genomes.size());
    pool.parallel_for(genomes.size(), [&](std::size_t i) {
      outcomes[i].result.accuracy = static_cast<double>(genomes[i].grid.rows);
      outcomes[i].ok = true;
      evaluations.fetch_add(1, std::memory_order_relaxed);
    });
    return outcomes;
  };
}

TEST(DispatcherStress, ConcurrentSubmitPollWait) {
  util::ThreadPool pool(4);
  std::atomic<int> evaluations{0};
  const EvolutionEngine::BatchEvaluator evaluate = tagging_evaluator(evaluations);
  AsyncBatchDispatcher dispatcher(evaluate, pool);

  constexpr int kSubmitters = 4;
  constexpr int kBatchesEach = 8;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // Chaos observer: poll unknown tickets and read in_flight() the whole time.
  std::thread observer([&] {
    AsyncBatchDispatcher::Ticket probe = 1;
    while (!done.load(std::memory_order_acquire)) {
      dispatcher.in_flight();
      dispatcher.poll(probe++ % 64);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int b = 0; b < kBatchesEach; ++b) {
        const std::vector<Genome> batch =
            small_batch(static_cast<std::uint64_t>(s * 100 + b));
        const auto ticket = dispatcher.submit(batch);
        while (!dispatcher.poll(ticket)) std::this_thread::yield();
        const std::vector<EvalOutcome> outcomes = dispatcher.wait(ticket);
        if (outcomes.size() != batch.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          if (!outcomes[i].ok ||
              outcomes[i].result.accuracy != static_cast<double>(batch[i].grid.rows)) {
            failures.fetch_add(1);
          }
        }
        // Double-collection must throw, even mid-storm.
        EXPECT_THROW(dispatcher.wait(ticket), std::invalid_argument);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  done.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dispatcher.in_flight(), 0u);
  EXPECT_EQ(evaluations.load(), kSubmitters * kBatchesEach * 2);
}

TEST(DispatcherStress, WaitRacingPoolShutdown) {
  // Submissions race pool.shutdown(): every wait() must either deliver the
  // full batch or rethrow the pool's submit-after-shutdown error — nothing
  // in between, and no data race either way.
  util::ThreadPool pool(2);
  std::atomic<int> evaluations{0};
  const EvolutionEngine::BatchEvaluator evaluate = tagging_evaluator(evaluations);
  AsyncBatchDispatcher dispatcher(evaluate, pool);

  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::thread submitter([&] {
    for (int b = 0; b < 32; ++b) {
      const auto ticket = dispatcher.submit(small_batch(static_cast<std::uint64_t>(b)));
      try {
        const std::vector<EvalOutcome> outcomes = dispatcher.wait(ticket);
        if (outcomes.size() == 2) completed.fetch_add(1);
      } catch (const std::runtime_error&) {
        rejected.fetch_add(1);  // pool shut down under this batch
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.shutdown();
  submitter.join();

  EXPECT_EQ(completed.load() + rejected.load(), 32);
  EXPECT_EQ(dispatcher.in_flight(), 0u);
}

TEST(DispatcherStress, DestructionBlocksOnInFlightBatches) {
  util::ThreadPool pool(2);
  std::atomic<int> evaluations{0};
  const EvolutionEngine::BatchEvaluator evaluate =
      [&evaluations](const std::vector<Genome>& genomes, util::ThreadPool&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        std::vector<EvalOutcome> outcomes(genomes.size());
        for (auto& outcome : outcomes) outcome.ok = true;
        evaluations.fetch_add(static_cast<int>(genomes.size()), std::memory_order_relaxed);
        return outcomes;
      };
  {
    AsyncBatchDispatcher dispatcher(evaluate, pool);
    for (int b = 0; b < 4; ++b) {
      dispatcher.submit(small_batch(static_cast<std::uint64_t>(b)));
    }
    // Leave every ticket uncollected: the destructor must block on all of
    // them, or the evaluator would outlive `evaluate` and `pool`.
  }
  EXPECT_EQ(evaluations.load(), 4 * 2);
}

}  // namespace
}  // namespace ecad::evo
