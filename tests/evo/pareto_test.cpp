#include "evo/pareto.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ecad::evo {
namespace {

EvalResult point(double accuracy, double throughput, double latency = 1e-4) {
  EvalResult result;
  result.accuracy = accuracy;
  result.outputs_per_second = throughput;
  result.latency_seconds = latency;
  return result;
}

const std::vector<Metric> kAccThroughput = {Metric::Accuracy, Metric::Throughput};

TEST(Dominates, StrictDominance) {
  EXPECT_TRUE(dominates(point(0.9, 2e6), point(0.8, 1e6), kAccThroughput));
  EXPECT_FALSE(dominates(point(0.8, 1e6), point(0.9, 2e6), kAccThroughput));
}

TEST(Dominates, IncomparablePointsDoNotDominate) {
  EXPECT_FALSE(dominates(point(0.9, 1e6), point(0.8, 2e6), kAccThroughput));
  EXPECT_FALSE(dominates(point(0.8, 2e6), point(0.9, 1e6), kAccThroughput));
}

TEST(Dominates, EqualPointsDoNotDominate) {
  EXPECT_FALSE(dominates(point(0.9, 1e6), point(0.9, 1e6), kAccThroughput));
}

TEST(Dominates, MinimizedMetricsOrientCorrectly) {
  const std::vector<Metric> metrics = {Metric::Accuracy, Metric::Latency};
  EXPECT_TRUE(dominates(point(0.9, 1e6, 1e-5), point(0.9, 1e6, 1e-3), metrics));
  EXPECT_FALSE(dominates(point(0.9, 1e6, 1e-3), point(0.9, 1e6, 1e-5), metrics));
}

TEST(Dominates, FeasibleDominatesInfeasible) {
  EvalResult infeasible = point(0.99, 1e9);
  infeasible.feasible = false;
  EXPECT_TRUE(dominates(point(0.1, 1.0), infeasible, kAccThroughput));
  EXPECT_FALSE(dominates(infeasible, point(0.1, 1.0), kAccThroughput));
}

TEST(ParetoFront, ExtractsNonDominatedSet) {
  const std::vector<EvalResult> results = {
      point(0.95, 1e5),   // frontier: best accuracy
      point(0.90, 1e6),   // frontier: trade-off
      point(0.85, 1e7),   // frontier: best throughput
      point(0.90, 5e5),   // dominated by index 1
      point(0.80, 1e6),   // dominated by index 1
  };
  const auto front = pareto_front(results, kAccThroughput);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, SinglePointIsFrontier) {
  const auto front = pareto_front({point(0.5, 1.0)}, kAccThroughput);
  EXPECT_EQ(front, std::vector<std::size_t>{0});
}

TEST(ParetoFront, InfeasibleExcluded) {
  EvalResult bad = point(0.99, 1e9);
  bad.feasible = false;
  const auto front = pareto_front({point(0.5, 1.0), bad}, kAccThroughput);
  EXPECT_EQ(front, std::vector<std::size_t>{0});
}

TEST(ParetoFront, DuplicatesAllKept) {
  const auto front = pareto_front({point(0.9, 1e6), point(0.9, 1e6)}, kAccThroughput);
  EXPECT_EQ(front.size(), 2u);  // equal points do not dominate each other
}

TEST(NondominatedRank, LayersFormOnion) {
  const std::vector<EvalResult> results = {
      point(0.95, 1e6),  // front 0
      point(0.90, 1e5),  // front 1 (dominated only by 0)
      point(0.85, 1e4),  // front 2
  };
  const auto rank = nondominated_rank(results, kAccThroughput);
  EXPECT_EQ(rank, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NondominatedRank, IncomparablePointsShareFrontZero) {
  const std::vector<EvalResult> results = {point(0.95, 1e4), point(0.85, 1e6)};
  const auto rank = nondominated_rank(results, kAccThroughput);
  EXPECT_EQ(rank, (std::vector<std::size_t>{0, 0}));
}

TEST(NondominatedRank, AssignsEveryCandidate) {
  std::vector<EvalResult> results;
  for (int i = 0; i < 20; ++i) {
    results.push_back(point(0.5 + 0.02 * i, 1e6 / (i + 1)));
  }
  const auto rank = nondominated_rank(results, kAccThroughput);
  EXPECT_EQ(rank.size(), 20u);
  for (std::size_t r : rank) EXPECT_LT(r, 20u);
}

}  // namespace
}  // namespace ecad::evo
