// Engine-snapshot codec guard: a committed golden fixture pins the on-disk
// checkpoint encoding (tests/evo/golden/engine_snapshot_v1.bin), the same
// discipline tests/net/golden_frames_test.cpp applies to wire frames.  If
// today's encoder stops producing those exact bytes, or today's decoder
// stops accepting them, a fleet upgraded mid-search could no longer resume
// its checkpoints — so the build fails instead.
//
// Regenerating (only after an *intentional* format change that bumped
// util::kSnapshotFormatVersion):
//     ECAD_REGEN_GOLDEN=1 ./ecad_evo_tests --gtest_filter='SnapshotGolden*'
#include "evo/snapshot.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

#ifndef ECAD_EVO_GOLDEN_DIR
#error "ECAD_EVO_GOLDEN_DIR must point at tests/evo/golden (set by tests/CMakeLists.txt)"
#endif

namespace ecad::evo {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(ECAD_EVO_GOLDEN_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden fixture " << path
                  << " (regenerate with ECAD_REGEN_GOLDEN=1)";
    return {};
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

bool regen_requested() {
  const char* env = std::getenv("ECAD_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

Genome fixed_genome(std::size_t salt) {
  Genome genome;
  genome.nna.hidden = {64, 32 + salt};
  genome.nna.activation = nn::Activation::ReLU;
  genome.nna.use_bias = (salt % 2) == 0;
  genome.grid.rows = 8;
  genome.grid.cols = 16;
  genome.grid.vec_width = 4;
  genome.grid.interleave_m = 2;
  genome.grid.interleave_n = 32;
  return genome;
}

EvalResult fixed_result(double accuracy) {
  EvalResult result;
  result.accuracy = accuracy;
  result.outputs_per_second = 123456.789;
  result.latency_seconds = 0.0009765625;
  result.potential_gflops = 512.0;
  result.effective_gflops = 448.25;
  result.hw_efficiency = 0.875048828125;
  result.power_watts = 17.5;
  result.fmax_mhz = 287.5;
  result.parameters = 4242.0;
  result.flops_per_sample = 8484.0;
  result.eval_seconds = 1.25;
  result.feasible = true;
  return result;
}

Candidate fixed_candidate(std::size_t salt) {
  Candidate candidate;
  candidate.genome = fixed_genome(salt);
  candidate.result = fixed_result(0.5 + 0.0625 * static_cast<double>(salt));
  candidate.fitness = candidate.result.accuracy;
  return candidate;
}

/// Fixed, fully-specified snapshot — never derived from defaults another
/// change could move under us.
EngineSnapshot fixed_snapshot() {
  EngineSnapshot snapshot;
  util::Rng rng(1234);
  (void)rng.next_double();  // a mid-stream state, not a freshly seeded one
  snapshot.rng_state = rng.serialize();
  snapshot.overlap = true;
  snapshot.generation = 3;
  snapshot.submitted = 20;
  snapshot.population = {fixed_candidate(0), fixed_candidate(1)};
  snapshot.history = {fixed_candidate(0), fixed_candidate(1), fixed_candidate(2)};
  snapshot.pending = {{fixed_genome(3), fixed_genome(4)}, {fixed_genome(5)}};
  snapshot.models_evaluated = 16;
  snapshot.duplicates_skipped = 4;
  snapshot.overlapped_batches = 5;
  snapshot.total_eval_seconds = 2.5;
  snapshot.cache_hits = 6;
  snapshot.cache_misses = 22;
  return snapshot;
}

void expect_equal(const EngineSnapshot& a, const EngineSnapshot& b) {
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.overlap, b.overlap);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.submitted, b.submitted);
  ASSERT_EQ(a.population.size(), b.population.size());
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].genome, b.history[i].genome);
    EXPECT_EQ(a.history[i].fitness, b.history[i].fitness);
    EXPECT_EQ(a.history[i].result.accuracy, b.history[i].result.accuracy);
    EXPECT_EQ(a.history[i].result.eval_seconds, b.history[i].result.eval_seconds);
    EXPECT_EQ(a.history[i].result.feasible, b.history[i].result.feasible);
  }
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (std::size_t i = 0; i < a.pending.size(); ++i) {
    EXPECT_EQ(a.pending[i], b.pending[i]);
  }
  EXPECT_EQ(a.models_evaluated, b.models_evaluated);
  EXPECT_EQ(a.duplicates_skipped, b.duplicates_skipped);
  EXPECT_EQ(a.overlapped_batches, b.overlapped_batches);
  EXPECT_EQ(a.total_eval_seconds, b.total_eval_seconds);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(Snapshot, RoundTripPreservesEveryField) {
  const EngineSnapshot snapshot = fixed_snapshot();
  const EngineSnapshot decoded = deserialize_engine_snapshot(serialize_engine_snapshot(snapshot));
  expect_equal(snapshot, decoded);
}

TEST(Snapshot, SerializeIsDeterministic) {
  // serialize -> deserialize -> serialize must be byte-identical: the chaos
  // smoke diffs resumed-run artifacts against uninterrupted ones, which only
  // works if re-encoding a decoded snapshot is a fixed point.
  const std::vector<std::uint8_t> first = serialize_engine_snapshot(fixed_snapshot());
  const std::vector<std::uint8_t> second =
      serialize_engine_snapshot(deserialize_engine_snapshot(first));
  EXPECT_EQ(first, second);
}

TEST(Snapshot, RandomizedRoundTripProperty) {
  util::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    EngineSnapshot snapshot;
    util::Rng stream(rng.next_index(1u << 30));
    for (int burn = 0; burn < trial; ++burn) (void)stream.next_double();
    snapshot.rng_state = stream.serialize();
    snapshot.overlap = rng.next_bool();
    snapshot.generation = rng.next_index(1000);
    snapshot.submitted = rng.next_index(1000);
    const std::size_t population = 1 + rng.next_index(4);
    for (std::size_t i = 0; i < population; ++i) {
      snapshot.population.push_back(fixed_candidate(rng.next_index(8)));
    }
    snapshot.history = snapshot.population;
    if (snapshot.overlap) {
      const std::size_t batches = rng.next_index(3);
      for (std::size_t i = 0; i < batches; ++i) {
        snapshot.pending.push_back({fixed_genome(rng.next_index(8))});
      }
    }
    snapshot.models_evaluated = rng.next_index(500);
    snapshot.duplicates_skipped = rng.next_index(500);
    snapshot.overlapped_batches = rng.next_index(500);
    snapshot.total_eval_seconds = rng.next_double() * 100.0;
    snapshot.cache_hits = rng.next_index(500);
    snapshot.cache_misses = rng.next_index(500);

    const std::vector<std::uint8_t> bytes = serialize_engine_snapshot(snapshot);
    const EngineSnapshot decoded = deserialize_engine_snapshot(bytes);
    expect_equal(snapshot, decoded);
    EXPECT_EQ(serialize_engine_snapshot(decoded), bytes) << "trial " << trial;
  }
}

TEST(Snapshot, ZeroLengthInputRejected) {
  EXPECT_THROW(deserialize_engine_snapshot({}), util::SnapshotError);
}

TEST(Snapshot, EveryTruncationRejected) {
  // A crash can leave any prefix on disk; no prefix may crash the loader or
  // decode as a valid snapshot.
  const std::vector<std::uint8_t> bytes = serialize_engine_snapshot(fixed_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(deserialize_engine_snapshot(truncated), util::SnapshotError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Snapshot, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = serialize_engine_snapshot(fixed_snapshot());
  bytes[0] ^= 0xff;
  EXPECT_THROW(deserialize_engine_snapshot(bytes), util::SnapshotError);
}

TEST(Snapshot, WrongVersionRejected) {
  std::vector<std::uint8_t> bytes = serialize_engine_snapshot(fixed_snapshot());
  bytes[4] ^= 0xff;  // version field follows the u32 magic
  EXPECT_THROW(deserialize_engine_snapshot(bytes), util::SnapshotError);
}

TEST(Snapshot, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = serialize_engine_snapshot(fixed_snapshot());
  bytes.push_back(0x00);
  EXPECT_THROW(deserialize_engine_snapshot(bytes), util::SnapshotError);
}

TEST(SnapshotGolden, EngineSnapshotV1MatchesCommittedBytes) {
  const std::vector<std::uint8_t> encoded = serialize_engine_snapshot(fixed_snapshot());
  if (regen_requested()) {
    std::ofstream out(golden_path("engine_snapshot_v1.bin"), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden fixture";
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
  }
  const std::vector<std::uint8_t> golden = read_file(golden_path("engine_snapshot_v1.bin"));
  ASSERT_EQ(encoded.size(), golden.size()) << "snapshot size drifted";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(encoded[i], golden[i]) << "byte " << i << " drifted";
  }

  // Decoder half: the committed fixture must still be accepted and must
  // still mean what it meant.
  const EngineSnapshot decoded = deserialize_engine_snapshot(golden);
  expect_equal(fixed_snapshot(), decoded);
}

}  // namespace
}  // namespace ecad::evo
