#include "evo/genome.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ecad::evo {
namespace {

bool in_space(const Genome& genome, const SearchSpace& space) {
  if (genome.nna.hidden.size() < space.min_hidden_layers ||
      genome.nna.hidden.size() > space.max_hidden_layers) {
    return false;
  }
  for (std::size_t width : genome.nna.hidden) {
    if (std::find(space.width_choices.begin(), space.width_choices.end(), width) ==
        space.width_choices.end()) {
      return false;
    }
  }
  if (std::find(space.activations.begin(), space.activations.end(), genome.nna.activation) ==
      space.activations.end()) {
    return false;
  }
  auto contains = [](const std::vector<std::size_t>& choices, std::size_t value) {
    return std::find(choices.begin(), choices.end(), value) != choices.end();
  };
  return contains(space.grid.row_choices, genome.grid.rows) &&
         contains(space.grid.col_choices, genome.grid.cols) &&
         contains(space.grid.vec_choices, genome.grid.vec_width) &&
         contains(space.grid.interleave_choices, genome.grid.interleave_m) &&
         contains(space.grid.interleave_choices, genome.grid.interleave_n);
}

TEST(Genome, RandomGenomesStayInSpace) {
  SearchSpace space;
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(in_space(random_genome(space, rng), space));
  }
}

TEST(Genome, MutationsStayInSpace) {
  SearchSpace space;
  util::Rng rng(2);
  Genome genome = random_genome(space, rng);
  for (int i = 0; i < 500; ++i) {
    genome = mutate(genome, space, rng);
    EXPECT_TRUE(in_space(genome, space));
  }
}

TEST(Genome, MutationEventuallyChangesEveryTraitKind) {
  SearchSpace space;
  util::Rng rng(3);
  const Genome original = random_genome(space, rng);
  bool nna_changed = false, hw_changed = false, activation_changed = false;
  Genome genome = original;
  for (int i = 0; i < 300; ++i) {
    genome = mutate(genome, space, rng);
    nna_changed |= genome.nna.hidden != original.nna.hidden;
    hw_changed |= !(genome.grid == original.grid);
    activation_changed |= genome.nna.activation != original.nna.activation;
  }
  EXPECT_TRUE(nna_changed);
  EXPECT_TRUE(hw_changed);
  EXPECT_TRUE(activation_changed);
}

TEST(Genome, HardwareFrozenWhenNotSearching) {
  SearchSpace space;
  space.search_hardware = false;
  util::Rng rng(4);
  Genome genome = random_genome(space, rng);
  const hw::GridConfig original_grid = genome.grid;
  for (int i = 0; i < 200; ++i) {
    genome = mutate(genome, space, rng);
    EXPECT_EQ(genome.grid, original_grid);
  }
}

TEST(Genome, CrossoverStaysInSpace) {
  SearchSpace space;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Genome a = random_genome(space, rng);
    const Genome b = random_genome(space, rng);
    EXPECT_TRUE(in_space(crossover(a, b, space, rng), space));
  }
}

TEST(Genome, CrossoverInheritsTraitsFromParents) {
  SearchSpace space;
  util::Rng rng(6);
  const Genome a = random_genome(space, rng);
  const Genome b = random_genome(space, rng);
  const Genome child = crossover(a, b, space, rng);
  EXPECT_TRUE(child.nna.activation == a.nna.activation ||
              child.nna.activation == b.nna.activation);
  EXPECT_TRUE(child.grid.rows == a.grid.rows || child.grid.rows == b.grid.rows);
  EXPECT_TRUE(child.grid.vec_width == a.grid.vec_width ||
              child.grid.vec_width == b.grid.vec_width);
}

TEST(Genome, KeyIsCanonicalAndDistinguishes) {
  SearchSpace space;
  util::Rng rng(7);
  const Genome a = random_genome(space, rng);
  Genome b = a;
  EXPECT_EQ(a.key(), b.key());
  b.nna.hidden.push_back(64);
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.grid.interleave_n = b.grid.interleave_n == 1 ? 2 : 1;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.nna.use_bias = !b.nna.use_bias;
  EXPECT_NE(a.key(), b.key());
}

TEST(Genome, KeysMostlyUniqueAcrossRandomDraws) {
  SearchSpace space;
  util::Rng rng(8);
  std::set<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.insert(random_genome(space, rng).key());
  EXPECT_GT(keys.size(), 150u);
}

TEST(Genome, ToMlpSpecBindsSchema) {
  NnaTraits traits;
  traits.hidden = {32, 16};
  traits.activation = nn::Activation::Tanh;
  traits.use_bias = false;
  const nn::MlpSpec spec = traits.to_mlp_spec(100, 5);
  EXPECT_EQ(spec.input_dim, 100u);
  EXPECT_EQ(spec.output_dim, 5u);
  EXPECT_EQ(spec.hidden, traits.hidden);
  EXPECT_EQ(spec.activation, nn::Activation::Tanh);
  EXPECT_FALSE(spec.use_bias);
}

TEST(SearchSpace, ValidateRejectsDegenerate) {
  SearchSpace space;
  space.width_choices.clear();
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space = {};
  space.min_hidden_layers = 5;
  space.max_hidden_layers = 2;
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space = {};
  space.activations.clear();
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space = {};
  space.grid.vec_choices.clear();
  EXPECT_THROW(space.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace ecad::evo
